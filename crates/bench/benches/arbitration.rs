//! iSLIP scheduling cost per cycle at the switch radixes of Table I
//! (5-port ad-hoc switches, 8-port fat-tree switches) and beyond.

use ccfit::arbiter::Islip;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_islip(c: &mut Criterion) {
    let mut group = c.benchmark_group("islip_schedule");
    for &ports in &[5usize, 8, 16] {
        // Full contention: every input wants every output.
        group.bench_with_input(
            BenchmarkId::new("full_contention", ports),
            &ports,
            |b, &p| {
                let mut islip = Islip::new(p, 2);
                let requests: Vec<Vec<usize>> = (0..p).map(|_| (0..p).collect()).collect();
                let free = vec![true; p];
                b.iter(|| black_box(islip.schedule(&requests, &free, &free)));
            },
        );
        // Sparse requests: the common case mid-simulation.
        group.bench_with_input(BenchmarkId::new("sparse", ports), &ports, |b, &p| {
            let mut islip = Islip::new(p, 2);
            let requests: Vec<Vec<usize>> = (0..p)
                .map(|i| {
                    if i % 3 == 0 {
                        vec![(i + 1) % p]
                    } else {
                        vec![]
                    }
                })
                .collect();
            let free = vec![true; p];
            b.iter(|| black_box(islip.schedule(&requests, &free, &free)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_islip);
criterion_main!(benches);
