//! Microbenchmarks for the engine substrate: the per-cycle hot-path
//! operations (queue handling, CAM lookups, link transfers).

use ccfit::{Mechanism, SimBuilder, SimConfig, Simulator};
use ccfit_engine::cam::Cam;
use ccfit_engine::ids::{FlowId, NodeId, PacketId};
use ccfit_engine::link::{Link, LinkConfig};
use ccfit_engine::packet::Packet;
use ccfit_engine::queue::PacketQueue;
use ccfit_engine::ram::PortRam;
use ccfit_engine::units::UnitModel;
use ccfit_topology::config1_topology;
use ccfit_traffic::{FlowSpec, TrafficPattern};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn pkt(id: u64) -> Packet {
    Packet::data(PacketId(id), NodeId(0), NodeId(1), 32, 2048, FlowId(0), 0)
}

fn bench_queue(c: &mut Criterion) {
    c.bench_function("queue_push_pop", |b| {
        let mut q = PacketQueue::new();
        let mut i = 0u64;
        b.iter(|| {
            q.push(pkt(i), 0, 0);
            i += 1;
            black_box(q.pop());
        });
    });
    c.bench_function("queue_occupancy_threshold_check", |b| {
        let mut q = PacketQueue::new();
        for i in 0..16 {
            q.push(pkt(i), 0, 0);
        }
        b.iter(|| black_box(q.occupancy_mtus(32) >= 8));
    });
}

fn bench_cam(c: &mut Criterion) {
    c.bench_function("cam_lookup_hit", |b| {
        let mut cam: Cam<NodeId, u32> = Cam::new(4);
        cam.allocate(NodeId(7), 0).unwrap();
        cam.allocate(NodeId(23), 1).unwrap();
        b.iter(|| black_box(cam.lookup(NodeId(23))));
    });
    c.bench_function("cam_lookup_miss", |b| {
        let mut cam: Cam<NodeId, u32> = Cam::new(4);
        cam.allocate(NodeId(7), 0).unwrap();
        b.iter(|| black_box(cam.lookup(NodeId(42))));
    });
    c.bench_function("cam_alloc_free_cycle", |b| {
        let mut cam: Cam<NodeId, u32> = Cam::new(4);
        b.iter(|| {
            let i = cam.allocate(NodeId(9), 0).unwrap();
            cam.free(black_box(i));
        });
    });
}

fn bench_link(c: &mut Criterion) {
    c.bench_function("link_send_deliver_credit_cycle", |b| {
        let mut l = Link::new(LinkConfig::default(), 1 << 30);
        let mut now = 0u64;
        let mut arrived = Vec::new();
        b.iter(|| {
            l.send(now, pkt(now));
            now += 33;
            arrived.clear();
            l.deliver_into(now, &mut arrived);
            for d in &arrived {
                l.return_credits(now, d.packet.size_flits);
            }
            l.poll_credits(now);
        });
    });
}

fn bench_ram_and_units(c: &mut Criterion) {
    c.bench_function("ram_reserve_release", |b| {
        let mut ram = PortRam::new(1024);
        b.iter(|| {
            ram.reserve(black_box(32)).unwrap();
            ram.release(32);
        });
    });
    c.bench_function("units_conversions", |b| {
        let u = UnitModel::default();
        b.iter(|| {
            black_box(u.bytes_to_flits(black_box(2048)));
            black_box(u.ns_to_cycles(black_box(8000.0)));
        });
    });
}

/// A full config-1 simulator in a steady state: `flows` empty gives a
/// permanently idle network; never-ending hotspot flows give permanent
/// congestion. The duration is irrelevant — the bench ticks the live
/// simulator directly.
fn steady_sim(flows: Vec<FlowSpec>, force_slow_path: bool) -> Simulator {
    let cfg = SimConfig {
        force_slow_path,
        ..SimConfig::default()
    };
    let mut sim = SimBuilder::new(config1_topology())
        .mechanism(Mechanism::ccfit())
        .traffic(TrafficPattern::new("steady", flows))
        .duration_ns(1e6)
        .config(cfg)
        .seed(1)
        .build();
    sim.run_cycles(20_000); // settle into the steady state
    sim
}

fn congested_flows() -> Vec<FlowSpec> {
    vec![
        FlowSpec::hotspot(0, NodeId(0), NodeId(3), 0.0, None),
        FlowSpec::hotspot(1, NodeId(1), NodeId(4), 0.0, None),
        FlowSpec::hotspot(2, NodeId(2), NodeId(4), 0.0, None),
    ]
}

/// Whole-engine tick cost: an idle network (where the active-set
/// scheduler skips everything and the fast-forward jumps the clock) and
/// a congested one (where the win is allocation-free hot paths), each
/// against the exhaustive `force_slow_path` baseline.
fn bench_engine_tick(c: &mut Criterion) {
    c.bench_function("engine_tick_idle_fast", |b| {
        let mut sim = steady_sim(vec![], false);
        b.iter(|| sim.tick());
    });
    c.bench_function("engine_tick_idle_slow", |b| {
        let mut sim = steady_sim(vec![], true);
        b.iter(|| sim.tick());
    });
    c.bench_function("engine_tick_congested_fast", |b| {
        let mut sim = steady_sim(congested_flows(), false);
        b.iter(|| sim.tick());
    });
    c.bench_function("engine_tick_congested_slow", |b| {
        let mut sim = steady_sim(congested_flows(), true);
        b.iter(|| sim.tick());
    });
}

criterion_group!(
    benches,
    bench_queue,
    bench_cam,
    bench_link,
    bench_ram_and_units,
    bench_engine_tick
);
criterion_main!(benches);
