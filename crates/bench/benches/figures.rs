//! Short-horizon versions of every figure workload, so `cargo bench`
//! exercises the exact code paths behind each reproduced table/figure
//! (the full-length regenerations live in the `table1`/`fig7`/`fig8`/
//! `fig9`/`fig10` binaries).

use ccfit::experiment::{config1_case1_scaled, config2_case2_scaled, config2_case3, config3_case4};
use ccfit::{Mechanism, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn cfg() -> SimConfig {
    SimConfig {
        metrics_bin_ns: 50_000.0,
        ..SimConfig::default()
    }
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_short");
    group.sample_size(10);
    // 7a: Config #1 Case #1 at 1/50 scale; 7b: Config #2 Case #2; 7c: +uniform.
    let specs = vec![
        ("a", config1_case1_scaled(0.02)),
        ("b", config2_case2_scaled(0.02)),
        ("c", {
            let mut s = config2_case3(10.0);
            s.duration_ns = 200_000.0;
            s
        }),
    ];
    for (panel, spec) in specs {
        for mech in [Mechanism::OneQ, Mechanism::ccfit()] {
            let id = format!("{panel}-{}", mech.name());
            group.bench_with_input(BenchmarkId::from_parameter(id), &mech, |b, mech| {
                b.iter(|| black_box(spec.run_with(mech.clone(), 1, cfg())));
            });
        }
    }
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_short");
    group.sample_size(10);
    for h in [1usize, 4, 6] {
        let mut spec = config3_case4(h, 4.0);
        // Shrink to a 0.2 ms slice with the burst starting at 0.1 ms.
        spec.duration_ns = 200_000.0;
        for f in &mut spec.pattern.flows {
            if f.start_ns > 0.0 {
                f.start_ns = 100_000.0;
            }
            if let Some(e) = &mut f.end_ns {
                *e = 200_000.0;
            }
        }
        for mech in [Mechanism::fbicm(), Mechanism::ccfit()] {
            let id = format!("h{h}-{}", mech.name());
            group.bench_with_input(BenchmarkId::from_parameter(id), &mech, |b, mech| {
                b.iter(|| black_box(spec.run_with(mech.clone(), 1, cfg())));
            });
        }
    }
    group.finish();
}

fn bench_fig9_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_fig10_short");
    group.sample_size(10);
    let f9 = config1_case1_scaled(0.02);
    let f10 = config2_case2_scaled(0.02);
    for (name, spec) in [("fig9", f9), ("fig10", f10)] {
        for mech in [Mechanism::ith(), Mechanism::ccfit()] {
            let id = format!("{name}-{}", mech.name());
            group.bench_with_input(BenchmarkId::from_parameter(id), &mech, |b, mech| {
                b.iter(|| {
                    let r = spec.run_with(mech.clone(), 1, cfg());
                    black_box(r.jain_over(&r.flow_ids(), 0.0, spec.duration_ns))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7, bench_fig8, bench_fig9_fig10);
criterion_main!(benches);
