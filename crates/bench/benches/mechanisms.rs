//! Simulator throughput (simulated microseconds per wall second) for
//! every congestion-control mechanism on Config #2 under uniform load —
//! the cost of each mechanism's per-cycle machinery.

use ccfit::{Mechanism, SimBuilder, SimConfig};
use ccfit_topology::{KAryNTree, LinkParams};
use ccfit_traffic::uniform_all;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_100us_config2");
    group.sample_size(10);
    for mech in [
        Mechanism::OneQ,
        Mechanism::VoqSw,
        Mechanism::voqnet(),
        Mechanism::fbicm(),
        Mechanism::ith(),
        Mechanism::ccfit(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mech.name()),
            &mech,
            |b, mech| {
                let tree = KAryNTree::new(2, 3);
                b.iter(|| {
                    let report = SimBuilder::new(tree.build(LinkParams::default()))
                        .routing(tree.det_routing())
                        .mechanism(mech.clone())
                        .traffic(uniform_all(8, 0.8))
                        .duration_ns(100_000.0)
                        .config(SimConfig {
                            metrics_bin_ns: 50_000.0,
                            ..SimConfig::default()
                        })
                        .seed(1)
                        .build()
                        .run();
                    black_box(report.delivered_packets)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
