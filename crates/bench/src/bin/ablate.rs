//! Ablation sweeps for the design choices §III-E discusses.
//!
//! * `ablate cfqs`    — CFQ count: when does isolation alone stop needing
//!   throttling? (Fig. 8b scenario, FBICM vs CCFIT at 1/2/4/8 CFQs.)
//! * `ablate marking` — `Marking_Rate` sensitivity: the paper claims
//!   CCFIT is less parameter-sensitive than ITh.
//! * `ablate timer`   — `CCTI_Timer`: recovery speed vs oscillation.
//! * `ablate stopgo`  — Stop/Go gap: blocking vs forwarding of congested
//!   traffic.
//! * `ablate detect`  — detection threshold: "not too early, not too
//!   late".
//!
//! Each sweep runs a compressed Config #1 Case #1 (fairness-sensitive) or
//! Config #3 Case #4 storm (resource-sensitive) and prints the metric the
//! design choice trades off.

use ccfit::experiment::{config1_case1_scaled, config3_case4};
use ccfit::params::{CctProfile, IsolationParams, ThrottleParams};
use ccfit::{Mechanism, SimConfig};
use ccfit_engine::ids::FlowId;

fn cfg() -> SimConfig {
    SimConfig {
        metrics_bin_ns: 100_000.0,
        ..SimConfig::default()
    }
}

fn sweep_cfqs() {
    println!("-- CFQ count sweep (Config #3, 4-tree storm, burst window) --");
    println!("cfqs  FBICM  CCFIT   (normalized throughput during [1,2] ms)");
    let spec = config3_case4(4, 3.0);
    for n in [1usize, 2, 4, 8] {
        let iso = IsolationParams {
            num_cfqs: n,
            out_cam_lines: 2 * n,
            ..IsolationParams::default()
        };
        let f = spec.run_with(Mechanism::Fbicm(iso), 1, cfg());
        let c = spec.run_with(Mechanism::Ccfit(iso, ThrottleParams::default()), 1, cfg());
        println!(
            "{n:>4}  {:.3}  {:.3}",
            f.mean_normalized_throughput(1.1e6, 2.0e6),
            c.mean_normalized_throughput(1.1e6, 2.0e6)
        );
    }
}

fn sweep_marking() {
    println!("-- Marking_Rate sweep (Config #1, victim bandwidth + contributor fairness) --");
    println!("rate   ITh victim  ITh Jain   CCFIT victim  CCFIT Jain");
    let spec = config1_case1_scaled(0.3);
    let contributors = [FlowId(1), FlowId(2), FlowId(5), FlowId(6)];
    let (w0, w1) = (0.65 * spec.duration_ns, spec.duration_ns);
    for rate in [0.1f64, 0.25, 0.5, 0.85, 1.0] {
        let thr = ThrottleParams {
            marking_rate: rate,
            ..ThrottleParams::default()
        };
        let i = spec.run_with(Mechanism::Ith(thr.clone()), 1, cfg());
        let c = spec.run_with(Mechanism::Ccfit(IsolationParams::default(), thr), 1, cfg());
        println!(
            "{rate:>4.2}   {:>10.2}  {:>8.3}   {:>12.2}  {:>10.3}",
            i.flow_mean_bandwidth_gbps(FlowId(0), w0, w1),
            i.jain_over(&contributors, w0, w1),
            c.flow_mean_bandwidth_gbps(FlowId(0), w0, w1),
            c.jain_over(&contributors, w0, w1)
        );
    }
}

fn sweep_timer() {
    println!("-- CCTI_Timer sweep (Config #1, contributor throughput vs fairness) --");
    println!("timer_ns  victim  contrib_total  Jain   (CCFIT)");
    let spec = config1_case1_scaled(0.3);
    let contributors = [FlowId(1), FlowId(2), FlowId(5), FlowId(6)];
    let (w0, w1) = (0.65 * spec.duration_ns, spec.duration_ns);
    for timer in [2000.0f64, 4000.0, 8000.0, 16000.0, 32000.0] {
        let thr = ThrottleParams {
            ccti_timer_ns: timer,
            ..ThrottleParams::default()
        };
        let c = spec.run_with(Mechanism::Ccfit(IsolationParams::default(), thr), 1, cfg());
        let total: f64 = contributors
            .iter()
            .map(|&f| c.flow_mean_bandwidth_gbps(f, w0, w1))
            .sum();
        println!(
            "{timer:>8.0}  {:>6.2}  {:>13.2}  {:>5.3}",
            c.flow_mean_bandwidth_gbps(FlowId(0), w0, w1),
            total,
            c.jain_over(&contributors, w0, w1)
        );
    }
}

fn sweep_stopgo() {
    println!("-- Stop/Go threshold sweep (Config #1, FBICM victim + buffering) --");
    println!("stop  go   victim  contrib_total");
    let spec = config1_case1_scaled(0.3);
    let contributors = [FlowId(1), FlowId(2), FlowId(5), FlowId(6)];
    let (w0, w1) = (0.65 * spec.duration_ns, spec.duration_ns);
    for (stop, go) in [(6u32, 2u32), (10, 4), (10, 8), (16, 4), (24, 8)] {
        let iso = IsolationParams {
            stop_mtus: stop,
            go_mtus: go,
            ..IsolationParams::default()
        };
        let f = spec.run_with(Mechanism::Fbicm(iso), 1, cfg());
        let total: f64 = contributors
            .iter()
            .map(|&fl| f.flow_mean_bandwidth_gbps(fl, w0, w1))
            .sum();
        println!(
            "{stop:>4}  {go:>2}  {:>6.2}  {:>13.2}",
            f.flow_mean_bandwidth_gbps(FlowId(0), w0, w1),
            total
        );
    }
}

fn sweep_detect() {
    println!("-- Detection threshold sweep (Config #3 storm, CCFIT burst throughput) --");
    println!("detect_mtus  burst_nt  cfq_allocated");
    let spec = config3_case4(4, 3.0);
    for detect in [2u32, 4, 8, 16, 24] {
        let iso = IsolationParams {
            detect_threshold_mtus: detect,
            ..IsolationParams::default()
        };
        let c = spec.run_with(Mechanism::Ccfit(iso, ThrottleParams::default()), 1, cfg());
        println!(
            "{detect:>11}  {:>8.3}  {:>13}",
            c.mean_normalized_throughput(1.1e6, 2.0e6),
            c.counters.get("cfq_allocated").copied().unwrap_or(0)
        );
    }
}

fn sweep_cct() {
    println!("-- CCT profile sweep (Config #1, CCFIT victim + contributor total) --");
    println!("profile        victim  contrib_total  Jain");
    let spec = config1_case1_scaled(0.3);
    let contributors = [FlowId(1), FlowId(2), FlowId(5), FlowId(6)];
    let (w0, w1) = (0.65 * spec.duration_ns, spec.duration_ns);
    let profiles: Vec<(&str, CctProfile)> = vec![
        ("linear", CctProfile::Linear),
        ("exp/4", CctProfile::Exponential { period: 4 }),
        ("exp/8", CctProfile::Exponential { period: 8 }),
        ("exp/16", CctProfile::Exponential { period: 16 }),
    ];
    for (name, profile) in profiles {
        let thr = ThrottleParams {
            cct_profile: profile,
            ..ThrottleParams::default()
        };
        let c = spec.run_with(Mechanism::Ccfit(IsolationParams::default(), thr), 1, cfg());
        let total: f64 = contributors
            .iter()
            .map(|&f| c.flow_mean_bandwidth_gbps(f, w0, w1))
            .sum();
        println!(
            "{name:<13} {:>6.2}  {:>13.2}  {:>5.3}",
            c.flow_mean_bandwidth_gbps(FlowId(0), w0, w1),
            total,
            c.jain_over(&contributors, w0, w1)
        );
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "cfqs" => sweep_cfqs(),
        "marking" => sweep_marking(),
        "timer" => sweep_timer(),
        "stopgo" => sweep_stopgo(),
        "detect" => sweep_detect(),
        "cct" => sweep_cct(),
        _ => {
            sweep_cfqs();
            println!();
            sweep_marking();
            println!();
            sweep_timer();
            println!();
            sweep_stopgo();
            println!();
            sweep_detect();
            println!();
            sweep_cct();
        }
    }
}
