//! Ablation sweeps for the design choices §III-E discusses.
//!
//! * `ablate cfqs`    — CFQ count: when does isolation alone stop needing
//!   throttling? (Fig. 8b scenario, FBICM vs CCFIT at 1/2/4/8 CFQs.)
//! * `ablate marking` — `Marking_Rate` sensitivity: the paper claims
//!   CCFIT is less parameter-sensitive than ITh.
//! * `ablate timer`   — `CCTI_Timer`: recovery speed vs oscillation.
//! * `ablate stopgo`  — Stop/Go gap: blocking vs forwarding of congested
//!   traffic.
//! * `ablate detect`  — detection threshold: "not too early, not too
//!   late".
//!
//! Each sweep runs a compressed Config #1 Case #1 (fairness-sensitive) or
//! Config #3 Case #4 storm (resource-sensitive) and prints the metric the
//! design choice trades off. Every point goes through the orchestrator's
//! result cache, so repeating a sweep (or `ablate all` after individual
//! sweeps) re-reads instead of re-simulating.

use ccfit::params::{CctProfile, IsolationParams, ThrottleParams};
use ccfit::{ConfigId, Mechanism};
use ccfit_bench::harness::{run_specs, RunCtx};
use ccfit_bench::RunOutput;
use ccfit_engine::ids::FlowId;
use ccfit_orchestrator::RunSpec;

const BIN_NS: f64 = 100_000.0;

fn fairness_config() -> ConfigId {
    ConfigId::Config1Case1 { scale: 0.3 }
}

fn storm_config() -> ConfigId {
    ConfigId::Config3Case4 {
        hotspots: 4,
        duration_ms: 3.0,
        scale: 1.0,
    }
}

/// Run one mechanism per sweep point through the cache-backed runner.
fn run_points(config: &ConfigId, mechanisms: Vec<Mechanism>, ctx: &RunCtx) -> Vec<RunOutput> {
    let specs: Vec<RunSpec> = mechanisms
        .into_iter()
        .map(|m| RunSpec::new(config.clone(), m, 1, BIN_NS))
        .collect();
    run_specs(&specs, ctx)
}

fn sweep_cfqs(ctx: &RunCtx) {
    println!("-- CFQ count sweep (Config #3, 4-tree storm, burst window) --");
    println!("cfqs  FBICM  CCFIT   (normalized throughput during [1,2] ms)");
    let counts = [1usize, 2, 4, 8];
    let mechs: Vec<Mechanism> = counts
        .iter()
        .flat_map(|&n| {
            let iso = IsolationParams {
                num_cfqs: n,
                out_cam_lines: 2 * n,
                ..IsolationParams::default()
            };
            [
                Mechanism::Fbicm(iso),
                Mechanism::Ccfit(iso, ThrottleParams::default()),
            ]
        })
        .collect();
    let runs = run_points(&storm_config(), mechs, ctx);
    for (i, n) in counts.iter().enumerate() {
        println!(
            "{n:>4}  {:.3}  {:.3}",
            runs[2 * i].report.mean_normalized_throughput(1.1e6, 2.0e6),
            runs[2 * i + 1]
                .report
                .mean_normalized_throughput(1.1e6, 2.0e6)
        );
    }
}

fn sweep_marking(ctx: &RunCtx) {
    println!("-- Marking_Rate sweep (Config #1, victim bandwidth + contributor fairness) --");
    println!("rate   ITh victim  ITh Jain   CCFIT victim  CCFIT Jain");
    let config = fairness_config();
    let contributors = [FlowId(1), FlowId(2), FlowId(5), FlowId(6)];
    let duration_ns = config.resolve().duration_ns;
    let (w0, w1) = (0.65 * duration_ns, duration_ns);
    let rates = [0.1f64, 0.25, 0.5, 0.85, 1.0];
    let mechs: Vec<Mechanism> = rates
        .iter()
        .flat_map(|&rate| {
            let thr = ThrottleParams {
                marking_rate: rate,
                ..ThrottleParams::default()
            };
            [
                Mechanism::Ith(thr.clone()),
                Mechanism::Ccfit(IsolationParams::default(), thr),
            ]
        })
        .collect();
    let runs = run_points(&config, mechs, ctx);
    for (idx, rate) in rates.iter().enumerate() {
        let i = &runs[2 * idx].report;
        let c = &runs[2 * idx + 1].report;
        println!(
            "{rate:>4.2}   {:>10.2}  {:>8.3}   {:>12.2}  {:>10.3}",
            i.flow_mean_bandwidth_gbps(FlowId(0), w0, w1),
            i.jain_over(&contributors, w0, w1),
            c.flow_mean_bandwidth_gbps(FlowId(0), w0, w1),
            c.jain_over(&contributors, w0, w1)
        );
    }
}

fn sweep_timer(ctx: &RunCtx) {
    println!("-- CCTI_Timer sweep (Config #1, contributor throughput vs fairness) --");
    println!("timer_ns  victim  contrib_total  Jain   (CCFIT)");
    let config = fairness_config();
    let contributors = [FlowId(1), FlowId(2), FlowId(5), FlowId(6)];
    let duration_ns = config.resolve().duration_ns;
    let (w0, w1) = (0.65 * duration_ns, duration_ns);
    let timers = [2000.0f64, 4000.0, 8000.0, 16000.0, 32000.0];
    let mechs: Vec<Mechanism> = timers
        .iter()
        .map(|&timer| {
            let thr = ThrottleParams {
                ccti_timer_ns: timer,
                ..ThrottleParams::default()
            };
            Mechanism::Ccfit(IsolationParams::default(), thr)
        })
        .collect();
    let runs = run_points(&config, mechs, ctx);
    for (idx, timer) in timers.iter().enumerate() {
        let c = &runs[idx].report;
        let total: f64 = contributors
            .iter()
            .map(|&f| c.flow_mean_bandwidth_gbps(f, w0, w1))
            .sum();
        println!(
            "{timer:>8.0}  {:>6.2}  {:>13.2}  {:>5.3}",
            c.flow_mean_bandwidth_gbps(FlowId(0), w0, w1),
            total,
            c.jain_over(&contributors, w0, w1)
        );
    }
}

fn sweep_stopgo(ctx: &RunCtx) {
    println!("-- Stop/Go threshold sweep (Config #1, FBICM victim + buffering) --");
    println!("stop  go   victim  contrib_total");
    let config = fairness_config();
    let contributors = [FlowId(1), FlowId(2), FlowId(5), FlowId(6)];
    let duration_ns = config.resolve().duration_ns;
    let (w0, w1) = (0.65 * duration_ns, duration_ns);
    let points = [(6u32, 2u32), (10, 4), (10, 8), (16, 4), (24, 8)];
    let mechs: Vec<Mechanism> = points
        .iter()
        .map(|&(stop, go)| {
            Mechanism::Fbicm(IsolationParams {
                stop_mtus: stop,
                go_mtus: go,
                ..IsolationParams::default()
            })
        })
        .collect();
    let runs = run_points(&config, mechs, ctx);
    for (idx, (stop, go)) in points.iter().enumerate() {
        let f = &runs[idx].report;
        let total: f64 = contributors
            .iter()
            .map(|&fl| f.flow_mean_bandwidth_gbps(fl, w0, w1))
            .sum();
        println!(
            "{stop:>4}  {go:>2}  {:>6.2}  {:>13.2}",
            f.flow_mean_bandwidth_gbps(FlowId(0), w0, w1),
            total
        );
    }
}

fn sweep_detect(ctx: &RunCtx) {
    println!("-- Detection threshold sweep (Config #3 storm, CCFIT burst throughput) --");
    println!("detect_mtus  burst_nt  cfq_allocated");
    let thresholds = [2u32, 4, 8, 16, 24];
    let mechs: Vec<Mechanism> = thresholds
        .iter()
        .map(|&detect| {
            Mechanism::Ccfit(
                IsolationParams {
                    detect_threshold_mtus: detect,
                    ..IsolationParams::default()
                },
                ThrottleParams::default(),
            )
        })
        .collect();
    let runs = run_points(&storm_config(), mechs, ctx);
    for (idx, detect) in thresholds.iter().enumerate() {
        let c = &runs[idx].report;
        println!(
            "{detect:>11}  {:>8.3}  {:>13}",
            c.mean_normalized_throughput(1.1e6, 2.0e6),
            c.counters.get("cfq_allocated").copied().unwrap_or(0)
        );
    }
}

fn sweep_cct(ctx: &RunCtx) {
    println!("-- CCT profile sweep (Config #1, CCFIT victim + contributor total) --");
    println!("profile        victim  contrib_total  Jain");
    let config = fairness_config();
    let contributors = [FlowId(1), FlowId(2), FlowId(5), FlowId(6)];
    let duration_ns = config.resolve().duration_ns;
    let (w0, w1) = (0.65 * duration_ns, duration_ns);
    let profiles: Vec<(&str, CctProfile)> = vec![
        ("linear", CctProfile::Linear),
        ("exp/4", CctProfile::Exponential { period: 4 }),
        ("exp/8", CctProfile::Exponential { period: 8 }),
        ("exp/16", CctProfile::Exponential { period: 16 }),
    ];
    let mechs: Vec<Mechanism> = profiles
        .iter()
        .map(|(_, profile)| {
            Mechanism::Ccfit(
                IsolationParams::default(),
                ThrottleParams {
                    cct_profile: *profile,
                    ..ThrottleParams::default()
                },
            )
        })
        .collect();
    let runs = run_points(&config, mechs, ctx);
    for (idx, (name, _)) in profiles.iter().enumerate() {
        let c = &runs[idx].report;
        let total: f64 = contributors
            .iter()
            .map(|&f| c.flow_mean_bandwidth_gbps(f, w0, w1))
            .sum();
        println!(
            "{name:<13} {:>6.2}  {:>13.2}  {:>5.3}",
            c.flow_mean_bandwidth_gbps(FlowId(0), w0, w1),
            total,
            c.jain_over(&contributors, w0, w1)
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let ctx = RunCtx::from_args(&args);
    match which {
        "cfqs" => sweep_cfqs(&ctx),
        "marking" => sweep_marking(&ctx),
        "timer" => sweep_timer(&ctx),
        "stopgo" => sweep_stopgo(&ctx),
        "detect" => sweep_detect(&ctx),
        "cct" => sweep_cct(&ctx),
        _ => {
            sweep_cfqs(&ctx);
            println!();
            sweep_marking(&ctx);
            println!();
            sweep_timer(&ctx);
            println!();
            sweep_stopgo(&ctx);
            println!();
            sweep_detect(&ctx);
            println!();
            sweep_cct(&ctx);
        }
    }
}
