//! **cc_shootout** — the modern congestion-control schemes head-to-head
//! with the paper's mechanisms on the paper's own scenarios.
//!
//! Runs Configs #1–#3 (Table I) under their hotspot cases and compares,
//! per mechanism: mean network throughput over the congested window,
//! packet latency (mean + tail percentiles), the victim-flow recovery
//! time after congestion onset, and Jain's fairness index over the
//! competing flows. Results are printed as a table and archived as a
//! single JSON document (`BENCH_cc.json` by default).
//!
//! ```sh
//! cc_shootout [--smoke] [--mech <name>[,<name>...]] [--out <path>]
//! ```
//!
//! * default — Configs #1–#3 with the headline set (1Q floor, CCFIT,
//!   DCQCN, HPCC)
//! * `--smoke` — a shrunken Config #1 with the **entire** mechanism
//!   registry ([`Mechanism::all`]); CI uses this to prove every
//!   registered scheme still assembles, runs and reports
//! * `--mech`  — narrow the set by registry display name
//! * `--out`   — JSON path (default `BENCH_cc.json`)
//!
//! Runs read through the orchestrator's result cache; `wall_s` in the
//! JSON is near-zero for cache hits (`--no-cache` to force fresh runs).

use ccfit::experiment::ExperimentSpec;
use ccfit::traffic::incast;
use ccfit::{ConfigId, Mechanism, Workload};
use ccfit_bench::harness::{mechanisms_from_args, run_specs, RunCtx};
use ccfit_engine::ids::FlowId;
use ccfit_metrics::SimReport;
use ccfit_orchestrator::RunSpec;
use serde::Serialize;
use std::collections::BTreeMap;

/// Which flows enter the Jain fairness index.
#[derive(Clone, Copy)]
enum JainSet {
    /// The hotspot contributors (flows with a scheduled end): how
    /// evenly the mechanism shares the hot link among its claimants.
    Contributors,
    /// The long-running flows (no scheduled end): how evenly the
    /// background/victim population rides out the burst.
    LongRunning,
    /// The sized flows of a workload panel: how evenly the mechanism
    /// shares the fan-in among flows racing to completion.
    Sized,
}

/// What "the victim" means for recovery measurement.
#[derive(Clone, Copy)]
enum Victim {
    /// The unique long-running flow (Config #1/#2: the established flow
    /// that predates the hotspot) — recovery of its own bandwidth.
    Flow,
    /// Aggregate network throughput (Config #3: the uniform background
    /// as a whole) — recovery after the burst ends.
    Network,
}

/// One benchmark scenario plus the measurement windows, all expressed
/// as fractions of the run so the same shape works at any time scale.
struct Panel {
    config: ConfigId,
    /// Sized-flow workload replacing the config's traffic pattern
    /// (`None` = the config's own rate-window schedule). Workload
    /// panels additionally report the FCT columns.
    workload: Option<Workload>,
    /// Throughput/fairness window: full congestion, every contributor on.
    congested: (f64, f64),
    /// Victim baseline window is `[0, baseline_to)`.
    baseline_to: f64,
    /// Recovery is measured from this instant (congestion onset for
    /// Configs #1/#2, burst end for Config #3).
    recover_from: f64,
    victim: Victim,
    jain: JainSet,
}

/// The closed-loop panel: a 4-into-1 incast of 64 KiB flows on the
/// 8-node tree. The congested window covers the fan-in's lifetime; the
/// FCT columns (not the victim metrics) are this panel's headline.
fn incast_panel() -> Panel {
    Panel {
        config: ConfigId::UniformTree {
            ary: 2,
            levels: 3,
            load: 1.0, // replaced by the workload; must parse as a valid rate
            duration_ns: 600_000.0,
        },
        workload: Some(incast(4, 65_536)),
        congested: (0.0, 0.25),
        baseline_to: 0.25,
        recover_from: 0.0,
        victim: Victim::Network,
        jain: JainSet::Sized,
    }
}

fn panels(smoke: bool) -> Vec<Panel> {
    if smoke {
        // CI shape: the Config #1 hotspot compressed to 0.2 ms, plus
        // the incast workload panel so the FCT path stays exercised.
        return vec![
            Panel {
                config: ConfigId::Config1Case1 { scale: 0.02 },
                workload: None,
                congested: (0.65, 1.0),
                baseline_to: 0.2,
                recover_from: 0.2,
                victim: Victim::Flow,
                jain: JainSet::Contributors,
            },
            incast_panel(),
        ];
    }
    vec![
        // Config #1 / Case #1 at 2 ms: victim F0 vs staggered
        // contributors converging on node 4 (onset at 20 % of the run).
        Panel {
            config: ConfigId::Config1Case1 { scale: 0.2 },
            workload: None,
            congested: (0.65, 1.0),
            baseline_to: 0.2,
            recover_from: 0.2,
            victim: Victim::Flow,
            jain: JainSet::Contributors,
        },
        // Config #2 / Case #2 at 2 ms: five flows converging on node 7;
        // the established flow from node 1 plays the victim role.
        Panel {
            config: ConfigId::Config2Case2 { scale: 0.2 },
            workload: None,
            congested: (0.65, 1.0),
            baseline_to: 0.2,
            recover_from: 0.2,
            victim: Victim::Flow,
            jain: JainSet::Contributors,
        },
        // Config #3 / Case #4 at 0.4 ms: 75 % uniform background with a
        // one-tree hotspot storm in the middle half-window; recovery of
        // aggregate throughput is measured from the burst's end.
        Panel {
            config: ConfigId::Config3Case4 {
                hotspots: 1,
                duration_ms: 4.0,
                scale: 0.1,
            },
            workload: None,
            congested: (0.25, 0.5),
            baseline_to: 0.25,
            recover_from: 0.5,
            victim: Victim::Network,
            jain: JainSet::LongRunning,
        },
        incast_panel(),
    ]
}

/// Victim recovery time: scanning from `from_ns`, find the first bin
/// where `series` drops below 90 % of its `[0, baseline_to_ns)` mean
/// (the congestion impact), then the first point after it where the
/// series sustains ≥ 90 % of baseline for three consecutive bins.
/// Returns ns from the dip to the recovery; `Some(0)` when the victim
/// was never impacted, `None` when it never recovered before the run
/// ended.
fn recovery_ns(series: &[f64], bin_ns: f64, baseline_to_ns: f64, from_ns: f64) -> Option<f64> {
    let base_bins = ((baseline_to_ns / bin_ns) as usize)
        .min(series.len())
        .max(1);
    let baseline = series[..base_bins].iter().sum::<f64>() / base_bins as f64;
    if baseline <= 0.0 {
        return Some(0.0);
    }
    let target = 0.9 * baseline;
    let start = (from_ns / bin_ns) as usize;
    // The final bin is partial (it undercounts bytes) — keep it out of
    // both the dip scan and the recovery scan.
    let usable = series.len().saturating_sub(1);
    let Some(dip) = (start..usable).find(|&i| series[i] < target) else {
        return Some(0.0); // never impacted
    };
    let dip_ns = dip as f64 * bin_ns;
    let mut run = 0usize;
    for (i, &v) in series.iter().enumerate().take(usable).skip(dip) {
        run = if v >= target { run + 1 } else { 0 };
        if run == 3 {
            let first = i + 1 - run;
            let center = (first as f64 + 0.5) * bin_ns;
            return Some((center - dip_ns).max(0.0));
        }
    }
    None
}

/// One mechanism's scorecard on one panel.
#[derive(Serialize)]
struct MechResult {
    mechanism: String,
    /// Mean normalized network throughput over the congested window.
    throughput: f64,
    /// Mean end-to-end packet latency over the whole run, ns.
    mean_latency_ns: f64,
    p50_ns: f64,
    p95_ns: f64,
    p99_ns: f64,
    /// ns from congestion onset (burst end for Config #3) until the
    /// victim sustains ≥ 90 % of its pre-congestion bandwidth; `null`
    /// when it never recovered within the run.
    victim_recovery_ns: Option<f64>,
    /// Jain's index over the panel's competing-flow set, congested window.
    jain: f64,
    /// Flow-completion-time columns, populated on workload panels only
    /// (`null` for rate-window panels, which have no sized flows).
    fct_avg_ns: Option<f64>,
    fct_p50_ns: Option<f64>,
    fct_p99_ns: Option<f64>,
    fct_p999_ns: Option<f64>,
    fct_avg_slowdown: Option<f64>,
    /// Sized flows that ran to completion within the run.
    fct_completed: Option<usize>,
    /// Total sized flows in the workload.
    fct_flows: Option<usize>,
    delivered_packets: u64,
    /// Wall-clock seconds for the simulation (near-zero on cache hits).
    wall_s: f64,
    /// The congestion-control counters the run produced (feedback
    /// volumes, wire overhead, throttling activity) — empty for the
    /// open-loop queueing-only schemes.
    cc_counters: BTreeMap<String, u64>,
}

fn score(
    panel: &Panel,
    spec: &ExperimentSpec,
    mechanism: String,
    report: &SimReport,
    wall_s: f64,
) -> MechResult {
    let d = report.duration_ns;
    let (cw_from, cw_to) = (panel.congested.0 * d, panel.congested.1 * d);
    let throughput = report.mean_normalized_throughput(cw_from, cw_to);

    let lat_total = report.latency_count.total();
    let mean_latency_ns = if lat_total > 0.0 {
        report.latency_sum_ns.total() / lat_total
    } else {
        0.0
    };
    let (p50_ns, p95_ns, p99_ns) = report.latency_percentiles_ns();

    let bin_ns = report.bin_ns;
    let victim_series: Option<Vec<f64>> = match panel.victim {
        Victim::Network => Some(report.network_throughput_normalized()),
        Victim::Flow => spec
            .pattern
            .flows
            .iter()
            .find(|f| f.start_ns == 0.0 && f.end_ns.is_none())
            .and_then(|f| report.flow_bandwidth_gbps(f.id)),
    };
    let victim_recovery_ns = victim_series
        .as_ref()
        .and_then(|s| recovery_ns(s, bin_ns, panel.baseline_to * d, panel.recover_from * d));

    let jain_flows: Vec<FlowId> = spec
        .pattern
        .flows
        .iter()
        .filter(|f| match panel.jain {
            JainSet::Contributors => f.end_ns.is_some(),
            JainSet::LongRunning => f.end_ns.is_none(),
            JainSet::Sized => false,
        })
        .map(|f| f.id)
        .collect();
    let jain_flows = match panel.jain {
        JainSet::Sized => spec.pattern.sized_ids(),
        _ => jain_flows,
    };
    let jain = report.jain_over(&jain_flows, cw_from, cw_to);

    let fct = report.fct.as_ref();

    const CC_PREFIXES: [&str; 9] = [
        "ecn_", "fecn_", "becn_", "cnp_", "ack_", "wire_", "ctrl_", "dcqcn_", "throttle",
    ];
    let cc_counters = report
        .counters
        .iter()
        .filter(|(k, _)| CC_PREFIXES.iter().any(|p| k.starts_with(p)))
        .map(|(k, v)| (k.clone(), *v))
        .collect();

    MechResult {
        mechanism,
        throughput,
        mean_latency_ns,
        p50_ns,
        p95_ns,
        p99_ns,
        victim_recovery_ns,
        jain,
        fct_avg_ns: fct.map(|f| f.avg_fct_ns),
        fct_p50_ns: fct.map(|f| f.p50_fct_ns),
        fct_p99_ns: fct.map(|f| f.p99_fct_ns),
        fct_p999_ns: fct.map(|f| f.p999_fct_ns),
        fct_avg_slowdown: fct.map(|f| f.avg_slowdown),
        fct_completed: fct.map(|f| f.completed),
        fct_flows: fct.map(|f| f.flows.len()),
        delivered_packets: report.delivered_packets,
        wall_s,
        cc_counters,
    }
}

#[derive(Serialize)]
struct PanelResult {
    config: String,
    duration_ns: f64,
    mechanisms: Vec<MechResult>,
}

#[derive(Serialize)]
struct Shootout {
    name: &'static str,
    smoke: bool,
    seed: u64,
    results: Vec<PanelResult>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_cc.json".into());
    let default_set = if smoke {
        Mechanism::all()
    } else {
        // The headline comparison: the no-CC floor, the paper's
        // contribution, and the two modern rate-based schemes.
        vec![
            Mechanism::OneQ,
            Mechanism::ccfit(),
            Mechanism::dcqcn(),
            Mechanism::hpcc(),
        ]
    };
    let mechs = mechanisms_from_args(&args, default_set);
    let ctx = RunCtx::from_args(&args);
    let seed = 0xCC5;

    let mut results = Vec::new();
    for panel in panels(smoke) {
        let mut spec = panel.config.resolve();
        if let Some(w) = &panel.workload {
            spec = spec.with_workload(w);
        }
        let d = spec.duration_ns;
        println!("=== {} ({:.2} ms simulated) ===", spec.name, d / 1e6);
        println!(
            "{:<8} {:>7} {:>12} {:>10} {:>10} {:>12} {:>7} {:>12} {:>8} {:>8}",
            "mech",
            "thput",
            "mean lat ns",
            "p95 ns",
            "p99 ns",
            "recovery ns",
            "jain",
            "fct p99 ns",
            "slowdn",
            "wall s"
        );
        // ~100 bins per run regardless of time scale.
        let run_specs_list: Vec<RunSpec> = mechs
            .iter()
            .map(|m| {
                let mut s = RunSpec::new(panel.config.clone(), m.clone(), seed, d / 100.0);
                if let Some(w) = &panel.workload {
                    s = s.with_workload(w.clone());
                }
                s
            })
            .collect();
        let runs = run_specs(&run_specs_list, &ctx);
        let mut per_mech = Vec::new();
        for out in runs {
            let r = score(&panel, &spec, out.mechanism, &out.report, out.wall_s);
            if panel.workload.is_some() {
                // Every workload run must produce a finite, populated
                // FCT block — CI's --smoke leg rides this assertion.
                for (what, v) in [
                    ("fct_avg_ns", r.fct_avg_ns),
                    ("fct_p50_ns", r.fct_p50_ns),
                    ("fct_p99_ns", r.fct_p99_ns),
                    ("fct_p999_ns", r.fct_p999_ns),
                    ("fct_avg_slowdown", r.fct_avg_slowdown),
                ] {
                    let v = v.unwrap_or_else(|| {
                        panic!("{}: workload panel missing {what}", r.mechanism)
                    });
                    assert!(v.is_finite() && v > 0.0, "{}: {what} = {v}", r.mechanism);
                }
                assert!(
                    r.fct_completed.unwrap_or(0) > 0,
                    "{}: no sized flow completed",
                    r.mechanism
                );
            }
            println!(
                "{:<8} {:>7.4} {:>12.0} {:>10.0} {:>10.0} {:>12} {:>7.4} {:>12} {:>8} {:>8.2}",
                r.mechanism,
                r.throughput,
                r.mean_latency_ns,
                r.p95_ns,
                r.p99_ns,
                r.victim_recovery_ns
                    .map_or("never".into(), |v| format!("{v:.0}")),
                r.jain,
                r.fct_p99_ns.map_or("-".into(), |v| format!("{v:.0}")),
                r.fct_avg_slowdown.map_or("-".into(), |v| format!("{v:.2}")),
                r.wall_s,
            );
            per_mech.push(r);
        }
        println!();
        results.push(PanelResult {
            config: spec.name.clone(),
            duration_ns: d,
            mechanisms: per_mech,
        });
    }

    let doc = Shootout {
        name: "cc_shootout",
        smoke,
        seed,
        results,
    };
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out_path, json).expect("write BENCH_cc.json");
    println!("wrote {out_path}");
}
