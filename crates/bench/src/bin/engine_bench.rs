//! Engine-throughput benchmark for the active-set scheduler and the
//! quiet-cycle fast-forward (DESIGN.md §6).
//!
//! Runs two workloads — one idle-heavy (flows finish early, leaving a
//! long quiet tail) and one congestion-heavy (config #1 / case #1 with
//! a sustained hotspot) — each with the optimizations on (default) and
//! off (`force_slow_path`), and reports simulated cycles per wall-clock
//! second plus the speedup ratio. Results land in `BENCH_engine.json`
//! (override the path with `--out <file>`).
//!
//! Run with `cargo run --release --bin engine_bench`.

use ccfit::experiment::{config1_case1_scaled, ExperimentSpec};
use ccfit::{Mechanism, SimConfig};
use ccfit_engine::ids::NodeId;
use ccfit_topology::{config1_topology, RoutingTable};
use ccfit_traffic::{FlowSpec, TrafficPattern};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ScenarioResult {
    scenario: String,
    simulated_cycles: u64,
    slow_wall_s: f64,
    fast_wall_s: f64,
    slow_cycles_per_sec: f64,
    fast_cycles_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct BenchDoc {
    bench: String,
    mechanism: String,
    reps_best_of: usize,
    scenarios: Vec<ScenarioResult>,
}

/// Timing runs per configuration; the best (lowest wall time) is kept,
/// which filters scheduler noise on a shared machine.
const REPS: usize = 5;

/// Config #1 with the case-1 hotspot contributors active only for the
/// first 5 % of the run: the remaining 95 % is a drained, quiet network
/// where the fast-forward should dominate.
fn idle_heavy() -> ExperimentSpec {
    let topology = config1_topology();
    let burst_end = 0.2e6; // flows stop at 0.2 ms...
    let flows = vec![
        FlowSpec::hotspot(0, NodeId(0), NodeId(3), 0.0, Some(burst_end)),
        FlowSpec::hotspot(1, NodeId(1), NodeId(4), 0.0, Some(burst_end)),
        FlowSpec::hotspot(2, NodeId(2), NodeId(4), 0.0, Some(burst_end)),
    ];
    ExperimentSpec {
        name: "idle-heavy".into(),
        routing: RoutingTable::shortest_path(&topology),
        topology,
        pattern: TrafficPattern::new("burst-then-idle", flows),
        duration_ns: 4e6, // ...of a 4 ms run.
        crossbar_bw_flits_per_cycle: 2,
    }
}

/// Config #1 / case #1 at quarter scale: the hotspot persists and the
/// network stays busy, so the win must come from the active-set skips
/// and the allocation-free hot paths, not the fast-forward.
fn congestion_heavy() -> ExperimentSpec {
    let mut spec = config1_case1_scaled(0.25);
    spec.name = "congestion-heavy".into();
    spec
}

fn cfg(force_slow_path: bool) -> SimConfig {
    SimConfig {
        force_slow_path,
        ..SimConfig::default()
    }
}

/// Best-of-`REPS` wall time and the (identical every run) cycle count.
fn time_run(spec: &ExperimentSpec, force_slow_path: bool) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let report = spec.run_with(Mechanism::ccfit(), 1, cfg(force_slow_path));
        let wall = t0.elapsed().as_secs_f64();
        best = best.min(wall);
        cycles = report.simulated_cycles;
    }
    (best, cycles)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_engine.json".into());

    let mut entries = Vec::new();
    for spec in [idle_heavy(), congestion_heavy()] {
        let (slow_s, slow_cycles) = time_run(&spec, true);
        let (fast_s, fast_cycles) = time_run(&spec, false);
        assert_eq!(
            slow_cycles, fast_cycles,
            "{}: fast and slow paths simulated different cycle counts",
            spec.name
        );
        let slow_cps = slow_cycles as f64 / slow_s.max(1e-12);
        let fast_cps = fast_cycles as f64 / fast_s.max(1e-12);
        let speedup = fast_cps / slow_cps;
        println!(
            "{:<17} {:>9} cycles | slow {:>12.0} cyc/s | fast {:>12.0} cyc/s | {:.2}x",
            spec.name, slow_cycles, slow_cps, fast_cps, speedup
        );
        entries.push(ScenarioResult {
            scenario: spec.name.clone(),
            simulated_cycles: slow_cycles,
            slow_wall_s: slow_s,
            fast_wall_s: fast_s,
            slow_cycles_per_sec: slow_cps,
            fast_cycles_per_sec: fast_cps,
            speedup,
        });
    }
    let doc = BenchDoc {
        bench: "engine".into(),
        mechanism: "CCFIT".into(),
        reps_best_of: REPS,
        scenarios: entries,
    };
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).unwrap())
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
