//! Engine-throughput benchmark for the active-set scheduler, the
//! quiet-cycle fast-forward (DESIGN.md §6), and the sharded parallel
//! tick engine (DESIGN.md §9).
//!
//! Runs two workloads — one idle-heavy (flows finish early, leaving a
//! long quiet tail) and one congestion-heavy (config #1 / case #1 with
//! a sustained hotspot) — each with the optimizations on (default) and
//! off (`force_slow_path`), and reports simulated cycles per wall-clock
//! second plus the speedup ratio. The congestion-heavy scenario is
//! additionally timed on the parallel engine (`--threads N`, default 4);
//! `host_cpus` is recorded so a reader can tell whether the parallel
//! numbers were taken on a machine that can actually run the shards
//! concurrently. Results land in `BENCH_engine.json` (override the path
//! with `--out <file>`).
//!
//! With `--trace`, the congestion-heavy scenario is additionally timed
//! with the full observability layer on (every event class, per-packet
//! tracing, per-port telemetry; DESIGN.md §10) and the run asserts that
//! recording never perturbs the simulation — the traced report's
//! aggregates must equal the untraced ones exactly.
//!
//! Run with `cargo run --release --bin engine_bench`.

use ccfit::experiment::{config1_case1_scaled, ExperimentSpec};
use ccfit::{EventClass, EventConfig, Mechanism, SimConfig};
use ccfit_engine::ids::NodeId;
use ccfit_topology::{config1_topology, RoutingTable};
use ccfit_traffic::{FlowSpec, TrafficPattern};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ScenarioResult {
    scenario: String,
    simulated_cycles: u64,
    slow_wall_s: f64,
    fast_wall_s: f64,
    slow_cycles_per_sec: f64,
    fast_cycles_per_sec: f64,
    speedup: f64,
    /// Worker threads used for the parallel engine run (null when the
    /// scenario was not benchmarked in parallel).
    threads: Option<usize>,
    parallel_wall_s: Option<f64>,
    parallel_cycles_per_sec: Option<f64>,
    /// Parallel throughput over fast-serial throughput.
    parallel_speedup: Option<f64>,
    /// Wall time with the full observability layer on (`--trace` only).
    traced_wall_s: Option<f64>,
    traced_cycles_per_sec: Option<f64>,
    /// Percent throughput lost to full tracing vs the fast serial run.
    tracing_overhead_pct: Option<f64>,
}

#[derive(Serialize)]
struct BenchDoc {
    bench: String,
    mechanism: String,
    reps_best_of: usize,
    /// Logical CPUs on the benchmarking host. Parallel speedup is only
    /// meaningful when this comfortably exceeds `threads`.
    host_cpus: usize,
    scenarios: Vec<ScenarioResult>,
}

/// Timing runs per configuration; the best (lowest wall time) is kept,
/// which filters scheduler noise on a shared machine.
const REPS: usize = 5;

/// Config #1 with the case-1 hotspot contributors active only for the
/// first 5 % of the run: the remaining 95 % is a drained, quiet network
/// where the fast-forward should dominate.
fn idle_heavy() -> ExperimentSpec {
    let topology = config1_topology();
    let burst_end = 0.2e6; // flows stop at 0.2 ms...
    let flows = vec![
        FlowSpec::hotspot(0, NodeId(0), NodeId(3), 0.0, Some(burst_end)),
        FlowSpec::hotspot(1, NodeId(1), NodeId(4), 0.0, Some(burst_end)),
        FlowSpec::hotspot(2, NodeId(2), NodeId(4), 0.0, Some(burst_end)),
    ];
    ExperimentSpec {
        name: "idle-heavy".into(),
        routing: RoutingTable::shortest_path(&topology),
        topology,
        pattern: TrafficPattern::new("burst-then-idle", flows),
        duration_ns: 4e6, // ...of a 4 ms run.
        crossbar_bw_flits_per_cycle: 2,
    }
}

/// Config #1 / case #1 at quarter scale: the hotspot persists and the
/// network stays busy, so the win must come from the active-set skips
/// and the allocation-free hot paths, not the fast-forward.
fn congestion_heavy() -> ExperimentSpec {
    let mut spec = config1_case1_scaled(0.25);
    spec.name = "congestion-heavy".into();
    spec
}

fn cfg(force_slow_path: bool, threads: usize) -> SimConfig {
    let mut c = SimConfig {
        force_slow_path,
        ..SimConfig::default()
    };
    c.parallel.threads = threads;
    c
}

/// Best-of-`REPS` wall time and the (identical every run) cycle count.
fn time_run(spec: &ExperimentSpec, force_slow_path: bool, threads: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let report = spec.run_with(Mechanism::ccfit(), 1, cfg(force_slow_path, threads));
        let wall = t0.elapsed().as_secs_f64();
        best = best.min(wall);
        cycles = report.simulated_cycles;
    }
    (best, cycles)
}

/// Best-of-`REPS` wall time with every observability channel on, plus a
/// correctness gate: tracing may observe the run but never change it.
fn time_traced(spec: &ExperimentSpec) -> f64 {
    let mut c = cfg(false, 1);
    c.events = Some(EventConfig {
        classes: EventClass::ALL,
        sample_every: 1,
        cap: 1 << 22,
    });
    c.trace_sample_every = Some(1);
    c.port_telemetry = true;

    let untraced = spec.run_with(Mechanism::ccfit(), 1, cfg(false, 1));
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let report = spec.run_with(Mechanism::ccfit(), 1, c.clone());
        best = best.min(t0.elapsed().as_secs_f64());
        let log = report.events.as_ref().expect("events enabled");
        assert_eq!(log.dropped_cap, 0, "{}: event cap truncated", spec.name);
        assert!(!log.events.is_empty(), "{}: no events recorded", spec.name);
        assert_eq!(
            report.counters, untraced.counters,
            "{}: tracing perturbed the counters",
            spec.name
        );
        assert_eq!(report.delivered_packets, untraced.delivered_packets);
        assert_eq!(report.delivered_bytes, untraced.delivered_bytes);
        assert_eq!(
            report.total_bytes, untraced.total_bytes,
            "{}: tracing perturbed the throughput series",
            spec.name
        );
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_engine.json".into());
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let trace = args.iter().any(|a| a == "--trace");
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut entries = Vec::new();
    for (spec, bench_parallel) in [(idle_heavy(), false), (congestion_heavy(), true)] {
        let (slow_s, slow_cycles) = time_run(&spec, true, 1);
        let (fast_s, fast_cycles) = time_run(&spec, false, 1);
        assert_eq!(
            slow_cycles, fast_cycles,
            "{}: fast and slow paths simulated different cycle counts",
            spec.name
        );
        let slow_cps = slow_cycles as f64 / slow_s.max(1e-12);
        let fast_cps = fast_cycles as f64 / fast_s.max(1e-12);
        let speedup = fast_cps / slow_cps;
        println!(
            "{:<17} {:>9} cycles | slow {:>12.0} cyc/s | fast {:>12.0} cyc/s | {:.2}x",
            spec.name, slow_cycles, slow_cps, fast_cps, speedup
        );
        // The parallel engine only pays off where per-cycle work
        // dominates; the idle-heavy scenario is a fast-forward benchmark
        // and stays serial.
        let (par_s, par_cycles) = if bench_parallel {
            let (s, c) = time_run(&spec, false, threads);
            assert_eq!(
                c, fast_cycles,
                "{}: parallel engine simulated a different cycle count",
                spec.name
            );
            (Some(s), Some(c))
        } else {
            (None, None)
        };
        let par_cps = par_s.zip(par_cycles).map(|(s, c)| c as f64 / s.max(1e-12));
        if let Some(cps) = par_cps {
            println!(
                "{:<17} {:>9} cycles | par({}) {:>10.0} cyc/s | {:.2}x vs fast ({} host cpus)",
                spec.name,
                fast_cycles,
                threads,
                cps,
                cps / fast_cps,
                host_cpus
            );
        }
        // The tracing-overhead leg rides the congestion-heavy scenario:
        // a busy network is where event emission is most frequent.
        let traced_s = (trace && bench_parallel).then(|| time_traced(&spec));
        let traced_cps = traced_s.map(|s| fast_cycles as f64 / s.max(1e-12));
        if let (Some(s), Some(cps)) = (traced_s, traced_cps) {
            println!(
                "{:<17} {:>9} cycles | traced {:>10.0} cyc/s | {:.1}% overhead vs fast",
                spec.name,
                fast_cycles,
                cps,
                (1.0 - s.min(fast_s) / s.max(1e-12)) * 100.0
            );
        }
        entries.push(ScenarioResult {
            scenario: spec.name.clone(),
            simulated_cycles: slow_cycles,
            slow_wall_s: slow_s,
            fast_wall_s: fast_s,
            slow_cycles_per_sec: slow_cps,
            fast_cycles_per_sec: fast_cps,
            speedup,
            threads: par_s.map(|_| threads),
            parallel_wall_s: par_s,
            parallel_cycles_per_sec: par_cps,
            parallel_speedup: par_cps.map(|cps| cps / fast_cps),
            traced_wall_s: traced_s,
            traced_cycles_per_sec: traced_cps,
            tracing_overhead_pct: traced_s.map(|s| (1.0 - fast_s.min(s) / s.max(1e-12)) * 100.0),
        });
    }
    let doc = BenchDoc {
        bench: "engine".into(),
        mechanism: "CCFIT".into(),
        reps_best_of: REPS,
        host_cpus,
        scenarios: entries,
    };
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).unwrap())
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
