//! Engine-throughput benchmark for the active-set scheduler, the
//! quiet-cycle fast-forward (DESIGN.md §6), and the sharded parallel
//! tick engine (DESIGN.md §9).
//!
//! Runs two workloads — one idle-heavy (flows finish early, leaving a
//! long quiet tail) and one congestion-heavy (config #1 / case #1 with
//! a sustained hotspot) — each with the optimizations on (default) and
//! off (`force_slow_path`), and reports simulated cycles per wall-clock
//! second plus the speedup ratio. The congestion-heavy scenario is
//! additionally timed on the parallel engine (`--threads N`, default 4);
//! `host_cpus` is recorded so a reader can tell whether the parallel
//! numbers were taken on a machine that can actually run the shards
//! concurrently, and each parallel leg records the engine's
//! auto-fallback verdict (`effective_threads` / `fallback`, DESIGN.md
//! §9) so a degraded leg cannot masquerade as a parallel measurement.
//! Results land in `BENCH_engine.json` (override the path with
//! `--out <file>`).
//!
//! A third scenario, `scale-16ary3`, proves the engine at scale: a
//! 16-ary 3-tree (4096 nodes, 768 × 32-port switches) under light
//! uniform traffic, timed serial and parallel, recording cycles/sec,
//! peak RSS and bytes-per-node. On a multi-core host the parallel leg
//! must not lose to serial. `--smoke` shrinks it to a few thousand
//! cycles for CI.
//!
//! With `--trace`, the congestion-heavy scenario is additionally timed
//! with the full observability layer on (every event class, per-packet
//! tracing, per-port telemetry; DESIGN.md §10) and the run asserts that
//! recording never perturbs the simulation — the traced report's
//! aggregates must equal the untraced ones exactly.
//!
//! Run with `cargo run --release --bin engine_bench`.

use ccfit::experiment::{config1_case1_scaled, ExperimentSpec};
use ccfit::{
    ActiveSetStats, EventClass, EventConfig, Mechanism, PhaseProfile, SimConfig, PHASE_NAMES,
};
use ccfit_bench::harness::mechanisms_from_args;
use ccfit_engine::ids::NodeId;
use ccfit_topology::{config1_topology, KAryNTree, LinkParams, RoutingTable};
use ccfit_traffic::{uniform_all, FlowSpec, TrafficPattern};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ScenarioResult {
    scenario: String,
    simulated_cycles: u64,
    /// Serial wall time with `force_slow_path` (single rep for the
    /// scale scenario, which is expensive de-optimized).
    #[serde(skip_serializing_if = "Option::is_none")]
    slow_wall_s: Option<f64>,
    fast_wall_s: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    slow_cycles_per_sec: Option<f64>,
    fast_cycles_per_sec: f64,
    /// Fast-serial throughput over slow-serial throughput.
    #[serde(skip_serializing_if = "Option::is_none")]
    speedup: Option<f64>,
    /// Worker threads used for the parallel engine run (null when the
    /// scenario was not benchmarked in parallel).
    #[serde(skip_serializing_if = "Option::is_none")]
    threads: Option<usize>,
    /// Threads the engine actually used after the auto-fallback
    /// decision (DESIGN.md §9) — 1 means the parallel leg measured the
    /// serial engine.
    #[serde(skip_serializing_if = "Option::is_none")]
    effective_threads: Option<usize>,
    /// Why the parallel request was degraded (`single-cpu`,
    /// `oversubscribed`, `tiny-shards`), or null for an honest run.
    #[serde(skip_serializing_if = "Option::is_none")]
    fallback: Option<String>,
    #[serde(skip_serializing_if = "Option::is_none")]
    parallel_wall_s: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    parallel_cycles_per_sec: Option<f64>,
    /// Parallel throughput over fast-serial throughput.
    #[serde(skip_serializing_if = "Option::is_none")]
    parallel_speedup: Option<f64>,
    /// Peak resident set (`VmHWM`) after the scenario finished, bytes
    /// (scale scenario only).
    #[serde(skip_serializing_if = "Option::is_none")]
    peak_rss_bytes: Option<u64>,
    /// Peak RSS divided by the node count — the engine's memory
    /// footprint per simulated node (scale scenario only).
    #[serde(skip_serializing_if = "Option::is_none")]
    mem_per_node_bytes: Option<u64>,
    /// Wall time with the full observability layer on (`--trace` only).
    #[serde(skip_serializing_if = "Option::is_none")]
    traced_wall_s: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    traced_cycles_per_sec: Option<f64>,
    /// Percent throughput lost to full tracing vs the fast serial run.
    #[serde(skip_serializing_if = "Option::is_none")]
    tracing_overhead_pct: Option<f64>,
    /// Mean switches on the sparse scheduler's per-cycle work-list
    /// during the fast serial run (null when the sparse path was off).
    #[serde(skip_serializing_if = "Option::is_none")]
    active_avg_switches: Option<f64>,
    /// Peak of the same work-list.
    #[serde(skip_serializing_if = "Option::is_none")]
    active_max_switches: Option<u32>,
    /// Mean adapters on the per-cycle work-list.
    #[serde(skip_serializing_if = "Option::is_none")]
    active_avg_adapters: Option<f64>,
    /// Peak adapters on the per-cycle work-list.
    #[serde(skip_serializing_if = "Option::is_none")]
    active_max_adapters: Option<u32>,
    /// Mean links on the per-cycle work-list.
    #[serde(skip_serializing_if = "Option::is_none")]
    active_avg_links: Option<f64>,
    /// Peak links on the per-cycle work-list.
    #[serde(skip_serializing_if = "Option::is_none")]
    active_max_links: Option<u32>,
}

/// The occupancy fields for a `ScenarioResult`, from the fast serial
/// run's [`ActiveSetStats`] (all-null for dense/slow runs, which record
/// no ticks).
fn occupancy(stats: &ActiveSetStats) -> ActiveSetFields {
    if stats.ticks == 0 {
        return (None, None, None, None, None, None);
    }
    (
        Some(stats.avg_switches()),
        Some(stats.sw_max),
        Some(stats.avg_adapters()),
        Some(stats.node_max),
        Some(stats.avg_links()),
        Some(stats.link_max),
    )
}

type ActiveSetFields = (
    Option<f64>,
    Option<u32>,
    Option<f64>,
    Option<u32>,
    Option<f64>,
    Option<u32>,
);

#[derive(Serialize)]
struct BenchDoc {
    bench: String,
    mechanism: String,
    reps_best_of: usize,
    /// Logical CPUs on the benchmarking host. Parallel speedup is only
    /// meaningful when this comfortably exceeds `threads`.
    host_cpus: usize,
    scenarios: Vec<ScenarioResult>,
}

/// Timing runs per configuration; the best (lowest wall time) is kept,
/// which filters scheduler noise on a shared machine.
const REPS: usize = 5;

/// Config #1 with the case-1 hotspot contributors active only for the
/// first 5 % of the run: the remaining 95 % is a drained, quiet network
/// where the fast-forward should dominate.
fn idle_heavy() -> ExperimentSpec {
    let topology = config1_topology();
    let burst_end = 0.2e6; // flows stop at 0.2 ms...
    let flows = vec![
        FlowSpec::hotspot(0, NodeId(0), NodeId(3), 0.0, Some(burst_end)),
        FlowSpec::hotspot(1, NodeId(1), NodeId(4), 0.0, Some(burst_end)),
        FlowSpec::hotspot(2, NodeId(2), NodeId(4), 0.0, Some(burst_end)),
    ];
    ExperimentSpec {
        name: "idle-heavy".into(),
        routing: RoutingTable::shortest_path(&topology),
        topology,
        pattern: TrafficPattern::new("burst-then-idle", flows),
        duration_ns: 4e6, // ...of a 4 ms run.
        crossbar_bw_flits_per_cycle: 2,
    }
}

/// Config #1 / case #1 at quarter scale: the hotspot persists and the
/// network stays busy, so the win must come from the active-set skips
/// and the allocation-free hot paths, not the fast-forward.
fn congestion_heavy() -> ExperimentSpec {
    let mut spec = config1_case1_scaled(0.25);
    spec.name = "congestion-heavy".into();
    spec
}

fn cfg(force_slow_path: bool, threads: usize) -> SimConfig {
    let mut c = SimConfig {
        force_slow_path,
        ..SimConfig::default()
    };
    c.parallel.threads = threads;
    c
}

/// Best-of-`reps` wall time, the (identical every run) cycle count, and
/// the sparse scheduler's active-set occupancy (zero-ticks for dense
/// runs). Assembly is inside the timed region, matching what a caller
/// of `run_with` pays.
fn time_run_n(
    spec: &ExperimentSpec,
    mech: &Mechanism,
    force_slow_path: bool,
    threads: usize,
    reps: usize,
) -> (f64, u64, ActiveSetStats) {
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    let mut stats = ActiveSetStats::default();
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut sim = spec.build_sim(mech.clone(), 1, cfg(force_slow_path, threads));
        sim.run_to_end();
        let wall = t0.elapsed().as_secs_f64();
        best = best.min(wall);
        stats = sim.active_set_stats();
        cycles = sim.finish().simulated_cycles;
    }
    (best, cycles, stats)
}

/// Best-of-`REPS` wall time and the (identical every run) cycle count.
fn time_run(
    spec: &ExperimentSpec,
    mech: &Mechanism,
    force_slow_path: bool,
    threads: usize,
) -> (f64, u64, ActiveSetStats) {
    time_run_n(spec, mech, force_slow_path, threads, REPS)
}

/// One serial run with the per-phase wall-time profiler on, printed as
/// a breakdown table (`--profile`).
fn profile_run(spec: &ExperimentSpec, mech: &Mechanism) {
    let mut prof = PhaseProfile::default();
    let mut sim = spec.build_sim(mech.clone(), 1, cfg(false, 1));
    while sim.now() < sim.end_cycle() {
        sim.tick_profiled(&mut prof);
    }
    let total: u64 = prof.nanos.iter().sum();
    println!(
        "{:<17} per-phase breakdown over {} ticks ({:.3}s in phases):",
        spec.name,
        prof.ticks,
        total as f64 / 1e9
    );
    for (name, ns) in PHASE_NAMES.iter().zip(prof.nanos) {
        println!(
            "  {:<16} {:>10.3} ms  {:>5.1}%",
            name,
            ns as f64 / 1e6,
            ns as f64 / total.max(1) as f64 * 100.0
        );
    }
}

/// A `VmHWM:`/`VmRSS:`-style line from `/proc/self/status`, in bytes.
/// `None` off Linux or if the field is missing — the bench records
/// nulls rather than guessing.
fn proc_status_bytes(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(key))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The 4096-node scale scenario: a 16-ary 3-tree (768 switches of 32
/// ports) under light uniform traffic from every node — per-cycle work
/// two orders of magnitude above the paper configs, which is the regime
/// the sharded engine exists for. Duration is set by the caller.
fn scale_16ary3(duration_ns: f64) -> ExperimentSpec {
    let tree = KAryNTree::new(16, 3);
    let topology = tree.build(LinkParams::default());
    let routing = tree.det_routing();
    ExperimentSpec {
        name: "scale-16ary3".into(),
        pattern: uniform_all(topology.num_nodes(), 0.1),
        routing,
        topology,
        duration_ns,
        crossbar_bw_flits_per_cycle: 1,
    }
}

/// Best-of-`REPS` wall time with every observability channel on, plus a
/// correctness gate: tracing may observe the run but never change it.
fn time_traced(spec: &ExperimentSpec, mech: &Mechanism) -> f64 {
    let mut c = cfg(false, 1);
    c.events = Some(EventConfig {
        classes: EventClass::ALL,
        sample_every: 1,
        cap: 1 << 22,
    });
    c.trace_sample_every = Some(1);
    c.port_telemetry = true;

    let untraced = spec.run_with(mech.clone(), 1, cfg(false, 1));
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let report = spec.run_with(mech.clone(), 1, c.clone());
        best = best.min(t0.elapsed().as_secs_f64());
        let log = report.events.as_ref().expect("events enabled");
        assert_eq!(log.dropped_cap, 0, "{}: event cap truncated", spec.name);
        assert!(!log.events.is_empty(), "{}: no events recorded", spec.name);
        assert_eq!(
            report.counters, untraced.counters,
            "{}: tracing perturbed the counters",
            spec.name
        );
        assert_eq!(report.delivered_packets, untraced.delivered_packets);
        assert_eq!(report.delivered_bytes, untraced.delivered_bytes);
        assert_eq!(
            report.total_bytes, untraced.total_bytes,
            "{}: tracing perturbed the throughput series",
            spec.name
        );
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_engine.json".into());
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let trace = args.iter().any(|a| a == "--trace");
    let smoke = args.iter().any(|a| a == "--smoke");
    let profile = args.iter().any(|a| a == "--profile");
    // CI floor on the quiet-dominated scale scenario's fast-serial
    // throughput: the sparse scheduler must keep it above this.
    let min_quiet_cps: Option<f64> = args
        .iter()
        .position(|a| a == "--min-quiet-cps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    // `--mech <name>` benches a different registered mechanism; the
    // engine bench measures one engine at a time.
    let mechs = mechanisms_from_args(&args, vec![Mechanism::ccfit()]);
    if mechs.len() != 1 {
        eprintln!("engine_bench benches one mechanism at a time; got {mechs:?}");
        std::process::exit(2);
    }
    let mech = &mechs[0];
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut entries = Vec::new();
    for (spec, bench_parallel) in [(idle_heavy(), false), (congestion_heavy(), true)] {
        let (slow_s, slow_cycles, _) = time_run(&spec, mech, true, 1);
        let (fast_s, fast_cycles, act) = time_run(&spec, mech, false, 1);
        assert_eq!(
            slow_cycles, fast_cycles,
            "{}: fast and slow paths simulated different cycle counts",
            spec.name
        );
        let slow_cps = slow_cycles as f64 / slow_s.max(1e-12);
        let fast_cps = fast_cycles as f64 / fast_s.max(1e-12);
        let speedup = fast_cps / slow_cps;
        println!(
            "{:<17} {:>9} cycles | slow {:>12.0} cyc/s | fast {:>12.0} cyc/s | {:.2}x",
            spec.name, slow_cycles, slow_cps, fast_cps, speedup
        );
        if profile {
            profile_run(&spec, mech);
        }
        // The parallel engine only pays off where per-cycle work
        // dominates; the idle-heavy scenario is a fast-forward benchmark
        // and stays serial.
        let decision = bench_parallel.then(|| spec.engine_decision(mech, &cfg(false, threads)));
        let (par_s, par_cycles) = if bench_parallel {
            let (s, c, _) = time_run(&spec, mech, false, threads);
            assert_eq!(
                c, fast_cycles,
                "{}: parallel engine simulated a different cycle count",
                spec.name
            );
            (Some(s), Some(c))
        } else {
            (None, None)
        };
        let par_cps = par_s.zip(par_cycles).map(|(s, c)| c as f64 / s.max(1e-12));
        if let Some(cps) = par_cps {
            let d = decision.as_ref().unwrap();
            println!(
                "{:<17} {:>9} cycles | par({}) {:>10.0} cyc/s | {:.2}x vs fast ({} host cpus{})",
                spec.name,
                fast_cycles,
                threads,
                cps,
                cps / fast_cps,
                host_cpus,
                d.fallback
                    .map(|r| format!(", fell back: {}", r.as_str()))
                    .unwrap_or_default(),
            );
        }
        // The tracing-overhead leg rides the congestion-heavy scenario:
        // a busy network is where event emission is most frequent.
        let traced_s = (trace && bench_parallel).then(|| time_traced(&spec, mech));
        let traced_cps = traced_s.map(|s| fast_cycles as f64 / s.max(1e-12));
        if let (Some(s), Some(cps)) = (traced_s, traced_cps) {
            println!(
                "{:<17} {:>9} cycles | traced {:>10.0} cyc/s | {:.1}% overhead vs fast",
                spec.name,
                fast_cycles,
                cps,
                (1.0 - s.min(fast_s) / s.max(1e-12)) * 100.0
            );
        }
        entries.push(ScenarioResult {
            scenario: spec.name.clone(),
            simulated_cycles: slow_cycles,
            slow_wall_s: Some(slow_s),
            fast_wall_s: fast_s,
            slow_cycles_per_sec: Some(slow_cps),
            fast_cycles_per_sec: fast_cps,
            speedup: Some(speedup),
            threads: par_s.map(|_| threads),
            effective_threads: decision.as_ref().map(|d| d.effective_threads),
            fallback: decision
                .as_ref()
                .and_then(|d| d.fallback.map(|r| r.as_str().to_string())),
            parallel_wall_s: par_s,
            parallel_cycles_per_sec: par_cps,
            parallel_speedup: par_cps.map(|cps| cps / fast_cps),
            peak_rss_bytes: None,
            mem_per_node_bytes: None,
            traced_wall_s: traced_s,
            traced_cycles_per_sec: traced_cps,
            tracing_overhead_pct: traced_s.map(|s| (1.0 - fast_s.min(s) / s.max(1e-12)) * 100.0),
            active_avg_switches: occupancy(&act).0,
            active_max_switches: occupancy(&act).1,
            active_avg_adapters: occupancy(&act).2,
            active_max_adapters: occupancy(&act).3,
            active_avg_links: occupancy(&act).4,
            active_max_links: occupancy(&act).5,
        });
    }

    // --- scale-16ary3: prove the engine at 4096 nodes -----------------
    // One rep in smoke mode (CI), two otherwise: each run touches a
    // network two orders of magnitude larger than the paper configs, so
    // reps are expensive and run-to-run noise is comparatively small.
    let (dur_ns, reps) = if smoke { (0.1e6, 1) } else { (0.5e6, 2) };
    let spec = scale_16ary3(dur_ns);
    let (serial_s, serial_cycles, act) = time_run_n(&spec, mech, false, 1, reps);
    let serial_cps = serial_cycles as f64 / serial_s.max(1e-12);
    // The de-optimized leg runs a much shorter slice of the same
    // scenario: `force_slow_path` at 4096 nodes is ~2 orders of
    // magnitude slower, and cycles/sec is a rate, so a few hundred
    // cycles anchor the speedup without a half-hour bench leg. One rep
    // for the same reason.
    let slow_spec = scale_16ary3(if smoke { 0.005e6 } else { 0.02e6 });
    let (slow_s, slow_cycles, _) = time_run_n(&slow_spec, mech, true, 1, 1);
    let slow_cps = slow_cycles as f64 / slow_s.max(1e-12);
    let speedup = serial_cps / slow_cps;
    println!(
        "{:<17} {:>9} cycles | slow {:>12.0} cyc/s | fast {:>12.0} cyc/s | {:.2}x",
        spec.name, slow_cycles, slow_cps, serial_cps, speedup
    );
    if profile {
        profile_run(&spec, mech);
    }
    let decision = spec.engine_decision(mech, &cfg(false, threads));
    let (par_s, par_cycles, _) = time_run_n(&spec, mech, false, threads, reps);
    assert_eq!(
        par_cycles, serial_cycles,
        "scale-16ary3: parallel engine simulated a different cycle count"
    );
    let par_cps = par_cycles as f64 / par_s.max(1e-12);
    let parallel_speedup = par_cps / serial_cps;
    let peak_rss = proc_status_bytes("VmHWM:");
    let mem_per_node = peak_rss.map(|b| b / spec.topology.num_nodes() as u64);
    println!(
        "{:<17} {:>9} cycles | serial {:>10.0} cyc/s | par({}) {:>10.0} cyc/s | {:.2}x{}",
        spec.name,
        serial_cycles,
        serial_cps,
        threads,
        par_cps,
        parallel_speedup,
        decision
            .fallback
            .map(|r| format!(" (fell back: {})", r.as_str()))
            .unwrap_or_default(),
    );
    if let (Some(rss), Some(per_node)) = (peak_rss, mem_per_node) {
        println!(
            "{:<17} peak RSS {:.1} MiB | {:.1} KiB per node",
            spec.name,
            rss as f64 / (1 << 20) as f64,
            per_node as f64 / 1024.0,
        );
    }
    // On a host that can actually run the shards concurrently the
    // parallel engine must not lose to serial (5 % noise allowance).
    // When the auto-fallback degraded the leg to serial the comparison
    // is serial-vs-serial and holds trivially — the recorded
    // `effective_threads`/`fallback` fields say so.
    if decision.effective_threads > 1 {
        assert!(
            parallel_speedup >= 0.95,
            "scale-16ary3: parallel engine lost to serial on a multi-core host \
             ({parallel_speedup:.2}x with {} effective threads)",
            decision.effective_threads,
        );
    }
    // CI floor (`--min-quiet-cps`): catch a sparse-scheduler regression
    // that re-couples per-cycle cost to network size.
    if let Some(floor) = min_quiet_cps {
        assert!(
            serial_cps >= floor,
            "scale-16ary3: fast serial throughput {serial_cps:.0} cyc/s fell below the \
             pinned floor {floor:.0} cyc/s"
        );
        println!(
            "{:<17} fast serial {:.0} cyc/s >= floor {:.0} cyc/s",
            spec.name, serial_cps, floor
        );
    }
    entries.push(ScenarioResult {
        scenario: spec.name.clone(),
        simulated_cycles: serial_cycles,
        slow_wall_s: Some(slow_s),
        fast_wall_s: serial_s,
        slow_cycles_per_sec: Some(slow_cps),
        fast_cycles_per_sec: serial_cps,
        speedup: Some(speedup),
        threads: Some(threads),
        effective_threads: Some(decision.effective_threads),
        fallback: decision.fallback.map(|r| r.as_str().to_string()),
        parallel_wall_s: Some(par_s),
        parallel_cycles_per_sec: Some(par_cps),
        parallel_speedup: Some(parallel_speedup),
        peak_rss_bytes: peak_rss,
        mem_per_node_bytes: mem_per_node,
        traced_wall_s: None,
        traced_cycles_per_sec: None,
        tracing_overhead_pct: None,
        active_avg_switches: occupancy(&act).0,
        active_max_switches: occupancy(&act).1,
        active_avg_adapters: occupancy(&act).2,
        active_max_adapters: occupancy(&act).3,
        active_avg_links: occupancy(&act).4,
        active_max_links: occupancy(&act).5,
    });
    let doc = BenchDoc {
        bench: "engine".into(),
        mechanism: mech.name().to_string(),
        reps_best_of: REPS,
        host_cpus,
        scenarios: entries,
    };
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).unwrap())
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
