//! **faultstorm** — resilience study on Config #3 (4-ary 3-tree, 64
//! nodes) under the Fig. 8 hotspot storm (75 % uniform sources + one
//! congestion tree during the burst window) with a dynamic fault on
//! top: a trunk cable fail-stops in the middle of the burst and is
//! repaired one burst-length later, forcing a live re-route each way.
//!
//! * `faultstorm` — the full 4 ms run (burst [1, 2] ms, failure at
//!   1.2 ms, repair at 2.2 ms)
//! * `faultstorm --smoke` — the same shape compressed 10× (CI-friendly)
//! * `--threads <n>` — run every simulation on the sharded parallel
//!   tick engine (DESIGN.md §9); output is byte-identical to serial
//! * `--csv <dir>` — archive every report as CSV + JSON
//! * `--mech <name>[,<name>...]` — narrow the mechanism set by registry
//!   display name
//!
//! Mechanisms: the paper's evaluated set ([`Mechanism::paper_set`]) by
//! default. Per mechanism the run reports the data packets lost to
//! the fault, injections refused while the victim subtree was cut off,
//! node-unreachable and stale-routing time, and the post-repair
//! recovery time derived from the delivered-throughput series.
//!
//! The fault schedule is part of the orchestrator's cache key, so a
//! repeated faultstorm reads its reports back from the result cache
//! while a changed schedule re-simulates (`--no-cache` to force).

use ccfit::experiment::ExperimentSpec;
use ccfit::{ConfigId, FaultPolicy, FaultSchedule, Mechanism};
use ccfit_bench::harness::{archive, csv_dir_from_args, mechanisms_from_args, run_specs, RunCtx};
use ccfit_bench::series_table;
use ccfit_engine::ids::{NodeId, PortId, SwitchId};
use ccfit_engine::units::UnitModel;
use ccfit_orchestrator::RunSpec;
use ccfit_topology::Endpoint;

/// The first trunk (switch-to-switch) cable of node 0's leaf switch —
/// an up-link that carries real traffic in every case-4 run.
fn victim_cable(spec: &ExperimentSpec) -> (SwitchId, PortId) {
    let leaf = spec.topology.node_attachment(NodeId(0)).0;
    for p in spec.topology.switch(leaf).connected() {
        if let Some((Endpoint::Switch(..), _)) = spec.topology.peer(leaf, p) {
            return (leaf, p);
        }
    }
    panic!("leaf switch has no up-link");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let ctx = RunCtx::from_args(&args);
    let csv = csv_dir_from_args(&args);
    let units = UnitModel::default();

    // Burst window is [1, 2] ms in the full run; the smoke run
    // compresses the whole schedule 10x.
    let (config, fail_ns, repair_ns, bin_ns) = if smoke {
        (
            ConfigId::Config3Case4 {
                hotspots: 1,
                duration_ms: 4.0,
                scale: 0.1,
            },
            120_000.0,
            220_000.0,
            10_000.0,
        )
    } else {
        (
            ConfigId::config3_case4(1),
            1_200_000.0,
            2_200_000.0,
            100_000.0,
        )
    };
    let spec = config.resolve();
    let (s, p) = victim_cable(&spec);
    let mut schedule = FaultSchedule::new();
    schedule
        .link_down(units.ns_to_cycles(fail_ns), s, p, FaultPolicy::FailStop)
        .link_up(units.ns_to_cycles(repair_ns), s, p);

    let mechanisms = mechanisms_from_args(&args, Mechanism::paper_set());

    println!(
        "=== faultstorm: {} | cable {s}:{p} fail-stop @ {:.2} ms, repaired @ {:.2} ms{} ===",
        spec.name,
        fail_ns / 1e6,
        repair_ns / 1e6,
        if smoke { " (smoke)" } else { "" },
    );
    if ctx.engine.threads > 1 {
        println!(
            "(parallel tick engine, {} threads per simulation)",
            ctx.engine.threads
        );
    }

    let specs: Vec<RunSpec> = mechanisms
        .iter()
        .map(|m| {
            RunSpec::new(config.clone(), m.clone(), 0xFA_017, bin_ns).with_faults(schedule.clone())
        })
        .collect();
    let runs = run_specs(&specs, &ctx);

    print!("{}", series_table(&runs));
    println!("-- fault damage & availability --");
    for r in &runs {
        let f = r
            .report
            .faults
            .as_ref()
            .expect("fault schedule was installed");
        let recovery = r
            .report
            .fault_recovery_ns()
            .map(|ns| format!("{:.0} ns", ns))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "{:>7}: lost={} (wire={} purged={}) refused={} ctrl_lost={} \
             unreachable={:.0} ns stale={:.0} ns reroutes={} recovery={}",
            r.mechanism,
            f.packets_lost(),
            f.packets_lost_wire,
            f.packets_purged,
            f.packets_refused,
            f.ctrl_lost,
            f.node_unreachable_ns,
            f.stale_route_ns,
            f.reroutes,
            recovery,
        );
    }
    if let Some(dir) = &csv {
        archive(
            dir,
            if smoke {
                "faultstorm-smoke"
            } else {
                "faultstorm"
            },
            &runs,
        )
        .expect("archive");
        println!("archived to {dir}/");
    }
}
