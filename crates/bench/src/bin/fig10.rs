//! Reproduce **Fig. 10**: per-flow bandwidth versus time for Config #2,
//! Case #2 (the 2-ary 3-tree with five flows converging on node 7).
//!
//! Panels: (a) 1Q, (b) ITh, (c) FBICM, (d) CCFIT. Expected shape: 1Q
//! shows HoL-blocking plus the parking lot (the sole user of the last
//! merge input gets a double share); ITh improves both; FBICM has the
//! best raw throughput but dominant unfairness; CCFIT combines the best
//! throughput with the highest fairness (the paper's Fig. 10d claim).

use ccfit::experiment::paper_mechanisms;
use ccfit::ConfigId;
use ccfit_bench::chart::flow_table;
use ccfit_bench::harness::{archive, csv_dir_from_args, run_all, RunCtx};
use ccfit_engine::ids::FlowId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = csv_dir_from_args(&args);
    let ctx = RunCtx::from_args(&args);
    let config = ConfigId::config2_case2();
    let flows = [FlowId(0), FlowId(1), FlowId(2), FlowId(3), FlowId(4)];

    let runs = run_all(&config, &paper_mechanisms(), 0xF10, 250_000.0, &ctx);
    for r in &runs {
        print!("{}", flow_table(r, &flows));
        let jain = r.report.jain_over(&flows, 6.5e6, 10e6);
        let total: f64 = flows
            .iter()
            .map(|&f| r.report.flow_mean_bandwidth_gbps(f, 6.5e6, 10e6))
            .sum();
        println!(
            "{}: hot-link total = {total:.2} GB/s, Jain index = {jain:.3}  (window [6.5, 10] ms)\n",
            r.mechanism
        );
    }
    if let Some(dir) = &csv {
        archive(dir, "fig10", &runs).expect("archive");
        println!("archived to {dir}/");
    }
}
