//! Reproduce **Fig. 7**: overall network throughput versus time for
//! Configs #1 and #2 under the staggered hotspot cases.
//!
//! * `fig7 a` — Config #1, Case #1 (Fig. 7a)
//! * `fig7 b` — Config #2, Case #2 (Fig. 7b)
//! * `fig7 c` — Config #2, Case #3 (Fig. 7c)
//! * `fig7` / `fig7 all` — all three
//!
//! Mechanisms: 1Q, ITh, FBICM, CCFIT (the paper's Fig. 7 set). Expected
//! shape: the three CC techniques track each other closely while 1Q
//! collapses as soon as congestion appears; ITh shows a transient dip in
//! 7a when the left switch detects congestion, and lags in 7c.
//!
//! Runs read through the orchestrator's result cache (`--no-cache`,
//! `--cache-dir <dir>` to control it), so re-printing a figure whose
//! runs are cached is instant.

use ccfit::experiment::paper_mechanisms;
use ccfit::ConfigId;
use ccfit_bench::harness::{archive, csv_dir_from_args, run_all, RunCtx};
use ccfit_bench::{chart, series_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let csv = csv_dir_from_args(&args);
    let ctx = RunCtx::from_args(&args);

    let panels: Vec<(&str, ConfigId)> = match which {
        "a" => vec![("fig7a", ConfigId::config1_case1())],
        "b" => vec![("fig7b", ConfigId::config2_case2())],
        "c" => vec![("fig7c", ConfigId::config2_case3())],
        _ => vec![
            ("fig7a", ConfigId::config1_case1()),
            ("fig7b", ConfigId::config2_case2()),
            ("fig7c", ConfigId::config2_case3()),
        ],
    };

    for (name, config) in panels {
        println!(
            "=== {name}: {} (normalized network throughput vs time) ===",
            config.resolve().name
        );
        let runs = run_all(&config, &paper_mechanisms(), 0xF17, 250_000.0, &ctx);
        print!("{}", series_table(&runs));
        println!("-- steady congested window [6.5, 10] ms --");
        for r in &runs {
            println!("{}", chart::summary_line(r, 6.5e6, 10e6));
        }
        if let Some(dir) = &csv {
            archive(dir, name, &runs).expect("archive");
            println!("archived to {dir}/");
        }
        println!();
    }
}
