//! Reproduce **Fig. 8**: network throughput versus time on the 4-ary
//! 3-tree (Config #3) under a hotspot storm: 75 % of sources send uniform
//! traffic for the whole run while 25 % burst into H congestion trees
//! during [1 ms, 2 ms].
//!
//! * `fig8 1` — one congestion tree (Fig. 8a)
//! * `fig8 4` — four trees: FBICM runs out of CFQs (Fig. 8b)
//! * `fig8 6` — six trees (Fig. 8c)
//! * `fig8` / `fig8 all` — all three
//!
//! Mechanisms: 1Q, ITh, FBICM, CCFIT, VOQnet (the paper's Fig. 8 set).
//! Expected shape: VOQnet is the ceiling; 1Q collapses during the burst
//! and recovers slowly; FBICM dips once the trees exceed its 2 CFQs per
//! port; CCFIT stays near the ceiling because throttling releases the
//! isolation resources before they run out.
//!
//! Runs read through the orchestrator's result cache (`--no-cache`,
//! `--cache-dir <dir>` to control it).

use ccfit::experiment::paper_mechanisms;
use ccfit::{ConfigId, Mechanism};
use ccfit_bench::harness::{archive, csv_dir_from_args, run_all, RunCtx};
use ccfit_bench::{chart, series_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let csv = csv_dir_from_args(&args);
    let ctx = RunCtx::from_args(&args);
    let mut mechanisms = paper_mechanisms();
    mechanisms.push(Mechanism::voqnet());

    let hs: Vec<usize> = match which {
        "1" => vec![1],
        "4" => vec![4],
        "6" => vec![6],
        _ => vec![1, 4, 6],
    };
    for h in hs {
        let config = ConfigId::config3_case4(h);
        println!("=== fig8 (H={h}): {} ===", config.resolve().name);
        let runs = run_all(&config, &mechanisms, 0xF18, 100_000.0, &ctx);
        print!("{}", series_table(&runs));
        println!("-- burst window [1, 2] ms --");
        for r in &runs {
            println!("{}", chart::summary_line(r, 1.1e6, 2.0e6));
        }
        println!("-- recovery window [2, 4] ms --");
        for r in &runs {
            println!("{}", chart::summary_line(r, 2.1e6, 4.0e6));
        }
        println!("-- whole-run latency --");
        for r in &runs {
            println!("{}", chart::latency_line(r));
        }
        for r in &runs {
            println!(
                "{:>7}: cfq_exhausted={} cfq_allocated={} fecn_marked={}",
                r.mechanism,
                r.report.counters.get("cfq_exhausted").copied().unwrap_or(0),
                r.report.counters.get("cfq_allocated").copied().unwrap_or(0),
                r.report.counters.get("fecn_marked").copied().unwrap_or(0),
            );
        }
        if let Some(dir) = &csv {
            archive(dir, &format!("fig8-h{h}"), &runs).expect("archive");
            println!("archived to {dir}/");
        }
        println!();
    }
}
