//! Reproduce **Fig. 9**: per-flow bandwidth versus time for Config #1,
//! Case #1 — the fairness study of §IV-C.
//!
//! Panels (as in the paper): (a) 1Q, (b) ITh, (c) FBICM; CCFIT is added
//! as a fourth panel for completeness (the paper discusses it via
//! Fig. 10). Expected shape:
//!
//! * **1Q** — the victim F0 collapses (HoL-blocking) *and* the parking
//!   lot appears: F1/F2 get half the share of F5/F6 (1/6 vs 1/3 of the
//!   hot link).
//! * **ITh** — victim recovers, contributors equalise (throttling solves
//!   the parking lot), at the price of reaction time and oscillation.
//! * **FBICM** — the victim runs at full rate immediately, but the
//!   parking lot persists among contributors.
//! * **CCFIT** — victim protected *and* contributors fair.

use ccfit::experiment::paper_mechanisms;
use ccfit::ConfigId;
use ccfit_bench::chart::flow_table;
use ccfit_bench::harness::{archive, csv_dir_from_args, run_all, RunCtx};
use ccfit_engine::ids::FlowId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = csv_dir_from_args(&args);
    let ctx = RunCtx::from_args(&args);
    let config = ConfigId::config1_case1();
    let flows = [FlowId(0), FlowId(1), FlowId(2), FlowId(5), FlowId(6)];
    let contributors = [FlowId(1), FlowId(2), FlowId(5), FlowId(6)];

    let runs = run_all(&config, &paper_mechanisms(), 0xF19, 250_000.0, &ctx);
    for r in &runs {
        print!("{}", flow_table(r, &flows));
        let jain = r.report.jain_over(&contributors, 6.5e6, 10e6);
        let victim = r.report.flow_mean_bandwidth_gbps(FlowId(0), 6.5e6, 10e6);
        println!(
            "{}: victim F0 = {victim:.2} GB/s, contributor Jain index = {jain:.3}  (window [6.5, 10] ms)\n",
            r.mechanism
        );
    }
    if let Some(dir) = &csv {
        archive(dir, "fig9", &runs).expect("archive");
        println!("archived to {dir}/");
    }
}
