//! Offered-load sweeps: the classic accepted-throughput and latency
//! curves of interconnect evaluation, for every mechanism, under uniform
//! traffic. Not a paper figure, but the standard way to situate the
//! paper's congestion scenarios against each scheme's saturation point
//! (and the quickest way to see what HoL-blocking costs a network).
//!
//! ```sh
//! sweep [tree|mesh|config3] [--csv <dir>] [--mech <name>[,<name>...]]
//! ```
//!
//! * `tree`    — 2-ary 3-tree (Config #2), 8 nodes (default)
//! * `config3` — 4-ary 3-tree, 64 nodes (slow)
//! * `mesh`    — 4×4 2D mesh with XY dimension-order routing
//!
//! The default mechanism set is the full registry ([`Mechanism::all`]);
//! `--mech` narrows it by registry display name.

use ccfit::{Mechanism, SimBuilder, SimConfig};
use ccfit_bench::harness::{csv_dir_from_args, mechanisms_from_args};
use ccfit_metrics::SimReport;
use ccfit_topology::{KAryNTree, LinkParams, Mesh2D, RoutingTable, Topology};
use ccfit_traffic::uniform_all;
use std::sync::Mutex;

const LOADS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.85, 1.0];

fn run_point(topo: &Topology, routing: &RoutingTable, mech: &Mechanism, load: f64) -> SimReport {
    SimBuilder::new(topo.clone())
        .routing(routing.clone())
        .mechanism(mech.clone())
        .traffic(uniform_all(topo.num_nodes(), load))
        .duration_ns(600_000.0)
        .config(SimConfig {
            metrics_bin_ns: 100_000.0,
            ..SimConfig::default()
        })
        .seed(0x5EE9)
        .build()
        .run()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("tree");
    let csv = csv_dir_from_args(&args);

    let (topo, routing) = match which {
        "mesh" => {
            let m = Mesh2D::new(4, 4);
            (m.build(LinkParams::default()), m.xy_routing())
        }
        "config3" => {
            let t = KAryNTree::new(4, 3);
            (t.build(LinkParams::default()), t.det_routing())
        }
        _ => {
            let t = KAryNTree::new(2, 3);
            (t.build(LinkParams::default()), t.det_routing())
        }
    };
    println!(
        "uniform-load sweep on {} ({} nodes): accepted normalized throughput (upper)\n\
         and mean packet latency in ns (lower) per offered load\n",
        topo.name(),
        topo.num_nodes()
    );

    let mechs = mechanisms_from_args(&args, Mechanism::all());
    // One thread per (mechanism, load) point; points are independent
    // simulations.
    let results: Mutex<Vec<Vec<Option<SimReport>>>> =
        Mutex::new(vec![vec![None; LOADS.len()]; mechs.len()]);
    std::thread::scope(|scope| {
        for (mi, mech) in mechs.iter().enumerate() {
            for (li, &load) in LOADS.iter().enumerate() {
                let topo = &topo;
                let routing = &routing;
                let results = &results;
                scope.spawn(move || {
                    let r = run_point(topo, routing, mech, load);
                    results.lock().unwrap()[mi][li] = Some(r);
                });
            }
        }
    });
    let results = results.into_inner().unwrap();

    print!("{:<8}", "load");
    for m in &mechs {
        print!(" {:>8}", m.name());
    }
    println!();
    for (li, &load) in LOADS.iter().enumerate() {
        print!("{load:<8.2}");
        for row in &results {
            let r = row[li].as_ref().unwrap();
            print!(
                " {:>8.3}",
                r.mean_normalized_throughput(200_000.0, 600_000.0)
            );
        }
        println!();
    }
    println!();
    print!("{:<8}", "load");
    for m in &mechs {
        print!(" {:>8}", m.name());
    }
    println!("   (mean latency, ns)");
    for (li, &load) in LOADS.iter().enumerate() {
        print!("{load:<8.2}");
        for row in &results {
            let r = row[li].as_ref().unwrap();
            let lat = r.mean_latency_ns_per_bin();
            let tail: Vec<f64> = lat.iter().skip(2).copied().filter(|&v| v > 0.0).collect();
            let mean = if tail.is_empty() {
                0.0
            } else {
                tail.iter().sum::<f64>() / tail.len() as f64
            };
            print!(" {:>8.0}", mean);
        }
        println!();
    }

    if let Some(dir) = csv {
        std::fs::create_dir_all(&dir).expect("csv dir");
        let mut out = String::from("load,mechanism,throughput,latency_ns\n");
        for (mi, m) in mechs.iter().enumerate() {
            for (li, &load) in LOADS.iter().enumerate() {
                let r = results[mi][li].as_ref().unwrap();
                let lat = r.mean_latency_ns_per_bin();
                let tail: Vec<f64> = lat.iter().skip(2).copied().filter(|&v| v > 0.0).collect();
                let mean = if tail.is_empty() {
                    0.0
                } else {
                    tail.iter().sum::<f64>() / tail.len() as f64
                };
                out.push_str(&format!(
                    "{load},{},{:.4},{:.0}\n",
                    m.name(),
                    r.mean_normalized_throughput(200_000.0, 600_000.0),
                    mean
                ));
            }
        }
        let path = format!("{dir}/sweep-{which}.csv");
        std::fs::write(&path, out).expect("write csv");
        println!("\narchived to {path}");
    }
}
