//! Offered-load sweeps: the classic accepted-throughput and latency
//! curves of interconnect evaluation, for every mechanism, under uniform
//! traffic. Not a paper figure, but the standard way to situate the
//! paper's congestion scenarios against each scheme's saturation point
//! (and the quickest way to see what HoL-blocking costs a network).
//!
//! ```sh
//! sweep [tree|mesh|config3] [--csv <dir>] [--mech <name>[,<name>...]]
//! ```
//!
//! * `tree`    — 2-ary 3-tree (Config #2), 8 nodes (default)
//! * `config3` — 4-ary 3-tree, 64 nodes (slow)
//! * `mesh`    — 4×4 2D mesh with XY dimension-order routing
//!
//! The default mechanism set is the full registry ([`Mechanism::all`]);
//! `--mech` narrows it by registry display name. The (mechanism, load)
//! grid goes through the orchestrator, so points are cached and a repeat
//! sweep is read back instead of re-simulated (`--no-cache` to force).

use ccfit::{ConfigId, Mechanism};
use ccfit_bench::harness::{csv_dir_from_args, mechanisms_from_args, run_specs, RunCtx};
use ccfit_orchestrator::RunSpec;

const LOADS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.85, 1.0];
const DURATION_NS: f64 = 600_000.0;

fn config_for(which: &str, load: f64) -> ConfigId {
    match which {
        "mesh" => ConfigId::UniformMesh {
            width: 4,
            height: 4,
            load,
            duration_ns: DURATION_NS,
        },
        "config3" => ConfigId::UniformTree {
            ary: 4,
            levels: 3,
            load,
            duration_ns: DURATION_NS,
        },
        _ => ConfigId::UniformTree {
            ary: 2,
            levels: 3,
            load,
            duration_ns: DURATION_NS,
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("tree");
    let csv = csv_dir_from_args(&args);
    let ctx = RunCtx::from_args(&args);

    let sample = config_for(which, LOADS[0]).resolve();
    println!(
        "uniform-load sweep on {} ({} nodes): accepted normalized throughput (upper)\n\
         and mean packet latency in ns (lower) per offered load\n",
        sample.topology.name(),
        sample.topology.num_nodes()
    );

    let mechs = mechanisms_from_args(&args, Mechanism::all());
    // The grid is mechanism-major so results[mi * LOADS.len() + li] is
    // the (mechanism, load) point; the orchestrator parallelizes and
    // caches the independent simulations.
    let specs: Vec<RunSpec> = mechs
        .iter()
        .flat_map(|m| {
            LOADS
                .iter()
                .map(|&load| RunSpec::new(config_for(which, load), m.clone(), 0x5EE9, 100_000.0))
        })
        .collect();
    let runs = run_specs(&specs, &ctx);
    let point = |mi: usize, li: usize| &runs[mi * LOADS.len() + li].report;

    print!("{:<8}", "load");
    for m in &mechs {
        print!(" {:>8}", m.name());
    }
    println!();
    for (li, &load) in LOADS.iter().enumerate() {
        print!("{load:<8.2}");
        for mi in 0..mechs.len() {
            print!(
                " {:>8.3}",
                point(mi, li).mean_normalized_throughput(200_000.0, 600_000.0)
            );
        }
        println!();
    }
    println!();
    print!("{:<8}", "load");
    for m in &mechs {
        print!(" {:>8}", m.name());
    }
    println!("   (mean latency, ns)");
    for (li, &load) in LOADS.iter().enumerate() {
        print!("{load:<8.2}");
        for mi in 0..mechs.len() {
            let lat = point(mi, li).mean_latency_ns_per_bin();
            let tail: Vec<f64> = lat.iter().skip(2).copied().filter(|&v| v > 0.0).collect();
            let mean = if tail.is_empty() {
                0.0
            } else {
                tail.iter().sum::<f64>() / tail.len() as f64
            };
            print!(" {:>8.0}", mean);
        }
        println!();
    }

    if let Some(dir) = csv {
        std::fs::create_dir_all(&dir).expect("csv dir");
        let mut out = String::from("load,mechanism,throughput,latency_ns\n");
        for (mi, m) in mechs.iter().enumerate() {
            for (li, &load) in LOADS.iter().enumerate() {
                let r = point(mi, li);
                let lat = r.mean_latency_ns_per_bin();
                let tail: Vec<f64> = lat.iter().skip(2).copied().filter(|&v| v > 0.0).collect();
                let mean = if tail.is_empty() {
                    0.0
                } else {
                    tail.iter().sum::<f64>() / tail.len() as f64
                };
                out.push_str(&format!(
                    "{load},{},{:.4},{:.0}\n",
                    m.name(),
                    r.mean_normalized_throughput(200_000.0, 600_000.0),
                    mean
                ));
            }
        }
        let path = format!("{dir}/sweep-{which}.csv");
        std::fs::write(&path, out).expect("write csv");
        println!("\narchived to {path}");
    }
}
