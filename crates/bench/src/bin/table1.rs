//! Reproduce **Table I**: the evaluated network configurations, printed
//! from the actual topology/parameter objects used by the simulator (not
//! hard-coded prose), so any drift between the code and the paper's setup
//! shows up here.

use ccfit::experiment::{config1_case1, config2_case2, config3_case4};

fn main() {
    println!("Table I — evaluated interconnection network configurations\n");
    let specs = [
        config1_case1(10.0),
        config2_case2(10.0),
        config3_case4(4, 4.0),
    ];
    let row = |label: &str, vals: [String; 3]| {
        println!(
            "{label:<18} | {:<22} | {:<22} | {:<22}",
            vals[0], vals[1], vals[2]
        );
    };
    row(
        "",
        ["Config #1".into(), "Config #2".into(), "Config #3".into()],
    );
    row(
        "# Nodes",
        specs.clone().map(|s| s.topology.num_nodes().to_string()),
    );
    row(
        "Topology",
        specs.clone().map(|s| s.topology.name().to_string()),
    );
    row(
        "# Switches",
        specs.clone().map(|s| s.topology.num_switches().to_string()),
    );
    row(
        "Crossbar BW",
        specs
            .clone()
            .map(|s| format!("{} GB/s", s.crossbar_bw_flits_per_cycle as f64 * 2.5)),
    );
    row(
        "Switching",
        [0; 3].map(|_| "Virtual Cut-Through".to_string()),
    );
    row("Scheduling", [0; 3].map(|_| "iSLIP".to_string()));
    row("Packet MTU", [0; 3].map(|_| "2048 Bytes".to_string()));
    row("Memory size", [0; 3].map(|_| "64 KBytes".to_string()));
    row(
        "Link BW",
        specs.clone().map(|s| {
            let mut bws: Vec<u32> = s
                .topology
                .switch_ids()
                .flat_map(|sw| {
                    let t = &s.topology;
                    t.switch(sw)
                        .connected()
                        .filter_map(|p| t.peer(sw, p).map(|(_, params)| params.bw_flits_per_cycle))
                        .collect::<Vec<_>>()
                })
                .collect();
            bws.sort();
            bws.dedup();
            bws.iter()
                .map(|b| format!("{} GB/s", *b as f64 * 2.5))
                .collect::<Vec<_>>()
                .join(", ")
        }),
    );
    row("Flow control", [0; 3].map(|_| "Credit-based".to_string()));
    row(
        "Routing",
        ["Deterministic (table)", "DET", "DET"].map(String::from),
    );
    println!(
        "\nTraffic cases: #1 = {} flows, #2 = {} flows, #4 (H=4) = {} flows",
        specs[0].pattern.flows.len(),
        specs[1].pattern.flows.len(),
        specs[2].pattern.flows.len()
    );
}
