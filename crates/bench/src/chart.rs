//! Plain-text rendering of the figures' series.

use crate::harness::RunOutput;
use ccfit_engine::ids::FlowId;

/// Render the normalized-throughput-vs-time series of several runs as an
/// aligned table: one row per time bin, one column per mechanism —
/// the text analogue of Figs. 7 and 8.
pub fn series_table(runs: &[RunOutput]) -> String {
    let mut out = String::new();
    out.push_str("time_ms");
    for r in runs {
        out.push_str(&format!(" {:>8}", r.mechanism));
    }
    out.push('\n');
    let series: Vec<Vec<f64>> = runs
        .iter()
        .map(|r| r.report.network_throughput_normalized())
        .collect();
    let bins = series.iter().map(|s| s.len()).max().unwrap_or(0);
    // The final bin is partial when the duration is not a multiple of the
    // bin width; drop it rather than plot a misleading dip.
    let bins = bins.saturating_sub(1);
    for b in 0..bins {
        out.push_str(&format!(
            "{:7.2}",
            runs[0].report.total_bytes.bin_center_ns(b) / 1e6
        ));
        for s in &series {
            out.push_str(&format!(" {:>8.3}", s.get(b).copied().unwrap_or(0.0)));
        }
        out.push('\n');
    }
    out
}

/// Render per-flow bandwidth (GB/s) vs time for one run — the text
/// analogue of Figs. 9 and 10. Flows are ordered as reported.
pub fn flow_table(run: &RunOutput, flows: &[FlowId]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} ==\ntime_ms", run.mechanism));
    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();
    for &f in flows {
        if let Some(bw) = run.report.flow_bandwidth_gbps(f) {
            let label = run
                .report
                .flows
                .iter()
                .find(|fr| fr.id == f)
                .map(|fr| fr.label.clone())
                .unwrap_or_else(|| format!("flow{}", f.0));
            out.push_str(&format!(" {:>12}", label));
            columns.push((label, bw));
        }
    }
    out.push('\n');
    let bins = columns
        .iter()
        .map(|(_, s)| s.len())
        .max()
        .unwrap_or(0)
        .saturating_sub(1);
    for b in 0..bins {
        out.push_str(&format!(
            "{:7.2}",
            run.report.total_bytes.bin_center_ns(b) / 1e6
        ));
        for (_, s) in &columns {
            out.push_str(&format!(" {:>12.3}", s.get(b).copied().unwrap_or(0.0)));
        }
        out.push('\n');
    }
    out
}

/// One-line summary of a run's mean normalized throughput over a window.
pub fn summary_line(run: &RunOutput, from_ns: f64, to_ns: f64) -> String {
    format!(
        "{:>7}: mean normalized throughput {:.3} over [{:.1}, {:.1}] ms  ({} packets, {:.1}s wall)",
        run.mechanism,
        run.report.mean_normalized_throughput(from_ns, to_ns),
        from_ns / 1e6,
        to_ns / 1e6,
        run.report.delivered_packets,
        run.wall_s
    )
}

/// One-line latency summary (whole-run distribution).
pub fn latency_line(run: &RunOutput) -> String {
    let (p50, p95, p99) = run.report.latency_percentiles_ns();
    format!(
        "{:>7}: latency p50 {:.1} us, p95 {:.1} us, p99 {:.1} us, max {:.1} us",
        run.mechanism,
        p50 / 1e3,
        p95 / 1e3,
        p99 / 1e3,
        run.report.latency_hist.max_ns() / 1e3
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_all, RunCtx};
    use ccfit::{ConfigId, Mechanism, SimConfig};

    fn sample_runs() -> Vec<RunOutput> {
        let config = ConfigId::Config1Case1 { scale: 0.02 };
        run_all(
            &config,
            &[Mechanism::OneQ, Mechanism::ccfit()],
            3,
            SimConfig::default().metrics_bin_ns,
            &RunCtx::uncached(),
        )
    }

    #[test]
    fn series_table_has_header_and_aligned_rows() {
        let runs = sample_runs();
        let t = series_table(&runs);
        let mut lines = t.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("1Q"));
        assert!(header.contains("CCFIT"));
        for line in lines {
            assert_eq!(
                line.split_whitespace().count(),
                3,
                "time + two mechanisms: {line}"
            );
        }
    }

    #[test]
    fn flow_table_lists_requested_flows() {
        let runs = sample_runs();
        let t = flow_table(&runs[1], &[FlowId(0), FlowId(1)]);
        assert!(t.contains("CCFIT"));
        assert!(t.contains("F0 (victim)"));
    }

    #[test]
    fn summary_line_contains_the_mean() {
        let runs = sample_runs();
        let s = summary_line(&runs[0], 0.0, 200_000.0);
        assert!(s.contains("1Q"));
        assert!(s.contains("mean normalized throughput"));
    }
}
