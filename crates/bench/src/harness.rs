//! Parallel experiment execution and result archiving.

use ccfit::experiment::ExperimentSpec;
use ccfit::{Mechanism, SimConfig};
use ccfit_metrics::SimReport;
use std::path::Path;
use std::sync::Mutex;

/// One mechanism's result within a figure.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Mechanism display name.
    pub mechanism: String,
    /// The frozen report.
    pub report: SimReport,
    /// Wall-clock seconds the simulation took.
    pub wall_s: f64,
    /// Engine throughput: simulated cycles per wall-clock second.
    pub sim_cycles_per_sec: f64,
    /// `Some` when a parallel request was degraded by the engine's
    /// auto-fallback (e.g. `threads` > host CPUs, or shards too small to
    /// pay for synchronization) — the wall-clock numbers then measure
    /// the serial/clamped engine, not the configuration that was asked
    /// for. `None` for honest-to-request runs.
    pub parallel_warning: Option<String>,
}

impl RunOutput {
    /// Package a finished run, deriving the cycles/sec figure from the
    /// report's simulated-cycle count and the measured wall time.
    pub fn new(mechanism: String, report: SimReport, wall_s: f64) -> Self {
        let sim_cycles_per_sec = report.simulated_cycles as f64 / wall_s.max(1e-12);
        RunOutput {
            mechanism,
            report,
            wall_s,
            sim_cycles_per_sec,
            parallel_warning: None,
        }
    }

    /// Attach the engine's fallback advisory (see
    /// `ccfit::EngineDecision::warning`).
    pub fn with_parallel_warning(mut self, warning: Option<String>) -> Self {
        self.parallel_warning = warning;
        self
    }
}

/// Run `spec` under every mechanism in parallel (one OS thread per
/// mechanism — simulations are single-threaded and independent, so this
/// is an embarrassingly parallel sweep; results come back in input
/// order).
pub fn run_all(
    spec: &ExperimentSpec,
    mechanisms: &[Mechanism],
    seed: u64,
    cfg: &SimConfig,
) -> Vec<RunOutput> {
    let results: Mutex<Vec<Option<RunOutput>>> =
        Mutex::new((0..mechanisms.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for (i, mech) in mechanisms.iter().enumerate() {
            let results = &results;
            let spec = &spec;
            let cfg = cfg.clone();
            scope.spawn(move || {
                let warning = spec.engine_decision(mech, &cfg).warning();
                let t0 = std::time::Instant::now();
                let report = spec.run_with(mech.clone(), seed, cfg);
                let out =
                    RunOutput::new(mech.name().to_string(), report, t0.elapsed().as_secs_f64())
                        .with_parallel_warning(warning);
                results.lock().unwrap()[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every mechanism produced a report"))
        .collect()
}

/// Parse a `--csv <dir>` argument pair from the command line, if present.
pub fn csv_dir_from_args(args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parse a `--mech <name>[,<name>...]` argument pair through the
/// [`Mechanism`] registry, falling back to `default` when absent.
/// Unknown names abort with the list of registered mechanisms, so every
/// bench binary shares one spelling of each scheme.
///
/// # Panics
/// Exits the process with an error message on an unknown mechanism name.
pub fn mechanisms_from_args(args: &[String], default: Vec<Mechanism>) -> Vec<Mechanism> {
    let Some(spec) = args
        .iter()
        .position(|a| a == "--mech")
        .and_then(|i| args.get(i + 1))
    else {
        return default;
    };
    spec.split(',')
        .map(|name| {
            Mechanism::parse(name).unwrap_or_else(|| {
                let known: Vec<&str> = Mechanism::all().iter().map(|m| m.name()).collect();
                eprintln!("unknown mechanism {name:?}; known: {}", known.join(", "));
                std::process::exit(2);
            })
        })
        .collect()
}

/// Archive each run as `<dir>/<figure>-<mechanism>.{csv,json}`.
pub fn archive(dir: &str, figure: &str, runs: &[RunOutput]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for run in runs {
        let base = format!("{figure}-{}", run.mechanism.to_lowercase());
        std::fs::write(
            Path::new(dir).join(format!("{base}-throughput.csv")),
            run.report.throughput_csv(),
        )?;
        std::fs::write(
            Path::new(dir).join(format!("{base}-flows.csv")),
            run.report.flow_bandwidth_csv(),
        )?;
        std::fs::write(
            Path::new(dir).join(format!("{base}.json")),
            run.report.to_json(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfit::experiment::config1_case1_scaled;

    #[test]
    fn mech_filter_parses_registry_names_case_insensitively() {
        let args: Vec<String> = ["x", "--mech", "ccfit,hpcc,1q"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ms = mechanisms_from_args(&args, vec![]);
        let names: Vec<&str> = ms.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["CCFIT", "HPCC", "1Q"]);
        let none: Vec<String> = vec![];
        assert_eq!(
            mechanisms_from_args(&none, Mechanism::paper_set()),
            Mechanism::paper_set()
        );
    }

    #[test]
    fn run_all_preserves_mechanism_order() {
        let spec = config1_case1_scaled(0.02);
        let mechs = vec![Mechanism::OneQ, Mechanism::ccfit()];
        let runs = run_all(&spec, &mechs, 1, &SimConfig::default());
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].mechanism, "1Q");
        assert_eq!(runs[1].mechanism, "CCFIT");
        assert!(runs.iter().all(|r| r.report.delivered_packets > 0));
    }

    #[test]
    fn parallel_runs_match_sequential_runs() {
        let spec = config1_case1_scaled(0.02);
        let mechs = vec![Mechanism::fbicm(), Mechanism::ith()];
        let par = run_all(&spec, &mechs, 7, &SimConfig::default());
        for (mech, out) in mechs.iter().zip(&par) {
            let seq = spec.run_with(mech.clone(), 7, SimConfig::default());
            assert_eq!(
                seq,
                out.report,
                "{} diverged under parallel execution",
                mech.name()
            );
        }
    }

    #[test]
    fn csv_dir_parsing() {
        let args: Vec<String> = ["x", "--csv", "/tmp/out"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(csv_dir_from_args(&args).as_deref(), Some("/tmp/out"));
        let none: Vec<String> = vec!["x".into()];
        assert_eq!(csv_dir_from_args(&none), None);
    }

    #[test]
    fn archive_writes_expected_files() {
        let spec = config1_case1_scaled(0.02);
        let runs = run_all(&spec, &[Mechanism::OneQ], 1, &SimConfig::default());
        let dir = std::env::temp_dir().join("ccfit-archive-test");
        let dir = dir.to_str().unwrap();
        archive(dir, "figX", &runs).unwrap();
        for suffix in ["-throughput.csv", "-flows.csv", ".json"] {
            let p = format!("{dir}/figX-1q{suffix}");
            assert!(std::path::Path::new(&p).exists(), "{p} missing");
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
