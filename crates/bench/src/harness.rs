//! Parallel experiment execution and result archiving.
//!
//! Since the orchestrator landed (DESIGN.md §13), every figure binary
//! funnels its runs through [`run_all`]/[`run_specs`], which read
//! through the content-hashed result cache: re-generating a figure
//! whose runs are already cached costs a directory scan, not a
//! re-simulation. `--no-cache` and `--cache-dir <dir>` (parsed by
//! [`RunCtx::from_args`]) control the cache from every binary.

use ccfit::{ConfigId, Mechanism, ParallelConfig, SimConfig};
use ccfit_metrics::SimReport;
use ccfit_orchestrator::{
    cache_from_args, run_matrix, Cache, EngineKnobs, ExecMode, RunSpec, RunnerOptions,
};
use std::path::Path;

/// One mechanism's result within a figure.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Mechanism display name.
    pub mechanism: String,
    /// The frozen report.
    pub report: SimReport,
    /// Wall-clock seconds the simulation took.
    pub wall_s: f64,
    /// Engine throughput: simulated cycles per wall-clock second.
    pub sim_cycles_per_sec: f64,
    /// `Some` when a parallel request was degraded by the engine's
    /// auto-fallback (e.g. `threads` > host CPUs, or shards too small to
    /// pay for synchronization) — the wall-clock numbers then measure
    /// the serial/clamped engine, not the configuration that was asked
    /// for. `None` for honest-to-request runs.
    pub parallel_warning: Option<String>,
}

impl RunOutput {
    /// Package a finished run, deriving the cycles/sec figure from the
    /// report's simulated-cycle count and the measured wall time.
    pub fn new(mechanism: String, report: SimReport, wall_s: f64) -> Self {
        let sim_cycles_per_sec = report.simulated_cycles as f64 / wall_s.max(1e-12);
        RunOutput {
            mechanism,
            report,
            wall_s,
            sim_cycles_per_sec,
            parallel_warning: None,
        }
    }

    /// Attach the engine's fallback advisory (see
    /// `ccfit::EngineDecision::warning`).
    pub fn with_parallel_warning(mut self, warning: Option<String>) -> Self {
        self.parallel_warning = warning;
        self
    }
}

/// Shared execution context for the figure binaries: the result cache
/// and the (result-neutral) engine knobs, both CLI-controlled.
#[derive(Debug, Clone)]
pub struct RunCtx {
    /// The orchestrator's content-hashed result cache.
    pub cache: Cache,
    /// Engine knobs applied to cache misses (`--threads <n>`).
    pub engine: EngineKnobs,
}

impl RunCtx {
    /// Parse `--no-cache`, `--cache-dir <dir>` and `--threads <n>`.
    pub fn from_args(args: &[String]) -> Self {
        let threads = args
            .iter()
            .position(|a| a == "--threads")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        RunCtx {
            cache: cache_from_args(args),
            engine: EngineKnobs {
                threads,
                batch_cycles: 0,
            },
        }
    }

    /// A context that always simulates (tests and microbenches).
    pub fn uncached() -> Self {
        RunCtx {
            cache: Cache::disabled(),
            engine: EngineKnobs::default(),
        }
    }
}

/// Run every spec through the orchestrator (in-process worker threads,
/// cache read-through; one job per spec — simulations are independent,
/// so this is an embarrassingly parallel sweep). Results come back in
/// input order.
pub fn run_specs(specs: &[RunSpec], ctx: &RunCtx) -> Vec<RunOutput> {
    let opts = RunnerOptions {
        jobs: specs.len().max(1),
        mode: ExecMode::Threads,
        cache: ctx.cache.clone(),
        engine: ctx.engine.clone(),
        quiet: true,
    };
    let run = run_matrix(specs, &opts).unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(1);
    });
    run.outputs
        .into_iter()
        .map(|o| {
            // The fallback advisory qualifies *measured* wall time; a
            // cache hit measured nothing, and a serial request never
            // warns, so only freshly-simulated parallel runs check.
            let warning = if !o.cached && ctx.engine.threads > 1 {
                let cfg = SimConfig {
                    parallel: ParallelConfig {
                        threads: ctx.engine.threads,
                        batch_cycles: ctx.engine.batch_cycles,
                        ..ParallelConfig::default()
                    },
                    ..SimConfig::default()
                };
                o.spec
                    .config
                    .resolve()
                    .engine_decision(&o.spec.mechanism, &cfg)
                    .warning()
            } else {
                None
            };
            RunOutput::new(o.spec.mechanism.name().to_string(), o.report, o.wall_s)
                .with_parallel_warning(warning)
        })
        .collect()
}

/// Run `config` under every mechanism — the one shared entry point the
/// `fig`/`sweep`/`ablate` binaries use instead of private run loops.
pub fn run_all(
    config: &ConfigId,
    mechanisms: &[Mechanism],
    seed: u64,
    metrics_bin_ns: f64,
    ctx: &RunCtx,
) -> Vec<RunOutput> {
    let specs: Vec<RunSpec> = mechanisms
        .iter()
        .map(|m| RunSpec::new(config.clone(), m.clone(), seed, metrics_bin_ns))
        .collect();
    run_specs(&specs, ctx)
}

/// Parse a `--csv <dir>` argument pair from the command line, if present.
pub fn csv_dir_from_args(args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parse a `--mech <name>[,<name>...]` argument pair through the
/// [`Mechanism`] registry, falling back to `default` when absent.
/// Unknown names abort with the list of registered mechanisms, so every
/// bench binary shares one spelling of each scheme.
///
/// # Panics
/// Exits the process with an error message on an unknown mechanism name.
pub fn mechanisms_from_args(args: &[String], default: Vec<Mechanism>) -> Vec<Mechanism> {
    let Some(spec) = args
        .iter()
        .position(|a| a == "--mech")
        .and_then(|i| args.get(i + 1))
    else {
        return default;
    };
    spec.split(',')
        .map(|name| {
            Mechanism::parse(name).unwrap_or_else(|| {
                let known: Vec<&str> = Mechanism::all().iter().map(|m| m.name()).collect();
                eprintln!("unknown mechanism {name:?}; known: {}", known.join(", "));
                std::process::exit(2);
            })
        })
        .collect()
}

/// Archive each run as `<dir>/<figure>-<mechanism>.{csv,json}`.
pub fn archive(dir: &str, figure: &str, runs: &[RunOutput]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for run in runs {
        let base = format!("{figure}-{}", run.mechanism.to_lowercase());
        std::fs::write(
            Path::new(dir).join(format!("{base}-throughput.csv")),
            run.report.throughput_csv(),
        )?;
        std::fs::write(
            Path::new(dir).join(format!("{base}-flows.csv")),
            run.report.flow_bandwidth_csv(),
        )?;
        std::fs::write(
            Path::new(dir).join(format!("{base}.json")),
            run.report.to_json(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfit::experiment::config1_case1_scaled;

    fn small_config() -> ConfigId {
        ConfigId::Config1Case1 { scale: 0.02 }
    }

    #[test]
    fn mech_filter_parses_registry_names_case_insensitively() {
        let args: Vec<String> = ["x", "--mech", "ccfit,hpcc,1q"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ms = mechanisms_from_args(&args, vec![]);
        let names: Vec<&str> = ms.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["CCFIT", "HPCC", "1Q"]);
        let none: Vec<String> = vec![];
        assert_eq!(
            mechanisms_from_args(&none, Mechanism::paper_set()),
            Mechanism::paper_set()
        );
    }

    #[test]
    fn run_all_preserves_mechanism_order() {
        let mechs = vec![Mechanism::OneQ, Mechanism::ccfit()];
        let runs = run_all(
            &small_config(),
            &mechs,
            1,
            SimConfig::default().metrics_bin_ns,
            &RunCtx::uncached(),
        );
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].mechanism, "1Q");
        assert_eq!(runs[1].mechanism, "CCFIT");
        assert!(runs.iter().all(|r| r.report.delivered_packets > 0));
    }

    #[test]
    fn orchestrated_runs_match_direct_runs() {
        let mechs = vec![Mechanism::fbicm(), Mechanism::ith()];
        let par = run_all(
            &small_config(),
            &mechs,
            7,
            SimConfig::default().metrics_bin_ns,
            &RunCtx::uncached(),
        );
        let spec = config1_case1_scaled(0.02);
        for (mech, out) in mechs.iter().zip(&par) {
            let seq = spec.run_with(mech.clone(), 7, SimConfig::default());
            assert_eq!(
                seq,
                out.report,
                "{} diverged under orchestrated execution",
                mech.name()
            );
        }
    }

    #[test]
    fn cached_rerun_returns_identical_reports() {
        let dir = std::env::temp_dir().join(format!("ccfit-harness-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let ctx = RunCtx {
            cache: Cache::new(&dir),
            engine: EngineKnobs::default(),
        };
        let mechs = vec![Mechanism::OneQ];
        let bin = SimConfig::default().metrics_bin_ns;
        let cold = run_all(&small_config(), &mechs, 3, bin, &ctx);
        let warm = run_all(&small_config(), &mechs, 3, bin, &ctx);
        assert_eq!(cold[0].report, warm[0].report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_dir_parsing() {
        let args: Vec<String> = ["x", "--csv", "/tmp/out"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(csv_dir_from_args(&args).as_deref(), Some("/tmp/out"));
        let none: Vec<String> = vec!["x".into()];
        assert_eq!(csv_dir_from_args(&none), None);
    }

    #[test]
    fn archive_writes_expected_files() {
        let runs = run_all(
            &small_config(),
            &[Mechanism::OneQ],
            1,
            SimConfig::default().metrics_bin_ns,
            &RunCtx::uncached(),
        );
        let dir = std::env::temp_dir().join("ccfit-archive-test");
        let dir = dir.to_str().unwrap();
        archive(dir, "figX", &runs).unwrap();
        for suffix in ["-throughput.csv", "-flows.csv", ".json"] {
            let p = format!("{dir}/figX-1q{suffix}");
            assert!(std::path::Path::new(&p).exists(), "{p} missing");
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
