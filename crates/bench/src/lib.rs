//! # ccfit-bench
//!
//! The reproduction harness for the paper's evaluation (§IV): one binary
//! per table/figure plus ablation sweeps, and the criterion microbenches.
//!
//! | Binary  | Reproduces |
//! |---------|------------|
//! | `table1`| Table I (network configurations) |
//! | `fig7`  | Fig. 7a–c: network throughput vs time, Configs #1/#2 |
//! | `fig8`  | Fig. 8a–c: throughput vs time under 1/4/6-tree storms |
//! | `fig9`  | Fig. 9: per-flow bandwidth vs time, Config #1 Case #1 |
//! | `fig10` | Fig. 10: per-flow bandwidth vs time, Config #2 Case #2 |
//! | `ablate`| §III-E design-choice sweeps (CFQs, marking, timer, Stop/Go, detection) |
//!
//! All binaries print the series the paper plots as aligned text tables
//! (time in ms) and accept `--csv <dir>` to archive machine-readable
//! CSVs plus the full JSON reports.

pub mod chart;
pub mod harness;

pub use chart::{flow_table, series_table};
pub use harness::{run_all, run_specs, RunCtx, RunOutput};
