//! The DCQCN reaction-point rate machine.
//!
//! One [`DcqcnFlow`] per (source, destination) pair tracks a current
//! rate `rc` and target rate `rt`, both as *fractions of the injection
//! line rate*, plus the EWMA congestion estimate `alpha`. The adapter
//! stretches the inter-packet gap by `1/rc` when arbitrating injection.
//!
//! All state advances **lazily**: nothing runs per cycle. Timer-driven
//! events (alpha decay, rate-increase stages) are caught up
//! arithmetically in [`DcqcnFlow::advance_to`] whenever the flow is
//! touched — injecting a packet or receiving a CNP — which keeps the
//! machine compatible with the engine's quiet-cycle fast-forward: a
//! fully recovered idle flow needs no wakeups, and a recovering one
//! catches up in a bounded number of steps (fast recovery halves the
//! distance to `rt`; additive increase closes the rest in at most
//! `1/rate_ai` stages).

use crate::params::DcqcnParams;
use serde::{Deserialize, Serialize};

/// Cycle-domain DCQCN configuration, materialised once per run from
/// [`DcqcnParams`] (nanosecond time constants become cycles; MTU
/// thresholds become flits at the switch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcqcnCfg {
    /// g: EWMA gain for alpha.
    pub ewma_gain: f64,
    /// Destination side: minimum cycles between CNPs to one source.
    pub cnp_interval_cycles: u64,
    /// Cycles between alpha-decay events while no CNP arrives.
    pub alpha_resume_cycles: u64,
    /// Minimum cycles between multiplicative rate cuts.
    pub rate_decrease_cycles: u64,
    /// Cycles between timer-driven rate-increase events.
    pub rp_timer_cycles: u64,
    /// Bytes sent per byte-driven rate-increase event.
    pub byte_counter_bytes: u64,
    /// F: fast-recovery stages before additive increase.
    pub fast_recovery_times: u32,
    /// Additive increase step (fraction of line rate).
    pub rate_ai: f64,
    /// Hyper increase step (fraction of line rate).
    pub rate_hai: f64,
    /// Rate floor (fraction of line rate).
    pub min_rate: f64,
}

impl DcqcnCfg {
    /// Convert the nanosecond-domain parameters to cycles with the
    /// run's clock (`cycles_per_ns`), clamping every interval to at
    /// least one cycle so degenerate configs cannot divide by zero.
    pub fn materialise(p: &DcqcnParams, cycles_per_ns: f64) -> Self {
        let cyc = |ns: f64| ((ns * cycles_per_ns).round() as u64).max(1);
        DcqcnCfg {
            ewma_gain: p.ewma_gain,
            cnp_interval_cycles: cyc(p.cnp_interval_ns),
            alpha_resume_cycles: cyc(p.alpha_resume_interval_ns),
            rate_decrease_cycles: cyc(p.rate_decrease_interval_ns),
            rp_timer_cycles: cyc(p.rp_timer_ns),
            byte_counter_bytes: p.byte_counter_bytes.max(1),
            fast_recovery_times: p.fast_recovery_times,
            rate_ai: p.rate_ai_frac,
            rate_hai: p.rate_hai_frac,
            min_rate: p.min_rate_frac,
        }
    }
}

/// Rate considered "fully recovered" — past it the increase machinery
/// snaps to 1.0 and stops scheduling work.
const FULL_RATE_EPS: f64 = 1e-9;

/// Per-(source, destination) DCQCN reaction-point state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DcqcnFlow {
    /// Current injection rate as a fraction of line rate, in
    /// `[min_rate, 1.0]`.
    pub rc: f64,
    /// Target rate the increase machinery recovers toward.
    pub rt: f64,
    /// EWMA congestion estimate in `[0, 1]`.
    pub alpha: f64,
    /// Increase stages since the last rate cut (drives fast recovery →
    /// additive → hyper phases).
    pub stage: u32,
    /// Bytes sent since the last byte-driven increase event.
    pub bytes_acc: u64,
    /// Cycle of the next timer-driven increase event.
    pub next_timer: u64,
    /// Cycle of the next alpha-decay event.
    pub next_alpha: u64,
    /// Cycle of the most recent multiplicative cut.
    pub last_decrease: u64,
}

impl DcqcnFlow {
    /// A fresh flow at full rate. `alpha` starts at 1 as in the DCQCN
    /// paper, so the first CNP cuts the rate in half; it decays to zero
    /// if the network never pushes back.
    pub fn new(now: u64, cfg: &DcqcnCfg) -> Self {
        DcqcnFlow {
            rc: 1.0,
            rt: 1.0,
            alpha: 1.0,
            stage: 0,
            bytes_acc: 0,
            next_timer: now.saturating_add(cfg.rp_timer_cycles),
            next_alpha: now.saturating_add(cfg.alpha_resume_cycles),
            last_decrease: 0,
        }
    }

    fn at_full_rate(&self) -> bool {
        self.rc >= 1.0 - FULL_RATE_EPS && self.rt >= 1.0 - FULL_RATE_EPS
    }

    /// Advance a timer deadline past `now` in O(1).
    fn snap_past(deadline: u64, interval: u64, now: u64) -> u64 {
        if deadline > now {
            deadline
        } else {
            let missed = (now - deadline) / interval + 1;
            deadline + missed * interval
        }
    }

    /// Catch up all timer-driven events to `now`. Must be called before
    /// [`Self::on_cnp`], [`Self::on_sent`] or [`Self::gap_cycles`] when
    /// the flow may not have been touched for a while.
    pub fn advance_to(&mut self, now: u64, cfg: &DcqcnCfg) {
        // Alpha decay: k missed events fold to alpha * (1-g)^k.
        if self.next_alpha <= now {
            let k = (now - self.next_alpha) / cfg.alpha_resume_cycles + 1;
            if self.alpha > 0.0 {
                self.alpha *= (1.0 - cfg.ewma_gain).powi(k.min(i32::MAX as u64) as i32);
                if self.alpha < 1e-12 {
                    self.alpha = 0.0;
                }
            }
            self.next_alpha = Self::snap_past(self.next_alpha, cfg.alpha_resume_cycles, now);
        }
        // Timer-driven increase events: bounded — each event either
        // halves the distance to rt (fast recovery) or raises rt by at
        // least rate_ai, so the loop exits at full rate long before any
        // pathological iteration count.
        while self.next_timer <= now {
            if self.at_full_rate() {
                self.rc = 1.0;
                self.rt = 1.0;
                self.next_timer = Self::snap_past(self.next_timer, cfg.rp_timer_cycles, now);
                break;
            }
            self.increase_event(cfg);
            self.next_timer += cfg.rp_timer_cycles;
        }
    }

    /// One rate-increase event (timer- or byte-driven).
    fn increase_event(&mut self, cfg: &DcqcnCfg) {
        self.stage = self.stage.saturating_add(1);
        if self.stage > cfg.fast_recovery_times {
            // Past fast recovery: raise the target (additive on the
            // first stage out, hyper afterwards)…
            let step = if self.stage == cfg.fast_recovery_times + 1 {
                cfg.rate_ai
            } else {
                cfg.rate_hai
            };
            self.rt = (self.rt + step).min(1.0);
        }
        // …and always close half the gap to it.
        self.rc = (0.5 * (self.rc + self.rt)).min(1.0);
    }

    /// Account `bytes` of injected data, firing byte-driven increase
    /// events as the byte counter wraps.
    pub fn on_sent(&mut self, bytes: u64, cfg: &DcqcnCfg) {
        if self.at_full_rate() {
            self.bytes_acc = 0;
            return;
        }
        self.bytes_acc += bytes;
        while self.bytes_acc >= cfg.byte_counter_bytes {
            self.bytes_acc -= cfg.byte_counter_bytes;
            self.increase_event(cfg);
            if self.at_full_rate() {
                self.bytes_acc = 0;
                break;
            }
        }
    }

    /// React to a CNP at cycle `now` (caller has already advanced the
    /// flow). Returns `true` if a multiplicative cut was applied (at
    /// most one per `rate_decrease_cycles`).
    pub fn on_cnp(&mut self, now: u64, cfg: &DcqcnCfg) -> bool {
        self.alpha = (1.0 - cfg.ewma_gain) * self.alpha + cfg.ewma_gain;
        self.next_alpha = now.saturating_add(cfg.alpha_resume_cycles);
        let cut = now >= self.last_decrease.saturating_add(cfg.rate_decrease_cycles)
            || self.last_decrease == 0;
        if cut {
            self.rt = self.rc;
            self.rc = (self.rc * (1.0 - self.alpha / 2.0)).max(cfg.min_rate);
            self.last_decrease = now.max(1);
            self.stage = 0;
            self.bytes_acc = 0;
            self.next_timer = now.saturating_add(cfg.rp_timer_cycles);
        }
        cut
    }

    /// Extra inter-packet gap (cycles) to append after a packet whose
    /// serialization takes `packet_cycles`, stretching the effective
    /// rate to `rc`: at `rc = 1` the gap is zero, at `rc = 0.5` the gap
    /// equals the packet time.
    pub fn gap_cycles(&self, packet_cycles: u64) -> u64 {
        if self.rc >= 1.0 - FULL_RATE_EPS {
            return 0;
        }
        let gap = packet_cycles as f64 * (1.0 / self.rc - 1.0);
        gap.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DcqcnCfg {
        DcqcnCfg::materialise(&DcqcnParams::default(), 0.4) // 2.5 ns/cycle
    }

    #[test]
    fn materialise_converts_and_clamps() {
        let c = cfg();
        assert_eq!(c.cnp_interval_cycles, 800);
        assert_eq!(c.alpha_resume_cycles, 3200);
        assert_eq!(c.rp_timer_cycles, 3600);
        assert_eq!(c.rate_decrease_cycles, 1600);
        let p = DcqcnParams {
            rp_timer_ns: 0.0,
            ..DcqcnParams::default()
        };
        assert_eq!(DcqcnCfg::materialise(&p, 0.4).rp_timer_cycles, 1);
    }

    #[test]
    fn fresh_flow_is_transparent() {
        let c = cfg();
        let f = DcqcnFlow::new(0, &c);
        assert_eq!(f.rc, 1.0);
        assert_eq!(f.gap_cycles(100), 0);
    }

    #[test]
    fn cnp_cuts_and_recovery_restores() {
        let c = cfg();
        let mut f = DcqcnFlow::new(0, &c);
        f.advance_to(100, &c);
        assert!(f.on_cnp(100, &c));
        // alpha jumped to g, rate cut by alpha/2.
        assert!(f.alpha > 0.0);
        assert!(f.rc < 1.0);
        let cut_rate = f.rc;
        assert_eq!(f.rt, 1.0);
        assert!(f.gap_cycles(100) > 0);
        // A CNP inside the decrease interval must not cut again.
        f.advance_to(150, &c);
        assert!(!f.on_cnp(150, &c));
        assert_eq!(f.rc, cut_rate);
        // Recovery: after enough timer events the flow is back at full
        // rate (fast recovery halves toward rt=pre-cut rc, then
        // additive/hyper stages raise rt to 1).
        f.advance_to(100 + c.rp_timer_cycles * 500, &c);
        assert!(f.at_full_rate(), "rc={} rt={}", f.rc, f.rt);
        assert_eq!(f.gap_cycles(100), 0);
    }

    #[test]
    fn repeated_cnps_deepen_the_cut() {
        let c = cfg();
        let mut f = DcqcnFlow::new(0, &c);
        let mut now = 0;
        for _ in 0..20 {
            now += c.rate_decrease_cycles;
            f.advance_to(now, &c);
            f.on_cnp(now, &c);
        }
        // Sustained congestion drives the rate far down but never below
        // the floor.
        assert!(f.rc < 0.9);
        assert!(f.rc >= c.min_rate);
        assert!(f.alpha > 0.0);
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let c = cfg();
        let mut f = DcqcnFlow::new(0, &c);
        f.advance_to(10, &c);
        f.on_cnp(10, &c);
        let a0 = f.alpha;
        f.advance_to(10 + 10 * c.alpha_resume_cycles, &c);
        assert!(f.alpha < a0);
        // And a huge quiet gap folds to zero in O(1), not a loop.
        f.advance_to(u64::MAX / 2, &c);
        assert_eq!(f.alpha, 0.0);
        assert!(f.at_full_rate());
    }

    #[test]
    fn byte_counter_drives_increase() {
        let c = cfg();
        let mut f = DcqcnFlow::new(0, &c);
        f.advance_to(10, &c);
        f.on_cnp(10, &c);
        let cut = f.rc;
        f.on_sent(c.byte_counter_bytes, &c);
        assert!(f.rc > cut, "byte event should start recovery");
    }

    #[test]
    fn advance_is_idempotent_at_a_fixed_cycle() {
        let c = cfg();
        let mut f = DcqcnFlow::new(0, &c);
        f.advance_to(5000, &c);
        f.on_cnp(5000, &c);
        f.advance_to(20_000, &c);
        let snap = f;
        let mut g = f;
        g.advance_to(20_000, &c);
        assert_eq!(snap, g);
    }

    #[test]
    fn fast_recovery_precedes_additive_increase() {
        let c = cfg();
        let mut f = DcqcnFlow::new(0, &c);
        f.advance_to(10, &c);
        f.on_cnp(10, &c);
        let rt_after_cut = f.rt;
        // First F stages: rt untouched (fast recovery).
        for _ in 0..c.fast_recovery_times {
            f.on_sent(c.byte_counter_bytes, &c);
            assert_eq!(f.rt, rt_after_cut);
        }
        // Next stage: additive bump of rt.
        f.on_sent(c.byte_counter_bytes, &c);
        assert!((f.rt - (rt_after_cut + c.rate_ai).min(1.0)).abs() < 1e-12);
    }
}
