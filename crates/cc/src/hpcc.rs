//! The HPCC-style INT-driven window machine.
//!
//! Every data packet carries a folded INT record: the **maximum
//! normalised utilization** `U` seen across the hops it traversed,
//! where each hop contributes `(qlen + txBytes_window) / (bandwidth ×
//! T)` — queue depth plus bytes transmitted in the last window, both
//! normalised by the link's bandwidth-delay product over the INT
//! window T. The destination echoes the fold in a per-packet ACK; the
//! source smooths it (EWMA weight α) and adjusts a per-destination
//! byte window multiplicatively toward target utilization η, with
//! `maxStage` additive `W_AI` steps between multiplicative reference
//! updates, and a β bound on how much one update may shrink the
//! window.
//!
//! Keeping only the fold (max across hops) rather than per-hop records
//! keeps the packet header `Copy` and O(1); it preserves HPCC's
//! bottleneck-driven behaviour because the window update only ever
//! consumes the most utilised hop.

use crate::params::HpccParams;
use serde::{Deserialize, Serialize};

/// Runtime HPCC configuration (window constants are kept in the
/// nanosecond/byte domain of the params; only the INT window is
/// cycle-domain).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HpccCfg {
    /// Target utilization η.
    pub eta: f64,
    /// EWMA weight on the previous U estimate.
    pub alpha: f64,
    /// Max fractional shrink per multiplicative update.
    pub beta: f64,
    /// maxStage additive steps between reference updates.
    pub max_stage: u32,
    /// W_AI in bytes.
    pub w_ai: f64,
    /// Initial window (bytes).
    pub w_init: f64,
    /// Window floor (bytes).
    pub w_min: f64,
    /// Window ceiling (bytes).
    pub w_max: f64,
    /// INT measurement window in cycles (switch side).
    pub window_cycles: u64,
}

impl HpccCfg {
    /// Materialise with the run's clock (`cycles_per_ns`).
    pub fn materialise(p: &HpccParams, cycles_per_ns: f64) -> Self {
        HpccCfg {
            eta: p.eta,
            alpha: p.alpha,
            beta: p.beta,
            max_stage: p.max_stage,
            w_ai: p.w_ai_bytes,
            w_init: p.w_init_bytes.clamp(p.w_min_bytes, p.w_max_bytes),
            w_min: p.w_min_bytes,
            w_max: p.w_max_bytes,
            window_cycles: ((p.t_ns * cycles_per_ns).round() as u64).max(1),
        }
    }
}

/// One hop's contribution to the INT fold: normalised utilization of
/// an output link over the window — queued flits waiting for the
/// output plus flits transmitted in the current window, over the
/// bandwidth-delay product `bw × T`. Unitless; 1.0 ≈ the link has a
/// full window of work.
pub fn hop_utilization(
    queued_flits: u64,
    tx_flits_window: u64,
    bw_flits_per_cycle: f64,
    window_cycles: u64,
) -> f64 {
    let bdp = (bw_flits_per_cycle * window_cycles as f64).max(1.0);
    (queued_flits as f64 + tx_flits_window as f64) / bdp
}

/// Fold a hop's utilization into the packet-carried maximum. `f32` in
/// the header keeps [`Packet`](https://example.org) `Copy`-small; the
/// precision loss (~1e-7 relative) is far below the control loop's
/// sensitivity.
pub fn fold_u(carried: f32, hop_u: f64) -> f32 {
    carried.max(hop_u as f32)
}

/// Per-(source, destination) HPCC sender state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HpccFlow {
    /// Current window (bytes).
    pub w: f64,
    /// Reference window the additive stages build on.
    pub wc: f64,
    /// Smoothed utilization estimate.
    pub u: f64,
    /// Additive stages since the last multiplicative update.
    pub inc_stage: u32,
    /// Bytes currently in flight toward this destination.
    pub inflight_bytes: u64,
}

impl HpccFlow {
    /// A fresh flow with the initial window and an optimistic (empty
    /// network) utilization estimate.
    pub fn new(cfg: &HpccCfg) -> Self {
        HpccFlow {
            w: cfg.w_init,
            wc: cfg.w_init,
            u: 0.0,
            inc_stage: 0,
            inflight_bytes: 0,
        }
    }

    /// Can a packet of `bytes` wire bytes be injected under the current
    /// window? An idle flow (nothing in flight) may always send one
    /// packet so it can keep probing — the window bounds outstanding
    /// data, it must never deadlock the flow.
    pub fn may_send(&self, bytes: u64) -> bool {
        self.inflight_bytes == 0 || (self.inflight_bytes + bytes) as f64 <= self.w
    }

    /// Account an injected packet.
    pub fn on_sent(&mut self, bytes: u64) {
        self.inflight_bytes += bytes;
    }

    /// React to an ACK echoing a folded utilization `u_ack` for
    /// `acked_bytes` of data.
    pub fn on_ack(&mut self, u_ack: f64, acked_bytes: u64, cfg: &HpccCfg) {
        self.inflight_bytes = self.inflight_bytes.saturating_sub(acked_bytes);
        // EWMA fold of the new sample.
        self.u = cfg.alpha * self.u + (1.0 - cfg.alpha) * u_ack.max(0.0);
        if self.u >= cfg.eta || self.inc_stage >= cfg.max_stage {
            // Multiplicative update of the reference toward η, bounded
            // below by (1-β)·wc so one extreme sample cannot collapse
            // the window, plus the additive probe.
            let ratio = (self.u / cfg.eta).max(1e-3);
            let updated = (self.wc / ratio + cfg.w_ai).max(self.wc * (1.0 - cfg.beta));
            self.w = updated.clamp(cfg.w_min, cfg.w_max);
            self.wc = self.w;
            self.inc_stage = 0;
        } else {
            self.inc_stage += 1;
            self.w = (self.wc + cfg.w_ai * self.inc_stage as f64).clamp(cfg.w_min, cfg.w_max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HpccCfg {
        HpccCfg::materialise(&HpccParams::default(), 0.4)
    }

    #[test]
    fn materialise_window_cycles() {
        assert_eq!(cfg().window_cycles, 400); // 1000 ns at 0.4 cyc/ns
    }

    #[test]
    fn hop_utilization_normalises_by_bdp() {
        // Empty link: zero. A full window of tx: 1.0.
        assert_eq!(hop_utilization(0, 0, 1.0, 400), 0.0);
        assert!((hop_utilization(0, 400, 1.0, 400) - 1.0).abs() < 1e-12);
        // Queue depth counts the same as transmitted bytes.
        assert!(hop_utilization(200, 400, 1.0, 400) > 1.0);
    }

    #[test]
    fn fold_keeps_the_max() {
        let u = fold_u(0.0, 0.3);
        let u = fold_u(u, 0.1);
        let u = fold_u(u, 0.9);
        assert!((f64::from(u) - 0.9).abs() < 1e-6);
    }

    #[test]
    fn idle_flow_may_always_probe() {
        let c = cfg();
        let mut f = HpccFlow::new(&c);
        f.w = c.w_min;
        assert!(f.may_send(1 << 20), "idle flow must not deadlock");
        f.on_sent(1 << 20);
        assert!(!f.may_send(1));
    }

    #[test]
    fn underutilised_path_grows_the_window() {
        let c = cfg();
        let mut f = HpccFlow::new(&c);
        let w0 = f.w;
        for _ in 0..50 {
            f.on_sent(2048);
            f.on_ack(0.1, 2048, &c); // far below η
        }
        assert!(f.w > w0, "w={} should grow from {w0}", f.w);
    }

    #[test]
    fn congested_path_shrinks_multiplicatively_with_beta_bound() {
        let c = cfg();
        let mut f = HpccFlow::new(&c);
        // Saturated bottleneck: folded U well above η. A couple of ACKs
        // pull the EWMA estimate past η and engage the multiplicative
        // branch.
        while f.u < c.eta {
            f.on_sent(2048);
            f.on_ack(4.0, 2048, &c);
        }
        let before = f.wc;
        f.on_sent(2048);
        f.on_ack(4.0, 2048, &c);
        assert!(f.w < before);
        // β bound: a single update never removes more than β of wc
        // (modulo the +W_AI probe).
        assert!(f.w >= before * (1.0 - c.beta));
        // Sustained congestion converges toward the floor.
        for _ in 0..200 {
            f.on_sent(2048);
            f.on_ack(4.0, 2048, &c);
        }
        assert!(f.w <= c.w_min + c.w_ai * c.max_stage as f64 + 1.0);
        assert!(f.w >= c.w_min);
    }

    #[test]
    fn additive_stages_then_reference_update() {
        let c = cfg();
        let mut f = HpccFlow::new(&c);
        let wc0 = f.wc;
        // Mildly-loaded path, below η: additive stages accumulate
        // without touching the reference…
        for k in 1..=c.max_stage {
            f.on_sent(2048);
            f.on_ack(0.5, 2048, &c);
            assert_eq!(f.wc, wc0);
            assert_eq!(f.inc_stage, k % (c.max_stage + 1));
            if k == c.max_stage {
                break;
            }
        }
        // …and the next ACK performs the multiplicative reference
        // update (maxStage reached), resetting the stage counter.
        f.on_sent(2048);
        f.on_ack(0.5, 2048, &c);
        assert_eq!(f.inc_stage, 0);
        assert!(f.wc > wc0, "U below η should raise the reference");
    }

    #[test]
    fn inflight_accounting_saturates() {
        let c = cfg();
        let mut f = HpccFlow::new(&c);
        f.on_sent(100);
        f.on_ack(0.0, 500, &c); // over-ack must not underflow
        assert_eq!(f.inflight_bytes, 0);
    }
}
