#![warn(missing_docs)]

//! # ccfit-cc
//!
//! The pluggable congestion-control subsystem of the CCFIT
//! reproduction: mechanism definitions, parameter sets, and the
//! [`CongestionControl`] trait factoring every scheme into its three
//! roles — congestion **detection**, **marking/feedback**, and
//! **source reaction**.
//!
//! Alongside the 2011 paper's mechanisms (1Q, VOQsw, VOQnet, DBBM,
//! FBICM, ITh, CCFIT) this crate implements two modern rate-based
//! schemes the paper predates:
//!
//! * **DCQCN-style** ([`DcqcnParams`], [`DcqcnFlow`]) — RED/ECN
//!   marking at switch queues, CNP feedback, and the reaction-point
//!   rate machine (alpha-EWMA decrease, fast recovery, additive/hyper
//!   increase);
//! * **HPCC-style** ([`HpccParams`], [`HpccFlow`]) — per-hop inband
//!   network telemetry folded into packet headers, echoed in ACKs,
//!   driving multiplicative window control toward η utilization.
//!
//! The crate is deliberately simulator-agnostic: state machines work
//! in abstract cycles/bytes and the `ccfit` core crate wires them into
//! its tick loop. See DESIGN.md §11 for the trait contract and the
//! phase ordering of the three roles.

pub mod dcqcn;
pub mod hpcc;
pub mod mechanism;
pub mod params;
pub mod traits;

pub use dcqcn::{DcqcnCfg, DcqcnFlow};
pub use hpcc::{fold_u, hop_utilization, HpccCfg, HpccFlow};
pub use mechanism::Mechanism;
pub use params::{
    CctProfile, DcqcnParams, HpccParams, IsolationParams, QueueingScheme, ThrottleParams,
};
pub use traits::{CongestionControl, DetectionPolicy, FeedbackPolicy, ReactionPolicy};
