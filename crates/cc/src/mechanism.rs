//! The congestion-control mechanism registry.
//!
//! The paper evaluates five mechanisms plus DBBM; this crate adds two
//! modern rate-based schemes. Internally each decomposes into three
//! orthogonal pieces (which is also how the ablation benches mix them),
//! now formalised by the [`CongestionControl`](crate::CongestionControl)
//! trait:
//!
//! | Mechanism | Queueing            | Detection                  | Feedback → Reaction            |
//! |-----------|---------------------|----------------------------|--------------------------------|
//! | 1Q        | single queue        | —                          | —                              |
//! | VOQsw     | queue per output    | —                          | —                              |
//! | VOQnet    | queue per dest      | —                          | —                              |
//! | DBBM      | dest mod Q          | —                          | —                              |
//! | FBICM     | NFQ + CFQs          | NFQ occupancy (isolation)  | Stop/Go upstream               |
//! | ITh       | queue per output    | VOQ-occupancy high/low     | FECN/BECN → CCT throttling     |
//! | CCFIT     | NFQ + CFQs          | root-CFQ occupancy         | FECN/BECN → CCT throttling     |
//! | DCQCN     | queue per output    | ECN (RED on queue depth)   | CNP → rate machine             |
//! | HPCC      | queue per output    | INT (per-hop qlen/txBytes) | ACK + INT echo → window machine|

use crate::params::{DcqcnParams, HpccParams, IsolationParams, QueueingScheme, ThrottleParams};
use serde::{Deserialize, Serialize};

/// A congestion-control mechanism: the set evaluated in the paper's §IV
/// plus the modern rate-based schemes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mechanism {
    /// Single queue per input port; the DET-routing-only baseline.
    OneQ,
    /// Switch-level virtual output queues (no explicit CC).
    VoqSw,
    /// Network-level virtual output queues — the "theoretical maximum"
    /// HoL eliminator with per-destination reserved buffers.
    VoqNet {
        /// Reserved capacity per destination queue, in flits (paper:
        /// 4 KB = 64 flits).
        per_queue_flits: u32,
    },
    /// Congested-flow isolation alone.
    Fbicm(IsolationParams),
    /// Destination-Based Buffer Management (ref. \[24\]): packets use
    /// queue `destination mod num_queues`. An evaluated extension, not
    /// part of the paper's Fig. 7–10 set.
    Dbbm {
        /// Number of queues per input port.
        num_queues: usize,
    },
    /// Injection throttling alone over VOQsw switches (IB-style CC).
    Ith(ThrottleParams),
    /// The paper's contribution: isolation + throttling combined, with
    /// the congestion state driven by root-CFQ occupancy.
    Ccfit(IsolationParams, ThrottleParams),
    /// DCQCN-style: ECN marking at switches, CNP feedback from the
    /// destination, alpha-EWMA rate decrease with fast-recovery /
    /// additive / hyper increase at the source.
    Dcqcn(DcqcnParams),
    /// HPCC-style: per-hop INT folded into data packets, echoed in ACKs,
    /// driving multiplicative window control toward η utilization.
    Hpcc(HpccParams),
}

impl Mechanism {
    /// Default-parameter CCFIT.
    pub fn ccfit() -> Self {
        Mechanism::Ccfit(IsolationParams::default(), ThrottleParams::default())
    }

    /// Default-parameter FBICM.
    pub fn fbicm() -> Self {
        Mechanism::Fbicm(IsolationParams::default())
    }

    /// Default-parameter injection throttling.
    pub fn ith() -> Self {
        Mechanism::Ith(ThrottleParams::default())
    }

    /// Default-parameter VOQnet (4 KB per destination queue).
    pub fn voqnet() -> Self {
        Mechanism::VoqNet {
            per_queue_flits: 64,
        }
    }

    /// Default-parameter DBBM (4 queues per port, as in ref. \[24\]'s
    /// cost-effective configurations).
    pub fn dbbm() -> Self {
        Mechanism::Dbbm { num_queues: 4 }
    }

    /// Default-parameter DCQCN-style scheme.
    pub fn dcqcn() -> Self {
        Mechanism::Dcqcn(DcqcnParams::default())
    }

    /// Default-parameter HPCC-style scheme.
    pub fn hpcc() -> Self {
        Mechanism::Hpcc(HpccParams::default())
    }

    /// Queueing scheme this mechanism uses at input ports.
    pub fn queueing(&self) -> QueueingScheme {
        match self {
            Mechanism::OneQ => QueueingScheme::Single,
            Mechanism::VoqSw | Mechanism::Ith(_) | Mechanism::Dcqcn(_) | Mechanism::Hpcc(_) => {
                QueueingScheme::PerOutput
            }
            Mechanism::VoqNet { .. } => QueueingScheme::PerDest,
            Mechanism::Dbbm { .. } => QueueingScheme::DstMod,
            Mechanism::Fbicm(_) | Mechanism::Ccfit(..) => QueueingScheme::Isolating,
        }
    }

    /// Number of DstMod queues (DBBM only).
    pub fn dbbm_queues(&self) -> usize {
        match self {
            Mechanism::Dbbm { num_queues } => *num_queues,
            _ => 0,
        }
    }

    /// Isolation parameters, if the mechanism isolates congested flows.
    pub fn isolation(&self) -> Option<&IsolationParams> {
        match self {
            Mechanism::Fbicm(iso) | Mechanism::Ccfit(iso, _) => Some(iso),
            _ => None,
        }
    }

    /// Throttling parameters, if the mechanism throttles injection via
    /// the IB-style FECN/BECN/CCT loop.
    pub fn throttle(&self) -> Option<&ThrottleParams> {
        match self {
            Mechanism::Ith(t) | Mechanism::Ccfit(_, t) => Some(t),
            _ => None,
        }
    }

    /// DCQCN parameters, if this is the DCQCN-style scheme.
    pub fn dcqcn_params(&self) -> Option<&DcqcnParams> {
        match self {
            Mechanism::Dcqcn(p) => Some(p),
            _ => None,
        }
    }

    /// HPCC parameters, if this is the HPCC-style scheme.
    pub fn hpcc_params(&self) -> Option<&HpccParams> {
        match self {
            Mechanism::Hpcc(p) => Some(p),
            _ => None,
        }
    }

    /// Relative per-port tick cost of this mechanism's switch machinery,
    /// used by the parallel engine's work estimate (shard balancing and
    /// the serial auto-fallback). Coarse by design: a FIFO port is the
    /// unit; per-output VOQs scan a queue set; isolation adds CFQ/CAM
    /// bookkeeping; per-destination VOQs scan a queue per end node. Only
    /// the *ratio* matters, and a wrong ratio costs balance, never
    /// correctness.
    pub fn tick_weight(&self) -> u64 {
        match self.queueing() {
            QueueingScheme::Single => 1,
            QueueingScheme::PerOutput | QueueingScheme::DstMod => 2,
            QueueingScheme::Isolating => 3,
            QueueingScheme::PerDest => 4,
        }
    }

    /// Display name used in reports, figures and CLI parsing.
    pub fn name(&self) -> &'static str {
        match self {
            Mechanism::OneQ => "1Q",
            Mechanism::VoqSw => "VOQsw",
            Mechanism::VoqNet { .. } => "VOQnet",
            Mechanism::Dbbm { .. } => "DBBM",
            Mechanism::Fbicm(_) => "FBICM",
            Mechanism::Ith(_) => "ITh",
            Mechanism::Ccfit(..) => "CCFIT",
            Mechanism::Dcqcn(_) => "DCQCN",
            Mechanism::Hpcc(_) => "HPCC",
        }
    }

    /// Every registered mechanism with default parameters, in canonical
    /// presentation order (paper baselines, DBBM extension, the paper's
    /// contribution, then the modern schemes). This is THE registry: CLI
    /// parsing, figure labels and the shootout all derive from it, so a
    /// new scheme added here appears everywhere automatically.
    pub fn all() -> Vec<Mechanism> {
        vec![
            Mechanism::OneQ,
            Mechanism::VoqSw,
            Mechanism::voqnet(),
            Mechanism::dbbm(),
            Mechanism::fbicm(),
            Mechanism::ith(),
            Mechanism::ccfit(),
            Mechanism::dcqcn(),
            Mechanism::hpcc(),
        ]
    }

    /// The mechanisms evaluated by the 2011 paper (its Fig. 7–10 set).
    pub fn paper_set() -> Vec<Mechanism> {
        vec![
            Mechanism::OneQ,
            Mechanism::VoqSw,
            Mechanism::voqnet(),
            Mechanism::fbicm(),
            Mechanism::ith(),
            Mechanism::ccfit(),
        ]
    }

    /// The modern rate-based schemes this crate adds.
    pub fn modern_set() -> Vec<Mechanism> {
        vec![Mechanism::dcqcn(), Mechanism::hpcc()]
    }

    /// Parse a mechanism by its display name (case-insensitive), with
    /// default parameters. The inverse of [`Mechanism::name`] for every
    /// entry of [`Mechanism::all`].
    pub fn parse(s: &str) -> Option<Mechanism> {
        let want = s.trim().to_ascii_lowercase();
        Mechanism::all()
            .into_iter()
            .find(|m| m.name().to_ascii_lowercase() == want)
    }

    /// Validate parameter sanity (threshold ordering per §III-E; rate /
    /// window ranges for the modern schemes).
    pub fn validate(&self) -> Result<(), String> {
        if let Mechanism::Dbbm { num_queues } = self {
            if *num_queues == 0 {
                return Err("DBBM needs at least one queue".into());
            }
        }
        if let Some(iso) = self.isolation() {
            if iso.num_cfqs == 0 {
                return Err("isolation needs at least one CFQ".into());
            }
            if iso.go_mtus >= iso.stop_mtus {
                return Err("Go threshold must be below Stop".into());
            }
            if iso.propagate_threshold_mtus > iso.stop_mtus {
                return Err("propagation threshold must not exceed Stop".into());
            }
        }
        if let Some(t) = self.throttle() {
            if !(0.0..=1.0).contains(&t.marking_rate) {
                return Err("marking rate must be in [0, 1]".into());
            }
            if t.low_mtus + 1 > t.high_mtus {
                return Err("High/Low thresholds need at least one MTU of distance".into());
            }
            if t.cct_len < 2 {
                return Err("CCT needs at least two entries".into());
            }
        }
        if let Mechanism::Ccfit(iso, t) = self {
            // §III-E: the Stop threshold should sit above High so upstream
            // congested packets are not blocked while marking ramps up.
            if iso.stop_mtus <= t.high_mtus {
                return Err("Stop threshold should be greater than High (§III-E)".into());
            }
        }
        if let Mechanism::Dcqcn(d) = self {
            if d.kmin_mtus >= d.kmax_mtus {
                return Err("DCQCN Kmin must be below Kmax".into());
            }
            if !(0.0..=1.0).contains(&d.pmax) {
                return Err("DCQCN Pmax must be in [0, 1]".into());
            }
            if !(0.0..1.0).contains(&d.ewma_gain) {
                return Err("DCQCN EWMA gain must be in [0, 1)".into());
            }
            if !(d.min_rate_frac > 0.0 && d.min_rate_frac <= 1.0) {
                return Err("DCQCN min rate must be in (0, 1]".into());
            }
            if d.rate_ai_frac <= 0.0 || d.rate_hai_frac <= 0.0 {
                return Err("DCQCN increase steps must be positive".into());
            }
        }
        if let Mechanism::Hpcc(h) = self {
            if !(0.0 < h.eta && h.eta <= 1.0) {
                return Err("HPCC eta must be in (0, 1]".into());
            }
            if !(0.0..1.0).contains(&h.alpha) {
                return Err("HPCC alpha must be in [0, 1)".into());
            }
            if !(0.0..1.0).contains(&h.beta) {
                return Err("HPCC beta must be in [0, 1)".into());
            }
            if !(h.w_min_bytes > 0.0 && h.w_min_bytes <= h.w_max_bytes) {
                return Err("HPCC window bounds must satisfy 0 < min <= max".into());
            }
            if h.t_ns <= 0.0 {
                return Err("HPCC INT window must be positive".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_matches_the_table() {
        assert_eq!(Mechanism::OneQ.queueing(), QueueingScheme::Single);
        assert_eq!(Mechanism::VoqSw.queueing(), QueueingScheme::PerOutput);
        assert_eq!(Mechanism::voqnet().queueing(), QueueingScheme::PerDest);
        assert_eq!(Mechanism::fbicm().queueing(), QueueingScheme::Isolating);
        assert_eq!(Mechanism::ith().queueing(), QueueingScheme::PerOutput);
        assert_eq!(Mechanism::ccfit().queueing(), QueueingScheme::Isolating);
        assert_eq!(Mechanism::dcqcn().queueing(), QueueingScheme::PerOutput);
        assert_eq!(Mechanism::hpcc().queueing(), QueueingScheme::PerOutput);

        assert!(Mechanism::OneQ.isolation().is_none());
        assert!(Mechanism::fbicm().isolation().is_some());
        assert!(Mechanism::fbicm().throttle().is_none());
        assert!(Mechanism::ith().throttle().is_some());
        assert!(Mechanism::ith().isolation().is_none());
        assert!(Mechanism::ccfit().isolation().is_some());
        assert!(Mechanism::ccfit().throttle().is_some());
        // The modern schemes carry neither the IB throttle loop nor
        // isolation — their CC state lives in their own param sets.
        assert!(Mechanism::dcqcn().throttle().is_none());
        assert!(Mechanism::dcqcn().isolation().is_none());
        assert!(Mechanism::dcqcn().dcqcn_params().is_some());
        assert!(Mechanism::hpcc().throttle().is_none());
        assert!(Mechanism::hpcc().hpcc_params().is_some());
    }

    #[test]
    fn names_are_the_paper_names() {
        assert_eq!(Mechanism::OneQ.name(), "1Q");
        assert_eq!(Mechanism::voqnet().name(), "VOQnet");
        assert_eq!(Mechanism::ccfit().name(), "CCFIT");
        assert_eq!(Mechanism::dcqcn().name(), "DCQCN");
        assert_eq!(Mechanism::hpcc().name(), "HPCC");
    }

    #[test]
    fn registry_roundtrips_through_parse() {
        for m in Mechanism::all() {
            assert_eq!(Mechanism::parse(m.name()), Some(m.clone()), "{}", m.name());
            // case-insensitive
            assert_eq!(
                Mechanism::parse(&m.name().to_ascii_uppercase()),
                Some(m.clone())
            );
            assert_eq!(Mechanism::parse(&m.name().to_ascii_lowercase()), Some(m));
        }
        assert_eq!(Mechanism::parse("no-such-scheme"), None);
    }

    #[test]
    fn registry_sets_are_consistent() {
        assert_eq!(Mechanism::all().len(), 9);
        assert_eq!(Mechanism::paper_set().len(), 6);
        assert_eq!(Mechanism::modern_set().len(), 2);
        let all = Mechanism::all();
        for m in Mechanism::paper_set()
            .into_iter()
            .chain(Mechanism::modern_set())
        {
            assert!(all.contains(&m), "{} missing from all()", m.name());
        }
        // Names are unique — parse() would be ambiguous otherwise.
        let mut names: Vec<_> = all.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn all_defaults_validate() {
        for m in Mechanism::all() {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        }
    }

    #[test]
    fn inverted_stop_go_is_rejected() {
        let iso = IsolationParams {
            go_mtus: 12,
            ..IsolationParams::default()
        };
        assert!(Mechanism::Fbicm(iso).validate().is_err());
    }

    #[test]
    fn ccfit_stop_must_exceed_high() {
        let iso = IsolationParams {
            stop_mtus: 3,
            go_mtus: 1,
            propagate_threshold_mtus: 1,
            ..IsolationParams::default()
        };
        let err = Mechanism::Ccfit(iso, ThrottleParams::default())
            .validate()
            .unwrap_err();
        assert!(err.contains("Stop"));
    }

    #[test]
    fn bad_marking_rate_is_rejected() {
        let t = ThrottleParams {
            marking_rate: 1.5,
            ..ThrottleParams::default()
        };
        assert!(Mechanism::Ith(t).validate().is_err());
    }

    #[test]
    fn high_low_distance_enforced() {
        let t = ThrottleParams {
            high_mtus: 2,
            low_mtus: 2,
            ..ThrottleParams::default()
        };
        assert!(Mechanism::Ith(t).validate().is_err());
    }

    #[test]
    fn dcqcn_hpcc_param_ranges_enforced() {
        let dcqcn = |f: fn(&mut DcqcnParams)| {
            let mut d = DcqcnParams::default();
            f(&mut d);
            Mechanism::Dcqcn(d)
        };
        assert!(dcqcn(|d| d.kmin_mtus = 8).validate().is_err());
        assert!(dcqcn(|d| d.pmax = 2.0).validate().is_err());
        assert!(dcqcn(|d| d.min_rate_frac = 0.0).validate().is_err());

        let hpcc = |f: fn(&mut HpccParams)| {
            let mut h = HpccParams::default();
            f(&mut h);
            Mechanism::Hpcc(h)
        };
        assert!(hpcc(|h| h.eta = 0.0).validate().is_err());
        assert!(hpcc(|h| h.beta = 1.0).validate().is_err());
        assert!(hpcc(|h| h.w_min_bytes = 1e9).validate().is_err());
    }

    #[test]
    fn dbbm_decomposition() {
        let d = Mechanism::dbbm();
        assert_eq!(d.queueing(), QueueingScheme::DstMod);
        assert_eq!(d.dbbm_queues(), 4);
        assert_eq!(d.name(), "DBBM");
        assert!(d.isolation().is_none());
        assert!(d.throttle().is_none());
        d.validate().unwrap();
    }

    #[test]
    fn dbbm_zero_queues_rejected() {
        assert!(Mechanism::Dbbm { num_queues: 0 }.validate().is_err());
        assert_eq!(Mechanism::OneQ.dbbm_queues(), 0);
    }
}
