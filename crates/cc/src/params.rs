//! Congestion-control parameter sets.
//!
//! The paper's mechanisms (§III-E, §IV-A) decompose into queueing ×
//! isolation × throttling; the modern rate-based schemes add ECN/CNP
//! (DCQCN-style) and INT/window (HPCC-style) parameter sets. All time
//! constants are nanoseconds in the simulated clock; the defaults for
//! the modern schemes are scaled to the paper's microsecond-range
//! hotspot scenarios rather than datacenter RTTs, keeping the control
//! loops as lively relative to the traffic as their originals.

use serde::{Deserialize, Serialize};

/// How an input port's RAM is organised into queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueingScheme {
    /// One FIFO per input port ("1Q") — no HoL-blocking reduction at all.
    Single,
    /// Virtual output queues at switch level (VOQsw): one queue per
    /// output port of the switch.
    PerOutput,
    /// Virtual output queues at network level (VOQnet): one queue per
    /// destination end node, with a reserved per-queue capacity.
    PerDest,
    /// FBICM/CCFIT dynamic organisation: one normal flow queue plus a
    /// small number of congested flow queues.
    Isolating,
    /// DBBM (paper ref. \[24\]): a fixed set of queues selected by
    /// `destination mod Q` — cheap HoL reduction without congestion
    /// tracking. Implemented as an extension beyond the paper's
    /// evaluated set.
    DstMod,
}

/// Congested-flow-isolation parameters (the FBICM side of CCFIT).
///
/// The default detection threshold is 8 MTUs (a 25 % fill ratio of the
/// 64 KB port RAM): early enough to isolate a hotspot within a few
/// microseconds, late enough that the transient bursts released when an
/// upstream Stop clears do not get mis-detected as new congestion
/// (§III-E: "not too early and not too late").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsolationParams {
    /// CFQs per input port (the paper uses 2).
    pub num_cfqs: usize,
    /// NFQ occupancy (in MTUs) that triggers congestion detection and
    /// allocates a CFQ + CAM line for the blocked destination.
    pub detect_threshold_mtus: u32,
    /// CFQ occupancy (MTUs) at which the congestion information is
    /// propagated upstream (`CfqAlloc`), so the upstream hop starts
    /// isolating this flow before the Stop threshold is reached.
    pub propagate_threshold_mtus: u32,
    /// CFQ Stop threshold (MTUs): ask upstream to pause this congested
    /// flow (paper: 10).
    pub stop_mtus: u32,
    /// CFQ Go threshold (MTUs): resume (paper: 4).
    pub go_mtus: u32,
    /// Cycles a CFQ must remain empty (and in Go state) before its
    /// resources are deallocated, avoiding allocation thrash.
    pub dealloc_linger_cycles: u64,
    /// CAM lines per *output* port for tracking congestion trees
    /// propagated from downstream.
    pub out_cam_lines: usize,
}

impl Default for IsolationParams {
    fn default() -> Self {
        Self {
            num_cfqs: 2,
            detect_threshold_mtus: 8,
            propagate_threshold_mtus: 2,
            stop_mtus: 10,
            go_mtus: 4,
            dealloc_linger_cycles: 1024,
            out_cam_lines: 4,
        }
    }
}

/// Shape of the Congestion Control Table: how the injection rate delay
/// grows with the CCTI. The paper only says "CCT values are typically
/// arranged in such a way that the higher the index, the greater the
/// IRD"; both common arrangements are provided.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CctProfile {
    /// `IRD(i) = i × unit` — gentle, proportional response.
    Linear,
    /// `IRD(i) = unit × (2^(i / period) − 1)` — doubling response every
    /// `period` BECNs, the aggressive arrangement used by several IB CC
    /// studies.
    Exponential {
        /// CCTI steps per doubling.
        period: usize,
    },
}

/// Injection-throttling parameters (the InfiniBand-CC side of CCFIT,
/// §II and §IV-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThrottleParams {
    /// Fraction of packets crossing a congestion-state output port that
    /// get FECN-marked (paper: 0.85).
    pub marking_rate: f64,
    /// Only packets larger than this (bytes) are FECN-marked
    /// (`Packet_Size`).
    pub packet_size_threshold_bytes: u32,
    /// `CCTI_Timer`: nanoseconds between automatic CCTI decrements
    /// (paper: 8000 ns).
    pub ccti_timer_ns: f64,
    /// `CCTI_Increase`: CCTI increment per received BECN (IB default 1).
    pub ccti_increase: u16,
    /// Number of entries in the Congestion Control Table.
    pub cct_len: usize,
    /// Base unit of the injection rate delay in nanoseconds.
    pub cct_unit_ns: f64,
    /// Arrangement of the CCT entries.
    pub cct_profile: CctProfile,
    /// Congestion-detection High threshold in MTUs. For ITh this is
    /// compared against the aggregate VOQ occupancy of an output port;
    /// for CCFIT against each root CFQ's occupancy (paper: 4).
    pub high_mtus: u32,
    /// Low threshold (hysteresis exit, paper: 2). Kept at least one MTU
    /// below High per ref. \[12\].
    pub low_mtus: u32,
    /// CCFIT only: how long (ns) a root CFQ must stay above High before
    /// its output port enters the congestion state. Discriminates
    /// sustained oversubscription (occupancy pinned above High) from the
    /// decaying burst a faster upstream link can momentarily deposit in
    /// front of a full-rate-draining port — marking the latter would
    /// throttle victims. Ignored by ITh, whose plain High/Low behaviour
    /// (and resulting "saw-shape" instability) is a finding of the paper.
    pub congestion_entry_delay_ns: f64,
    /// CCFIT only: window (ns) over which each root CFQ's drain rate is
    /// measured. A CFQ only drives its output into the congestion state
    /// while it is *starved* — receiving clearly less than the output
    /// link's capacity — which separates true oversubscription from a
    /// full-rate flow with a standing queue.
    pub starvation_window_ns: f64,
}

impl Default for ThrottleParams {
    fn default() -> Self {
        Self {
            marking_rate: 0.85,
            packet_size_threshold_bytes: 256,
            ccti_timer_ns: 8000.0,
            ccti_increase: 1,
            cct_len: 128,
            cct_unit_ns: 400.0,
            cct_profile: CctProfile::Linear,
            high_mtus: 4,
            low_mtus: 2,
            congestion_entry_delay_ns: 13_000.0,
            starvation_window_ns: 13_000.0,
        }
    }
}

/// DCQCN-style parameters: RED/ECN marking at switch output queues, CNP
/// feedback from the destination, and the DCQCN reaction-point rate
/// machine (alpha-EWMA multiplicative decrease, fast recovery, then
/// additive / hyper increase).
///
/// The field vocabulary follows the ns3-cncp `CC_MODE` configuration
/// (`EWMA_GAIN`, `RP_TIMER`, `RATE_DECREASE_INTERVAL`,
/// `FAST_RECOVERY_TIMES`, `RATE_AI` / `RATE_HAI` / `MIN_RATE`), with
/// rates expressed as fractions of the end-node injection line rate so
/// the scheme is independent of the configured link bandwidth, and time
/// constants scaled to this simulator's microsecond-range scenarios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcqcnParams {
    /// ECN marking threshold `Kmin` in MTUs of aggregate VOQ occupancy
    /// in front of an output port: below it nothing is marked.
    pub kmin_mtus: u32,
    /// ECN marking threshold `Kmax` in MTUs: at or above it every data
    /// packet is marked CE.
    pub kmax_mtus: u32,
    /// Marking probability at `Kmax` (RED ramp slope `Pmax`).
    pub pmax: f64,
    /// Minimum spacing (ns) between CNPs the destination generates for
    /// one source (the NP-side CNP timer).
    pub cnp_interval_ns: f64,
    /// `EWMA_GAIN` g for the alpha update (DCQCN default 1/256).
    pub ewma_gain: f64,
    /// `ALPHA_RESUME_INTERVAL` (ns): alpha decays by (1−g) each interval
    /// without a CNP.
    pub alpha_resume_interval_ns: f64,
    /// `RATE_DECREASE_INTERVAL` (ns): minimum spacing between
    /// multiplicative rate cuts, so a burst of CNPs counts once.
    pub rate_decrease_interval_ns: f64,
    /// `RP_TIMER` (ns): period of the time-driven rate-increase events.
    pub rp_timer_ns: f64,
    /// `BYTE_COUNTER`: bytes sent per byte-driven rate-increase event.
    pub byte_counter_bytes: u64,
    /// `FAST_RECOVERY_TIMES` F: increase events spent halving back to
    /// the pre-cut target rate before additive increase begins.
    pub fast_recovery_times: u32,
    /// `RATE_AI` as a fraction of line rate added to the target rate per
    /// additive-increase event.
    pub rate_ai_frac: f64,
    /// `RATE_HAI` fraction per hyper-increase event (after F+1 stages).
    pub rate_hai_frac: f64,
    /// `MIN_RATE` floor as a fraction of line rate.
    pub min_rate_frac: f64,
    /// Wire overhead (bytes) charged per CNP control packet.
    pub cnp_overhead_bytes: u16,
}

impl Default for DcqcnParams {
    fn default() -> Self {
        Self {
            kmin_mtus: 1,
            kmax_mtus: 8,
            pmax: 0.2,
            cnp_interval_ns: 2_000.0,
            ewma_gain: 0.003_906_25, // EWMA_GAIN = 1/256
            alpha_resume_interval_ns: 8_000.0,
            rate_decrease_interval_ns: 4_000.0,
            rp_timer_ns: 9_000.0,
            byte_counter_bytes: 64 * 1024,
            fast_recovery_times: 1, // FAST_RECOVERY_TIMES
            rate_ai_frac: 0.01,
            rate_hai_frac: 0.05,
            min_rate_frac: 0.01,
            cnp_overhead_bytes: 16,
        }
    }
}

/// HPCC-style parameters: per-hop inband network telemetry (queue
/// depth and transmitted bytes) folded into the packet header, echoed
/// back in per-packet ACKs, driving a sender window adjusted
/// multiplicatively toward a target utilization η with a maxStage
/// additive-increase phase.
///
/// `alpha` = 0.85, `beta` = 0.50 and `eta` = 0.95 are the proven
/// parameter set from the HPCC exemplar (SNIPPETS.md Snippet 2);
/// `w_ai_bytes` = 1000 is its `W_AI`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HpccParams {
    /// Target link utilization η (`U_TARGET`).
    pub eta: f64,
    /// EWMA weight on the previous utilization estimate when folding in
    /// a new INT sample (α = 0.85).
    pub alpha: f64,
    /// Maximum fraction of the reference window a single multiplicative
    /// update may remove (β = 0.50) — bounds the reaction to one stale
    /// or extreme INT sample.
    pub beta: f64,
    /// INT measurement window T (ns): the per-output txBytes counter and
    /// the qlen normalisation both use a bandwidth-delay product of
    /// `link_bw × T`.
    pub t_ns: f64,
    /// `maxStage`: additive-increase steps allowed between
    /// multiplicative reference updates.
    pub max_stage: u32,
    /// `W_AI`: additive window increment in bytes per ACK stage.
    pub w_ai_bytes: f64,
    /// Initial per-destination window (bytes).
    pub w_init_bytes: f64,
    /// Window floor (bytes) — keep at least one MTU in flight so the
    /// flow can always probe.
    pub w_min_bytes: f64,
    /// Window ceiling (bytes).
    pub w_max_bytes: f64,
    /// Wire overhead (bytes) charged per ACK control packet.
    pub ack_overhead_bytes: u16,
    /// Wire overhead (bytes) charged per data packet for the INT header
    /// it carries.
    pub int_overhead_bytes: u16,
}

impl Default for HpccParams {
    fn default() -> Self {
        Self {
            eta: 0.95,   // U_TARGET
            alpha: 0.85, // Snippet 2 α
            beta: 0.50,  // Snippet 2 β
            t_ns: 1_000.0,
            max_stage: 5,
            w_ai_bytes: 1_000.0, // W_AI
            w_init_bytes: 16_384.0,
            w_min_bytes: 2_048.0,
            w_max_bytes: 65_536.0,
            ack_overhead_bytes: 32,
            int_overhead_bytes: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let iso = IsolationParams::default();
        assert_eq!(iso.num_cfqs, 2);
        assert_eq!(iso.stop_mtus, 10);
        assert_eq!(iso.go_mtus, 4);
        let t = ThrottleParams::default();
        assert_eq!(t.marking_rate, 0.85);
        assert_eq!(t.ccti_timer_ns, 8000.0);
        assert_eq!(t.high_mtus, 4);
        assert_eq!(t.low_mtus, 2);
    }

    #[test]
    fn snippet_defaults() {
        let d = DcqcnParams::default();
        assert_eq!(d.ewma_gain, 1.0 / 256.0);
        assert_eq!(d.fast_recovery_times, 1);
        let h = HpccParams::default();
        assert_eq!(h.eta, 0.95);
        assert_eq!(h.alpha, 0.85);
        assert_eq!(h.beta, 0.50);
        assert_eq!(h.w_ai_bytes, 1_000.0);
    }
}
