//! The `CongestionControl` trait: the three roles every closed-loop CC
//! scheme plays, factored out of the switch/endnode code paths.
//!
//! A congestion-control mechanism is the composition of
//!
//! 1. **detection** — *where in the network congestion is recognised*:
//!    a queue-occupancy trigger at switch output ports (ITh's VOQ sum,
//!    CCFIT's root CFQs, DCQCN's RED ramp) or continuous telemetry
//!    (HPCC's INT), evaluated during the switch phases of the tick
//!    (Phase 5 congestion-state for the paper schemes, Phase 6 transmit
//!    for per-packet ECN/INT);
//! 2. **marking / feedback** — *how the signal travels to the source*:
//!    FECN bits turned into BECNs at the destination, ECN-CE bits turned
//!    into CNPs, or INT records echoed in ACKs. Feedback packets are
//!    always generated at end nodes during Phase 3b (node-bound
//!    deliveries), which the parallel engine keeps serial — so feedback
//!    is byte-identical across thread counts by construction;
//! 3. **source reaction** — *what the injecting end node does about it*:
//!    CCT-indexed inter-packet delays (IB-style), a DCQCN rate machine,
//!    or an HPCC window machine, all applied in the adapter's injection
//!    arbitration (Phase 8 side of the end node).
//!
//! The simulator consumes these three policies when assembling a run;
//! mechanisms with `None` policies cost nothing at tick time. The six
//! paper mechanisms map onto the trait without behavior change — their
//! policies carry exactly the parameter structs the switch/endnode
//! code already derived its configuration from, which is pinned by the
//! golden SimReport snapshots.

use crate::mechanism::Mechanism;
use crate::params::{DcqcnParams, HpccParams, IsolationParams, ThrottleParams};

/// Where and how congestion is recognised (role 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectionPolicy<'a> {
    /// No explicit congestion detection (1Q, VOQsw, VOQnet, DBBM).
    None,
    /// Isolation-only detection: NFQ occupancy allocates CFQs/CAM lines
    /// and drives Stop/Go, but no marking results (FBICM).
    Isolation(&'a IsolationParams),
    /// ITh: aggregate VOQ occupancy in front of an output port crosses
    /// the High/Low hysteresis thresholds.
    OutputOccupancy(&'a ThrottleParams),
    /// CCFIT: a *root* CFQ's occupancy (plus starvation + entry-delay
    /// filters) drives the output's congestion state; isolation runs
    /// alongside.
    RootCfq(&'a IsolationParams, &'a ThrottleParams),
    /// DCQCN: RED-style probabilistic marking ramp on the aggregate
    /// queue depth in front of an output port (Kmin/Kmax/Pmax).
    EcnQueue(&'a DcqcnParams),
    /// HPCC: no trigger at all — every data packet continuously samples
    /// per-hop queue depth and transmitted bytes over a window T.
    IntWindow(&'a HpccParams),
}

/// How the congestion signal travels back to the source (role 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeedbackPolicy<'a> {
    /// No end-to-end feedback (the queueing-only schemes and FBICM,
    /// whose Stop/Go signalling is hop-by-hop link-level control).
    None,
    /// IB-style: FECN bit set on data packets crossing a congested
    /// output; the destination returns one BECN per marked packet.
    FecnBecn(&'a ThrottleParams),
    /// DCQCN: ECN-CE bit; the destination returns CNPs, rate-limited to
    /// one per `cnp_interval_ns` per source.
    EcnCnp(&'a DcqcnParams),
    /// HPCC: the INT record folded along the path is echoed to the
    /// source in a per-packet ACK.
    IntAck(&'a HpccParams),
}

/// What the source does with the feedback (role 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReactionPolicy<'a> {
    /// No source reaction.
    None,
    /// IB-style CCT throttling: BECNs bump a per-destination CCTI whose
    /// CCT entry is an inter-packet injection delay; a timer decays it.
    CctThrottle(&'a ThrottleParams),
    /// DCQCN rate machine: alpha-EWMA multiplicative decrease on CNPs,
    /// fast-recovery / additive / hyper increase on timer + byte
    /// counters (see [`crate::DcqcnFlow`]).
    DcqcnRate(&'a DcqcnParams),
    /// HPCC window machine: multiplicative adjustment of a
    /// per-destination byte window toward η utilization
    /// (see [`crate::HpccFlow`]).
    HpccWindow(&'a HpccParams),
}

/// The three-role decomposition of a congestion-control scheme.
///
/// Implemented by [`Mechanism`]; the simulator assembles its switch
/// marking configuration, destination feedback generators and adapter
/// reaction state from these policies alone.
pub trait CongestionControl {
    /// Role 1: how congestion is recognised.
    fn detection(&self) -> DetectionPolicy<'_>;
    /// Role 2: how the signal reaches the source.
    fn feedback(&self) -> FeedbackPolicy<'_>;
    /// Role 3: how the source reacts.
    fn reaction(&self) -> ReactionPolicy<'_>;

    /// True if any role is active (i.e. the scheme is more than plain
    /// queueing).
    fn is_closed_loop(&self) -> bool {
        !matches!(self.feedback(), FeedbackPolicy::None)
    }
}

impl CongestionControl for Mechanism {
    fn detection(&self) -> DetectionPolicy<'_> {
        match self {
            Mechanism::OneQ
            | Mechanism::VoqSw
            | Mechanism::VoqNet { .. }
            | Mechanism::Dbbm { .. } => DetectionPolicy::None,
            Mechanism::Fbicm(iso) => DetectionPolicy::Isolation(iso),
            Mechanism::Ith(t) => DetectionPolicy::OutputOccupancy(t),
            Mechanism::Ccfit(iso, t) => DetectionPolicy::RootCfq(iso, t),
            Mechanism::Dcqcn(d) => DetectionPolicy::EcnQueue(d),
            Mechanism::Hpcc(h) => DetectionPolicy::IntWindow(h),
        }
    }

    fn feedback(&self) -> FeedbackPolicy<'_> {
        match self {
            Mechanism::OneQ
            | Mechanism::VoqSw
            | Mechanism::VoqNet { .. }
            | Mechanism::Dbbm { .. }
            | Mechanism::Fbicm(_) => FeedbackPolicy::None,
            Mechanism::Ith(t) | Mechanism::Ccfit(_, t) => FeedbackPolicy::FecnBecn(t),
            Mechanism::Dcqcn(d) => FeedbackPolicy::EcnCnp(d),
            Mechanism::Hpcc(h) => FeedbackPolicy::IntAck(h),
        }
    }

    fn reaction(&self) -> ReactionPolicy<'_> {
        match self {
            Mechanism::OneQ
            | Mechanism::VoqSw
            | Mechanism::VoqNet { .. }
            | Mechanism::Dbbm { .. }
            | Mechanism::Fbicm(_) => ReactionPolicy::None,
            Mechanism::Ith(t) | Mechanism::Ccfit(_, t) => ReactionPolicy::CctThrottle(t),
            Mechanism::Dcqcn(d) => ReactionPolicy::DcqcnRate(d),
            Mechanism::Hpcc(h) => ReactionPolicy::HpccWindow(h),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mechanisms_map_to_legacy_policies() {
        // The trait mapping must agree with the legacy accessors the
        // simulator derived its configuration from pre-refactor — this
        // is the compile-time half of the no-behavior-change guarantee
        // (the golden snapshots are the runtime half).
        for m in Mechanism::paper_set() {
            match (m.detection(), m.throttle(), m.isolation()) {
                (DetectionPolicy::None, None, None) => {}
                (DetectionPolicy::Isolation(iso), None, Some(iso2)) => assert_eq!(iso, iso2),
                (DetectionPolicy::OutputOccupancy(t), Some(t2), None) => assert_eq!(t, t2),
                (DetectionPolicy::RootCfq(iso, t), Some(t2), Some(iso2)) => {
                    assert_eq!(iso, iso2);
                    assert_eq!(t, t2);
                }
                other => panic!("{}: inconsistent mapping {:?}", m.name(), other.0),
            }
            match (m.feedback(), m.throttle()) {
                (FeedbackPolicy::None, None) => {}
                (FeedbackPolicy::FecnBecn(t), Some(t2)) => assert_eq!(t, t2),
                _ => panic!("{}: feedback/throttle disagree", m.name()),
            }
        }
    }

    #[test]
    fn closed_loop_classification() {
        assert!(!Mechanism::OneQ.is_closed_loop());
        assert!(!Mechanism::fbicm().is_closed_loop()); // Stop/Go is hop-by-hop
        assert!(Mechanism::ith().is_closed_loop());
        assert!(Mechanism::ccfit().is_closed_loop());
        assert!(Mechanism::dcqcn().is_closed_loop());
        assert!(Mechanism::hpcc().is_closed_loop());
    }

    #[test]
    fn modern_policies_carry_their_params() {
        match Mechanism::dcqcn().detection() {
            DetectionPolicy::EcnQueue(d) => assert_eq!(d.kmax_mtus, 8),
            other => panic!("unexpected {other:?}"),
        }
        match Mechanism::hpcc().reaction() {
            ReactionPolicy::HpccWindow(h) => assert_eq!(h.eta, 0.95),
            other => panic!("unexpected {other:?}"),
        }
    }
}
