//! The iSLIP crossbar scheduler (McKeown, paper ref. \[31\]).
//!
//! iSLIP matches input ports to output ports with rotating round-robin
//! *grant* pointers at the outputs and *accept* pointers at the inputs.
//! Its desynchronization property gives 100 % throughput under uniform
//! admissible traffic and — crucial for the paper's fairness study
//! (§IV-C, ref. \[12\]) — serves competing input ports of a hot output in
//! strict round-robin, so every input port of a congested switch gets an
//! equal share of the bottleneck link.
//!
//! The scheduler is packet-granular: a matched pair stays busy for the
//! packet's serialization time (virtual cut-through), and only idle
//! inputs/outputs participate in a cycle's matching.

/// iSLIP state for one switch.
#[derive(Debug, Clone)]
pub struct Islip {
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
    iterations: usize,
    // Per-call scratch, kept across calls so the per-cycle hot path does
    // not allocate. Holds no state between calls (reset on entry).
    in_matched: Vec<bool>,
    out_matched: Vec<bool>,
    grants: Vec<Option<usize>>,
}

impl Islip {
    /// Create state for `ports` ports and the given number of matching
    /// iterations per cycle (the classic hardware choice is 1–4; more
    /// iterations fill the crossbar more completely).
    pub fn new(ports: usize, iterations: usize) -> Self {
        assert!(iterations >= 1);
        Self {
            grant_ptr: vec![0; ports],
            accept_ptr: vec![0; ports],
            iterations,
            in_matched: vec![false; ports],
            out_matched: vec![false; ports],
            grants: vec![None; ports],
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.grant_ptr.len()
    }

    /// Compute a matching.
    ///
    /// * `requests[i]` — outputs requested by input `i` this cycle (an
    ///   input lists an output once regardless of how many of its queues
    ///   want it),
    /// * `in_free[i]` / `out_free[o]` — availability (an input or output
    ///   mid-transmission is not free).
    ///
    /// Returns `(input, output)` pairs. Pointers advance only for matches
    /// made in the first iteration, per the iSLIP specification — this is
    /// what guarantees round-robin fairness among persistent contenders.
    pub fn schedule(
        &mut self,
        requests: &[Vec<usize>],
        in_free: &[bool],
        out_free: &[bool],
    ) -> Vec<(usize, usize)> {
        let mut matches = Vec::new();
        self.schedule_into(requests, in_free, out_free, &mut matches);
        matches
    }

    /// Allocation-free `schedule`: append the `(input, output)` pairs to
    /// `matches`, reusing scratch kept inside the scheduler.
    pub fn schedule_into(
        &mut self,
        requests: &[Vec<usize>],
        in_free: &[bool],
        out_free: &[bool],
        matches: &mut Vec<(usize, usize)>,
    ) {
        let n = self.ports();
        debug_assert_eq!(requests.len(), n);
        self.in_matched.iter_mut().for_each(|m| *m = false);
        self.out_matched.iter_mut().for_each(|m| *m = false);

        for iter in 0..self.iterations {
            // Grant phase: per output, collect requesting inputs and
            // grant the one closest to the grant pointer.
            self.grants.iter_mut().for_each(|g| *g = None); // per input: granted output
            for (out, &ofree) in out_free.iter().enumerate() {
                if !ofree || self.out_matched[out] {
                    continue;
                }
                let mut chosen: Option<usize> = None;
                let mut best_rank = usize::MAX;
                for (inp, reqs) in requests.iter().enumerate() {
                    if !in_free[inp] || self.in_matched[inp] {
                        continue;
                    }
                    if !reqs.contains(&out) {
                        continue;
                    }
                    let rank = (inp + n - self.grant_ptr[out]) % n;
                    if rank < best_rank {
                        best_rank = rank;
                        chosen = Some(inp);
                    }
                }
                if let Some(inp) = chosen {
                    // An input can receive several grants; record the one
                    // it will prefer in the accept phase later. Store all
                    // grants per input.
                    // (We keep only the best per accept pointer below, so
                    // collect into a per-input list.)
                    self.grants[inp] = match self.grants[inp] {
                        None => Some(out),
                        Some(prev) => {
                            let rp = (prev + n - self.accept_ptr[inp]) % n;
                            let ro = (out + n - self.accept_ptr[inp]) % n;
                            Some(if ro < rp { out } else { prev })
                        }
                    };
                }
            }
            // Accept phase: each input accepts the grant closest to its
            // accept pointer (already reduced above).
            let mut any = false;
            for inp in 0..n {
                if let Some(out) = self.grants[inp] {
                    self.in_matched[inp] = true;
                    self.out_matched[out] = true;
                    matches.push((inp, out));
                    any = true;
                    if iter == 0 {
                        self.grant_ptr[out] = (inp + 1) % n;
                        self.accept_ptr[inp] = (out + 1) % n;
                    }
                }
            }
            if !any {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn free(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    #[test]
    fn no_requests_no_matches() {
        let mut s = Islip::new(4, 2);
        let m = s.schedule(&[vec![], vec![], vec![], vec![]], &free(4), &free(4));
        assert!(m.is_empty());
    }

    #[test]
    fn matching_is_conflict_free() {
        let mut s = Islip::new(4, 4);
        // Every input wants every output.
        let reqs: Vec<Vec<usize>> = (0..4).map(|_| (0..4).collect()).collect();
        for _ in 0..10 {
            let m = s.schedule(&reqs, &free(4), &free(4));
            let mut ins: Vec<usize> = m.iter().map(|&(i, _)| i).collect();
            let mut outs: Vec<usize> = m.iter().map(|&(_, o)| o).collect();
            ins.sort();
            outs.sort();
            ins.dedup();
            outs.dedup();
            assert_eq!(ins.len(), m.len(), "no input matched twice");
            assert_eq!(outs.len(), m.len(), "no output matched twice");
        }
    }

    #[test]
    fn full_contention_saturates_with_enough_iterations() {
        let mut s = Islip::new(4, 4);
        let reqs: Vec<Vec<usize>> = (0..4).map(|_| (0..4).collect()).collect();
        // After desynchronization, every cycle should produce a perfect
        // matching.
        let mut sizes = Vec::new();
        for _ in 0..8 {
            sizes.push(s.schedule(&reqs, &free(4), &free(4)).len());
        }
        assert!(sizes[4..].iter().all(|&l| l == 4), "{sizes:?}");
    }

    #[test]
    fn hot_output_is_served_round_robin() {
        // Three inputs permanently requesting output 0: over 3k cycles
        // each must get exactly k grants (±1) — the fairness property the
        // paper leans on.
        let mut s = Islip::new(4, 1);
        let reqs = vec![vec![0], vec![0], vec![0], vec![]];
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for _ in 0..300 {
            for &(i, o) in &s.schedule(&reqs, &free(4), &free(4)) {
                assert_eq!(o, 0);
                *counts.entry(i).or_default() += 1;
            }
        }
        assert_eq!(counts.len(), 3);
        let max = counts.values().max().unwrap();
        let min = counts.values().min().unwrap();
        assert!(max - min <= 1, "round robin is exact: {counts:?}");
    }

    #[test]
    fn busy_ports_are_excluded() {
        let mut s = Islip::new(3, 2);
        let reqs = vec![vec![0, 1], vec![0], vec![2]];
        let mut in_free = free(3);
        in_free[1] = false;
        let mut out_free = free(3);
        out_free[2] = false;
        let m = s.schedule(&reqs, &in_free, &out_free);
        assert!(m.iter().all(|&(i, _)| i != 1));
        assert!(m.iter().all(|&(_, o)| o != 2));
        // Input 0 still matched somewhere.
        assert!(m.iter().any(|&(i, _)| i == 0));
    }

    #[test]
    fn permutation_requests_match_perfectly() {
        let mut s = Islip::new(5, 1);
        let reqs: Vec<Vec<usize>> = (0..5).map(|i| vec![(i + 2) % 5]).collect();
        let m = s.schedule(&reqs, &free(5), &free(5));
        assert_eq!(
            m.len(),
            5,
            "non-conflicting requests all granted in one iteration"
        );
    }

    #[test]
    fn pointer_desynchronization_reaches_the_full_matching() {
        // Input 0 requests outputs {0,1}; input 1 requests {0}. Greedy
        // grant may give out0 to input 0 in the first cycle (leaving
        // input 1 hungry), but once the pointers desynchronize the
        // schedule must settle on the perfect matching (0->1, 1->0).
        let mut s = Islip::new(2, 2);
        let reqs = vec![vec![0, 1], vec![0]];
        let mut input1_served = 0;
        let mut total = 0;
        for _ in 0..20 {
            let m = s.schedule(&reqs, &free(2), &free(2));
            assert!(!m.is_empty(), "work conservation: something matches");
            total += m.len();
            if m.iter().any(|&(i, _)| i == 1) {
                input1_served += 1;
            }
        }
        // Input 1 is never starved of its only output...
        assert!(input1_served >= 7, "input 1 served {input1_served}/20");
        // ...and the crossbar does better than a single match per cycle
        // on average (the second iteration / desynchronization pays off).
        assert!(total > 25, "total matches {total}");
    }
}
