//! The end-node Input Adapter (§III-B, §III-D, Fig. 2).
//!
//! An [`Adapter`] is the injection side of an end node:
//!
//! * **AdVOQs** — one admittance queue per destination, so traffic
//!   generation never suffers HoL-blocking,
//! * an **output buffer** organised like a switch input port: one NFQ
//!   plus (for FBICM/CCFIT) a few CFQs with a CAM, fed by the same
//!   Stop/Go congestion information the attached switch propagates up the
//!   injection link,
//! * the **throttling state** of the IB-style CC: the Congestion Control
//!   Table (CCT) of injection rate delays, the per-destination CCT index
//!   (CCTI) bumped by incoming BECNs, the recovery `Timer`, and the Last
//!   Time of Injection (LTI) used by the arbiter to gate each AdVOQ.
//!
//! Per cycle the adapter: expires timers, moves at most one packet from
//! an AdVOQ (round-robin, IRD-gated) into the output buffer, and offers
//! the output buffer's eligible head to the injection link.

use crate::params::{IsolationParams, ThrottleParams};

use crate::port::{CfqSlot, CfqState};
use crate::switch::{OutCamState, PurgeStats, VoqNetCredits};
use ccfit_cc::{DcqcnCfg, DcqcnFlow, HpccCfg, HpccFlow};
use ccfit_engine::cam::Cam;
use ccfit_engine::ids::{LinkId, NodeId, PacketId};
use ccfit_engine::link::{CtrlEvent, Link, LinkSlice};
use ccfit_engine::packet::Packet;
use ccfit_engine::queue::{PacketQueue, QueuedPacket};
use ccfit_engine::ram::PortRam;
use ccfit_engine::units::{Cycle, UnitModel};
use ccfit_metrics::{CcEvent, CcEventKind, EventClass, MetricsSink};
use ccfit_traffic::GenPacket;

/// Adapter-side throttling configuration, pre-converted to cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct AdapterThrottle {
    /// CCT: IRD (extra inter-packet delay) in cycles, indexed by CCTI.
    pub cct: Vec<Cycle>,
    /// `CCTI_Timer` in cycles.
    pub ccti_timer_cycles: Cycle,
    /// CCTI increment per BECN.
    pub ccti_increase: u16,
}

impl AdapterThrottle {
    /// Derive from the mechanism parameters, materialising the CCT
    /// according to the configured profile.
    pub fn from_params(p: &ThrottleParams, units: &UnitModel) -> Self {
        use crate::params::CctProfile;
        let ird_ns = |i: usize| -> f64 {
            match p.cct_profile {
                CctProfile::Linear => i as f64 * p.cct_unit_ns,
                CctProfile::Exponential { period } => {
                    let period = period.max(1) as f64;
                    p.cct_unit_ns * (2f64.powf(i as f64 / period) - 1.0)
                }
            }
        };
        let cct = (0..p.cct_len)
            .map(|i| units.ns_to_cycles(ird_ns(i)))
            .collect();
        Self {
            cct,
            ccti_timer_cycles: units.ns_to_cycles(p.ccti_timer_ns),
            ccti_increase: p.ccti_increase,
        }
    }
}

/// Static adapter configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AdapterCfg {
    /// Isolation parameters when the mechanism isolates (FBICM/CCFIT).
    pub iso: Option<IsolationParams>,
    /// Throttling state when the mechanism throttles (ITh/CCFIT).
    pub thr: Option<AdapterThrottle>,
    /// MTU in flits.
    pub mtu_flits: u32,
    /// Output-buffer RAM in flits (64 KB by default, like a switch port).
    pub out_ram_flits: u32,
    /// Admittance capacity per AdVOQ in flits (application backpressure
    /// point).
    pub advoq_cap_flits: u32,
    /// NFQ fill level (flits) above which the AdVOQ arbiter pauses, so
    /// the output buffer never becomes a second HoL point.
    pub nfq_gate_flits: u32,
    /// VOQnet mode: bypass the NFQ funnel and arbitrate the injection
    /// link directly across the AdVOQs, honouring the per-destination
    /// reserved credits. A single output FIFO would reintroduce
    /// head-of-line blocking at the source, which is exactly what VOQnet
    /// exists to eliminate.
    pub per_dest_output: bool,
    /// DCQCN rate machine (modern CC); `None` for the paper mechanisms,
    /// which keeps their behaviour untouched.
    pub dcqcn: Option<DcqcnCfg>,
    /// HPCC window machine (modern CC).
    pub hpcc: Option<HpccCfg>,
    /// Wire overhead stamped on every injected data packet (e.g. INT
    /// header space under HPCC). Charged by byte accounting only, never
    /// by the flit-level link model.
    pub data_overhead_bytes: u16,
}

/// The injection side of one end node.
#[derive(Debug, Clone)]
pub struct Adapter {
    node: NodeId,
    cfg: AdapterCfg,
    inject_link: LinkId,
    inject_bw: u32,
    advoqs: Vec<PacketQueue>,
    rr: usize,
    nfq: PacketQueue,
    cfqs: Vec<CfqSlot>,
    /// Congestion info received from the attached switch, keyed by
    /// congested destination (plays the role of an output-port CAM).
    cam: Cam<NodeId, OutCamState>,
    out_ram: PortRam,
    /// Outgoing congestion notification packets (BECNs): transmitted with
    /// absolute priority, bypassing the NFQ/CFQ output buffer (§III-B).
    becn_out: std::collections::VecDeque<Packet>,
    // ---- throttling state, one entry per destination ----
    ccti: Vec<u16>,
    timer_deadline: Vec<Cycle>,
    /// Earliest next injection per destination: LTI + packet time + IRD.
    next_allowed: Vec<Cycle>,
    // ---- modern-CC state, one entry per destination (empty vectors
    // unless the corresponding cfg is present) ----
    /// DCQCN reaction-point rate machines (source side).
    dcqcn_flows: Vec<DcqcnFlow>,
    /// DCQCN notification-point gate: earliest cycle the *receive* side
    /// of this node may emit the next CNP toward each source.
    cnp_gate: Vec<Cycle>,
    /// HPCC sender window machines (source side).
    hpcc_flows: Vec<HpccFlow>,
    // ---- active-set bookkeeping (incremental mirrors) ----
    /// Packets buffered in AdVOQs + NFQ + CFQs (`resident_packets()`).
    resident: usize,
    /// Destinations whose CCTI recovery timer is armed
    /// (`timer_deadline[d] != Cycle::MAX`).
    armed_timers: usize,
    /// CFQ slots currently allocated.
    cfq_count: usize,
    /// Per-call control-event scratch.
    ctrl_scratch: Vec<CtrlEvent>,
}

/// A completed injection: the simulator releases `flits` of the output
/// RAM at cycle `at`.
#[derive(Debug, Clone, Copy)]
pub struct AdapterRelease {
    /// Completion cycle.
    pub at: Cycle,
    /// Flits to release.
    pub flits: u32,
}

impl Adapter {
    /// Build the adapter for `node` with `num_nodes` AdVOQs.
    pub fn new(
        node: NodeId,
        cfg: AdapterCfg,
        inject_link: LinkId,
        inject_bw: u32,
        num_nodes: usize,
    ) -> Self {
        let num_cfqs = cfg.iso.map_or(0, |i| i.num_cfqs);
        let cam_lines = cfg.iso.map_or(0, |i| i.out_cam_lines);
        // Eagerly materialised per-destination flows: a fresh flow is
        // transparent (full rate / initial window), so idle destinations
        // cost nothing but memory.
        let dcqcn_flows = cfg
            .dcqcn
            .as_ref()
            .map_or_else(Vec::new, |c| vec![DcqcnFlow::new(0, c); num_nodes]);
        let cnp_gate = if cfg.dcqcn.is_some() {
            vec![0; num_nodes]
        } else {
            Vec::new()
        };
        let hpcc_flows = cfg
            .hpcc
            .as_ref()
            .map_or_else(Vec::new, |c| vec![HpccFlow::new(c); num_nodes]);
        Self {
            node,
            out_ram: PortRam::new(cfg.out_ram_flits),
            cfg,
            inject_link,
            inject_bw,
            advoqs: (0..num_nodes).map(|_| PacketQueue::new()).collect(),
            rr: 0,
            nfq: PacketQueue::new(),
            cfqs: (0..num_cfqs).map(|_| CfqSlot::default()).collect(),
            cam: Cam::new(cam_lines),
            becn_out: std::collections::VecDeque::new(),
            ccti: vec![0; num_nodes],
            timer_deadline: vec![Cycle::MAX; num_nodes],
            next_allowed: vec![0; num_nodes],
            dcqcn_flows,
            cnp_gate,
            hpcc_flows,
            resident: 0,
            armed_timers: 0,
            cfq_count: 0,
            ctrl_scratch: Vec::new(),
        }
    }

    /// The node this adapter belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Admit a generated packet into its AdVOQ; `false` = admittance
    /// queue full (the generator keeps its budget and retries).
    pub fn try_inject(&mut self, now: Cycle, gp: GenPacket, id: PacketId) -> bool {
        let q = &mut self.advoqs[gp.dst.index()];
        if q.occupancy_flits() + gp.size_flits > self.cfg.advoq_cap_flits {
            return false;
        }
        let mut pkt = Packet::data(
            id,
            self.node,
            gp.dst,
            gp.size_flits,
            gp.size_bytes,
            gp.flow,
            now,
        );
        pkt.overhead_bytes = self.cfg.data_overhead_bytes;
        q.push(pkt, now, now);
        self.resident += 1;
        true
    }

    /// Drain the congestion information the attached switch sent up the
    /// injection link (Stop/Go + CFQ allocation/deallocation hints).
    pub fn poll_ctrl<M: MetricsSink>(&mut self, now: Cycle, links: &mut [Link], metrics: &mut M) {
        let mut ls = LinkSlice::new(links);
        self.poll_ctrl_ls(now, &mut ls, metrics);
    }

    /// [`Self::poll_ctrl`] over a [`LinkSlice`] view (the parallel engine
    /// hands each shard an aliased view restricted by convention to its
    /// own injection links).
    pub fn poll_ctrl_ls<M: MetricsSink>(
        &mut self,
        now: Cycle,
        links: &mut LinkSlice<'_>,
        metrics: &mut M,
    ) {
        if !links[self.inject_link.index()].has_ctrl(now) {
            return;
        }
        self.ctrl_scratch.clear();
        links[self.inject_link.index()].poll_ctrl_into(now, &mut self.ctrl_scratch);
        if self.cfg.iso.is_none() {
            // Non-isolating adapters ignore (and never receive) these.
            return;
        }
        let scratch = std::mem::take(&mut self.ctrl_scratch);
        for &ev in scratch.iter() {
            match ev {
                CtrlEvent::CfqAlloc { dst } => {
                    if self.cam.lookup(dst).is_none()
                        && self
                            .cam
                            .allocate(dst, OutCamState { stopped: false })
                            .is_err()
                    {
                        metrics.count("ia_cam_exhausted", 1);
                        if metrics.wants_events(EventClass::CAM) {
                            metrics.cc_event(CcEvent {
                                at: now,
                                kind: CcEventKind::IaCamExhausted {
                                    node: self.node.0,
                                    dst: dst.0,
                                },
                            });
                        }
                    }
                }
                CtrlEvent::CfqDealloc { dst } => {
                    if let Some(i) = self.cam.lookup(dst) {
                        self.cam.free(i);
                    }
                }
                CtrlEvent::Stop { dst } => {
                    if let Some(i) = self.cam.lookup(dst) {
                        self.cam.get_mut(i).unwrap().value.stopped = true;
                    } else if self
                        .cam
                        .allocate(dst, OutCamState { stopped: true })
                        .is_err()
                    {
                        metrics.count("ia_cam_exhausted", 1);
                        if metrics.wants_events(EventClass::CAM) {
                            metrics.cc_event(CcEvent {
                                at: now,
                                kind: CcEventKind::IaCamExhausted {
                                    node: self.node.0,
                                    dst: dst.0,
                                },
                            });
                        }
                    }
                }
                CtrlEvent::Go { dst } => {
                    if let Some(i) = self.cam.lookup(dst) {
                        self.cam.get_mut(i).unwrap().value.stopped = false;
                    }
                }
            }
        }
        self.ctrl_scratch = scratch;
    }

    /// Queue an outgoing control packet generated by this node's receive
    /// side — a BECN for a FECN-marked delivery, a DCQCN CNP for an
    /// ECN-CE one, or an HPCC ACK. All three share the priority path and
    /// bypass the output RAM; they are sent by [`Self::tick`].
    pub fn queue_becn(&mut self, pkt: Packet) {
        debug_assert!(pkt.is_ctrl());
        self.becn_out.push_back(pkt);
    }

    /// Outgoing BECNs not yet on the wire (conservation checks).
    pub fn pending_becns(&self) -> usize {
        self.becn_out.len()
    }

    /// React to a BECN for congested destination `dst` (§III-D event #6):
    /// bump the CCTI and arm the recovery timer.
    pub fn on_becn<M: MetricsSink>(&mut self, now: Cycle, dst: NodeId, metrics: &mut M) {
        let Some(thr) = &self.cfg.thr else { return };
        let d = dst.index();
        let max = (thr.cct.len() - 1) as u16;
        self.ccti[d] = (self.ccti[d] + thr.ccti_increase).min(max);
        if self.timer_deadline[d] == Cycle::MAX {
            self.armed_timers += 1;
        }
        self.timer_deadline[d] = now + thr.ccti_timer_cycles;
        metrics.count("becn_received", 1);
        if metrics.wants_events(EventClass::BECN) {
            metrics.cc_event(CcEvent {
                at: now,
                kind: CcEventKind::BecnReceived {
                    node: self.node.0,
                    dst: dst.0,
                },
            });
        }
        if metrics.wants_events(EventClass::CCTI) {
            let ccti = self.ccti[d];
            metrics.cc_event(CcEvent {
                at: now,
                kind: CcEventKind::CctiIncrease {
                    node: self.node.0,
                    dst: dst.0,
                    ccti: ccti as u32,
                    ird_cycles: thr.cct[ccti as usize],
                },
            });
        }
    }

    /// Current CCTI for a destination (tests and introspection).
    pub fn ccti(&self, dst: NodeId) -> u16 {
        self.ccti[dst.index()]
    }

    /// DCQCN notification point (receive side): should this node emit a
    /// CNP toward `src` for an ECN-CE-marked delivery at `now`? At most
    /// one CNP per source per CNP interval; answering `true` arms the
    /// gate.
    pub fn cnp_due(&mut self, now: Cycle, src: NodeId) -> bool {
        let Some(dc) = &self.cfg.dcqcn else {
            return false;
        };
        let gate = &mut self.cnp_gate[src.index()];
        if now >= *gate {
            *gate = now + dc.cnp_interval_cycles;
            true
        } else {
            false
        }
    }

    /// DCQCN reaction point: a CNP arrived for the flow toward `dst` —
    /// bump alpha and (at most once per decrease interval) cut the rate.
    pub fn on_cnp<M: MetricsSink>(&mut self, now: Cycle, dst: NodeId, metrics: &mut M) {
        let Some(dc) = &self.cfg.dcqcn else { return };
        let f = &mut self.dcqcn_flows[dst.index()];
        f.advance_to(now, dc);
        let cut = f.on_cnp(now, dc);
        metrics.count("cnp_received", 1);
        if metrics.wants_events(EventClass::CNP) {
            metrics.cc_event(CcEvent {
                at: now,
                kind: CcEventKind::CnpReceived {
                    node: self.node.0,
                    dst: dst.0,
                },
            });
        }
        if cut && metrics.wants_events(EventClass::RATE) {
            metrics.cc_event(CcEvent {
                at: now,
                kind: CcEventKind::RateChange {
                    node: self.node.0,
                    dst: dst.0,
                    rate_ppm: (f.rc * 1e6) as u64,
                    decrease: true,
                },
            });
        }
    }

    /// HPCC sender: an ACK arrived for the flow toward `dst`, echoing
    /// the folded INT utilization `u_ack` over `acked_bytes` wire bytes.
    pub fn on_ack<M: MetricsSink>(
        &mut self,
        now: Cycle,
        dst: NodeId,
        u_ack: f32,
        hops: u8,
        acked_bytes: u32,
        metrics: &mut M,
    ) {
        let Some(hc) = &self.cfg.hpcc else { return };
        let f = &mut self.hpcc_flows[dst.index()];
        let before = f.w;
        f.on_ack(f64::from(u_ack), u64::from(acked_bytes), hc);
        metrics.count("ack_received", 1);
        if metrics.wants_events(EventClass::INT) {
            metrics.cc_event(CcEvent {
                at: now,
                kind: CcEventKind::IntFeedback {
                    node: self.node.0,
                    dst: dst.0,
                    u_ppm: (f64::from(u_ack) * 1e6) as u64,
                    hops,
                },
            });
        }
        if f.w != before && metrics.wants_events(EventClass::RATE) {
            metrics.cc_event(CcEvent {
                at: now,
                kind: CcEventKind::WindowChange {
                    node: self.node.0,
                    dst: dst.0,
                    window_bytes: f.w as u64,
                    decrease: f.w < before,
                },
            });
        }
    }

    /// Current DCQCN rate fraction toward `dst` (tests, introspection).
    pub fn dcqcn_rate(&self, dst: NodeId) -> Option<f64> {
        self.dcqcn_flows.get(dst.index()).map(|f| f.rc)
    }

    /// Current HPCC window (bytes) toward `dst` (tests, introspection).
    pub fn hpcc_window(&self, dst: NodeId) -> Option<f64> {
        self.hpcc_flows.get(dst.index()).map(|f| f.w)
    }

    fn cfq_lookup(&self, dst: NodeId) -> Option<usize> {
        self.cfqs
            .iter()
            .position(|c| matches!(c.state, Some(s) if s.dst == dst))
    }

    fn stopped(&self, dst: NodeId) -> bool {
        self.cam
            .lookup(dst)
            .map(|i| self.cam.get(i).unwrap().value.stopped)
            .unwrap_or(false)
    }

    /// One cycle of adapter work. Returns the RAM release to schedule if
    /// a packet started injecting.
    pub fn tick<M: MetricsSink>(
        &mut self,
        now: Cycle,
        links: &mut [Link],
        voqnet: Option<&VoqNetCredits>,
        metrics: &mut M,
    ) -> Option<AdapterRelease> {
        let mut ls = LinkSlice::new(links);
        self.tick_ls(now, &mut ls, voqnet, metrics)
    }

    /// [`Self::tick`] over a [`LinkSlice`] view: the shard worker of the
    /// parallel engine calls this with an aliased view and only ever
    /// touches `self.inject_link`, which belongs to this adapter's shard.
    pub fn tick_ls<M: MetricsSink>(
        &mut self,
        now: Cycle,
        links: &mut LinkSlice<'_>,
        voqnet: Option<&VoqNetCredits>,
        metrics: &mut M,
    ) -> Option<AdapterRelease> {
        self.expire_timers(now, metrics);
        if self.cfg.per_dest_output {
            self.direct_output_arbitration(now, links, voqnet);
            return None;
        }
        self.advoq_arbitration(now, metrics);
        self.output_arbitration(now, links, voqnet)
    }

    /// VOQnet injection: round-robin directly over the AdVOQs, gated by
    /// the per-destination reserved credits of the injection link.
    fn direct_output_arbitration(
        &mut self,
        now: Cycle,
        links: &mut LinkSlice<'_>,
        voqnet: Option<&VoqNetCredits>,
    ) {
        let link = &links[self.inject_link.index()];
        if !link.tx_idle(now) {
            return;
        }
        if let Some(b) = self.becn_out.front() {
            if link.can_send(now, b.size_flits)
                && Self::voqnet_ok(voqnet, self.inject_link, b.dst, b.size_flits)
            {
                let b = self.becn_out.pop_front().expect("front exists");
                if let Some(vn) = voqnet {
                    vn.sub(self.inject_link.0, b.dst.0, b.size_flits);
                }
                links[self.inject_link.index()].send(now, b);
                return;
            }
        }
        let n = self.advoqs.len();
        for step in 0..n {
            let d = (self.rr + step) % n;
            let Some(head) = self.advoqs[d].head_visible(now) else {
                continue;
            };
            let size = head.packet.size_flits;
            if now < self.next_allowed[d]
                || !link.can_send(now, size)
                || !Self::voqnet_ok(voqnet, self.inject_link, head.packet.dst, size)
            {
                continue;
            }
            let entry = self.advoqs[d].pop().expect("head exists");
            self.resident -= 1;
            if let Some(vn) = voqnet {
                vn.sub(self.inject_link.0, entry.packet.dst.0, size);
            }
            let packet_time = size.div_ceil(self.inject_bw).max(1) as Cycle;
            self.next_allowed[d] = now + packet_time;
            links[self.inject_link.index()].send(now, entry.packet);
            self.rr = (d + 1) % n;
            return;
        }
    }

    /// Timer expiry (§III-D event #7): decrement CCTI, re-arm while
    /// nonzero.
    fn expire_timers<M: MetricsSink>(&mut self, now: Cycle, metrics: &mut M) {
        let Some(thr) = &self.cfg.thr else { return };
        if self.armed_timers == 0 {
            return; // every deadline is Cycle::MAX
        }
        for d in 0..self.ccti.len() {
            if now >= self.timer_deadline[d] {
                if self.ccti[d] > 0 {
                    self.ccti[d] -= 1;
                    if metrics.wants_events(EventClass::CCTI) {
                        let ccti = self.ccti[d];
                        metrics.cc_event(CcEvent {
                            at: now,
                            kind: CcEventKind::CctiDecay {
                                node: self.node.0,
                                dst: d as u32,
                                ccti: ccti as u32,
                                ird_cycles: thr.cct[ccti as usize],
                            },
                        });
                    }
                }
                self.timer_deadline[d] = if self.ccti[d] > 0 {
                    now + thr.ccti_timer_cycles
                } else {
                    self.armed_timers -= 1;
                    Cycle::MAX
                };
            }
        }
    }

    /// Round-robin AdVOQ arbitration gated by the IRD (§III-D event #8):
    /// move at most one packet per cycle into the output buffer.
    fn advoq_arbitration<M: MetricsSink>(&mut self, now: Cycle, metrics: &mut M) {
        let n = self.advoqs.len();
        let iso = self.cfg.iso;
        let stop_flits = iso.map_or(0, |i| i.stop_mtus * self.cfg.mtu_flits);
        for step in 0..n {
            let d = (self.rr + step) % n;
            let Some(head) = self.advoqs[d].head_visible(now) else {
                continue;
            };
            if now < self.next_allowed[d] {
                continue; // IRD throttling gates this destination.
            }
            if !self.hpcc_flows.is_empty() && !self.hpcc_flows[d].may_send(head.packet.wire_bytes())
            {
                continue; // HPCC window full for this destination.
            }
            let size = head.packet.size_flits;
            if !self.out_ram.can_reserve(size) {
                continue;
            }
            // Decide where the packet would go in the output buffer.
            enum Target {
                Nfq,
                Cfq(usize),
            }
            let target = if iso.is_some() && self.cam.lookup(head.packet.dst).is_some() {
                // Congested destination: goes to (or allocates) its CFQ,
                // honouring the Stop threshold as per-destination
                // backpressure into the AdVOQ.
                match self.cfq_lookup(head.packet.dst) {
                    Some(c) if self.cfqs[c].queue.occupancy_flits() + size <= stop_flits => {
                        Some(Target::Cfq(c))
                    }
                    Some(_) => None, // CFQ full past Stop: hold in AdVOQ
                    None => {
                        let free = self.cfqs.iter().position(|c| c.state.is_none());
                        match free {
                            Some(c) => {
                                let dst = head.packet.dst;
                                self.cfqs[c].state = Some(CfqState::new(dst, 0, false));
                                self.cfq_count += 1;
                                metrics.count("ia_cfq_allocated", 1);
                                if metrics.wants_events(EventClass::CFQ) {
                                    metrics.cc_event(CcEvent {
                                        at: now,
                                        kind: CcEventKind::IaCfqAlloc {
                                            node: self.node.0,
                                            dst: dst.0,
                                        },
                                    });
                                }
                                Some(Target::Cfq(c))
                            }
                            None => {
                                metrics.count("ia_cfq_exhausted", 1);
                                if metrics.wants_events(EventClass::CFQ) {
                                    metrics.cc_event(CcEvent {
                                        at: now,
                                        kind: CcEventKind::IaCfqExhausted {
                                            node: self.node.0,
                                            dst: head.packet.dst.0,
                                        },
                                    });
                                }
                                // No CFQ left: fall back to the NFQ (the
                                // HoL risk the paper accepts when
                                // isolation resources run out).
                                Some(Target::Nfq)
                            }
                        }
                    }
                }
            } else {
                Some(Target::Nfq)
            };
            let target = match target {
                Some(Target::Nfq)
                    if self.nfq.occupancy_flits() + size > self.cfg.nfq_gate_flits.max(size) =>
                {
                    continue; // NFQ gate: keep backlog in the AdVOQs.
                }
                Some(t) => t,
                None => continue,
            };
            // Commit the move.
            let entry = self.advoqs[d].pop().expect("head exists");
            let dst = entry.packet.dst;
            let wire = entry.packet.wire_bytes();
            self.out_ram.reserve(size).expect("checked above");
            match target {
                Target::Nfq => self.nfq.push(entry.packet, now, now),
                Target::Cfq(c) => self.cfqs[c].queue.push(entry.packet, now, now),
            }
            // LTI + IRD: earliest next injection for this destination.
            let packet_time = size.div_ceil(self.inject_bw).max(1) as Cycle;
            let ird = self
                .cfg
                .thr
                .as_ref()
                .map_or(0, |t| t.cct[self.ccti[d] as usize]);
            // Modern-CC source reactions: DCQCN stretches the inter-
            // packet gap by 1/rc; HPCC charges the in-flight window.
            let mut gap = 0;
            if let Some(dc) = &self.cfg.dcqcn {
                let f = &mut self.dcqcn_flows[d];
                f.advance_to(now, dc);
                f.on_sent(wire, dc);
                gap = f.gap_cycles(packet_time);
                if gap > 0 {
                    metrics.count("dcqcn_throttled_injections", 1);
                }
            }
            if !self.hpcc_flows.is_empty() {
                self.hpcc_flows[d].on_sent(wire);
            }
            self.next_allowed[d] = now + packet_time + ird + gap;
            if ird > 0 {
                metrics.count("throttled_injections", 1);
                if metrics.wants_events(EventClass::THROTTLE) {
                    metrics.cc_event(CcEvent {
                        at: now,
                        kind: CcEventKind::ThrottledInjection {
                            node: self.node.0,
                            dst: dst.0,
                            ird_cycles: ird,
                        },
                    });
                }
            }
            self.rr = (d + 1) % n;
            break; // one move per cycle
        }
        // CFQ deallocation at the adapter: calm for the linger period,
        // momentarily empty, and the switch has released the congestion
        // tree (our CAM line was removed by its CfqDealloc).
        if let Some(iso) = iso {
            let calm_flits = iso.propagate_threshold_mtus * self.cfg.mtu_flits;
            for c in 0..self.cfqs.len() {
                let Some(mut st) = self.cfqs[c].state else {
                    continue;
                };
                let occ = self.cfqs[c].queue.occupancy_flits();
                if occ < calm_flits {
                    if st.calm_since.is_none() {
                        st.calm_since = Some(now);
                    }
                    let lingered = st
                        .calm_since
                        .is_some_and(|s| now.saturating_sub(s) >= iso.dealloc_linger_cycles);
                    if occ == 0 && lingered && self.cam.lookup(st.dst).is_none() {
                        self.cfqs[c].state = None;
                        self.cfq_count -= 1;
                        metrics.count("ia_cfq_deallocated", 1);
                        if metrics.wants_events(EventClass::CFQ) {
                            metrics.cc_event(CcEvent {
                                at: now,
                                kind: CcEventKind::IaCfqDealloc {
                                    node: self.node.0,
                                    dst: st.dst.0,
                                },
                            });
                        }
                        continue;
                    }
                } else {
                    st.calm_since = None;
                }
                self.cfqs[c].state = Some(st);
            }
        }
    }

    /// Pick an eligible output-buffer queue and start injecting.
    fn output_arbitration(
        &mut self,
        now: Cycle,
        links: &mut LinkSlice<'_>,
        voqnet: Option<&VoqNetCredits>,
    ) -> Option<AdapterRelease> {
        let link = &links[self.inject_link.index()];
        if !link.tx_idle(now) {
            return None;
        }
        // Congestion notifications first: absolute priority (§III-B).
        if let Some(b) = self.becn_out.front() {
            if link.can_send(now, b.size_flits)
                && Self::voqnet_ok(voqnet, self.inject_link, b.dst, b.size_flits)
            {
                let b = self.becn_out.pop_front().expect("front exists");
                if let Some(vn) = voqnet {
                    vn.sub(self.inject_link.0, b.dst.0, b.size_flits);
                }
                links[self.inject_link.index()].send(now, b);
                return None; // BECNs bypass the output RAM entirely
            }
        }
        // Candidates: the NFQ plus every allocated, unstopped CFQ, in
        // slot order. Count-then-select keeps the hot path allocation
        // free; the candidate list used to be materialized as a Vec.
        let nfq_ok = self.nfq.head_visible(now).is_some_and(|h| {
            link.can_send(now, h.packet.size_flits)
                && Self::voqnet_ok(voqnet, self.inject_link, h.packet.dst, h.packet.size_flits)
        });
        let cfq_ok = |slot: &CfqSlot| {
            let Some(st) = slot.state else { return false };
            if self.stopped(st.dst) {
                return false;
            }
            slot.queue.head_visible(now).is_some_and(|h| {
                link.can_send(now, h.packet.size_flits)
                    && Self::voqnet_ok(voqnet, self.inject_link, h.packet.dst, h.packet.size_flits)
            })
        };
        let count = nfq_ok as usize + self.cfqs.iter().filter(|s| cfq_ok(s)).count();
        if count == 0 {
            return None;
        }
        let k = self.rr % count;
        let pick: Option<usize> = if nfq_ok && k == 0 {
            None // NFQ
        } else {
            let c = self
                .cfqs
                .iter()
                .enumerate()
                .filter(|(_, s)| cfq_ok(s))
                .nth(k - nfq_ok as usize)
                .map(|(c, _)| c)
                .expect("k indexes an eligible candidate");
            Some(c)
        };
        let entry = match pick {
            None => self.nfq.pop().expect("candidate head"),
            Some(c) => self.cfqs[c].queue.pop().expect("candidate head"),
        };
        self.resident -= 1;
        if let Some(vn) = voqnet {
            vn.sub(
                self.inject_link.0,
                entry.packet.dst.0,
                entry.packet.size_flits,
            );
        }
        let done = links[self.inject_link.index()].send(now, entry.packet);
        Some(AdapterRelease {
            at: done,
            flits: entry.packet.size_flits,
        })
    }

    fn voqnet_ok(voqnet: Option<&VoqNetCredits>, link: LinkId, dst: NodeId, size: u32) -> bool {
        match voqnet {
            Some(vn) => vn.has(link.0, dst.0, size),
            None => true,
        }
    }

    /// Release output-buffer RAM for a packet whose tail has left
    /// (scheduled by the simulator at the completion cycle).
    pub fn release_ram(&mut self, flits: u32) {
        self.out_ram.release(flits);
    }

    /// O(1) idleness check for the active-set scheduler: no packet
    /// buffered anywhere, no outgoing BECN, and no allocated CFQ (an
    /// allocated-but-empty CFQ still needs per-cycle linger/dealloc
    /// bookkeeping). Armed CCTI timers do *not* block quietness — expiry
    /// is deadline-driven, so ticking at `next_timer_deadline()` is
    /// equivalent to ticking every cycle.
    pub fn is_quiet(&self) -> bool {
        debug_assert_eq!(self.resident, self.resident_packets());
        debug_assert_eq!(
            self.cfq_count,
            self.cfqs.iter().filter(|c| c.state.is_some()).count()
        );
        self.resident == 0 && self.becn_out.is_empty() && self.cfq_count == 0
    }

    /// Number of destinations with an armed CCTI recovery timer.
    pub fn armed_timer_count(&self) -> usize {
        self.armed_timers
    }

    /// Earliest armed CCTI timer deadline, or `Cycle::MAX` when none is
    /// armed (bounds the quiet-cycle fast-forward).
    pub fn next_timer_deadline(&self) -> Cycle {
        if self.armed_timers == 0 {
            return Cycle::MAX;
        }
        self.timer_deadline
            .iter()
            .copied()
            .min()
            .unwrap_or(Cycle::MAX)
    }

    /// Packets currently buffered in the adapter (AdVOQs + output
    /// buffer), for conservation checks.
    pub fn resident_packets(&self) -> usize {
        self.advoqs.iter().map(|q| q.len()).sum::<usize>()
            + self.nfq.len()
            + self.cfqs.iter().map(|c| c.queue.len()).sum::<usize>()
    }

    /// Current backlog of one AdVOQ in flits (tests).
    pub fn advoq_occupancy(&self, dst: NodeId) -> u32 {
        self.advoqs[dst.index()].occupancy_flits()
    }

    /// Fault subsystem: drop every buffered packet whose destination
    /// satisfies `unreachable` (live re-route made it undeliverable).
    /// AdVOQ entries hold no output RAM (it is reserved at the
    /// AdVOQ→NFQ/CFQ move), NFQ/CFQ entries release theirs; pending
    /// BECNs to such destinations are dropped as lost control traffic.
    /// `scratch` is caller-provided to avoid per-call allocation.
    pub fn purge_unreachable(
        &mut self,
        unreachable: &dyn Fn(NodeId) -> bool,
        scratch: &mut Vec<QueuedPacket>,
    ) -> PurgeStats {
        let mut stats = PurgeStats::default();
        scratch.clear();
        for d in 0..self.advoqs.len() {
            if unreachable(NodeId(d as u32)) {
                self.advoqs[d].drain_all_into(scratch);
            }
        }
        let advoq_purged = scratch.len();
        self.nfq
            .drain_where_into(|e| unreachable(e.packet.dst), scratch);
        for c in &mut self.cfqs {
            c.queue
                .drain_where_into(|e| unreachable(e.packet.dst), scratch);
        }
        for e in scratch.iter() {
            stats.note(e.packet.is_data());
        }
        for e in scratch.iter().skip(advoq_purged) {
            self.out_ram.release(e.packet.size_flits);
        }
        self.resident -= scratch.len();
        let becns_before = self.becn_out.len();
        self.becn_out.retain(|b| !unreachable(b.dst));
        stats.ctrl_packets += (becns_before - self.becn_out.len()) as u64;
        scratch.clear();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfit_engine::link::LinkConfig;
    use ccfit_engine::units::UnitModel;
    use ccfit_metrics::MetricsCollector;

    fn cfg(thr: bool, iso: bool) -> AdapterCfg {
        let units = UnitModel::default();
        AdapterCfg {
            iso: iso.then(IsolationParams::default),
            thr: thr.then(|| AdapterThrottle::from_params(&ThrottleParams::default(), &units)),
            mtu_flits: 32,
            out_ram_flits: 1024,
            advoq_cap_flits: 256,
            nfq_gate_flits: 128,
            per_dest_output: false,
            dcqcn: None,
            hpcc: None,
            data_overhead_bytes: 0,
        }
    }

    fn adapter(thr: bool, iso: bool) -> (Adapter, Vec<Link>) {
        let links = vec![Link::new(LinkConfig::default(), 1024)];
        (
            Adapter::new(NodeId(0), cfg(thr, iso), LinkId(0), 1, 8),
            links,
        )
    }

    fn gp(dst: u32) -> GenPacket {
        GenPacket {
            flow: ccfit_engine::ids::FlowId(0),
            dst: NodeId(dst),
            size_flits: 32,
            size_bytes: 2048,
        }
    }

    fn drain(l: &mut Link, now: u64) -> Vec<ccfit_engine::link::Delivery> {
        let mut v = Vec::new();
        l.deliver_into(now, &mut v);
        v
    }

    #[test]
    fn injection_flows_through_to_the_link() {
        let (mut a, mut links) = adapter(false, false);
        let mut m = MetricsCollector::new(UnitModel::default(), 1000.0);
        assert!(a.try_inject(0, gp(3), PacketId(1)));
        // Single-cycle passthrough: AdVOQ -> NFQ -> link within tick 0.
        let rel = a.tick(0, &mut links, None, &mut m);
        assert!(rel.is_some());
        let d = drain(&mut links[0], 100);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.dst, NodeId(3));
        assert_eq!(a.resident_packets(), 0);
    }

    #[test]
    fn advoq_admission_is_bounded() {
        let (mut a, _links) = adapter(false, false);
        // Cap is 256 flits = 8 MTU packets.
        for i in 0..8 {
            assert!(a.try_inject(0, gp(3), PacketId(i)), "packet {i}");
        }
        assert!(
            !a.try_inject(0, gp(3), PacketId(99)),
            "ninth packet refused"
        );
        assert!(
            a.try_inject(0, gp(4), PacketId(100)),
            "other AdVOQ unaffected"
        );
    }

    #[test]
    fn becn_bumps_ccti_and_timer_decays_it() {
        let (mut a, mut links) = adapter(true, false);
        let mut m = MetricsCollector::new(UnitModel::default(), 1000.0);
        a.on_becn(0, NodeId(4), &mut m);
        a.on_becn(0, NodeId(4), &mut m);
        assert_eq!(a.ccti(NodeId(4)), 2);
        assert_eq!(a.ccti(NodeId(3)), 0, "per-destination state");
        assert_eq!(m.counter("becn_received"), 2);
        // CCTI_Timer = 8000 ns = 313 cycles; after two expiries it is 0.
        let timer = AdapterThrottle::from_params(&ThrottleParams::default(), &UnitModel::default())
            .ccti_timer_cycles;
        a.tick(timer, &mut links, None, &mut m);
        assert_eq!(a.ccti(NodeId(4)), 1);
        a.tick(2 * timer, &mut links, None, &mut m);
        assert_eq!(a.ccti(NodeId(4)), 0);
    }

    #[test]
    fn throttled_destination_injects_slower() {
        let (mut a, mut links) = adapter(true, false);
        let mut m = MetricsCollector::new(UnitModel::default(), 1000.0);
        // Saturate the AdVOQ for node 3, no BECNs: packets stream at line
        // rate (32 cycles per MTU).
        let mut next_id = 0u64;
        let mut sent_unthrottled = 0u64;
        for now in 0..3200u64 {
            if a.try_inject(now, gp(3), PacketId(next_id)) {
                next_id += 1;
            }
            a.tick(now, &mut links, None, &mut m);
            links[0].poll_credits(now);
        }
        for d in drain(&mut links[0], 10_000) {
            let _ = d;
            sent_unthrottled += 1;
        }
        // Now hammer BECNs to raise the IRD and measure again.
        let (mut b, mut links2) = adapter(true, false);
        for _ in 0..20 {
            b.on_becn(0, NodeId(3), &mut m);
        }
        let mut next_id = 0u64;
        let mut sent_throttled = 0u64;
        for now in 0..3200u64 {
            if b.try_inject(now, gp(3), PacketId(next_id)) {
                next_id += 1;
            }
            // Keep the CCTI pinned high against timer decay.
            if now % 100 == 0 {
                b.on_becn(now, NodeId(3), &mut m);
            }
            b.tick(now, &mut links2, None, &mut m);
            links2[0].poll_credits(now);
        }
        for d in drain(&mut links2[0], 10_000) {
            let _ = d;
            sent_throttled += 1;
        }
        assert!(
            sent_throttled * 2 < sent_unthrottled,
            "throttled {sent_throttled} vs unthrottled {sent_unthrottled}"
        );
        assert!(m.counter("throttled_injections") > 0);
    }

    #[test]
    fn stop_pauses_the_isolated_flow_and_go_resumes_it() {
        let (mut a, mut links) = adapter(false, true);
        let mut m = MetricsCollector::new(UnitModel::default(), 1000.0);
        // Switch announces congestion tree for node 4, then stops it.
        links[0].send_ctrl(0, CtrlEvent::CfqAlloc { dst: NodeId(4) });
        links[0].send_ctrl(0, CtrlEvent::Stop { dst: NodeId(4) });
        a.poll_ctrl(10, &mut links, &mut m);
        assert!(a.try_inject(10, gp(4), PacketId(0)));
        assert!(a.try_inject(10, gp(3), PacketId(1)));
        let mut injected_dsts = Vec::new();
        for now in 10..200u64 {
            a.tick(now, &mut links, None, &mut m);
            links[0].poll_credits(now);
        }
        for d in drain(&mut links[0], 1000) {
            injected_dsts.push(d.packet.dst);
        }
        assert_eq!(
            injected_dsts,
            vec![NodeId(3)],
            "only the uncongested flow moves"
        );
        // Go resumes.
        links[0].send_ctrl(200, CtrlEvent::Go { dst: NodeId(4) });
        a.poll_ctrl(210, &mut links, &mut m);
        for now in 210..400u64 {
            a.tick(now, &mut links, None, &mut m);
            links[0].poll_credits(now);
        }
        let d = drain(&mut links[0], 1000);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.dst, NodeId(4));
    }

    #[test]
    fn isolated_flow_does_not_block_the_nfq() {
        let (mut a, mut links) = adapter(false, true);
        let mut m = MetricsCollector::new(UnitModel::default(), 1000.0);
        links[0].send_ctrl(0, CtrlEvent::CfqAlloc { dst: NodeId(4) });
        links[0].send_ctrl(0, CtrlEvent::Stop { dst: NodeId(4) });
        a.poll_ctrl(5, &mut links, &mut m);
        // Many packets for the stopped destination, then one for another.
        let mut id = 0u64;
        for _ in 0..4 {
            assert!(a.try_inject(5, gp(4), PacketId(id)));
            id += 1;
        }
        assert!(a.try_inject(5, gp(3), PacketId(id)));
        let mut got = Vec::new();
        for now in 5..400u64 {
            a.tick(now, &mut links, None, &mut m);
            links[0].poll_credits(now);
            for d in drain(&mut links[0], now) {
                got.push(d.packet.dst);
            }
        }
        assert_eq!(
            got,
            vec![NodeId(3)],
            "victim bypasses the stopped congested flow"
        );
    }

    #[test]
    fn non_throttling_adapter_ignores_becns() {
        let (mut a, _links) = adapter(false, false);
        let mut m = MetricsCollector::new(UnitModel::default(), 1000.0);
        a.on_becn(0, NodeId(4), &mut m);
        assert_eq!(a.ccti(NodeId(4)), 0);
    }

    #[test]
    fn ccti_saturates_at_cct_length() {
        let (mut a, _links) = adapter(true, false);
        let mut m = MetricsCollector::new(UnitModel::default(), 1000.0);
        for _ in 0..1000 {
            a.on_becn(0, NodeId(2), &mut m);
        }
        assert_eq!(
            a.ccti(NodeId(2)) as usize,
            ThrottleParams::default().cct_len - 1
        );
    }
}

#[cfg(test)]
mod voqnet_tests {
    use super::*;
    use ccfit_engine::link::LinkConfig;
    use ccfit_engine::units::UnitModel;
    use ccfit_metrics::MetricsCollector;

    fn direct_adapter() -> (Adapter, Vec<Link>) {
        let cfg = AdapterCfg {
            iso: None,
            thr: None,
            mtu_flits: 32,
            out_ram_flits: 1024,
            advoq_cap_flits: 256,
            nfq_gate_flits: 128,
            per_dest_output: true,
            dcqcn: None,
            hpcc: None,
            data_overhead_bytes: 0,
        };
        let links = vec![Link::new(LinkConfig::default(), 1024)];
        (Adapter::new(NodeId(0), cfg, LinkId(0), 1, 8), links)
    }

    fn gp(dst: u32) -> ccfit_traffic::GenPacket {
        ccfit_traffic::GenPacket {
            flow: ccfit_engine::ids::FlowId(0),
            dst: NodeId(dst),
            size_flits: 32,
            size_bytes: 2048,
        }
    }

    fn drain(l: &mut Link, now: u64) -> Vec<ccfit_engine::link::Delivery> {
        let mut v = Vec::new();
        l.deliver_into(now, &mut v);
        v
    }

    #[test]
    fn direct_mode_bypasses_the_nfq() {
        let (mut a, mut links) = direct_adapter();
        let mut m = MetricsCollector::new(UnitModel::default(), 1000.0);
        assert!(a.try_inject(0, gp(3), PacketId(0)));
        let rel = a.tick(0, &mut links, None, &mut m);
        assert!(rel.is_none(), "direct mode does not use the output RAM");
        let d = drain(&mut links[0], 100);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.dst, NodeId(3));
        assert_eq!(a.resident_packets(), 0);
    }

    #[test]
    fn per_dest_credits_block_only_their_destination() {
        let (mut a, mut links) = direct_adapter();
        let mut m = MetricsCollector::new(UnitModel::default(), 1000.0);
        // Per-destination credits: dst 4 has none, dst 3 plenty.
        let vn = VoqNetCredits::new(1, 8);
        vn.set(0, 4, 0);
        vn.set(0, 3, 256);
        assert!(a.try_inject(0, gp(4), PacketId(0)));
        assert!(a.try_inject(0, gp(3), PacketId(1)));
        let mut dsts = Vec::new();
        let mut now = 0u64;
        for _ in 0..8 {
            a.tick(now, &mut links, Some(&vn), &mut m);
            links[0].poll_credits(now);
            now += 33;
            for d in drain(&mut links[0], now) {
                dsts.push(d.packet.dst);
            }
        }
        assert_eq!(
            dsts,
            vec![NodeId(3)],
            "hot destination held back, other flows"
        );
        assert_eq!(
            vn.get(0, 3),
            Some(256 - 32),
            "credits debited for the sent packet"
        );
        assert_eq!(
            a.advoq_occupancy(NodeId(4)),
            32,
            "blocked packet waits in its AdVOQ"
        );
    }

    #[test]
    fn direct_mode_round_robins_across_advoqs() {
        let (mut a, mut links) = direct_adapter();
        let mut m = MetricsCollector::new(UnitModel::default(), 1000.0);
        for (i, d) in [1u32, 2, 3].iter().enumerate() {
            assert!(a.try_inject(0, gp(*d), PacketId(i as u64)));
            assert!(a.try_inject(0, gp(*d), PacketId(100 + i as u64)));
        }
        let mut dsts = Vec::new();
        let mut now = 0u64;
        while dsts.len() < 6 {
            a.tick(now, &mut links, None, &mut m);
            links[0].poll_credits(now);
            now += 1;
            for d in drain(&mut links[0], now) {
                dsts.push(d.packet.dst.0);
            }
            assert!(now < 1000, "all packets must drain");
        }
        // Round robin: first three are 1,2,3 in some rotation, then repeat.
        assert_eq!(&dsts[0..3], &[1, 2, 3]);
        assert_eq!(&dsts[3..6], &[1, 2, 3]);
    }
}

#[cfg(test)]
mod cct_tests {
    use super::*;
    use crate::params::CctProfile;
    use ccfit_engine::units::UnitModel;

    #[test]
    fn linear_cct_grows_proportionally() {
        let t = ThrottleParams::default();
        let a = AdapterThrottle::from_params(&t, &UnitModel::default());
        assert_eq!(a.cct[0], 0);
        // IRD(i) = i * 400 ns; one cycle = 25.6 ns.
        let one = a.cct[1];
        assert!(one >= 15 && one <= 16, "400 ns ~ 15.6 cycles: {one}");
        assert!(a.cct[10] >= 10 * one - 10 && a.cct[10] <= 10 * one + 10);
    }

    #[test]
    fn exponential_cct_doubles() {
        let mut t = ThrottleParams::default();
        t.cct_profile = CctProfile::Exponential { period: 8 };
        let a = AdapterThrottle::from_params(&t, &UnitModel::default());
        assert_eq!(a.cct[0], 0);
        // IRD(8) = unit*(2-1) = 400 ns; IRD(16) = unit*3 = 1200 ns;
        // IRD(24) = unit*7 = 2800 ns.
        let u = UnitModel::default();
        assert_eq!(a.cct[8], u.ns_to_cycles(400.0));
        assert_eq!(a.cct[16], u.ns_to_cycles(1200.0));
        assert_eq!(a.cct[24], u.ns_to_cycles(2800.0));
        // Strictly non-decreasing everywhere.
        assert!(a.cct.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn exponential_outgrows_linear_at_high_ccti() {
        let u = UnitModel::default();
        let lin = AdapterThrottle::from_params(&ThrottleParams::default(), &u);
        let mut t = ThrottleParams::default();
        t.cct_profile = CctProfile::Exponential { period: 8 };
        let exp = AdapterThrottle::from_params(&t, &u);
        assert!(exp.cct[64] > lin.cct[64]);
        assert!(exp.cct[8] < lin.cct[8], "gentler at small CCTI");
    }
}
