//! The paper's experiments as ready-to-run specifications (Table I +
//! §IV-A).
//!
//! Every figure of the evaluation is a combination of a network
//! configuration, a traffic case and a mechanism; this module provides
//! the `(configuration, case)` pairs so the figure harness and the tests
//! only pick mechanisms and durations.

use crate::parallel::{decide, network_weight, EngineDecision};
use crate::params::Mechanism;
use crate::simulator::{SimBuilder, SimConfig};
use ccfit_engine::ids::SwitchId;
use ccfit_metrics::SimReport;
use ccfit_topology::{config1_topology, KAryNTree, LinkParams, Mesh2D, RoutingTable, Topology};
use ccfit_traffic::{case1, case2, case3, case4, uniform_all, TrafficPattern, Workload};
use serde::{Deserialize, Serialize};

/// A fully specified experiment minus the mechanism.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Human-readable name (e.g. `"config2/case3"`).
    pub name: String,
    /// The network.
    pub topology: Topology,
    /// Routing tables (DET for the fat trees).
    pub routing: RoutingTable,
    /// The workload.
    pub pattern: TrafficPattern,
    /// Simulated time in nanoseconds.
    pub duration_ns: f64,
    /// Crossbar bandwidth in flits/cycle (Table I).
    pub crossbar_bw_flits_per_cycle: u32,
}

impl ExperimentSpec {
    /// Run the experiment under `mech` with the given seed.
    pub fn run(&self, mech: Mechanism, seed: u64) -> SimReport {
        self.run_with(mech, seed, SimConfig::default())
    }

    /// How the engine will execute `cfg.parallel` for this spec on this
    /// host — the same verdict `Simulator::engine_decision` reaches,
    /// computed without assembling the network (the bench harness
    /// surfaces it next to wall-clock numbers).
    pub fn engine_decision(&self, mech: &Mechanism, cfg: &SimConfig) -> EngineDecision {
        let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let weight = network_weight(
            (0..self.topology.num_switches())
                .map(|s| self.topology.switch(SwitchId(s as u32)).connected().count()),
            self.topology.num_nodes(),
            mech.tick_weight(),
        );
        decide(&cfg.parallel, host_cpus, weight)
    }

    /// Run with a custom [`SimConfig`] (tests shrink bins/durations).
    pub fn run_with(&self, mech: Mechanism, seed: u64, cfg: SimConfig) -> SimReport {
        self.build_sim(mech, seed, cfg).run()
    }

    /// Assemble the simulator without running it, so callers that need
    /// mid-run access — the bench harness's per-phase profiler and
    /// active-set occupancy counters — can drive the tick loop
    /// themselves.
    pub fn build_sim(&self, mech: Mechanism, seed: u64, mut cfg: SimConfig) -> crate::Simulator {
        cfg.duration_ns = self.duration_ns;
        cfg.crossbar_bw_flits_per_cycle = self.crossbar_bw_flits_per_cycle;
        SimBuilder::new(self.topology.clone())
            .routing(self.routing.clone())
            .mechanism(mech)
            .traffic(self.pattern.clone())
            .config(cfg)
            .seed(seed)
            .build()
    }

    /// Compress the whole schedule (flow activations, deactivations and
    /// the run duration) by `scale`. `scale = 1.0` is an exact identity
    /// (`x * 1.0 == x` for every finite `f64`), so a "scaled to 1"
    /// spec is byte-identical to the unscaled one — the experiment
    /// orchestrator's declarative configs rely on this.
    #[must_use]
    pub fn scaled(mut self, scale: f64) -> Self {
        for f in &mut self.pattern.flows {
            f.start_ns *= scale;
            if let Some(e) = &mut f.end_ns {
                *e *= scale;
            }
        }
        for f in &mut self.pattern.sized {
            f.start_ns *= scale;
        }
        self.duration_ns *= scale;
        self
    }

    /// Replace the traffic pattern with a closed-loop [`Workload`]
    /// resolved against this spec's machine size, renaming the spec
    /// `<name>+<workload>`. The topology, routing and duration are
    /// kept — the workload rides the host configuration's network.
    #[must_use]
    pub fn with_workload(mut self, workload: &Workload) -> Self {
        self.pattern = workload.build(self.topology.num_nodes());
        self.name = format!("{}+{}", self.name, workload.name());
        self
    }

    /// Run with a dynamic network-event schedule on top of the workload
    /// (mid-run link/switch failures; see `ccfit_faults`).
    pub fn run_with_faults(
        &self,
        mech: Mechanism,
        seed: u64,
        mut cfg: SimConfig,
        schedule: ccfit_faults::FaultSchedule,
        fault_cfg: ccfit_faults::FaultConfig,
    ) -> SimReport {
        cfg.duration_ns = self.duration_ns;
        cfg.crossbar_bw_flits_per_cycle = self.crossbar_bw_flits_per_cycle;
        SimBuilder::new(self.topology.clone())
            .routing(self.routing.clone())
            .mechanism(mech)
            .traffic(self.pattern.clone())
            .config(cfg)
            .seed(seed)
            .faults(schedule)
            .fault_config(fault_cfg)
            .build()
            .run()
    }
}

/// Config #1 / Case #1: the ad-hoc two-switch network with the victim
/// flow and the staggered hotspot contributors (Figs. 7a and 9).
/// `end_ms` scales the whole schedule (the paper uses 10 ms; the flow
/// activation points stay at 2/4/6 ms, so `end_ms` below ~7 truncates
/// the schedule — use [`config1_case1_scaled`] for quick runs).
pub fn config1_case1(end_ms: f64) -> ExperimentSpec {
    let topology = config1_topology();
    ExperimentSpec {
        name: "config1/case1".into(),
        routing: RoutingTable::shortest_path(&topology),
        topology,
        pattern: case1(end_ms),
        duration_ns: end_ms * 1e6,
        crossbar_bw_flits_per_cycle: 2, // 5 GB/s (Table I, Config #1)
    }
}

/// Config #1 / Case #1 with the activation schedule compressed by
/// `scale` (e.g. `scale = 0.1` activates flows at 0.2/0.4/0.6 ms and
/// runs 1 ms) — same shape, test-friendly runtimes.
pub fn config1_case1_scaled(scale: f64) -> ExperimentSpec {
    config1_case1(10.0).scaled(scale)
}

fn config2_parts() -> (Topology, RoutingTable) {
    let tree = KAryNTree::new(2, 3);
    let topology = tree.build(LinkParams::default());
    let routing = tree.det_routing();
    (topology, routing)
}

/// Config #2 / Case #2: the 2-ary 3-tree with five flows converging on
/// node 7 (Figs. 7b and 10).
pub fn config2_case2(end_ms: f64) -> ExperimentSpec {
    let (topology, routing) = config2_parts();
    ExperimentSpec {
        name: "config2/case2".into(),
        topology,
        routing,
        pattern: case2(end_ms),
        duration_ns: end_ms * 1e6,
        crossbar_bw_flits_per_cycle: 1, // 2.5 GB/s (Table I)
    }
}

/// Config #2 / Case #2 with the schedule compressed by `scale`.
pub fn config2_case2_scaled(scale: f64) -> ExperimentSpec {
    config2_case2(10.0).scaled(scale)
}

/// Config #2 / Case #3: Case #2 plus uniform background from nodes 5–7
/// (Fig. 7c).
pub fn config2_case3(end_ms: f64) -> ExperimentSpec {
    let (topology, routing) = config2_parts();
    ExperimentSpec {
        name: "config2/case3".into(),
        topology,
        routing,
        pattern: case3(end_ms),
        duration_ns: end_ms * 1e6,
        crossbar_bw_flits_per_cycle: 1,
    }
}

/// Config #3 / Case #4: the 4-ary 3-tree under 75 % uniform traffic with
/// a 25 %-of-sources hotspot storm during [1 ms, 2 ms] forming
/// `hotspots` congestion trees (Fig. 8). `duration_ms` should cover the
/// recovery after the burst (the paper plots ≈4 ms).
pub fn config3_case4(hotspots: usize, duration_ms: f64) -> ExperimentSpec {
    let tree = KAryNTree::new(4, 3);
    let topology = tree.build(LinkParams::default());
    let routing = tree.det_routing();
    ExperimentSpec {
        name: format!("config3/case4-h{hotspots}"),
        pattern: case4(topology.num_nodes(), hotspots),
        topology,
        routing,
        duration_ns: duration_ms * 1e6,
        crossbar_bw_flits_per_cycle: 1,
    }
}

/// Config #3 / Case #4 with the schedule compressed by `scale` (the
/// burst window moves from [1, 2] ms to [`scale`, `2·scale`] ms and the
/// paper's 4 ms horizon shrinks accordingly) — same shape,
/// test-friendly runtimes.
pub fn config3_case4_scaled(hotspots: usize, scale: f64) -> ExperimentSpec {
    config3_case4(hotspots, 4.0).scaled(scale)
}

/// A declarative, serializable name for one of the repo's experiment
/// setups: everything the figure harness runs, minus the mechanism and
/// the seed. Where [`ExperimentSpec`] holds the *assembled* network
/// (topology, routing tables, flow list), a `ConfigId` holds only the
/// handful of parameters that generate it — which makes it cheap to
/// hash, compare and archive. [`ConfigId::resolve`] rebuilds the exact
/// `ExperimentSpec` the figure binaries used to construct by hand; the
/// orchestrator's content-addressed run cache keys off this (plus
/// mechanism, seed and metric knobs), relying on the determinism suite's
/// guarantee that equal specs produce byte-identical reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConfigId {
    /// Config #1 / Case #1 (Figs. 7a, 9) with the 10 ms schedule
    /// compressed by `scale` (1.0 = the paper's shape).
    Config1Case1 {
        /// Schedule compression factor.
        scale: f64,
    },
    /// Config #2 / Case #2 (Figs. 7b, 10), 10 ms compressed by `scale`.
    Config2Case2 {
        /// Schedule compression factor.
        scale: f64,
    },
    /// Config #2 / Case #3 (Fig. 7c), 10 ms compressed by `scale`.
    Config2Case3 {
        /// Schedule compression factor.
        scale: f64,
    },
    /// Config #3 / Case #4 (Fig. 8): `hotspots` congestion trees, a
    /// `duration_ms` horizon (the paper plots 4 ms), compressed by
    /// `scale`.
    Config3Case4 {
        /// Number of simultaneous congestion trees (1/4/6 in Fig. 8).
        hotspots: usize,
        /// Uncompressed horizon in milliseconds.
        duration_ms: f64,
        /// Schedule compression factor.
        scale: f64,
    },
    /// Uniform traffic from every node on a k-ary n-tree — the
    /// offered-load sweep scenario.
    UniformTree {
        /// Tree arity (k).
        ary: usize,
        /// Tree levels (n).
        levels: usize,
        /// Offered load per node, fraction of line rate.
        load: f64,
        /// Simulated time in nanoseconds.
        duration_ns: f64,
    },
    /// Uniform traffic on a 2-D mesh with XY dimension-order routing.
    UniformMesh {
        /// Mesh width.
        width: usize,
        /// Mesh height.
        height: usize,
        /// Offered load per node, fraction of line rate.
        load: f64,
        /// Simulated time in nanoseconds.
        duration_ns: f64,
    },
}

impl ConfigId {
    /// The paper configs at their full (Figs. 7–10) time scale.
    pub fn config1_case1() -> Self {
        ConfigId::Config1Case1 { scale: 1.0 }
    }

    /// Config #2 / Case #2 at full scale.
    pub fn config2_case2() -> Self {
        ConfigId::Config2Case2 { scale: 1.0 }
    }

    /// Config #2 / Case #3 at full scale.
    pub fn config2_case3() -> Self {
        ConfigId::Config2Case3 { scale: 1.0 }
    }

    /// Config #3 / Case #4 with the paper's 4 ms horizon at full scale.
    pub fn config3_case4(hotspots: usize) -> Self {
        ConfigId::Config3Case4 {
            hotspots,
            duration_ms: 4.0,
            scale: 1.0,
        }
    }

    /// The kind string used by matrix files and display names.
    pub fn kind(&self) -> &'static str {
        match self {
            ConfigId::Config1Case1 { .. } => "config1/case1",
            ConfigId::Config2Case2 { .. } => "config2/case2",
            ConfigId::Config2Case3 { .. } => "config2/case3",
            ConfigId::Config3Case4 { .. } => "config3/case4",
            ConfigId::UniformTree { .. } => "uniform-tree",
            ConfigId::UniformMesh { .. } => "uniform-mesh",
        }
    }

    /// Human-readable label: the kind plus the distinguishing
    /// parameters (`config3/case4-h4@0.1`, `uniform-tree-2x3@0.50`).
    pub fn label(&self) -> String {
        match *self {
            ConfigId::Config1Case1 { scale }
            | ConfigId::Config2Case2 { scale }
            | ConfigId::Config2Case3 { scale } => format!("{}@{scale}", self.kind()),
            ConfigId::Config3Case4 {
                hotspots,
                duration_ms,
                scale,
            } => format!("{}-h{hotspots}/{duration_ms}ms@{scale}", self.kind()),
            ConfigId::UniformTree {
                ary, levels, load, ..
            } => format!("{}-{ary}x{levels}@{load:.2}", self.kind()),
            ConfigId::UniformMesh {
                width,
                height,
                load,
                ..
            } => format!("{}-{width}x{height}@{load:.2}", self.kind()),
        }
    }

    /// Assemble the concrete experiment this id names. Equal ids resolve
    /// to equal specs; the determinism suite then guarantees equal
    /// reports for equal (spec, mechanism, seed, knobs).
    pub fn resolve(&self) -> ExperimentSpec {
        match *self {
            ConfigId::Config1Case1 { scale } => config1_case1(10.0).scaled(scale),
            ConfigId::Config2Case2 { scale } => config2_case2(10.0).scaled(scale),
            ConfigId::Config2Case3 { scale } => config2_case3(10.0).scaled(scale),
            ConfigId::Config3Case4 {
                hotspots,
                duration_ms,
                scale,
            } => config3_case4(hotspots, duration_ms).scaled(scale),
            ConfigId::UniformTree {
                ary,
                levels,
                load,
                duration_ns,
            } => {
                let tree = KAryNTree::new(ary as u32, levels as u32);
                let topology = tree.build(LinkParams::default());
                ExperimentSpec {
                    name: format!("uniform-tree-{ary}x{levels}"),
                    routing: tree.det_routing(),
                    pattern: uniform_all(topology.num_nodes(), load),
                    topology,
                    duration_ns,
                    crossbar_bw_flits_per_cycle: 1,
                }
            }
            ConfigId::UniformMesh {
                width,
                height,
                load,
                duration_ns,
            } => {
                let mesh = Mesh2D::new(width, height);
                let topology = mesh.build(LinkParams::default());
                ExperimentSpec {
                    name: format!("uniform-mesh-{width}x{height}"),
                    routing: mesh.xy_routing(),
                    pattern: uniform_all(topology.num_nodes(), load),
                    topology,
                    duration_ns,
                    crossbar_bw_flits_per_cycle: 1,
                }
            }
        }
    }
}

/// The mechanisms of the paper's Fig. 7/9/10 panels, in plotting order.
/// Resolved by display name through the [`Mechanism`] registry, so the
/// figure binaries share one parse/display path with every other
/// mechanism selector.
pub fn paper_mechanisms() -> Vec<Mechanism> {
    ["1Q", "ITh", "FBICM", "CCFIT"]
        .iter()
        .map(|n| Mechanism::parse(n).expect("registry knows every figure mechanism"))
        .collect()
}

/// Render Table I (the evaluated network configurations).
pub fn table1() -> String {
    let rows = [
        ("", "Config #1", "Config #2", "Config #3"),
        ("# Nodes", "7", "8", "64"),
        (
            "Topology",
            "Ad-hoc (Fig. 5)",
            "2-ary 3-tree",
            "4-ary 3-tree",
        ),
        ("# Switches", "2", "12", "48"),
        ("Switching", "Virtual Cut-Through", "VCT", "VCT"),
        ("Scheduling", "iSLIP", "iSLIP", "iSLIP"),
        ("Packet MTU", "2048 B", "2048 B", "2048 B"),
        ("Memory size", "64 KB/port", "64 KB/port", "64 KB/port"),
        ("Link BW", "2.5 / 5 GB/s", "2.5 GB/s", "2.5 GB/s"),
        (
            "Flow control",
            "credit-based",
            "credit-based",
            "credit-based",
        ),
        ("Routing", "DET (table-based)", "DET", "DET"),
    ];
    let mut out = String::new();
    for (a, b, c, d) in rows {
        out.push_str(&format!("{a:<14} | {b:<20} | {c:<14} | {d:<14}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config1_spec_is_consistent() {
        let s = config1_case1(10.0);
        assert_eq!(s.topology.num_nodes(), 7);
        assert_eq!(s.topology.num_switches(), 2);
        assert_eq!(s.pattern.flows.len(), 5);
        s.routing.verify_delivers_all(&s.topology).unwrap();
    }

    #[test]
    fn config2_specs_are_consistent() {
        let s = config2_case2(10.0);
        assert_eq!(s.topology.num_nodes(), 8);
        assert_eq!(s.topology.num_switches(), 12);
        s.routing.verify_delivers_all(&s.topology).unwrap();
        let s3 = config2_case3(10.0);
        assert_eq!(s3.pattern.flows.len(), 8);
    }

    #[test]
    fn config3_spec_matches_table_one() {
        let s = config3_case4(4, 4.0);
        assert_eq!(s.topology.num_nodes(), 64);
        assert_eq!(s.topology.num_switches(), 48);
        assert_eq!(s.pattern.flows.len(), 64);
    }

    #[test]
    fn scaled_schedule_compresses_activations() {
        let s = config1_case1_scaled(0.1);
        assert!((s.duration_ns - 1e6).abs() < 1.0);
        let f1 = s.pattern.flows.iter().find(|f| f.src.0 == 1).unwrap();
        assert!((f1.start_ns - 0.2e6).abs() < 1.0);
        assert!((f1.end_ns.unwrap() - 1e6).abs() < 1.0);
    }

    #[test]
    fn table1_mentions_all_configs() {
        let t = table1();
        assert!(t.contains("Config #1"));
        assert!(t.contains("4-ary 3-tree"));
        assert!(t.contains("iSLIP"));
    }

    #[test]
    fn config_ids_resolve_to_the_hand_built_specs() {
        let pairs: Vec<(ConfigId, ExperimentSpec)> = vec![
            (ConfigId::config1_case1(), config1_case1(10.0)),
            (
                ConfigId::Config1Case1 { scale: 0.3 },
                config1_case1_scaled(0.3),
            ),
            (ConfigId::config2_case2(), config2_case2(10.0)),
            (ConfigId::config2_case3(), config2_case3(10.0)),
            (ConfigId::config3_case4(4), config3_case4(4, 4.0)),
            (
                ConfigId::Config3Case4 {
                    hotspots: 1,
                    duration_ms: 4.0,
                    scale: 0.1,
                },
                config3_case4_scaled(1, 0.1),
            ),
        ];
        for (id, want) in pairs {
            let got = id.resolve();
            assert_eq!(got.name, want.name, "{}", id.label());
            assert_eq!(got.duration_ns, want.duration_ns, "{}", id.label());
            assert_eq!(
                got.pattern.flows,
                want.pattern.flows,
                "{}: flow schedules diverged",
                id.label()
            );
            assert_eq!(
                got.crossbar_bw_flits_per_cycle,
                want.crossbar_bw_flits_per_cycle
            );
        }
    }

    #[test]
    fn uniform_config_ids_resolve() {
        let tree = ConfigId::UniformTree {
            ary: 2,
            levels: 3,
            load: 0.5,
            duration_ns: 600_000.0,
        }
        .resolve();
        assert_eq!(tree.topology.num_nodes(), 8);
        tree.routing.verify_delivers_all(&tree.topology).unwrap();
        let mesh = ConfigId::UniformMesh {
            width: 4,
            height: 4,
            load: 0.5,
            duration_ns: 600_000.0,
        }
        .resolve();
        assert_eq!(mesh.topology.num_nodes(), 16);
        mesh.routing.verify_delivers_all(&mesh.topology).unwrap();
    }

    #[test]
    fn scaled_by_one_is_identity() {
        let a = config1_case1(10.0);
        let b = config1_case1(10.0).scaled(1.0);
        assert_eq!(a.duration_ns, b.duration_ns);
        assert_eq!(a.pattern.flows, b.pattern.flows);
    }

    #[test]
    fn paper_mechanisms_order() {
        let ms = paper_mechanisms();
        let names: Vec<&str> = ms.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["1Q", "ITh", "FBICM", "CCFIT"]);
    }
}
