#![warn(missing_docs)]

//! # ccfit
//!
//! A cycle-level reproduction of **CCFIT** — *Combining Congested-Flow
//! Isolation and Injection Throttling in HPC Interconnection Networks*
//! (Escudero-Sahuquillo et al., ICPP 2011) — together with every baseline
//! the paper evaluates: **1Q**, **VOQsw**, **VOQnet**, **FBICM** and
//! InfiniBand-style injection throttling (**ITh**).
//!
//! The crate models lossless input-queued switches with credit-based
//! flow control, virtual cut-through switching, iSLIP scheduling and
//! distributed deterministic routing, plus the end-node input adapters
//! with per-destination admittance queues and the IB congestion-control
//! table machinery.
//!
//! ## Quick start
//!
//! ```
//! use ccfit::{Mechanism, SimBuilder};
//! use ccfit_topology::KAryNTree;
//! use ccfit_topology::graph::LinkParams;
//! use ccfit_traffic::case2;
//!
//! let tree = KAryNTree::new(2, 3); // 8 nodes, 12 switches (Config #2)
//! let report = SimBuilder::new(tree.build(LinkParams::default()))
//!     .routing(tree.det_routing())
//!     .mechanism(Mechanism::ccfit())
//!     .traffic(case2(10.0)) // the paper's 10 ms flow schedule
//!     .duration_ns(200_000.0) // but simulate only a short demo slice
//!     .seed(7)
//!     .build()
//!     .run();
//! assert!(report.delivered_packets > 0);
//! ```
//!
//! See [`experiment`] for the paper's full (configuration, traffic-case)
//! matrix and the `ccfit-bench` crate for the per-figure reproduction
//! binaries.

pub mod arbiter;
pub mod endnode;
pub mod experiment;
pub mod parallel;
pub mod params;
pub mod port;
pub mod simulator;
pub mod switch;
pub mod trace;

pub use ccfit_faults::{
    FaultConfig, FaultPolicy, FaultSchedule, NetworkEvent, RandomFaults, ScheduledEvent,
};
pub use ccfit_metrics::{CcEvent, CcEventKind, EventClass, EventConfig, FaultKind};
pub use ccfit_traffic::{SizedFlow, Workload};
pub use experiment::{ConfigId, ExperimentSpec};
pub use parallel::{EngineDecision, FallbackReason, ParallelConfig, ParallelFallback};
pub use params::{
    CongestionControl, DcqcnParams, DetectionPolicy, FeedbackPolicy, HpccParams, IsolationParams,
    Mechanism, QueueingScheme, ReactionPolicy, ThrottleParams,
};
pub use simulator::{
    ActiveSetStats, BecnTransport, PhaseProfile, SimBuilder, SimConfig, Simulator, PHASE_NAMES,
};
pub use trace::{PacketTrace, TraceLog};

// Re-export the companion crates so downstream users need a single
// dependency.
pub use ccfit_cc as cc;
pub use ccfit_engine as engine;
pub use ccfit_faults as faults;
pub use ccfit_metrics as metrics;
pub use ccfit_topology as topology;
pub use ccfit_traffic as traffic;
