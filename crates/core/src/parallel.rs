//! The deterministic sharded parallel tick engine (DESIGN.md §9).
//!
//! [`crate::Simulator`] partitions switches and adapters into `threads`
//! contiguous shards and runs the intra-component phases of the cycle
//! loop — link deliveries into switches, control polling, isolation,
//! congestion-state + arbitration, and adapter ticks — on a persistent
//! worker pool. Everything a shard does to state it does not own (RAM
//! releases, metric updates, fault-purge tallies) is recorded into a
//! per-shard [`ShardOutbox`] and replayed by the coordinator in the
//! canonical order *(shard index, component index, emission order)*.
//! Because shards are contiguous component ranges, that replay order is
//! exactly the component-index order of the serial engine, so a parallel
//! run is **byte-identical** to a serial one — a property the
//! determinism suite pins for `threads ∈ {1, 2, 4}`.
//!
//! ## Why this is sound
//!
//! Every parallel section touches a statically disjoint link set per
//! shard (links are the shard boundary; they carry ≥ 1 cycle of latency,
//! so nothing a shard emits is visible to another shard within the same
//! cycle):
//!
//! * **Deliver** — a link is drained by the shard of its *receiving*
//!   switch (credit refunds on a fault purge touch the same link).
//! * **Ctrl** — a switch polls its own output links; an adapter polls
//!   its own injection link. Output links and injection links are
//!   disjoint sets (injection links are sent on by adapters).
//! * **Iso** — a switch sends Stop/Go/alloc control *upstream* on its
//!   own input links; the cached [`crate::switch::OutputPort::link_bw`]
//!   removes the one foreign read the starvation test used to make.
//! * **CstArb** — a switch reads credits of and transmits on its own
//!   output links.
//! * **AdapterTick** — an adapter transmits on its own injection link.
//!
//! VOQnet per-destination credits are atomics indexed by link, so each
//! row inherits the single-writer guarantee of the link that owns it.
//! Sections are separated by sense-reversing barriers, which provide the
//! happens-before edges the aliased [`LinkSlice`] views rely on.

use crate::endnode::{Adapter, AdapterRelease};
use crate::switch::{PendingRelease, Switch, VoqNetCredits};
use ccfit_engine::ids::{PacketId, SwitchId};
use ccfit_engine::link::{Delivery, Link, LinkSlice};
use ccfit_engine::units::Cycle;
use ccfit_metrics::MetricsScratch;
use ccfit_topology::RoutingTable;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Cycles per worker-pool dispatch when [`ParallelConfig::batch_cycles`]
/// is left at `0` (auto). Inside a batch the workers stay hot and cross
/// cheap spin-biased barriers; only the batch boundary is a park-capable
/// rendezvous, so a larger batch amortizes wakeup latency. Output is
/// byte-identical for every batch size (the determinism suite pins
/// `k ∈ {1, 4, 16}`), so the knob is purely about scheduling overhead.
pub const DEFAULT_BATCH_CYCLES: usize = 16;

/// Minimum per-shard work estimate (in [`network_weight`] units —
/// roughly "connected ports plus adapters, scaled by mechanism cost")
/// below which the auto-fallback runs serially: a shard that ticks a
/// handful of components finishes in well under a microsecond, which is
/// less than the barrier crossings cost. The three paper configs (≤ 64
/// nodes) all land below this; a 16-ary 3-tree (4096 nodes) is ~150×
/// above it.
pub const MIN_SHARD_WEIGHT: u64 = 512;

/// Worker-pool configuration for the sharded parallel tick engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// OS threads ticking the network. `1` (the default) keeps the
    /// serial engine; `n > 1` runs the sharded engine on `n` threads
    /// (the calling thread works shard 0). Results are byte-identical
    /// for every value.
    pub threads: usize,
    /// Simulated cycles per pool dispatch (`0` = auto, currently
    /// [`DEFAULT_BATCH_CYCLES`]). Does not affect results.
    pub batch_cycles: usize,
    /// Whether the engine may overrule `threads` when parallelism cannot
    /// pay for its synchronization (see [`EngineDecision`]).
    pub fallback: ParallelFallback,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            batch_cycles: 0,
            fallback: ParallelFallback::Auto,
        }
    }
}

/// Policy for degrading a parallel request that cannot pay off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelFallback {
    /// Degrade automatically: run serially on a single-CPU host or when
    /// shards would be too small, and clamp `threads` to the host's CPU
    /// count. The default — results are identical either way, only
    /// wall-clock changes.
    #[default]
    Auto,
    /// Run exactly `threads` workers no matter what. Used by the
    /// determinism suite (which must exercise the sharded engine even on
    /// a 1-CPU CI runner) and available via
    /// [`crate::SimBuilder::force_parallel`].
    Never,
}

/// Why the engine did not run with the requested thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The host has one CPU: every barrier crossing would be a scheduler
    /// round-trip (the configuration that measured 0.008× speedup).
    SingleCpu,
    /// `threads` exceeded the host's CPU count; the engine still runs in
    /// parallel, clamped to the CPUs that exist.
    Oversubscribed,
    /// Per-shard work below [`MIN_SHARD_WEIGHT`]: synchronization would
    /// cost more than the work it distributes.
    TinyShards,
}

impl FallbackReason {
    /// Stable lowercase token for logs/JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            FallbackReason::SingleCpu => "single-cpu",
            FallbackReason::Oversubscribed => "oversubscribed",
            FallbackReason::TinyShards => "tiny-shards",
        }
    }
}

/// The engine-selection verdict for one run: what was asked, what will
/// actually execute, and why they differ (if they do). Computed before
/// the first tick from the host CPU count and a static work estimate —
/// deliberately *not* part of [`crate::simulator::SimReport`], so the
/// report stays byte-identical across hosts and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineDecision {
    /// `ParallelConfig::threads` as configured.
    pub requested_threads: usize,
    /// Worker count that will actually run (`1` = serial engine).
    pub effective_threads: usize,
    /// Host CPUs visible to the process.
    pub host_cpus: usize,
    /// Cycles per pool dispatch (resolved from `batch_cycles`).
    pub batch_cycles: usize,
    /// Estimated per-shard work at `effective_threads.max(1)` shards,
    /// in [`network_weight`] units.
    pub shard_weight: u64,
    /// `Some` when the engine overruled or clamped the request.
    pub fallback: Option<FallbackReason>,
}

impl EngineDecision {
    /// The advisory line for a degraded request, `None` when the engine
    /// runs exactly what was asked. Bench harnesses surface this next to
    /// wall-clock numbers so a fallen-back "parallel" leg cannot
    /// masquerade as a parallel measurement.
    pub fn warning(&self) -> Option<String> {
        self.fallback.map(|_| self.summary())
    }

    /// One-line human summary (the auto-fallback warning body).
    pub fn summary(&self) -> String {
        match self.fallback {
            None => format!(
                "parallel tick: {} thread(s) on {} CPU(s)",
                self.effective_threads, self.host_cpus
            ),
            Some(r) => format!(
                "parallel tick requested {} thread(s) but running {} ({}; host has {} CPU(s), \
                 per-shard work ≈ {}); set SimBuilder::force_parallel() to override",
                self.requested_threads,
                self.effective_threads,
                r.as_str(),
                self.host_cpus,
                self.shard_weight,
            ),
        }
    }
}

/// Decide how a [`ParallelConfig`] request should execute on a host with
/// `host_cpus` CPUs against a network whose total static work estimate
/// is `total_weight` (see [`network_weight`]). Pure — the simulator and
/// the bench harness both call this, so the warning a user sees is the
/// decision the engine makes.
pub fn decide(cfg: &ParallelConfig, host_cpus: usize, total_weight: u64) -> EngineDecision {
    let requested = cfg.threads.max(1);
    let batch = if cfg.batch_cycles == 0 {
        DEFAULT_BATCH_CYCLES
    } else {
        cfg.batch_cycles
    };
    let host_cpus = host_cpus.max(1);
    let mut d = EngineDecision {
        requested_threads: requested,
        effective_threads: requested,
        host_cpus,
        batch_cycles: batch,
        shard_weight: total_weight / requested.max(1) as u64,
        fallback: None,
    };
    if requested == 1 || cfg.fallback == ParallelFallback::Never {
        return d;
    }
    if host_cpus == 1 {
        d.effective_threads = 1;
        d.shard_weight = total_weight;
        d.fallback = Some(FallbackReason::SingleCpu);
        return d;
    }
    let clamped = requested.min(host_cpus);
    d.shard_weight = total_weight / clamped as u64;
    if d.shard_weight < MIN_SHARD_WEIGHT {
        d.effective_threads = 1;
        d.shard_weight = total_weight;
        d.fallback = Some(FallbackReason::TinyShards);
        return d;
    }
    d.effective_threads = clamped;
    if clamped < requested {
        d.fallback = Some(FallbackReason::Oversubscribed);
    }
    d
}

/// Static work estimate for a network: one unit per connected switch
/// port and per adapter, scaled by the mechanism's per-component cost
/// factor ([`crate::Mechanism::tick_weight`]). The same quantity drives
/// shard balancing, so "per-shard weight" in [`EngineDecision`] is the
/// load the busiest worker actually receives.
pub fn network_weight(
    switch_ports: impl Iterator<Item = usize>,
    num_adapters: usize,
    mech_factor: u64,
) -> u64 {
    let ports: u64 = switch_ports.map(|p| p as u64).sum();
    ports * mech_factor + num_adapters as u64
}

/// Which parallel section of the tick to run (see the module docs for
/// the per-section link-ownership argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PhaseKind {
    /// Phase 3a: drain switch-bound links into their receiving switches.
    Deliver,
    /// Phase 4: switches poll output-link ctrl, adapters poll injection
    /// ctrl.
    Ctrl,
    /// Phase 5a: isolation / post-processing (records its activity gate
    /// into `p5_ran` for reuse by `CstArb`).
    Iso,
    /// Phases 5b + 6: congestion-state refresh, then iSLIP arbitration
    /// and transmission.
    CstArb,
    /// Phase 8b: adapter output work (AdVOQ moves + injection).
    AdapterTick,
}

/// The static shard layout: contiguous switch/adapter ranges plus the
/// per-shard list of links delivering into that shard's switches.
#[derive(Debug, Clone)]
pub(crate) struct ShardPlan {
    pub(crate) shards: usize,
    pub(crate) switch_ranges: Vec<Range<usize>>,
    pub(crate) adapter_ranges: Vec<Range<usize>>,
    /// Per shard: `(link, switch, port)` for every link whose receiver
    /// is one of the shard's switches, ascending by link index — the
    /// serial engine's per-switch delivery order.
    pub(crate) deliver_links: Vec<Vec<(u32, u32, u32)>>,
    /// Shard owning each link's receiving switch (`u32::MAX` for
    /// node-bound links, which stay serial). The sparse `Deliver` walks
    /// the active-link list and keeps only its own links.
    pub(crate) link_owner: Vec<u32>,
    /// `(switch, port)` each switch-bound link delivers into (zeros for
    /// node-bound links; never read for them).
    pub(crate) link_sw_port: Vec<(u32, u32)>,
}

/// Split `weights` into `parts` contiguous ranges whose weight sums are
/// as even as a greedy left-to-right pass can make them. Deterministic;
/// the concatenation of the ranges is always exactly `0..weights.len()`
/// (a proptest in `tests/` pins that invariant), and with uniform
/// weights it degenerates to the near-even index split. Trailing ranges
/// may be empty when there are more parts than items.
pub fn partition_weighted(weights: &[u64], parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let n = weights.len();
    let mut ranges = Vec::with_capacity(parts);
    let mut remaining: u64 = weights.iter().sum();
    let mut start = 0usize;
    for w in 0..parts {
        let end = if w + 1 == parts {
            n
        } else {
            // This part's fair share of what is left. Take items while
            // under it; overshoot only when the overshoot lands closer
            // to the share than stopping short would.
            let share = remaining.div_ceil((parts - w) as u64).max(1);
            let mut acc = 0u64;
            let mut end = start;
            while end < n && acc < share {
                let wi = weights[end];
                if acc > 0 && acc + wi > share && (acc + wi - share) > (share - acc) {
                    break;
                }
                acc += wi;
                end += 1;
            }
            remaining -= acc;
            end
        };
        ranges.push(start..end);
        start = end;
    }
    ranges
}

impl ShardPlan {
    /// Partition switches (weighted — see [`network_weight`]) and
    /// `num_adapters` adapters into `threads` contiguous shards.
    /// `link_sw_dst[li]` is the `(switch, port)` a link delivers into
    /// (`None` for node-bound links, which stay serial). Contiguity is
    /// load-bearing: replaying shard outboxes in shard order must equal
    /// component-index order.
    pub(crate) fn build(
        threads: usize,
        switch_weights: &[u64],
        num_adapters: usize,
        link_sw_dst: &[Option<(u32, u32)>],
    ) -> Self {
        let shards = threads.max(1);
        let chunk =
            |n: usize, w: usize| -> Range<usize> { (w * n / shards)..((w + 1) * n / shards) };
        let switch_ranges = partition_weighted(switch_weights, shards);
        let adapter_ranges: Vec<_> = (0..shards).map(|w| chunk(num_adapters, w)).collect();
        let shard_of_switch = |s: usize| -> usize {
            switch_ranges
                .iter()
                .position(|r| r.contains(&s))
                .expect("every switch is in exactly one shard")
        };
        let mut deliver_links = vec![Vec::new(); shards];
        let mut link_owner = vec![u32::MAX; link_sw_dst.len()];
        let mut link_sw_port = vec![(0u32, 0u32); link_sw_dst.len()];
        for (li, dst) in link_sw_dst.iter().enumerate() {
            if let Some((s, p)) = *dst {
                let shard = shard_of_switch(s as usize);
                deliver_links[shard].push((li as u32, s, p));
                link_owner[li] = shard as u32;
                link_sw_port[li] = (s, p);
            }
        }
        Self {
            shards,
            switch_ranges,
            adapter_ranges,
            deliver_links,
            link_owner,
            link_sw_port,
        }
    }
}

/// Everything a shard produced that must be applied to shared state,
/// replayed by the coordinator in shard order after the section barrier.
#[derive(Debug, Default)]
pub(crate) struct ShardOutbox {
    /// Metric operations, replayed verbatim (an op log, not partial
    /// sums, so floating-point accumulation order matches the serial
    /// engine exactly).
    pub(crate) metrics: MetricsScratch,
    /// `(switch, release)` RAM releases from arbitration.
    pub(crate) releases: Vec<(u32, PendingRelease)>,
    /// `(node, release)` RAM releases from adapter injection.
    pub(crate) adapter_releases: Vec<(u32, AdapterRelease)>,
    /// Data packets consumed by the phase-3a fault guard.
    pub(crate) purged_data: u64,
    /// Control packets consumed by the phase-3a fault guard.
    pub(crate) purged_ctrl: u64,
    /// `(packet, switch, arrival)` hops of traced packets seen by this
    /// shard's phase 3a, replayed into the central `TraceLog` in shard
    /// order (a packet makes at most one hop per cycle, so per-packet
    /// hop order is cycle order regardless of the shard layout).
    pub(crate) trace_hops: Vec<(PacketId, SwitchId, Cycle)>,
    /// Sparse engine: switches this shard's `Deliver` drained a link
    /// into, for the coordinator to fold into the active-switch set.
    pub(crate) activated: Vec<u32>,
    /// Per-shard delivery drain scratch (no cross-tick state).
    deliveries: Vec<Delivery>,
    /// Per-shard arbitration release scratch.
    rel_scratch: Vec<PendingRelease>,
}

/// Read-only snapshot of the fault runtime's reachability state, enough
/// to evaluate the phase-3a arrival guard from any shard.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultView {
    pub(crate) comp: *const u32,
    pub(crate) node_comp: *const u32,
    pub(crate) down: *const SwitchId,
    pub(crate) n_down: usize,
}

/// The per-section context handed to every worker: raw pointers into
/// the simulator plus the tick parameters. Rebuilt by the coordinator
/// for each section so the pointers are re-derived after every serial
/// interlude.
pub(crate) struct TickCtx {
    pub(crate) now: Cycle,
    pub(crate) fast: bool,
    pub(crate) switches: *mut Switch,
    pub(crate) adapters: *mut Adapter,
    pub(crate) links: *mut Link,
    pub(crate) n_links: usize,
    pub(crate) routing: *const RoutingTable,
    /// Null when the mechanism has no VOQnet credit table.
    pub(crate) voqnet: *const VoqNetCredits,
    /// `2 × shards` outboxes: `[0, shards)` switch-side, `[shards, 2·shards)`
    /// adapter-side.
    pub(crate) outboxes: *mut ShardOutbox,
    /// Phase-5 activity gate, one flag per switch, written by `Iso` and
    /// read by `CstArb` (the serial engine evaluates the gate once for
    /// both halves, and isolation can change quiescence).
    pub(crate) p5_ran: *mut bool,
    pub(crate) plan: *const ShardPlan,
    pub(crate) faults: Option<FaultView>,
    /// `TraceLog::sample_every` when packet tracing is on, `0` when off
    /// — lets the Deliver phase apply the serial engine's sampling
    /// filter without touching the central `TraceLog`.
    pub(crate) trace_sample: u64,
    /// Sparse scheduler in force: workers iterate their subrange of the
    /// sorted member lists below instead of their whole shard range.
    pub(crate) sparse: bool,
    /// Sorted members of the simulator's active/ctrl sets, as
    /// `(ptr, len)` (stable for the section: the coordinator rebuilds
    /// the ctx after any mutation of a set).
    pub(crate) act_links: (*const u32, usize),
    pub(crate) act_sw: (*const u32, usize),
    pub(crate) ctrl_sw: (*const u32, usize),
    pub(crate) ctrl_nodes: (*const u32, usize),
    pub(crate) act_nodes: (*const u32, usize),
    /// SoA port-occupancy mirror (maintained by `Deliver` for the
    /// shard's own switches — element-disjoint like the switches).
    pub(crate) port_base: *const u32,
    pub(crate) port_occ: *mut u32,
}

// SAFETY: the pointers are only dereferenced inside `run_shard`, whose
// per-phase access pattern is element-disjoint across shards (module
// docs); barriers order the sections.
unsafe impl Send for TickCtx {}
unsafe impl Sync for TickCtx {}

impl TickCtx {
    /// The phase-3a arrival guard (`FaultRuntime::arrival_is_undeliverable`
    /// evaluated against the shared read-only snapshot).
    ///
    /// # Safety
    /// The `FaultView` pointers must still be live.
    unsafe fn arrival_is_undeliverable(&self, sw: u32, dst: u32) -> bool {
        let Some(fv) = self.faults else { return false };
        let down = std::slice::from_raw_parts(fv.down, fv.n_down);
        if down.iter().any(|d| d.0 == sw) {
            return true;
        }
        let dc = *fv.node_comp.add(dst as usize);
        dc == u32::MAX || dc != *fv.comp.add(sw as usize)
    }
}

/// View a `(ptr, len)` member list captured in a [`TickCtx`].
///
/// # Safety
/// The pointer must be live for the section (the coordinator rebuilds
/// the ctx after any mutation of the underlying set).
unsafe fn members<'a>(p: (*const u32, usize)) -> &'a [u32] {
    std::slice::from_raw_parts(p.0, p.1)
}

/// The subrange of a sorted member list whose indices fall in `r` —
/// shard `w`'s slice of an active set.
fn range_members<'a>(m: &'a [u32], r: &Range<usize>) -> &'a [u32] {
    let lo = m.partition_point(|&x| (x as usize) < r.start);
    let hi = m.partition_point(|&x| (x as usize) < r.end);
    &m[lo..hi]
}

/// Drain one switch-bound link into its receiving switch — the shared
/// body of the dense and sparse `Deliver` iterations.
///
/// # Safety
/// Same contract as [`run_shard`]; the switch in `sp` must belong to
/// the calling shard's switch range.
unsafe fn deliver_link(
    ctx: &TickCtx,
    links: &mut LinkSlice<'_>,
    ob: &mut ShardOutbox,
    scratch: &mut Vec<Delivery>,
    voqnet: Option<&VoqNetCredits>,
    li: usize,
    (s, p): (u32, u32),
) {
    let now = ctx.now;
    scratch.clear();
    links[li].deliver_into(now, scratch);
    let sw = &mut *ctx.switches.add(s as usize);
    for d in scratch.drain(..) {
        // Fault guard: consume stragglers the routing in
        // force cannot deliver (see the serial phase 3).
        if ctx.faults.is_some() && ctx.arrival_is_undeliverable(s, d.packet.dst.0) {
            if d.packet.is_data() {
                ob.purged_data += 1;
            } else {
                ob.purged_ctrl += 1;
            }
            links[li].return_credits(d.ready_at, d.packet.size_flits);
            if let Some(vn) = voqnet {
                vn.add(li as u32, d.packet.dst.0, d.packet.size_flits);
            }
            continue;
        }
        if ctx.trace_sample != 0
            && d.packet.is_data()
            && d.packet.id.0.is_multiple_of(ctx.trace_sample)
        {
            ob.trace_hops.push((d.packet.id, SwitchId(s), d.visible_at));
        }
        *ctx.port_occ
            .add((*ctx.port_base.add(s as usize) + p) as usize) += d.packet.size_flits;
        sw.accept_delivery(p as usize, d, &*ctx.routing);
    }
}

/// Run shard `w`'s slice of `phase`.
///
/// # Safety
/// `ctx` must point into a live simulator whose components the caller
/// is not otherwise touching; at most one concurrent caller per `w`;
/// all callers must run the same `phase` between the same two barriers.
pub(crate) unsafe fn run_shard(phase: PhaseKind, ctx: &TickCtx, w: usize) {
    let plan = &*ctx.plan;
    let now = ctx.now;
    let mut links = LinkSlice::from_raw(ctx.links, ctx.n_links);
    let voqnet: Option<&VoqNetCredits> = ctx.voqnet.as_ref();
    match phase {
        PhaseKind::Deliver => {
            let ob = &mut *ctx.outboxes.add(w);
            let mut scratch = std::mem::take(&mut ob.deliveries);
            if ctx.sparse {
                // Walk the active links, keeping this shard's. Receiving
                // switches are reported for the coordinator to activate.
                for &li32 in members(ctx.act_links) {
                    let li = li32 as usize;
                    if plan.link_owner[li] != w as u32 || !links[li].has_delivery(now) {
                        continue;
                    }
                    let (s, p) = plan.link_sw_port[li];
                    ob.activated.push(s);
                    deliver_link(ctx, &mut links, ob, &mut scratch, voqnet, li, (s, p));
                }
            } else {
                for &(li, s, p) in &plan.deliver_links[w] {
                    let li = li as usize;
                    if !links[li].has_delivery(now) {
                        continue;
                    }
                    deliver_link(ctx, &mut links, ob, &mut scratch, voqnet, li, (s, p));
                }
            }
            ob.deliveries = scratch;
        }
        PhaseKind::Ctrl => {
            {
                let ob = &mut *ctx.outboxes.add(w);
                if ctx.sparse {
                    for &s in range_members(members(ctx.ctrl_sw), &plan.switch_ranges[w]) {
                        (*ctx.switches.add(s as usize)).poll_output_ctrl_ls(
                            now,
                            &mut links,
                            &mut ob.metrics,
                        );
                    }
                } else {
                    for s in plan.switch_ranges[w].clone() {
                        (*ctx.switches.add(s)).poll_output_ctrl_ls(
                            now,
                            &mut links,
                            &mut ob.metrics,
                        );
                    }
                }
                // Segment boundary: Ctrl/Iso/CstArb run back-to-back with
                // no merge in between, so the coordinator replays this
                // log in marked segments (all shards' ctrl ops before any
                // shard's iso ops — the serial emission order).
                ob.metrics.mark();
            }
            {
                let ob = &mut *ctx.outboxes.add(plan.shards + w);
                if ctx.sparse {
                    for &a in range_members(members(ctx.ctrl_nodes), &plan.adapter_ranges[w]) {
                        (*ctx.adapters.add(a as usize)).poll_ctrl_ls(
                            now,
                            &mut links,
                            &mut ob.metrics,
                        );
                    }
                } else {
                    for a in plan.adapter_ranges[w].clone() {
                        (*ctx.adapters.add(a)).poll_ctrl_ls(now, &mut links, &mut ob.metrics);
                    }
                }
            }
        }
        PhaseKind::Iso => {
            let ob = &mut *ctx.outboxes.add(w);
            if ctx.sparse {
                for &s in range_members(members(ctx.act_sw), &plan.switch_ranges[w]) {
                    let s = s as usize;
                    let sw = &mut *ctx.switches.add(s);
                    let run = !sw.is_quiescent();
                    *ctx.p5_ran.add(s) = run;
                    if run {
                        sw.isolation_tick_ls(now, &*ctx.routing, &mut links, &mut ob.metrics);
                    }
                }
            } else {
                for s in plan.switch_ranges[w].clone() {
                    let sw = &mut *ctx.switches.add(s);
                    let run = !ctx.fast || !sw.is_quiescent();
                    *ctx.p5_ran.add(s) = run;
                    if run {
                        sw.isolation_tick_ls(now, &*ctx.routing, &mut links, &mut ob.metrics);
                    }
                }
            }
            ob.metrics.mark();
        }
        PhaseKind::CstArb => {
            let ob = &mut *ctx.outboxes.add(w);
            let mut rel = std::mem::take(&mut ob.rel_scratch);
            if ctx.sparse {
                for &s in range_members(members(ctx.act_sw), &plan.switch_ranges[w]) {
                    cst_arb_one(ctx, &mut links, ob, &mut rel, voqnet, s as usize, true);
                }
            } else {
                for s in plan.switch_ranges[w].clone() {
                    cst_arb_one(ctx, &mut links, ob, &mut rel, voqnet, s, ctx.fast);
                }
            }
            ob.rel_scratch = rel;
        }
        PhaseKind::AdapterTick => {
            let ob = &mut *ctx.outboxes.add(plan.shards + w);
            if ctx.sparse {
                for &a in range_members(members(ctx.act_nodes), &plan.adapter_ranges[w]) {
                    adapter_tick_one(ctx, &mut links, ob, voqnet, a as usize, true);
                }
            } else {
                for a in plan.adapter_ranges[w].clone() {
                    adapter_tick_one(ctx, &mut links, ob, voqnet, a, ctx.fast);
                }
            }
        }
    }
}

/// Congestion-state refresh + arbitration for one switch (shared body of
/// the dense and sparse `CstArb` iterations). `arb_gate` applies the
/// has-buffered skip (always on for sparse members, `ctx.fast` dense).
///
/// # Safety
/// Same contract as [`run_shard`]; `s` must belong to the calling
/// shard's switch range.
unsafe fn cst_arb_one(
    ctx: &TickCtx,
    links: &mut LinkSlice<'_>,
    ob: &mut ShardOutbox,
    rel: &mut Vec<PendingRelease>,
    voqnet: Option<&VoqNetCredits>,
    s: usize,
    arb_gate: bool,
) {
    let now = ctx.now;
    let sw = &mut *ctx.switches.add(s);
    if *ctx.p5_ran.add(s) {
        sw.congestion_state_tick_ls(now, links, &mut ob.metrics);
    }
    if arb_gate && !sw.has_buffered() {
        return;
    }
    rel.clear();
    sw.arbitrate_and_transmit_ls(now, &*ctx.routing, links, voqnet, &mut ob.metrics, rel);
    for r in rel.drain(..) {
        ob.releases.push((s as u32, r));
    }
}

/// Output work for one adapter (shared body of the dense and sparse
/// `AdapterTick` iterations). `gate` applies the quiet-and-unarmed skip
/// (always on for sparse members, `ctx.fast` dense).
///
/// # Safety
/// Same contract as [`run_shard`]; `a` must belong to the calling
/// shard's adapter range.
unsafe fn adapter_tick_one(
    ctx: &TickCtx,
    links: &mut LinkSlice<'_>,
    ob: &mut ShardOutbox,
    voqnet: Option<&VoqNetCredits>,
    a: usize,
    gate: bool,
) {
    let ad = &mut *ctx.adapters.add(a);
    if gate && ad.is_quiet() && ad.armed_timer_count() == 0 {
        return;
    }
    if let Some(r) = ad.tick_ls(ctx.now, links, voqnet, &mut ob.metrics) {
        ob.adapter_releases.push((a as u32, r));
    }
}

/// A generation-counted barrier that spins briefly, then parks on a
/// condvar — the sections it separates are microseconds long when the
/// network is busy (spin wins), but a waiter must get off the CPU fast
/// when cores are shared or the coordinator is in a long serial stretch
/// (park wins). The old pure spin/yield barrier was pathological in the
/// second regime: on a 1-CPU host it measured a 125× slowdown.
pub(crate) struct AdaptiveBarrier {
    n: usize,
    /// Spin iterations before parking. `0` parks (almost) immediately —
    /// the right setting when workers outnumber CPUs.
    spin_limit: u32,
    count: AtomicUsize,
    /// Barrier generation; waiters leave when it moves past the value
    /// they arrived at.
    gen: AtomicUsize,
    /// Waiters currently (or about to be) blocked in `cv`.
    parked: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl AdaptiveBarrier {
    pub(crate) fn new(n: usize, spin_limit: u32) -> Self {
        Self {
            n,
            spin_limit,
            count: AtomicUsize::new(0),
            gen: AtomicUsize::new(0),
            parked: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Block until all `n` participants arrive. The RMW chain on `count`
    /// plus the release/acquire (and, on the park path, SeqCst) accesses
    /// on `gen` publish every write made before the barrier to every
    /// thread leaving it.
    pub(crate) fn wait(&self) {
        let g = self.gen.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Release);
            // SeqCst pairs with the waiter's parked/gen accesses below:
            // if we miss a waiter's `parked` increment, that waiter's
            // later `gen` load is ordered after this store and sees the
            // new generation, so it never blocks on a stale one.
            self.gen.store(g.wrapping_add(1), Ordering::SeqCst);
            if self.parked.load(Ordering::SeqCst) != 0 {
                // Serialize against a waiter between its gen re-check and
                // its cv.wait — otherwise the notify could land in that
                // window and be lost.
                drop(self.lock.lock().unwrap());
                self.cv.notify_all();
            }
        } else {
            let mut spins = 0u32;
            loop {
                if self.gen.load(Ordering::Acquire) != g {
                    return;
                }
                spins += 1;
                if spins <= self.spin_limit {
                    std::hint::spin_loop();
                } else if spins <= self.spin_limit.saturating_add(16) {
                    // A few scheduler yields bridge the "releaser is
                    // runnable but preempted" case before paying for a
                    // full park/unpark round-trip.
                    std::thread::yield_now();
                } else {
                    self.parked.fetch_add(1, Ordering::SeqCst);
                    let mut guard = self.lock.lock().unwrap();
                    while self.gen.load(Ordering::SeqCst) == g {
                        guard = self.cv.wait(guard).unwrap();
                    }
                    drop(guard);
                    self.parked.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
            }
        }
    }
}

/// An intra-batch step: run `phases[..n]` back-to-back, one barrier
/// apart, against a single [`TickCtx`]. Chaining is only legal when the
/// coordinator has no serial work between the phases (the ctx pointers
/// stay valid across the whole chain).
#[derive(Clone, Copy)]
struct StepCmd {
    phases: [PhaseKind; 4],
    n: usize,
    ctx: *const TickCtx,
}

#[derive(Clone, Copy)]
enum Job {
    /// Enter the intra-batch step loop.
    Batch,
    Shutdown,
}

struct PoolShared {
    /// Batch-boundary rendezvous: workers park here between batches (and
    /// during serial-only stretches), so it spins only briefly.
    go: AdaptiveBarrier,
    /// Intra-batch step barrier: crossed up to `4 × batch_cycles` times
    /// per dispatch with live work on both sides, so it spins longer
    /// before parking.
    step: AdaptiveBarrier,
    job: UnsafeCell<Job>,
    /// `Some(step)` published before each step barrier; `None` ends the
    /// batch and sends the workers back to `go`.
    cmd: UnsafeCell<Option<StepCmd>>,
}

// SAFETY: `job` is written by the coordinator only while every worker
// is parked before `go`, and `cmd` only while every worker is parked
// before `step`; each is read only after passing the respective
// barrier, which provides the happens-before edge.
unsafe impl Send for PoolShared {}
unsafe impl Sync for PoolShared {}

/// A persistent worker pool: `threads - 1` OS threads plus the calling
/// thread, which always works shard 0. Created once per parallel run.
/// The coordinator drives it in *batches*: one `go` rendezvous admits
/// the workers into a step loop that executes many parallel sections
/// (across several simulated cycles) over cheap spin-biased barriers,
/// then a `None` step releases them back to the park-friendly `go`.
pub(crate) struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// `oversubscribed` tunes the spin budgets: when workers outnumber
    /// CPUs, spinning only steals cycles from the thread everyone is
    /// waiting for, so the barriers park almost immediately.
    pub(crate) fn new(threads: usize, oversubscribed: bool) -> Self {
        assert!(threads >= 2, "a pool below 2 threads is the serial engine");
        let (go_spin, step_spin) = if oversubscribed {
            (0, 0)
        } else {
            (128, 20_000)
        };
        let shared = Arc::new(PoolShared {
            go: AdaptiveBarrier::new(threads, go_spin),
            step: AdaptiveBarrier::new(threads, step_spin),
            job: UnsafeCell::new(Job::Shutdown),
            cmd: UnsafeCell::new(None),
        });
        let handles = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ccfit-shard-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("spawning a tick worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Open a batch: admit the workers into the step loop.
    pub(crate) fn begin_batch(&self) {
        // SAFETY: every worker is parked before `go` (protocol
        // invariant), so nothing is reading `job`.
        unsafe { *self.shared.job.get() = Job::Batch };
        self.shared.go.wait();
    }

    /// Run `phases` as one chained step (≤ 4, no coordinator work in
    /// between), working shard 0 on this thread. Must be called between
    /// [`Self::begin_batch`] and [`Self::end_batch`].
    pub(crate) fn run_step(&self, phases: &[PhaseKind], ctx: &TickCtx) {
        debug_assert!((1..=4).contains(&phases.len()));
        let mut cmd = StepCmd {
            phases: [PhaseKind::Deliver; 4],
            n: phases.len(),
            ctx: ctx as *const TickCtx,
        };
        cmd.phases[..phases.len()].copy_from_slice(phases);
        // SAFETY: every worker is blocked before `step` (they only read
        // `cmd` after passing it, and it only passes when we arrive).
        unsafe { *self.shared.cmd.get() = Some(cmd) };
        self.shared.step.wait();
        for &p in phases {
            // SAFETY: ctx is live for the whole chain; this thread is
            // the unique owner of shard 0.
            unsafe { run_shard(p, ctx, 0) };
            self.shared.step.wait();
        }
    }

    /// Close the batch: release the workers back to the `go` barrier so
    /// the coordinator can run serial work (or sleep) without them
    /// spinning.
    pub(crate) fn end_batch(&self) {
        // SAFETY: as in `run_step`.
        unsafe { *self.shared.cmd.get() = None };
        self.shared.step.wait();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // SAFETY: workers are parked before `go` (protocol invariant).
        unsafe { *self.shared.job.get() = Job::Shutdown };
        self.shared.go.wait();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>, w: usize) {
    loop {
        shared.go.wait();
        // SAFETY: the coordinator published `job` before the barrier.
        let job = unsafe { *shared.job.get() };
        match job {
            Job::Shutdown => return,
            Job::Batch => loop {
                shared.step.wait();
                // SAFETY: the coordinator published `cmd` before
                // arriving at the barrier we just passed.
                let Some(cmd) = (unsafe { *shared.cmd.get() }) else {
                    break;
                };
                for i in 0..cmd.n {
                    // SAFETY: the coordinator keeps `ctx` (and the
                    // simulator it points into) alive until the chain's
                    // final step barrier.
                    unsafe { run_shard(cmd.phases[i], &*cmd.ctx, w) };
                    shared.step.wait();
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_partitions_contiguously_and_covers_everything() {
        let link_sw_dst = [
            Some((0, 0)),
            None,
            Some((2, 1)),
            Some((1, 0)),
            Some((2, 0)),
            None,
        ];
        let plan = ShardPlan::build(2, &[1, 1, 1], 5, &link_sw_dst);
        assert_eq!(plan.shards, 2);
        // Contiguous, complete coverage.
        assert_eq!(plan.switch_ranges[0].end, plan.switch_ranges[1].start);
        assert_eq!(plan.switch_ranges[1].end, 3);
        assert_eq!(plan.adapter_ranges[1].end, 5);
        // Every switch-bound link lands in its receiver's shard, sorted.
        let all: Vec<_> = plan.deliver_links.concat();
        assert_eq!(all.len(), 4);
        for w in 0..2 {
            for &(li, s, _) in &plan.deliver_links[w] {
                assert!(plan.switch_ranges[w].contains(&(s as usize)));
                assert_eq!(link_sw_dst[li as usize].unwrap().0, s);
            }
            assert!(plan.deliver_links[w].windows(2).all(|x| x[0].0 < x[1].0));
        }
    }

    #[test]
    fn shard_plan_tolerates_more_shards_than_components() {
        let plan = ShardPlan::build(4, &[1, 1], 3, &[Some((0, 0)), Some((1, 0))]);
        let covered: usize = plan.switch_ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 2);
        let covered: usize = plan.adapter_ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 3);
        assert_eq!(plan.deliver_links.iter().flatten().count(), 2);
    }

    #[test]
    fn weighted_partition_balances_by_weight_not_count() {
        // One heavy item (a 32-port spine switch) vs many light ones:
        // the heavy item gets a shard of its own.
        let weights = [32u64, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2];
        let ranges = partition_weighted(&weights, 2);
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0], 0..1);
        assert_eq!(ranges[1], 1..weights.len());
        // Uniform weights degenerate to the near-even index split.
        let even = partition_weighted(&[1; 10], 4);
        let sizes: Vec<_> = even.iter().map(|r| r.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3), "{sizes:?}");
    }

    /// Hammer the spin-then-park barrier through both regimes: more
    /// threads than most CI hosts have cores (forced parking) and many
    /// reuse generations.
    #[test]
    fn adaptive_barrier_synchronizes_and_reuses() {
        for spin_limit in [0u32, 64] {
            let b = Arc::new(AdaptiveBarrier::new(3, spin_limit));
            let counter = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let b = Arc::clone(&b);
                let c = Arc::clone(&counter);
                handles.push(std::thread::spawn(move || {
                    for _ in 0..200 {
                        c.fetch_add(1, Ordering::Relaxed);
                        b.wait();
                        b.wait();
                    }
                }));
            }
            for round in 1..=200 {
                b.wait(); // everyone incremented
                assert_eq!(counter.load(Ordering::Relaxed), 2 * round);
                b.wait(); // release them into the next round
            }
            for h in handles {
                h.join().unwrap();
            }
            counter.store(0, Ordering::Relaxed);
        }
    }

    #[test]
    fn default_parallel_config_is_serial_with_auto_fallback() {
        let c = ParallelConfig::default();
        assert_eq!(c.threads, 1);
        assert_eq!(c.batch_cycles, 0);
        assert_eq!(c.fallback, ParallelFallback::Auto);
    }

    #[test]
    fn decision_table() {
        let cfg = |threads, fallback| ParallelConfig {
            threads,
            batch_cycles: 0,
            fallback,
        };
        let auto = |threads| cfg(threads, ParallelFallback::Auto);

        // threads == 1 is a request for the serial engine, not a fallback.
        let d = decide(&auto(1), 8, 1_000_000);
        assert_eq!((d.effective_threads, d.fallback), (1, None));

        // Single-CPU host: serial, whatever the work is.
        let d = decide(&auto(4), 1, 1_000_000);
        assert_eq!(
            (d.effective_threads, d.fallback),
            (1, Some(FallbackReason::SingleCpu))
        );

        // Tiny network on a big host: serial.
        let d = decide(&auto(4), 8, 200);
        assert_eq!(
            (d.effective_threads, d.fallback),
            (1, Some(FallbackReason::TinyShards))
        );

        // Big network, more threads than CPUs: clamp, stay parallel.
        let d = decide(&auto(8), 2, 1_000_000);
        assert_eq!(
            (d.effective_threads, d.fallback),
            (2, Some(FallbackReason::Oversubscribed))
        );

        // Big network, enough CPUs: run as requested.
        let d = decide(&auto(4), 8, 1_000_000);
        assert_eq!((d.effective_threads, d.fallback), (4, None));
        assert_eq!(d.batch_cycles, DEFAULT_BATCH_CYCLES);

        // Never: the request is law, even on one CPU.
        let d = decide(&cfg(4, ParallelFallback::Never), 1, 10);
        assert_eq!((d.effective_threads, d.fallback), (4, None));
    }
}
