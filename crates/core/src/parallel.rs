//! The deterministic sharded parallel tick engine (DESIGN.md §9).
//!
//! [`crate::Simulator`] partitions switches and adapters into `threads`
//! contiguous shards and runs the intra-component phases of the cycle
//! loop — link deliveries into switches, control polling, isolation,
//! congestion-state + arbitration, and adapter ticks — on a persistent
//! worker pool. Everything a shard does to state it does not own (RAM
//! releases, metric updates, fault-purge tallies) is recorded into a
//! per-shard [`ShardOutbox`] and replayed by the coordinator in the
//! canonical order *(shard index, component index, emission order)*.
//! Because shards are contiguous component ranges, that replay order is
//! exactly the component-index order of the serial engine, so a parallel
//! run is **byte-identical** to a serial one — a property the
//! determinism suite pins for `threads ∈ {1, 2, 4}`.
//!
//! ## Why this is sound
//!
//! Every parallel section touches a statically disjoint link set per
//! shard (links are the shard boundary; they carry ≥ 1 cycle of latency,
//! so nothing a shard emits is visible to another shard within the same
//! cycle):
//!
//! * **Deliver** — a link is drained by the shard of its *receiving*
//!   switch (credit refunds on a fault purge touch the same link).
//! * **Ctrl** — a switch polls its own output links; an adapter polls
//!   its own injection link. Output links and injection links are
//!   disjoint sets (injection links are sent on by adapters).
//! * **Iso** — a switch sends Stop/Go/alloc control *upstream* on its
//!   own input links; the cached [`crate::switch::OutputPort::link_bw`]
//!   removes the one foreign read the starvation test used to make.
//! * **CstArb** — a switch reads credits of and transmits on its own
//!   output links.
//! * **AdapterTick** — an adapter transmits on its own injection link.
//!
//! VOQnet per-destination credits are atomics indexed by link, so each
//! row inherits the single-writer guarantee of the link that owns it.
//! Sections are separated by sense-reversing barriers, which provide the
//! happens-before edges the aliased [`LinkSlice`] views rely on.

use crate::endnode::{Adapter, AdapterRelease};
use crate::switch::{PendingRelease, Switch, VoqNetCredits};
use ccfit_engine::ids::{PacketId, SwitchId};
use ccfit_engine::link::{Delivery, Link, LinkSlice};
use ccfit_engine::units::Cycle;
use ccfit_metrics::MetricsScratch;
use ccfit_topology::RoutingTable;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Worker-pool configuration for the sharded parallel tick engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// OS threads ticking the network. `1` (the default) keeps the
    /// serial engine; `n > 1` runs the sharded engine on `n` threads
    /// (the calling thread works shard 0). Results are byte-identical
    /// for every value.
    pub threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self { threads: 1 }
    }
}

/// Which parallel section of the tick to run (see the module docs for
/// the per-section link-ownership argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PhaseKind {
    /// Phase 3a: drain switch-bound links into their receiving switches.
    Deliver,
    /// Phase 4: switches poll output-link ctrl, adapters poll injection
    /// ctrl.
    Ctrl,
    /// Phase 5a: isolation / post-processing (records its activity gate
    /// into `p5_ran` for reuse by `CstArb`).
    Iso,
    /// Phases 5b + 6: congestion-state refresh, then iSLIP arbitration
    /// and transmission.
    CstArb,
    /// Phase 8b: adapter output work (AdVOQ moves + injection).
    AdapterTick,
}

/// The static shard layout: contiguous switch/adapter ranges plus the
/// per-shard list of links delivering into that shard's switches.
#[derive(Debug, Clone)]
pub(crate) struct ShardPlan {
    pub(crate) shards: usize,
    pub(crate) switch_ranges: Vec<Range<usize>>,
    pub(crate) adapter_ranges: Vec<Range<usize>>,
    /// Per shard: `(link, switch, port)` for every link whose receiver
    /// is one of the shard's switches, ascending by link index — the
    /// serial engine's per-switch delivery order.
    pub(crate) deliver_links: Vec<Vec<(u32, u32, u32)>>,
}

impl ShardPlan {
    /// Partition `num_switches` switches and `num_adapters` adapters
    /// into `threads` contiguous shards. `link_sw_dst[li]` is the
    /// `(switch, port)` a link delivers into (`None` for node-bound
    /// links, which stay serial).
    pub(crate) fn build(
        threads: usize,
        num_switches: usize,
        num_adapters: usize,
        link_sw_dst: &[Option<(u32, u32)>],
    ) -> Self {
        let shards = threads.max(1);
        let chunk =
            |n: usize, w: usize| -> Range<usize> { (w * n / shards)..((w + 1) * n / shards) };
        let switch_ranges: Vec<_> = (0..shards).map(|w| chunk(num_switches, w)).collect();
        let adapter_ranges: Vec<_> = (0..shards).map(|w| chunk(num_adapters, w)).collect();
        let shard_of_switch = |s: usize| -> usize {
            switch_ranges
                .iter()
                .position(|r| r.contains(&s))
                .expect("every switch is in exactly one shard")
        };
        let mut deliver_links = vec![Vec::new(); shards];
        for (li, dst) in link_sw_dst.iter().enumerate() {
            if let Some((s, p)) = *dst {
                deliver_links[shard_of_switch(s as usize)].push((li as u32, s, p));
            }
        }
        Self {
            shards,
            switch_ranges,
            adapter_ranges,
            deliver_links,
        }
    }
}

/// Everything a shard produced that must be applied to shared state,
/// replayed by the coordinator in shard order after the section barrier.
#[derive(Debug, Default)]
pub(crate) struct ShardOutbox {
    /// Metric operations, replayed verbatim (an op log, not partial
    /// sums, so floating-point accumulation order matches the serial
    /// engine exactly).
    pub(crate) metrics: MetricsScratch,
    /// `(switch, release)` RAM releases from arbitration.
    pub(crate) releases: Vec<(u32, PendingRelease)>,
    /// `(node, release)` RAM releases from adapter injection.
    pub(crate) adapter_releases: Vec<(u32, AdapterRelease)>,
    /// Data packets consumed by the phase-3a fault guard.
    pub(crate) purged_data: u64,
    /// Control packets consumed by the phase-3a fault guard.
    pub(crate) purged_ctrl: u64,
    /// `(packet, switch, arrival)` hops of traced packets seen by this
    /// shard's phase 3a, replayed into the central `TraceLog` in shard
    /// order (a packet makes at most one hop per cycle, so per-packet
    /// hop order is cycle order regardless of the shard layout).
    pub(crate) trace_hops: Vec<(PacketId, SwitchId, Cycle)>,
    /// Per-shard delivery drain scratch (no cross-tick state).
    deliveries: Vec<Delivery>,
    /// Per-shard arbitration release scratch.
    rel_scratch: Vec<PendingRelease>,
}

/// Read-only snapshot of the fault runtime's reachability state, enough
/// to evaluate the phase-3a arrival guard from any shard.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultView {
    pub(crate) comp: *const u32,
    pub(crate) node_comp: *const u32,
    pub(crate) down: *const SwitchId,
    pub(crate) n_down: usize,
}

/// The per-section context handed to every worker: raw pointers into
/// the simulator plus the tick parameters. Rebuilt by the coordinator
/// for each section so the pointers are re-derived after every serial
/// interlude.
pub(crate) struct TickCtx {
    pub(crate) now: Cycle,
    pub(crate) fast: bool,
    pub(crate) switches: *mut Switch,
    pub(crate) adapters: *mut Adapter,
    pub(crate) links: *mut Link,
    pub(crate) n_links: usize,
    pub(crate) routing: *const RoutingTable,
    /// Null when the mechanism has no VOQnet credit table.
    pub(crate) voqnet: *const VoqNetCredits,
    /// `2 × shards` outboxes: `[0, shards)` switch-side, `[shards, 2·shards)`
    /// adapter-side.
    pub(crate) outboxes: *mut ShardOutbox,
    /// Phase-5 activity gate, one flag per switch, written by `Iso` and
    /// read by `CstArb` (the serial engine evaluates the gate once for
    /// both halves, and isolation can change quiescence).
    pub(crate) p5_ran: *mut bool,
    pub(crate) plan: *const ShardPlan,
    pub(crate) faults: Option<FaultView>,
    /// `TraceLog::sample_every` when packet tracing is on, `0` when off
    /// — lets the Deliver phase apply the serial engine's sampling
    /// filter without touching the central `TraceLog`.
    pub(crate) trace_sample: u64,
}

// SAFETY: the pointers are only dereferenced inside `run_shard`, whose
// per-phase access pattern is element-disjoint across shards (module
// docs); barriers order the sections.
unsafe impl Send for TickCtx {}
unsafe impl Sync for TickCtx {}

impl TickCtx {
    /// The phase-3a arrival guard (`FaultRuntime::arrival_is_undeliverable`
    /// evaluated against the shared read-only snapshot).
    ///
    /// # Safety
    /// The `FaultView` pointers must still be live.
    unsafe fn arrival_is_undeliverable(&self, sw: u32, dst: u32) -> bool {
        let Some(fv) = self.faults else { return false };
        let down = std::slice::from_raw_parts(fv.down, fv.n_down);
        if down.iter().any(|d| d.0 == sw) {
            return true;
        }
        let dc = *fv.node_comp.add(dst as usize);
        dc == u32::MAX || dc != *fv.comp.add(sw as usize)
    }
}

/// Run shard `w`'s slice of `phase`.
///
/// # Safety
/// `ctx` must point into a live simulator whose components the caller
/// is not otherwise touching; at most one concurrent caller per `w`;
/// all callers must run the same `phase` between the same two barriers.
pub(crate) unsafe fn run_shard(phase: PhaseKind, ctx: &TickCtx, w: usize) {
    let plan = &*ctx.plan;
    let now = ctx.now;
    let mut links = LinkSlice::from_raw(ctx.links, ctx.n_links);
    let voqnet: Option<&VoqNetCredits> = ctx.voqnet.as_ref();
    match phase {
        PhaseKind::Deliver => {
            let ob = &mut *ctx.outboxes.add(w);
            let mut scratch = std::mem::take(&mut ob.deliveries);
            for &(li, s, p) in &plan.deliver_links[w] {
                let li = li as usize;
                if !links[li].has_delivery(now) {
                    continue;
                }
                scratch.clear();
                links[li].deliver_into(now, &mut scratch);
                let sw = &mut *ctx.switches.add(s as usize);
                for d in scratch.drain(..) {
                    // Fault guard: consume stragglers the routing in
                    // force cannot deliver (see the serial phase 3).
                    if ctx.faults.is_some() && ctx.arrival_is_undeliverable(s, d.packet.dst.0) {
                        if d.packet.is_data() {
                            ob.purged_data += 1;
                        } else {
                            ob.purged_ctrl += 1;
                        }
                        links[li].return_credits(d.ready_at, d.packet.size_flits);
                        if let Some(vn) = voqnet {
                            vn.add(li as u32, d.packet.dst.0, d.packet.size_flits);
                        }
                        continue;
                    }
                    if ctx.trace_sample != 0
                        && d.packet.is_data()
                        && d.packet.id.0.is_multiple_of(ctx.trace_sample)
                    {
                        ob.trace_hops.push((d.packet.id, SwitchId(s), d.visible_at));
                    }
                    sw.accept_delivery(p as usize, d, &*ctx.routing);
                }
            }
            ob.deliveries = scratch;
        }
        PhaseKind::Ctrl => {
            {
                let ob = &mut *ctx.outboxes.add(w);
                for s in plan.switch_ranges[w].clone() {
                    (*ctx.switches.add(s)).poll_output_ctrl_ls(now, &mut links, &mut ob.metrics);
                }
            }
            {
                let ob = &mut *ctx.outboxes.add(plan.shards + w);
                for a in plan.adapter_ranges[w].clone() {
                    (*ctx.adapters.add(a)).poll_ctrl_ls(now, &mut links, &mut ob.metrics);
                }
            }
        }
        PhaseKind::Iso => {
            let ob = &mut *ctx.outboxes.add(w);
            for s in plan.switch_ranges[w].clone() {
                let sw = &mut *ctx.switches.add(s);
                let run = !ctx.fast || !sw.is_quiescent();
                *ctx.p5_ran.add(s) = run;
                if run {
                    sw.isolation_tick_ls(now, &*ctx.routing, &mut links, &mut ob.metrics);
                }
            }
        }
        PhaseKind::CstArb => {
            let ob = &mut *ctx.outboxes.add(w);
            let mut rel = std::mem::take(&mut ob.rel_scratch);
            for s in plan.switch_ranges[w].clone() {
                let sw = &mut *ctx.switches.add(s);
                if *ctx.p5_ran.add(s) {
                    sw.congestion_state_tick_ls(now, &links, &mut ob.metrics);
                }
                if ctx.fast && !sw.has_buffered() {
                    continue;
                }
                rel.clear();
                sw.arbitrate_and_transmit_ls(
                    now,
                    &*ctx.routing,
                    &mut links,
                    voqnet,
                    &mut ob.metrics,
                    &mut rel,
                );
                for r in rel.drain(..) {
                    ob.releases.push((s as u32, r));
                }
            }
            ob.rel_scratch = rel;
        }
        PhaseKind::AdapterTick => {
            let ob = &mut *ctx.outboxes.add(plan.shards + w);
            for a in plan.adapter_ranges[w].clone() {
                let ad = &mut *ctx.adapters.add(a);
                if ctx.fast && ad.is_quiet() && ad.armed_timer_count() == 0 {
                    continue;
                }
                if let Some(r) = ad.tick_ls(now, &mut links, voqnet, &mut ob.metrics) {
                    ob.adapter_releases.push((a as u32, r));
                }
            }
        }
    }
}

/// A sense-reversing barrier that spins briefly, then yields — the
/// sections it separates are microseconds long, but the engine must
/// also stay live when the host has fewer cores than workers (CI
/// containers), where pure spinning would deadlock the scheduler's
/// patience.
pub(crate) struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Block until all `n` participants arrive. The release/acquire
    /// pair on `sense` (and the RMW chain on `count`) publishes every
    /// write made before the barrier to every thread leaving it.
    pub(crate) fn wait(&self) {
        let my_sense = !self.sense.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Release);
            self.sense.store(my_sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Job {
    Run(PhaseKind, *const TickCtx),
    Shutdown,
}

struct PoolShared {
    start: SpinBarrier,
    done: SpinBarrier,
    job: UnsafeCell<Job>,
}

// SAFETY: `job` is written by the coordinator only while every worker
// is parked before `start` and read by workers only after passing it;
// the barriers provide the necessary happens-before edges.
unsafe impl Send for PoolShared {}
unsafe impl Sync for PoolShared {}

/// A persistent worker pool: `threads - 1` parked OS threads plus the
/// calling thread, which always works shard 0. Created once per
/// parallel run; the workers idle at a barrier between sections.
pub(crate) struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    pub(crate) fn new(threads: usize) -> Self {
        assert!(threads >= 2, "a pool below 2 threads is the serial engine");
        let shared = Arc::new(PoolShared {
            start: SpinBarrier::new(threads),
            done: SpinBarrier::new(threads),
            job: UnsafeCell::new(Job::Shutdown),
        });
        let handles = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ccfit-shard-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("spawning a tick worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Run one parallel section: publish the job, release the workers,
    /// work shard 0 on this thread, and wait for everyone.
    pub(crate) fn run_section(&self, phase: PhaseKind, ctx: &TickCtx) {
        // SAFETY: every worker is parked before `start` (protocol
        // invariant), so nothing is reading `job`.
        unsafe { *self.shared.job.get() = Job::Run(phase, ctx as *const TickCtx) };
        self.shared.start.wait();
        // SAFETY: ctx is live for the whole section; this thread is the
        // unique owner of shard 0.
        unsafe { run_shard(phase, ctx, 0) };
        self.shared.done.wait();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // SAFETY: workers are parked before `start` (see run_section).
        unsafe { *self.shared.job.get() = Job::Shutdown };
        self.shared.start.wait();
        self.shared.done.wait();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>, w: usize) {
    loop {
        shared.start.wait();
        // SAFETY: the coordinator published `job` before the barrier.
        let job = unsafe { *shared.job.get() };
        match job {
            Job::Shutdown => {
                shared.done.wait();
                return;
            }
            Job::Run(phase, ctx) => {
                // SAFETY: the coordinator keeps `ctx` (and the
                // simulator it points into) alive until `done`.
                unsafe { run_shard(phase, &*ctx, w) };
                shared.done.wait();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_partitions_contiguously_and_covers_everything() {
        let link_sw_dst = [
            Some((0, 0)),
            None,
            Some((2, 1)),
            Some((1, 0)),
            Some((2, 0)),
            None,
        ];
        let plan = ShardPlan::build(2, 3, 5, &link_sw_dst);
        assert_eq!(plan.shards, 2);
        // Contiguous, complete coverage.
        assert_eq!(plan.switch_ranges[0].end, plan.switch_ranges[1].start);
        assert_eq!(plan.switch_ranges[1].end, 3);
        assert_eq!(plan.adapter_ranges[1].end, 5);
        // Every switch-bound link lands in its receiver's shard, sorted.
        let all: Vec<_> = plan.deliver_links.concat();
        assert_eq!(all.len(), 4);
        for w in 0..2 {
            for &(li, s, _) in &plan.deliver_links[w] {
                assert!(plan.switch_ranges[w].contains(&(s as usize)));
                assert_eq!(link_sw_dst[li as usize].unwrap().0, s);
            }
            assert!(plan.deliver_links[w].windows(2).all(|x| x[0].0 < x[1].0));
        }
    }

    #[test]
    fn shard_plan_tolerates_more_shards_than_components() {
        let plan = ShardPlan::build(4, 2, 3, &[Some((0, 0)), Some((1, 0))]);
        let covered: usize = plan.switch_ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 2);
        let covered: usize = plan.adapter_ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 3);
        assert_eq!(plan.deliver_links.iter().flatten().count(), 2);
    }

    #[test]
    fn spin_barrier_synchronizes_and_reuses() {
        let b = Arc::new(SpinBarrier::new(3));
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let b = Arc::clone(&b);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    c.fetch_add(1, Ordering::Relaxed);
                    b.wait();
                    b.wait();
                }
            }));
        }
        for round in 1..=100 {
            b.wait(); // everyone incremented
            assert_eq!(counter.load(Ordering::Relaxed), 2 * round);
            b.wait(); // release them into the next round
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn default_parallel_config_is_serial() {
        assert_eq!(ParallelConfig::default().threads, 1);
    }
}
