//! Congestion-control mechanism parameters — re-exported from the
//! [`ccfit-cc`](ccfit_cc) subsystem crate, where the [`Mechanism`]
//! registry, the parameter sets and the
//! [`CongestionControl`](ccfit_cc::CongestionControl) trait now live.
//!
//! This module exists so every pre-existing `ccfit::params::…` path
//! keeps compiling; new code should consider depending on `ccfit-cc`
//! directly when it only needs mechanism definitions.

pub use ccfit_cc::{
    CctProfile, CongestionControl, DcqcnParams, DetectionPolicy, FeedbackPolicy, HpccParams,
    IsolationParams, Mechanism, QueueingScheme, ReactionPolicy, ThrottleParams,
};
