//! Congestion-control mechanism parameters (§III-E, §IV-A).
//!
//! The paper evaluates five mechanisms. Internally each decomposes into
//! three orthogonal pieces, which is also how the ablation benches mix
//! them:
//!
//! | Mechanism | Queueing            | Isolation (CFQs/CAMs) | Throttling (FECN/BECN) |
//! |-----------|---------------------|-----------------------|------------------------|
//! | 1Q        | single queue        | —                     | —                      |
//! | VOQsw     | queue per output    | —                     | —                      |
//! | VOQnet    | queue per dest      | —                     | —                      |
//! | FBICM     | NFQ + CFQs          | yes                   | —                      |
//! | ITh       | queue per output    | —                     | yes (VOQ-occupancy marking) |
//! | CCFIT     | NFQ + CFQs          | yes                   | yes (root-CFQ marking) |

use serde::{Deserialize, Serialize};

/// How an input port's RAM is organised into queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueingScheme {
    /// One FIFO per input port ("1Q") — no HoL-blocking reduction at all.
    Single,
    /// Virtual output queues at switch level (VOQsw): one queue per
    /// output port of the switch.
    PerOutput,
    /// Virtual output queues at network level (VOQnet): one queue per
    /// destination end node, with a reserved per-queue capacity.
    PerDest,
    /// FBICM/CCFIT dynamic organisation: one normal flow queue plus a
    /// small number of congested flow queues.
    Isolating,
    /// DBBM (paper ref. \[24\]): a fixed set of queues selected by
    /// `destination mod Q` — cheap HoL reduction without congestion
    /// tracking. Implemented as an extension beyond the paper's
    /// evaluated set.
    DstMod,
}

/// Congested-flow-isolation parameters (the FBICM side of CCFIT).
///
/// The default detection threshold is 8 MTUs (a 25 % fill ratio of the
/// 64 KB port RAM): early enough to isolate a hotspot within a few
/// microseconds, late enough that the transient bursts released when an
/// upstream Stop clears do not get mis-detected as new congestion
/// (§III-E: "not too early and not too late").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsolationParams {
    /// CFQs per input port (the paper uses 2).
    pub num_cfqs: usize,
    /// NFQ occupancy (in MTUs) that triggers congestion detection and
    /// allocates a CFQ + CAM line for the blocked destination.
    pub detect_threshold_mtus: u32,
    /// CFQ occupancy (MTUs) at which the congestion information is
    /// propagated upstream (`CfqAlloc`), so the upstream hop starts
    /// isolating this flow before the Stop threshold is reached.
    pub propagate_threshold_mtus: u32,
    /// CFQ Stop threshold (MTUs): ask upstream to pause this congested
    /// flow (paper: 10).
    pub stop_mtus: u32,
    /// CFQ Go threshold (MTUs): resume (paper: 4).
    pub go_mtus: u32,
    /// Cycles a CFQ must remain empty (and in Go state) before its
    /// resources are deallocated, avoiding allocation thrash.
    pub dealloc_linger_cycles: u64,
    /// CAM lines per *output* port for tracking congestion trees
    /// propagated from downstream.
    pub out_cam_lines: usize,
}

impl Default for IsolationParams {
    fn default() -> Self {
        Self {
            num_cfqs: 2,
            detect_threshold_mtus: 8,
            propagate_threshold_mtus: 2,
            stop_mtus: 10,
            go_mtus: 4,
            dealloc_linger_cycles: 1024,
            out_cam_lines: 4,
        }
    }
}

/// Shape of the Congestion Control Table: how the injection rate delay
/// grows with the CCTI. The paper only says "CCT values are typically
/// arranged in such a way that the higher the index, the greater the
/// IRD"; both common arrangements are provided.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CctProfile {
    /// `IRD(i) = i × unit` — gentle, proportional response.
    Linear,
    /// `IRD(i) = unit × (2^(i / period) − 1)` — doubling response every
    /// `period` BECNs, the aggressive arrangement used by several IB CC
    /// studies.
    Exponential {
        /// CCTI steps per doubling.
        period: usize,
    },
}

/// Injection-throttling parameters (the InfiniBand-CC side of CCFIT,
/// §II and §IV-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThrottleParams {
    /// Fraction of packets crossing a congestion-state output port that
    /// get FECN-marked (paper: 0.85).
    pub marking_rate: f64,
    /// Only packets larger than this (bytes) are FECN-marked
    /// (`Packet_Size`).
    pub packet_size_threshold_bytes: u32,
    /// `CCTI_Timer`: nanoseconds between automatic CCTI decrements
    /// (paper: 8000 ns).
    pub ccti_timer_ns: f64,
    /// `CCTI_Increase`: CCTI increment per received BECN (IB default 1).
    pub ccti_increase: u16,
    /// Number of entries in the Congestion Control Table.
    pub cct_len: usize,
    /// Base unit of the injection rate delay in nanoseconds.
    pub cct_unit_ns: f64,
    /// Arrangement of the CCT entries.
    pub cct_profile: CctProfile,
    /// Congestion-detection High threshold in MTUs. For ITh this is
    /// compared against the aggregate VOQ occupancy of an output port;
    /// for CCFIT against each root CFQ's occupancy (paper: 4).
    pub high_mtus: u32,
    /// Low threshold (hysteresis exit, paper: 2). Kept at least one MTU
    /// below High per ref. \[12\].
    pub low_mtus: u32,
    /// CCFIT only: how long (ns) a root CFQ must stay above High before
    /// its output port enters the congestion state. Discriminates
    /// sustained oversubscription (occupancy pinned above High) from the
    /// decaying burst a faster upstream link can momentarily deposit in
    /// front of a full-rate-draining port — marking the latter would
    /// throttle victims. Ignored by ITh, whose plain High/Low behaviour
    /// (and resulting "saw-shape" instability) is a finding of the paper.
    pub congestion_entry_delay_ns: f64,
    /// CCFIT only: window (ns) over which each root CFQ's drain rate is
    /// measured. A CFQ only drives its output into the congestion state
    /// while it is *starved* — receiving clearly less than the output
    /// link's capacity — which separates true oversubscription from a
    /// full-rate flow with a standing queue.
    pub starvation_window_ns: f64,
}

impl Default for ThrottleParams {
    fn default() -> Self {
        Self {
            marking_rate: 0.85,
            packet_size_threshold_bytes: 256,
            ccti_timer_ns: 8000.0,
            ccti_increase: 1,
            cct_len: 128,
            cct_unit_ns: 400.0,
            cct_profile: CctProfile::Linear,
            high_mtus: 4,
            low_mtus: 2,
            congestion_entry_delay_ns: 13_000.0,
            starvation_window_ns: 13_000.0,
        }
    }
}

/// A congestion-control mechanism, exactly the set evaluated in §IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mechanism {
    /// Single queue per input port; the DET-routing-only baseline.
    OneQ,
    /// Switch-level virtual output queues (no explicit CC).
    VoqSw,
    /// Network-level virtual output queues — the "theoretical maximum"
    /// HoL eliminator with per-destination reserved buffers.
    VoqNet {
        /// Reserved capacity per destination queue, in flits (paper:
        /// 4 KB = 64 flits).
        per_queue_flits: u32,
    },
    /// Congested-flow isolation alone.
    Fbicm(IsolationParams),
    /// Destination-Based Buffer Management (ref. \[24\]): packets use
    /// queue `destination mod num_queues`. An evaluated extension, not
    /// part of the paper's Fig. 7–10 set.
    Dbbm {
        /// Number of queues per input port.
        num_queues: usize,
    },
    /// Injection throttling alone over VOQsw switches (IB-style CC).
    Ith(ThrottleParams),
    /// The paper's contribution: isolation + throttling combined, with
    /// the congestion state driven by root-CFQ occupancy.
    Ccfit(IsolationParams, ThrottleParams),
}

impl Mechanism {
    /// Default-parameter CCFIT.
    pub fn ccfit() -> Self {
        Mechanism::Ccfit(IsolationParams::default(), ThrottleParams::default())
    }

    /// Default-parameter FBICM.
    pub fn fbicm() -> Self {
        Mechanism::Fbicm(IsolationParams::default())
    }

    /// Default-parameter injection throttling.
    pub fn ith() -> Self {
        Mechanism::Ith(ThrottleParams::default())
    }

    /// Default-parameter VOQnet (4 KB per destination queue).
    pub fn voqnet() -> Self {
        Mechanism::VoqNet {
            per_queue_flits: 64,
        }
    }

    /// Default-parameter DBBM (4 queues per port, as in ref. \[24\]'s
    /// cost-effective configurations).
    pub fn dbbm() -> Self {
        Mechanism::Dbbm { num_queues: 4 }
    }

    /// Queueing scheme this mechanism uses at input ports.
    pub fn queueing(&self) -> QueueingScheme {
        match self {
            Mechanism::OneQ => QueueingScheme::Single,
            Mechanism::VoqSw | Mechanism::Ith(_) => QueueingScheme::PerOutput,
            Mechanism::VoqNet { .. } => QueueingScheme::PerDest,
            Mechanism::Dbbm { .. } => QueueingScheme::DstMod,
            Mechanism::Fbicm(_) | Mechanism::Ccfit(..) => QueueingScheme::Isolating,
        }
    }

    /// Number of DstMod queues (DBBM only).
    pub fn dbbm_queues(&self) -> usize {
        match self {
            Mechanism::Dbbm { num_queues } => *num_queues,
            _ => 0,
        }
    }

    /// Isolation parameters, if the mechanism isolates congested flows.
    pub fn isolation(&self) -> Option<&IsolationParams> {
        match self {
            Mechanism::Fbicm(iso) | Mechanism::Ccfit(iso, _) => Some(iso),
            _ => None,
        }
    }

    /// Throttling parameters, if the mechanism throttles injection.
    pub fn throttle(&self) -> Option<&ThrottleParams> {
        match self {
            Mechanism::Ith(t) | Mechanism::Ccfit(_, t) => Some(t),
            _ => None,
        }
    }

    /// Relative per-port tick cost of this mechanism's switch machinery,
    /// used by the parallel engine's work estimate (shard balancing and
    /// the serial auto-fallback — see `crate::parallel::network_weight`).
    /// Coarse by design: a FIFO port is the unit; per-output VOQs scan a
    /// queue set; isolation adds CFQ/CAM bookkeeping; per-destination
    /// VOQs scan a queue per end node. Only the *ratio* matters, and a
    /// wrong ratio costs balance, never correctness.
    pub fn tick_weight(&self) -> u64 {
        match self.queueing() {
            QueueingScheme::Single => 1,
            QueueingScheme::PerOutput | QueueingScheme::DstMod => 2,
            QueueingScheme::Isolating => 3,
            QueueingScheme::PerDest => 4,
        }
    }

    /// Display name used in reports and figures.
    pub fn name(&self) -> &'static str {
        match self {
            Mechanism::OneQ => "1Q",
            Mechanism::VoqSw => "VOQsw",
            Mechanism::VoqNet { .. } => "VOQnet",
            Mechanism::Dbbm { .. } => "DBBM",
            Mechanism::Fbicm(_) => "FBICM",
            Mechanism::Ith(_) => "ITh",
            Mechanism::Ccfit(..) => "CCFIT",
        }
    }

    /// Validate parameter sanity (threshold ordering per §III-E).
    pub fn validate(&self) -> Result<(), String> {
        if let Mechanism::Dbbm { num_queues } = self {
            if *num_queues == 0 {
                return Err("DBBM needs at least one queue".into());
            }
        }
        if let Some(iso) = self.isolation() {
            if iso.num_cfqs == 0 {
                return Err("isolation needs at least one CFQ".into());
            }
            if iso.go_mtus >= iso.stop_mtus {
                return Err("Go threshold must be below Stop".into());
            }
            if iso.propagate_threshold_mtus > iso.stop_mtus {
                return Err("propagation threshold must not exceed Stop".into());
            }
        }
        if let Some(t) = self.throttle() {
            if !(0.0..=1.0).contains(&t.marking_rate) {
                return Err("marking rate must be in [0, 1]".into());
            }
            if t.low_mtus + 1 > t.high_mtus {
                return Err("High/Low thresholds need at least one MTU of distance".into());
            }
            if t.cct_len < 2 {
                return Err("CCT needs at least two entries".into());
            }
        }
        if let Mechanism::Ccfit(iso, t) = self {
            // §III-E: the Stop threshold should sit above High so upstream
            // congested packets are not blocked while marking ramps up.
            if iso.stop_mtus <= t.high_mtus {
                return Err("Stop threshold should be greater than High (§III-E)".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let iso = IsolationParams::default();
        assert_eq!(iso.num_cfqs, 2);
        assert_eq!(iso.stop_mtus, 10);
        assert_eq!(iso.go_mtus, 4);
        let t = ThrottleParams::default();
        assert_eq!(t.marking_rate, 0.85);
        assert_eq!(t.ccti_timer_ns, 8000.0);
        assert_eq!(t.high_mtus, 4);
        assert_eq!(t.low_mtus, 2);
    }

    #[test]
    fn decomposition_matches_the_table() {
        assert_eq!(Mechanism::OneQ.queueing(), QueueingScheme::Single);
        assert_eq!(Mechanism::VoqSw.queueing(), QueueingScheme::PerOutput);
        assert_eq!(Mechanism::voqnet().queueing(), QueueingScheme::PerDest);
        assert_eq!(Mechanism::fbicm().queueing(), QueueingScheme::Isolating);
        assert_eq!(Mechanism::ith().queueing(), QueueingScheme::PerOutput);
        assert_eq!(Mechanism::ccfit().queueing(), QueueingScheme::Isolating);

        assert!(Mechanism::OneQ.isolation().is_none());
        assert!(Mechanism::fbicm().isolation().is_some());
        assert!(Mechanism::fbicm().throttle().is_none());
        assert!(Mechanism::ith().throttle().is_some());
        assert!(Mechanism::ith().isolation().is_none());
        assert!(Mechanism::ccfit().isolation().is_some());
        assert!(Mechanism::ccfit().throttle().is_some());
    }

    #[test]
    fn names_are_the_paper_names() {
        assert_eq!(Mechanism::OneQ.name(), "1Q");
        assert_eq!(Mechanism::voqnet().name(), "VOQnet");
        assert_eq!(Mechanism::ccfit().name(), "CCFIT");
    }

    #[test]
    fn all_defaults_validate() {
        for m in [
            Mechanism::OneQ,
            Mechanism::VoqSw,
            Mechanism::voqnet(),
            Mechanism::fbicm(),
            Mechanism::ith(),
            Mechanism::ccfit(),
        ] {
            m.validate().unwrap();
        }
    }

    #[test]
    fn inverted_stop_go_is_rejected() {
        let mut iso = IsolationParams::default();
        iso.go_mtus = 12;
        assert!(Mechanism::Fbicm(iso).validate().is_err());
    }

    #[test]
    fn ccfit_stop_must_exceed_high() {
        let mut iso = IsolationParams::default();
        iso.stop_mtus = 3;
        iso.go_mtus = 1;
        iso.propagate_threshold_mtus = 1;
        let err = Mechanism::Ccfit(iso, ThrottleParams::default())
            .validate()
            .unwrap_err();
        assert!(err.contains("Stop"));
    }

    #[test]
    fn bad_marking_rate_is_rejected() {
        let mut t = ThrottleParams::default();
        t.marking_rate = 1.5;
        assert!(Mechanism::Ith(t).validate().is_err());
    }

    #[test]
    fn high_low_distance_enforced() {
        let mut t = ThrottleParams::default();
        t.high_mtus = 2;
        t.low_mtus = 2;
        assert!(Mechanism::Ith(t).validate().is_err());
    }
}

#[cfg(test)]
mod dbbm_tests {
    use super::*;

    #[test]
    fn dbbm_decomposition() {
        let d = Mechanism::dbbm();
        assert_eq!(d.queueing(), QueueingScheme::DstMod);
        assert_eq!(d.dbbm_queues(), 4);
        assert_eq!(d.name(), "DBBM");
        assert!(d.isolation().is_none());
        assert!(d.throttle().is_none());
        d.validate().unwrap();
    }

    #[test]
    fn dbbm_zero_queues_rejected() {
        assert!(Mechanism::Dbbm { num_queues: 0 }.validate().is_err());
        assert_eq!(Mechanism::OneQ.dbbm_queues(), 0);
    }
}
