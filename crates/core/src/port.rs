//! Input-port queue organisation and the CFQ/CAM state of the
//! congested-flow-isolation machinery (Fig. 1 of the paper).
//!
//! Every input port owns a [`ccfit_engine::ram::PortRam`]-backed set of queues whose shape is
//! one of the paper's schemes ([`InputQueues`]). For the isolating
//! organisation (FBICM/CCFIT) each CFQ slot carries the state its CAM
//! line would hold in hardware: the congested destination, the output
//! port it drains through, whether this switch is the congestion root,
//! and the upstream-notification flags.

use ccfit_engine::ids::NodeId;
use ccfit_engine::queue::PacketQueue;
use ccfit_engine::units::Cycle;

/// CAM-line state of one allocated CFQ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfqState {
    /// The congested destination this CFQ isolates (the CAM key;
    /// footnote 3 of the paper).
    pub dst: NodeId,
    /// Output port packets of this destination take at this switch.
    pub out_port: usize,
    /// True when the CFQ was allocated by *local* detection — it is
    /// 1 hop from the congestion point ("the root"); only root CFQs
    /// drive the output port into the congestion state in CCFIT.
    pub root: bool,
    /// `CfqAlloc` notification already sent upstream.
    pub alloc_sent: bool,
    /// `Stop` currently asserted upstream (cleared by `Go`).
    pub stop_sent: bool,
    /// This CFQ currently counts toward its output port's
    /// over-High-threshold counter (CCFIT hysteresis).
    pub over_high: bool,
    /// First cycle of the current above-High stretch (congestion-state
    /// entry hysteresis).
    pub over_high_since: Option<Cycle>,
    /// First cycle of the current *calm* stretch (occupancy persistently
    /// below the propagation threshold). A CFQ is deallocated once it has
    /// been calm for the linger period and is momentarily empty — merely
    /// requiring emptiness would make a CFQ immortal while an innocent
    /// full-rate flow streams through it, pinning the resource forever.
    pub calm_since: Option<Cycle>,
    /// Flits granted from this CFQ since `window_start` (drain-rate
    /// measurement for the starvation test).
    pub granted_window: u32,
    /// Start of the current drain-rate measurement window.
    pub window_start: Cycle,
    /// Result of the last drain-rate evaluation: the CFQ received
    /// markedly less than its output link's capacity — the signature of a
    /// genuinely oversubscribed congestion root. A root CFQ above High
    /// that is *not* starved is just a full-rate flow with a standing
    /// hump (e.g. deposited by a faster upstream link); marking it would
    /// throttle an innocent flow.
    pub starved: bool,
}

impl CfqState {
    /// Fresh state for a newly allocated CFQ.
    pub fn new(dst: NodeId, out_port: usize, root: bool) -> Self {
        Self {
            dst,
            out_port,
            root,
            alloc_sent: false,
            stop_sent: false,
            over_high: false,
            over_high_since: None,
            calm_since: None,
            granted_window: 0,
            window_start: 0,
            starved: false,
        }
    }
}

/// One CFQ slot: a queue plus its CAM line when allocated.
#[derive(Debug, Clone, Default)]
pub struct CfqSlot {
    /// The isolated packets.
    pub queue: PacketQueue,
    /// CAM line; `None` = slot free.
    pub state: Option<CfqState>,
}

/// The queue organisation of one input port.
#[derive(Debug, Clone)]
pub enum InputQueues {
    /// 1Q: a single FIFO.
    Single(PacketQueue),
    /// VOQsw: one queue per output port of the switch.
    PerOutput(Vec<PacketQueue>),
    /// VOQnet: one queue per destination end node.
    PerDest(Vec<PacketQueue>),
    /// DBBM: a fixed queue set selected by `destination mod len`.
    DstMod(Vec<PacketQueue>),
    /// FBICM/CCFIT: a normal flow queue plus CFQ slots.
    Isolating {
        /// Non-congested traffic.
        nfq: PacketQueue,
        /// The small set of congested flow queues.
        cfqs: Vec<CfqSlot>,
    },
}

impl InputQueues {
    /// Build the organisation for a scheme.
    pub fn new(
        scheme: crate::params::QueueingScheme,
        num_ports: usize,
        num_dests: usize,
        num_cfqs: usize,
    ) -> Self {
        use crate::params::QueueingScheme as S;
        match scheme {
            S::Single => InputQueues::Single(PacketQueue::new()),
            S::PerOutput => {
                InputQueues::PerOutput((0..num_ports).map(|_| PacketQueue::new()).collect())
            }
            S::PerDest => {
                InputQueues::PerDest((0..num_dests).map(|_| PacketQueue::new()).collect())
            }
            S::DstMod => {
                // `num_cfqs` doubles as the queue count for DstMod (the
                // simulator passes the mechanism's queue parameter here).
                InputQueues::DstMod((0..num_cfqs.max(1)).map(|_| PacketQueue::new()).collect())
            }
            S::Isolating => InputQueues::Isolating {
                nfq: PacketQueue::new(),
                cfqs: (0..num_cfqs).map(|_| CfqSlot::default()).collect(),
            },
        }
    }

    /// Total buffered flits across all queues of the port.
    pub fn total_occupancy_flits(&self) -> u32 {
        match self {
            InputQueues::Single(q) => q.occupancy_flits(),
            InputQueues::PerOutput(qs) | InputQueues::PerDest(qs) | InputQueues::DstMod(qs) => {
                qs.iter().map(|q| q.occupancy_flits()).sum()
            }
            InputQueues::Isolating { nfq, cfqs } => {
                nfq.occupancy_flits() + cfqs.iter().map(|c| c.queue.occupancy_flits()).sum::<u32>()
            }
        }
    }

    /// Total buffered packets.
    pub fn total_packets(&self) -> usize {
        match self {
            InputQueues::Single(q) => q.len(),
            InputQueues::PerOutput(qs) | InputQueues::PerDest(qs) | InputQueues::DstMod(qs) => {
                qs.iter().map(|q| q.len()).sum()
            }
            InputQueues::Isolating { nfq, cfqs } => {
                nfq.len() + cfqs.iter().map(|c| c.queue.len()).sum::<usize>()
            }
        }
    }

    /// Buffered *data* packets (conservation checks exclude in-band
    /// control notifications such as BECNs).
    pub fn total_data_packets(&self) -> usize {
        let count = |q: &PacketQueue| q.iter().filter(|e| e.packet.is_data()).count();
        match self {
            InputQueues::Single(q) => count(q),
            InputQueues::PerOutput(qs) | InputQueues::PerDest(qs) | InputQueues::DstMod(qs) => {
                qs.iter().map(count).sum()
            }
            InputQueues::Isolating { nfq, cfqs } => {
                count(nfq) + cfqs.iter().map(|c| count(&c.queue)).sum::<usize>()
            }
        }
    }

    /// Index of the allocated CFQ isolating `dst`, if any (the CAM
    /// lookup).
    pub fn cfq_lookup(&self, dst: NodeId) -> Option<usize> {
        match self {
            InputQueues::Isolating { cfqs, .. } => cfqs
                .iter()
                .position(|c| matches!(c.state, Some(s) if s.dst == dst)),
            _ => None,
        }
    }

    /// Index of a free CFQ slot, if any.
    pub fn cfq_free_slot(&self) -> Option<usize> {
        match self {
            InputQueues::Isolating { cfqs, .. } => cfqs.iter().position(|c| c.state.is_none()),
            _ => None,
        }
    }

    /// Number of currently allocated CFQs.
    pub fn cfqs_allocated(&self) -> usize {
        match self {
            InputQueues::Isolating { cfqs, .. } => {
                cfqs.iter().filter(|c| c.state.is_some()).count()
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::QueueingScheme;
    use ccfit_engine::ids::{FlowId, PacketId};
    use ccfit_engine::packet::Packet;

    fn pkt(flits: u32) -> Packet {
        Packet::data(
            PacketId(0),
            NodeId(0),
            NodeId(1),
            flits,
            flits * 64,
            FlowId(0),
            0,
        )
    }

    #[test]
    fn construction_shapes() {
        let s = InputQueues::new(QueueingScheme::Single, 4, 8, 2);
        assert!(matches!(s, InputQueues::Single(_)));
        let po = InputQueues::new(QueueingScheme::PerOutput, 4, 8, 2);
        match po {
            InputQueues::PerOutput(qs) => assert_eq!(qs.len(), 4),
            _ => panic!(),
        }
        let pd = InputQueues::new(QueueingScheme::PerDest, 4, 8, 2);
        match pd {
            InputQueues::PerDest(qs) => assert_eq!(qs.len(), 8),
            _ => panic!(),
        }
        let iso = InputQueues::new(QueueingScheme::Isolating, 4, 8, 2);
        match &iso {
            InputQueues::Isolating { cfqs, .. } => assert_eq!(cfqs.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn occupancy_sums_across_queues() {
        let mut q = InputQueues::new(QueueingScheme::PerOutput, 3, 8, 0);
        if let InputQueues::PerOutput(qs) = &mut q {
            qs[0].push(pkt(8), 0, 0);
            qs[2].push(pkt(4), 0, 0);
        }
        assert_eq!(q.total_occupancy_flits(), 12);
        assert_eq!(q.total_packets(), 2);
    }

    #[test]
    fn cfq_lookup_and_free_slot() {
        let mut q = InputQueues::new(QueueingScheme::Isolating, 4, 8, 2);
        assert_eq!(q.cfq_lookup(NodeId(4)), None);
        assert_eq!(q.cfq_free_slot(), Some(0));
        if let InputQueues::Isolating { cfqs, .. } = &mut q {
            cfqs[0].state = Some(CfqState::new(NodeId(4), 1, true));
        }
        assert_eq!(q.cfq_lookup(NodeId(4)), Some(0));
        assert_eq!(q.cfq_lookup(NodeId(5)), None);
        assert_eq!(q.cfq_free_slot(), Some(1));
        assert_eq!(q.cfqs_allocated(), 1);
        if let InputQueues::Isolating { cfqs, .. } = &mut q {
            cfqs[1].state = Some(CfqState::new(NodeId(5), 1, false));
        }
        assert_eq!(q.cfq_free_slot(), None);
    }

    #[test]
    fn non_isolating_schemes_have_no_cfqs() {
        let q = InputQueues::new(QueueingScheme::Single, 4, 8, 2);
        assert_eq!(q.cfq_lookup(NodeId(0)), None);
        assert_eq!(q.cfq_free_slot(), None);
        assert_eq!(q.cfqs_allocated(), 0);
    }

    #[test]
    fn fresh_cfq_state_flags() {
        let s = CfqState::new(NodeId(3), 2, true);
        assert!(s.root);
        assert!(!s.alloc_sent && !s.stop_sent && !s.over_high);
        assert_eq!(s.calm_since, None);
    }
}
