//! The network simulator: assembles switches, adapters and links from a
//! topology + mechanism + traffic pattern, and runs the deterministic
//! per-cycle phase loop (DESIGN.md §6).

use crate::endnode::{Adapter, AdapterCfg, AdapterThrottle};
use crate::parallel::{
    decide, network_weight, EngineDecision, FaultView, ParallelConfig, ParallelFallback, PhaseKind,
    Pool, ShardOutbox, ShardPlan, TickCtx,
};
use crate::params::{CongestionControl, DetectionPolicy, Mechanism, QueueingScheme};
use crate::switch::{
    MarkingSource, PurgeStats, Switch, SwitchCcMode, SwitchCfg, SwitchThrottle, VoqNetCredits,
};
use ccfit_cc::{DcqcnCfg, HpccCfg};
use ccfit_engine::ids::{FlowId, LinkId, NodeId, PacketId, PortId, SwitchId};
use ccfit_engine::link::{Link, LinkConfig, WireLoss};
use ccfit_engine::packet::Packet;
use ccfit_engine::queue::QueuedPacket;
use ccfit_engine::rng::SeedSplitter;
use ccfit_engine::units::{Cycle, UnitModel};
use ccfit_engine::CalendarQueue;
use ccfit_faults::{FaultConfig, FaultPolicy, FaultSchedule, NetworkEvent};
use ccfit_metrics::{
    CcEvent, CcEventKind, EventClass, EventConfig, FaultKind, FaultSummary, FlowGoal,
    MetricsCollector, MetricsSink, SimReport,
};
use ccfit_topology::{Endpoint, LinkParams, RoutingTable, Topology};
use ccfit_traffic::{GenPacket, NodeGenerator, TrafficPattern};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// How congestion notification packets travel back to the sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BecnTransport {
    /// The paper's model: BECNs are 1-flit packets injected by the
    /// destination with absolute priority, riding the normal data path
    /// (NFQs only) back to the source.
    InBand,
    /// Modelling shortcut: BECNs arrive after `hops × (delay + 1)`
    /// cycles without touching the data path. Useful to isolate the
    /// feedback loop from data-path effects and to validate that the
    /// in-band path behaves equivalently (see the integration tests).
    OutOfBand,
}

/// Global simulation parameters (defaults reproduce Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Unit model (flit size / cycle time).
    pub units: UnitModel,
    /// MTU in bytes (Table I: 2048).
    pub mtu_bytes: u32,
    /// Input-port memory in bytes (Table I: 64 KB). VOQnet overrides this
    /// with its per-destination reservation.
    pub port_ram_bytes: u32,
    /// Simulated time in nanoseconds.
    pub duration_ns: f64,
    /// Metrics bin width in nanoseconds.
    pub metrics_bin_ns: f64,
    /// Master seed.
    pub seed: u64,
    /// iSLIP iterations per cycle.
    pub islip_iterations: usize,
    /// AdVOQ admittance capacity in MTUs.
    pub advoq_cap_mtus: u32,
    /// IA NFQ gate in MTUs.
    pub nfq_gate_mtus: u32,
    /// NFQ→CFQ post-processing moves per port per cycle.
    pub move_budget: u32,
    /// Crossbar bandwidth in flits/cycle (Table I: 2 for Config #1,
    /// 1 for Configs #2/#3).
    pub crossbar_bw_flits_per_cycle: u32,
    /// BECN transport model.
    pub becn_transport: BecnTransport,
    /// Trace every Nth injected data packet (None = tracing off).
    pub trace_sample_every: Option<u64>,
    /// Disable the active-set scheduler and the quiet-cycle fast-forward,
    /// forcing the original exhaustive per-cycle iteration. Results are
    /// bit-identical either way (the determinism test enforces it); this
    /// exists as the baseline for the perf harness and as an escape hatch.
    /// Also disables the sparse scheduler (it subsumes `sparse: false`).
    pub force_slow_path: bool,
    /// Sparse activity-driven scheduling (DESIGN.md §12): phase loops
    /// iterate per-cycle work-lists of active switches/adapters/links
    /// maintained by the events that can make a component act, instead
    /// of scanning the whole network in array order. On by default;
    /// results are byte-identical with it off (`false` keeps the dense
    /// iteration with the same per-component skip gates). Ignored when
    /// `force_slow_path` is set.
    pub sparse: bool,
    /// Sharded parallel-tick configuration (DESIGN.md §9). With
    /// `threads > 1`, [`Simulator::run`] ticks the network on a worker
    /// pool; results are byte-identical to the serial engine for every
    /// thread count (packet traces and CC event logs included). Ignored
    /// (serial engine) when `force_slow_path` is set.
    pub parallel: ParallelConfig,
    /// Structured congestion-control event recording (DESIGN.md §10).
    /// `None` (the default) compiles the emission sites down to a single
    /// predicted-false branch each; `Some` captures the selected event
    /// classes into the report's [`ccfit_metrics::EventLogReport`].
    pub events: Option<EventConfig>,
    /// Sample per-port telemetry gauges (input-RAM occupancy and output
    /// link credits per switch port) alongside the network-wide gauges.
    /// Off by default: it adds one series per port to the report.
    pub port_telemetry: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            units: UnitModel::default(),
            mtu_bytes: 2048,
            port_ram_bytes: 64 * 1024,
            duration_ns: 1e6,
            metrics_bin_ns: 100_000.0,
            seed: 0xCCF1_7000,
            islip_iterations: 2,
            advoq_cap_mtus: 8,
            nfq_gate_mtus: 4,
            move_budget: 4,
            crossbar_bw_flits_per_cycle: 1,
            becn_transport: BecnTransport::InBand,
            trace_sample_every: None,
            force_slow_path: false,
            sparse: true,
            parallel: ParallelConfig::default(),
            events: None,
            port_telemetry: false,
        }
    }
}

/// Where a directed link terminates.
#[derive(Debug, Clone, Copy)]
enum LinkDst {
    SwitchIn(SwitchId, PortId),
    NodeRecv(NodeId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Release {
    /// Free `flits` of switch `sw` input `port` RAM and return credits on
    /// its in-link (plus VOQnet per-destination credits for `dst`).
    SwitchPort {
        sw: u32,
        port: u16,
        flits: u32,
        dst: u32,
    },
    /// Free `flits` of node `node`'s adapter output RAM.
    Node { node: u32, flits: u32 },
}

/// A trunk cable currently down, recorded from the end the triggering
/// event named so it can be reinstalled exactly as it was.
#[derive(Debug, Clone, Copy)]
struct DownCable {
    s: SwitchId,
    p: PortId,
    os: SwitchId,
    op: PortId,
    params: LinkParams,
    /// Downed as a side effect of a whole-switch failure; such cables
    /// are restored by `SwitchUp`, while individually failed cables
    /// need an explicit `LinkUp`.
    by_switch: bool,
}

/// Live state of the fault-injection subsystem (DESIGN.md §8): the
/// schedule cursor, which hardware is currently down, the pending
/// re-route deadline, the reachability snapshot the *current* routing
/// tables were computed against, and all loss/availability accounting.
///
/// The reachability snapshot (`comp`/`node_comp`) is deliberately only
/// refreshed when a re-route completes, never at event time: drop and
/// refusal guards must agree with the routing tables actually in force,
/// otherwise a packet could be refused for a route that still works or,
/// worse, forwarded on a stale default route and misdelivered.
struct FaultRuntime {
    schedule: FaultSchedule,
    cfg: FaultConfig,
    /// Index of the next unapplied schedule entry.
    next: usize,
    down_cables: Vec<DownCable>,
    down_switches: Vec<SwitchId>,
    /// When the pending routing recomputation takes effect.
    routing_update_at: Option<Cycle>,
    /// Start of the current stale-routing window.
    stale_since: Option<Cycle>,
    /// Connected component of each switch under the routing in force
    /// (`u32::MAX` = switch was down at the last recomputation).
    comp: Vec<u32>,
    /// Component of each node's attachment switch (`u32::MAX` = the
    /// node is orphaned: its switch is down).
    node_comp: Vec<u32>,
    /// Per-node unreachability window start (`Some` while counted).
    unreachable_since: Vec<Option<Cycle>>,
    loss: WireLoss,
    packets_purged: u64,
    ctrl_purged: u64,
    packets_refused: u64,
    events_applied: u64,
    events_skipped: u64,
    reroutes: u64,
    unreachable_cycles: u64,
    stale_cycles: u64,
    first_fault: Option<Cycle>,
    last_recovery: Cycle,
    /// Scratch for adapter purges.
    purge_scratch: Vec<QueuedPacket>,
    /// Scratch for switch purges.
    switch_purge_scratch: Vec<(usize, QueuedPacket)>,
}

impl FaultRuntime {
    fn new(schedule: FaultSchedule, cfg: FaultConfig, topo: &Topology) -> Self {
        let (comp, node_comp) = compute_components(topo, &[]);
        Self {
            schedule,
            cfg,
            next: 0,
            down_cables: Vec::new(),
            down_switches: Vec::new(),
            routing_update_at: None,
            stale_since: None,
            comp,
            node_comp,
            unreachable_since: vec![None; topo.num_nodes()],
            loss: WireLoss::default(),
            packets_purged: 0,
            ctrl_purged: 0,
            packets_refused: 0,
            events_applied: 0,
            events_skipped: 0,
            reroutes: 0,
            unreachable_cycles: 0,
            stale_cycles: 0,
            first_fault: None,
            last_recovery: 0,
            purge_scratch: Vec::new(),
            switch_purge_scratch: Vec::new(),
        }
    }

    fn is_switch_down(&self, s: SwitchId) -> bool {
        self.down_switches.contains(&s)
    }

    /// Mark one event applied.
    fn applied(&mut self, now: Cycle) {
        self.events_applied += 1;
        if self.first_fault.is_none() {
            self.first_fault = Some(now);
        }
    }

    /// Arm (or re-arm) the routing recomputation: every topology change
    /// restarts the re-routing latency, and the stale window runs from
    /// the first unabsorbed change.
    fn schedule_reroute(&mut self, now: Cycle) {
        self.routing_update_at = Some(now + self.cfg.reroute_latency_cycles);
        if self.stale_since.is_none() {
            self.stale_since = Some(now);
        }
    }

    /// A packet arriving at switch `sw` cannot be delivered: the switch
    /// is down, or the destination is not in the switch's component
    /// under the routing in force (forwarding it would follow a stale
    /// or default route and could misdeliver).
    fn arrival_is_undeliverable(&self, sw: SwitchId, dst: NodeId) -> bool {
        if self.is_switch_down(sw) {
            return true;
        }
        let dc = self.node_comp[dst.index()];
        dc == u32::MAX || dc != self.comp[sw.index()]
    }

    /// Injection guard: `src` cannot currently reach `dst` under the
    /// routing in force.
    fn pair_unreachable(&self, src: usize, dst: NodeId) -> bool {
        let sc = self.node_comp[src];
        let dc = self.node_comp[dst.index()];
        sc == u32::MAX || dc == u32::MAX || sc != dc
    }

    fn note_purged(&mut self, data: bool) {
        if data {
            self.packets_purged += 1;
        } else {
            self.ctrl_purged += 1;
        }
    }

    fn absorb_purge(&mut self, stats: PurgeStats) {
        self.packets_purged += stats.data_packets;
        self.ctrl_purged += stats.ctrl_packets;
    }
}

/// Connected components of the switch graph with `down` switches
/// removed, plus each node's component (`u32::MAX` for switches/nodes
/// that are down or attached to a down switch). BFS in switch-index
/// order, so component numbering is deterministic.
fn compute_components(topo: &Topology, down: &[SwitchId]) -> (Vec<u32>, Vec<u32>) {
    let n = topo.num_switches();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut q: VecDeque<SwitchId> = VecDeque::new();
    for s0 in topo.switch_ids() {
        if comp[s0.index()] != u32::MAX || down.contains(&s0) {
            continue;
        }
        comp[s0.index()] = next;
        q.push_back(s0);
        while let Some(s) = q.pop_front() {
            let neighbors: Vec<SwitchId> = topo
                .switch(s)
                .connected()
                .filter_map(|p| match topo.peer(s, p) {
                    Some((Endpoint::Switch(t, _), _)) => Some(t),
                    _ => None,
                })
                .collect();
            for t in neighbors {
                if comp[t.index()] == u32::MAX && !down.contains(&t) {
                    comp[t.index()] = next;
                    q.push_back(t);
                }
            }
        }
        next += 1;
    }
    let node_comp = topo
        .node_ids()
        .map(|nid| comp[topo.node_attachment(nid).0.index()])
        .collect();
    (comp, node_comp)
}

/// Builder for a [`Simulator`].
#[derive(Debug, Clone)]
pub struct SimBuilder {
    topo: Topology,
    routing: Option<RoutingTable>,
    mech: Mechanism,
    pattern: Option<TrafficPattern>,
    cfg: SimConfig,
    faults: Option<FaultSchedule>,
    fault_cfg: FaultConfig,
}

impl SimBuilder {
    /// Start from a topology. Mechanism defaults to CCFIT; routing to
    /// deterministic shortest-path (use [`Self::routing`] to install DET
    /// fat-tree tables).
    pub fn new(topo: Topology) -> Self {
        Self {
            topo,
            routing: None,
            mech: Mechanism::ccfit(),
            pattern: None,
            cfg: SimConfig::default(),
            faults: None,
            fault_cfg: FaultConfig::default(),
        }
    }

    /// Select the congestion-control mechanism.
    pub fn mechanism(mut self, m: Mechanism) -> Self {
        self.mech = m;
        self
    }

    /// Install explicit routing tables.
    pub fn routing(mut self, r: RoutingTable) -> Self {
        self.routing = Some(r);
        self
    }

    /// Set the workload.
    pub fn traffic(mut self, p: TrafficPattern) -> Self {
        self.pattern = Some(p);
        self
    }

    /// Simulated duration in nanoseconds.
    pub fn duration_ns(mut self, ns: f64) -> Self {
        self.cfg.duration_ns = ns;
        self
    }

    /// Metrics bin width in nanoseconds.
    pub fn metrics_bin_ns(mut self, ns: f64) -> Self {
        self.cfg.metrics_bin_ns = ns;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Crossbar bandwidth in flits per cycle (Table I: Config #1 uses 2,
    /// i.e. a 5 GB/s crossbar; the fat-tree configs use 1).
    pub fn crossbar_bw(mut self, flits_per_cycle: u32) -> Self {
        self.cfg.crossbar_bw_flits_per_cycle = flits_per_cycle;
        self
    }

    /// Tick the network on `n` worker threads (byte-identical to the
    /// serial engine; see [`SimConfig::parallel`]). The engine may
    /// degrade the request when parallelism cannot pay — see
    /// [`Simulator::engine_decision`] and [`Self::force_parallel`].
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.parallel.threads = n.max(1);
        self
    }

    /// Simulated cycles per worker-pool dispatch (`0` = auto). Purely a
    /// scheduling knob; results are byte-identical for every value.
    pub fn batch_cycles(mut self, k: usize) -> Self {
        self.cfg.parallel.batch_cycles = k;
        self
    }

    /// Disable the automatic serial fallback: run exactly the requested
    /// thread count even on hosts where that is known to be slower
    /// (single CPU, tiny shards). The determinism suite uses this to
    /// exercise the sharded engine on 1-CPU CI runners.
    pub fn force_parallel(mut self) -> Self {
        self.cfg.parallel.fallback = ParallelFallback::Never;
        self
    }

    /// Toggle the sparse activity-driven scheduler (see
    /// [`SimConfig::sparse`]). On by default; `false` restores the dense
    /// per-cycle iteration with the same per-component skip gates.
    /// Results are byte-identical either way.
    pub fn sparse(mut self, on: bool) -> Self {
        self.cfg.sparse = on;
        self
    }

    /// Record structured CC events with the given configuration
    /// (classes, sampling stride, ring capacity). See
    /// [`SimConfig::events`].
    pub fn events(mut self, cfg: EventConfig) -> Self {
        self.cfg.events = Some(cfg);
        self
    }

    /// Restrict event recording to the given classes (enables recording
    /// with default sampling/capacity if not configured yet).
    pub fn event_classes(mut self, classes: EventClass) -> Self {
        self.cfg
            .events
            .get_or_insert_with(EventConfig::default)
            .classes = classes;
        self
    }

    /// Keep every `n`-th event that passes the class mask (1 = all).
    /// Enables recording if not configured yet.
    pub fn event_sample_every(mut self, n: u64) -> Self {
        self.cfg
            .events
            .get_or_insert_with(EventConfig::default)
            .sample_every = n.max(1);
        self
    }

    /// Bound the event ring buffer to `cap` events; overflow drops the
    /// oldest and is tallied in `EventLogReport::dropped_cap`. Enables
    /// recording if not configured yet.
    pub fn event_buffer_cap(mut self, cap: usize) -> Self {
        self.cfg.events.get_or_insert_with(EventConfig::default).cap = cap;
        self
    }

    /// Sample per-port occupancy/credit gauges (see
    /// [`SimConfig::port_telemetry`]).
    pub fn port_telemetry(mut self, on: bool) -> Self {
        self.cfg.port_telemetry = on;
        self
    }

    /// Trace every `n`-th injected data packet (see
    /// [`SimConfig::trace_sample_every`]).
    pub fn trace_sample_every(mut self, n: u64) -> Self {
        self.cfg.trace_sample_every = Some(n.max(1));
        self
    }

    /// Override every [`SimConfig`] field at once.
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Install a dynamic network-event schedule (mid-run link/switch
    /// failures, recoveries, degradations). An empty schedule is the
    /// same as not calling this.
    pub fn faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Tune the fault subsystem (re-routing latency).
    pub fn fault_config(mut self, cfg: FaultConfig) -> Self {
        self.fault_cfg = cfg;
        self
    }

    /// Assemble the simulator.
    ///
    /// # Panics
    /// Panics on invalid mechanism parameters, a missing traffic pattern,
    /// or a pattern referencing nodes outside the topology.
    pub fn build(self) -> Simulator {
        let pattern = self.pattern.expect("a traffic pattern is required");
        self.mech
            .validate()
            .expect("mechanism parameters are invalid");
        let routing = self
            .routing
            .unwrap_or_else(|| RoutingTable::shortest_path(&self.topo));
        let faults = self.faults.filter(|s| !s.is_empty()).map(|s| {
            s.validate(&self.topo)
                .expect("fault schedule references hardware the topology does not have");
            (s, self.fault_cfg)
        });
        Simulator::assemble(self.topo, routing, self.mech, pattern, self.cfg, faults)
    }
}

/// Flat-array memo of BECN transit delays for small networks; above
/// [`BECN_CACHE_FLAT_MAX`] nodes the dense `from × to` table is replaced
/// by a hash map — at 4096 nodes the table would burn 128 MB to memoize
/// a handful of hot (destination, source) pairs. Lookups are keyed only
/// (never iterated), so the map cannot leak iteration order into
/// results.
const BECN_CACHE_FLAT_MAX: usize = 1024;

#[derive(Debug)]
enum BecnDelayCache {
    Flat(Vec<Cycle>),
    Sparse(std::collections::HashMap<(u32, u32), Cycle>),
}

impl BecnDelayCache {
    fn new(num_nodes: usize) -> Self {
        if num_nodes <= BECN_CACHE_FLAT_MAX {
            BecnDelayCache::Flat(vec![Cycle::MAX; num_nodes * num_nodes])
        } else {
            BecnDelayCache::Sparse(std::collections::HashMap::new())
        }
    }

    fn get(&self, from: NodeId, to: NodeId, num_nodes: usize) -> Option<Cycle> {
        match self {
            BecnDelayCache::Flat(v) => {
                let d = v[from.index() * num_nodes + to.index()];
                (d != Cycle::MAX).then_some(d)
            }
            BecnDelayCache::Sparse(m) => m.get(&(from.0, to.0)).copied(),
        }
    }

    fn insert(&mut self, from: NodeId, to: NodeId, num_nodes: usize, d: Cycle) {
        match self {
            BecnDelayCache::Flat(v) => v[from.index() * num_nodes + to.index()] = d,
            BecnDelayCache::Sparse(m) => {
                m.insert((from.0, to.0), d);
            }
        }
    }

    /// Drop every memoized delay (paths changed after a re-route).
    fn invalidate(&mut self) {
        match self {
            BecnDelayCache::Flat(v) => v.fill(Cycle::MAX),
            BecnDelayCache::Sparse(m) => m.clear(),
        }
    }
}

/// One-line stderr advisory, emitted once per process, when the
/// auto-fallback overrules or clamps a parallel request — the visible
/// fix for the silent 0.008×-speedup trap. Suppressed for
/// [`ParallelFallback::Never`] (the caller opted out) and for explicit
/// serial runs.
fn warn_fallback_once(d: &EngineDecision) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    if d.fallback.is_some() {
        ONCE.call_once(|| eprintln!("ccfit: {}", d.summary()));
    }
}

/// Who sends on a directed link. The reverse control channel of a link
/// is consumed by its *sender* (Stop/Go/alloc events travel upstream),
/// so the sparse phase-4 ctrl consumers are derived from this map.
#[derive(Debug, Clone, Copy)]
enum LinkSrc {
    Switch(u32),
    Node(u32),
}

/// Per-phase wall-time breakdown, accumulated by
/// [`Simulator::tick_profiled`] (the `engine_bench --profile` output).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseProfile {
    /// Nanoseconds spent per phase, indexed like [`PHASE_NAMES`].
    pub nanos: [u64; 10],
    /// Ticks accumulated into this profile.
    pub ticks: u64,
}

/// Names of the [`PhaseProfile::nanos`] slots, in phase order.
pub const PHASE_NAMES: [&str; 10] = [
    "faults",
    "releases",
    "credits",
    "deliver",
    "ctrl",
    "iso+congestion",
    "arbitration",
    "becn",
    "nodes",
    "gauges+advance",
];

/// Timer helper for [`PhaseProfile`]: a no-op (one predictable branch
/// per lap) when profiling is off, so `tick()` pays nothing for it.
struct PhaseTimer(Option<std::time::Instant>);

impl PhaseTimer {
    fn start(on: bool) -> Self {
        Self(on.then(std::time::Instant::now))
    }

    #[inline]
    fn lap(&mut self, prof: &mut Option<&mut PhaseProfile>, idx: usize) {
        if let Some(t0) = self.0.as_mut() {
            let t1 = std::time::Instant::now();
            if let Some(p) = prof.as_mut() {
                p.nanos[idx] += t1.duration_since(*t0).as_nanos() as u64;
            }
            *t0 = t1;
        }
    }
}

/// Active-set occupancy statistics (sparse scheduler only): how many
/// switches / adapters / links were on the per-cycle work-lists, summed
/// and maxed over ticks. Surfaced in `BENCH_engine.json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ActiveSetStats {
    /// Ticks recorded.
    pub ticks: u64,
    /// Sum over ticks of active-switch counts.
    pub sw_sum: u64,
    /// Max over ticks of active-switch counts.
    pub sw_max: u32,
    /// Sum over ticks of active-adapter counts.
    pub node_sum: u64,
    /// Max over ticks of active-adapter counts.
    pub node_max: u32,
    /// Sum over ticks of active-link counts.
    pub link_sum: u64,
    /// Max over ticks of active-link counts.
    pub link_max: u32,
}

impl ActiveSetStats {
    #[inline]
    fn record(&mut self, sw: usize, nodes: usize, links: usize) {
        self.ticks += 1;
        self.sw_sum += sw as u64;
        self.sw_max = self.sw_max.max(sw as u32);
        self.node_sum += nodes as u64;
        self.node_max = self.node_max.max(nodes as u32);
        self.link_sum += links as u64;
        self.link_max = self.link_max.max(links as u32);
    }

    /// Mean active switches per recorded tick.
    pub fn avg_switches(&self) -> f64 {
        self.sw_sum as f64 / (self.ticks.max(1)) as f64
    }

    /// Mean active adapters per recorded tick.
    pub fn avg_adapters(&self) -> f64 {
        self.node_sum as f64 / (self.ticks.max(1)) as f64
    }

    /// Mean active links per recorded tick.
    pub fn avg_links(&self) -> f64 {
        self.link_sum as f64 / (self.ticks.max(1)) as f64
    }
}

/// The assembled network, ready to run.
pub struct Simulator {
    cfg: SimConfig,
    topo: Topology,
    routing: RoutingTable,
    mech: Mechanism,
    pattern: TrafficPattern,
    switches: Vec<Switch>,
    adapters: Vec<Adapter>,
    gens: Vec<NodeGenerator>,
    links: Vec<Link>,
    link_dst: Vec<LinkDst>,
    voqnet: Option<VoqNetCredits>,
    metrics: MetricsCollector,
    /// Scheduled RAM releases / credit returns. The calendar queue pops
    /// in ascending-cycle FIFO order, which is exactly the `(at, seq)`
    /// heap order it replaced: pushes within a cycle happen in component
    /// order, so FIFO == seq order.
    release_q: CalendarQueue<Release>,
    becn_q: BinaryHeap<Reverse<(Cycle, u64, u32, u32)>>, // (at, seq, congested_dst, throttle_node)
    /// BECN-delay memo (flat for small networks, sparse for large ones).
    becn_delay_cache: BecnDelayCache,
    num_nodes: usize,
    /// Per-tick delivery scratch (no state across ticks).
    delivery_scratch: Vec<ccfit_engine::link::Delivery>,
    /// Per-tick release scratch (no state across ticks).
    release_scratch: Vec<crate::switch::PendingRelease>,
    seq: u64,
    now: Cycle,
    end: Cycle,
    next_packet_id: u64,
    injected: u64,
    delivered: u64,
    gauge_every: Cycle,
    trace: Option<crate::trace::TraceLog>,
    /// Injection link of each node (node → switch).
    inject_link: Vec<LinkId>,
    /// Reception link of each node (switch → node).
    recv_link: Vec<LinkId>,
    /// Credit grant of a node's ideal reception sink.
    node_sink_credits: u32,
    /// Fault-injection runtime (`None` for fault-free runs: the hot
    /// path then pays a single branch per tick).
    faults: Option<FaultRuntime>,
    /// Wire-byte accounting is active (modern CC only, so the paper
    /// mechanisms' counter sets — pinned by golden snapshots — never
    /// change).
    cc_wire: bool,
    /// Sender of each directed link (sparse phase-4 ctrl consumers).
    link_src: Vec<LinkSrc>,
    /// Global-port-id base of each switch into `port_occ`.
    port_base: Vec<u32>,
    /// SoA mirror of per-input-port RAM occupancy in flits, indexed by
    /// global port id (`port_base[sw] + port`). Maintained in every
    /// engine mode so the gauge scan is one cache-linear sum instead of
    /// a pointer chase through all switch structs.
    port_occ: Vec<u32>,
    /// The sparse scheduler is in force (`cfg.sparse` and not
    /// `force_slow_path`).
    sparse_on: bool,
    /// Links with events in flight (deliveries, ctrl, credit returns).
    act_links: ccfit_engine::ActiveSet,
    /// Switches that may act this cycle / next cycle.
    act_sw: ccfit_engine::ActiveSet,
    act_sw_next: ccfit_engine::ActiveSet,
    /// Adapters (node indices) that may act this cycle / next cycle.
    act_nodes: ccfit_engine::ActiveSet,
    act_nodes_next: ccfit_engine::ActiveSet,
    /// Phase-4 scratch: ctrl consumers derived from `act_links`.
    ctrl_sw: ccfit_engine::ActiveSet,
    ctrl_nodes: ccfit_engine::ActiveSet,
    /// Parked quiet nodes' future wake-ups: CC-timer deadlines and
    /// generator activation edges, as `(cycle, node)`. Stale entries are
    /// harmless (a woken node that turns out quiet is a gated no-op).
    node_wake: BinaryHeap<Reverse<(Cycle, u32)>>,
    /// Active-set occupancy counters for the bench output.
    act_stats: ActiveSetStats,
}

/// Lower-bound completion time for a sized flow, in cycles: the whole
/// flow serialized through the narrowest link on its route, plus the
/// sum of link propagation delays from source NIC to destination NIC
/// (injection link + every traced hop, reception link included).
/// Switch-crossing and queueing cycles are deliberately excluded, and
/// the serialization term is `ceil(flits / bw) - 1` because the source
/// token bucket can emit the packet containing the last byte as soon as
/// that many cycles of budget have accrued — so measured FCT ≥ ideal
/// holds by construction, never by margin-tuning.
fn ideal_fct_cycles(
    topo: &Topology,
    routing: &RoutingTable,
    units: &UnitModel,
    f: &ccfit_traffic::SizedFlow,
) -> Cycle {
    let mtu = ccfit_traffic::SIZED_PACKET_BYTES;
    let full_packets = f.bytes / mtu as u64;
    let tail_bytes = (f.bytes % mtu as u64) as u32;
    let mut flits = full_packets * units.bytes_to_flits(mtu) as u64;
    if tail_bytes > 0 {
        flits += units.bytes_to_flits(tail_bytes) as u64;
    }
    let (_, _, inject) = topo.node_attachment(f.src);
    let mut min_bw = inject.bw_flits_per_cycle.max(1);
    let mut delay = inject.delay_cycles;
    let path = routing
        .trace(topo, f.src, f.dst)
        .expect("sized flow route must deliver");
    for (sw, port) in path {
        let (_, params) = topo.peer(sw, port).expect("traced hop is connected");
        min_bw = min_bw.min(params.bw_flits_per_cycle.max(1));
        delay += params.delay_cycles;
    }
    (flits.div_ceil(min_bw as u64).saturating_sub(1) + delay).max(1)
}

impl Simulator {
    fn assemble(
        topo: Topology,
        routing: RoutingTable,
        mech: Mechanism,
        pattern: TrafficPattern,
        cfg: SimConfig,
        faults: Option<(FaultSchedule, FaultConfig)>,
    ) -> Self {
        let units = cfg.units;
        let mtu_flits = units.bytes_to_flits(cfg.mtu_bytes);
        let ram_flits = units
            .bytes_to_flits_exact(cfg.port_ram_bytes)
            .expect("port RAM must be a whole number of flits");
        let num_nodes = topo.num_nodes();
        let num_switches = topo.num_switches();
        let seeds = SeedSplitter::new(cfg.seed);

        // ---- mechanism-derived static configs ----
        let per_dest_queue_flits = match mech {
            Mechanism::VoqNet { per_queue_flits } => per_queue_flits,
            _ => 0,
        };

        let switch_ram_flits = match mech.queueing() {
            QueueingScheme::PerDest => per_dest_queue_flits * num_nodes as u32,
            _ => ram_flits,
        };
        let thr_cfg = mech.throttle().map(|t| SwitchThrottle {
            marking_rate: t.marking_rate,
            packet_size_threshold_bytes: t.packet_size_threshold_bytes,
            high_flits: t.high_mtus * mtu_flits,
            low_flits: t.low_mtus * mtu_flits,
            entry_delay_cycles: units.ns_to_cycles(t.congestion_entry_delay_ns),
            starvation_window_cycles: units.ns_to_cycles(t.starvation_window_ns),
            source: if mech.isolation().is_some() {
                MarkingSource::RootCfq
            } else {
                MarkingSource::VoqOccupancy
            },
        });
        // Modern CC (DCQCN/HPCC): materialise the cycle-domain configs
        // once and derive the switch-side marking/telemetry mode from the
        // mechanism's detection policy. Paper mechanisms get `None`
        // everywhere, which keeps their tick behaviour untouched.
        let cycles_per_ns = 1.0 / units.cycle_ns;
        let dcqcn_cfg = mech
            .dcqcn_params()
            .map(|p| DcqcnCfg::materialise(p, cycles_per_ns));
        let hpcc_cfg = mech
            .hpcc_params()
            .map(|p| HpccCfg::materialise(p, cycles_per_ns));
        let switch_cc = match mech.detection() {
            DetectionPolicy::EcnQueue(p) => Some(SwitchCcMode::Ecn {
                kmin_flits: p.kmin_mtus * mtu_flits,
                kmax_flits: (p.kmax_mtus * mtu_flits).max(p.kmin_mtus * mtu_flits + 1),
                pmax: p.pmax,
            }),
            DetectionPolicy::IntWindow(_) => Some(SwitchCcMode::Int {
                window_cycles: hpcc_cfg
                    .as_ref()
                    .expect("IntWindow detection implies HPCC params")
                    .window_cycles,
            }),
            _ => None,
        };
        let switch_cfg = SwitchCfg {
            scheme: mech.queueing(),
            iso: mech.isolation().copied(),
            thr: thr_cfg,
            mtu_flits,
            ram_flits,
            per_dest_queue_flits,
            dbbm_queues: mech.dbbm_queues(),
            islip_iterations: cfg.islip_iterations,
            move_budget: cfg.move_budget,
            crossbar_bw_flits_per_cycle: cfg.crossbar_bw_flits_per_cycle,
            cc: switch_cc,
        };

        // ---- links ----
        // For each switch port we create this port's *outgoing* directed
        // link; incoming links are created by the peer's iteration (or by
        // the node loop for injection links).
        let mut links: Vec<Link> = Vec::new();
        let mut link_dst: Vec<LinkDst> = Vec::new();
        let mut out_link: Vec<Vec<Option<LinkId>>> = Vec::with_capacity(num_switches);
        let mut in_link: Vec<Vec<Option<LinkId>>> = Vec::with_capacity(num_switches);
        for s in topo.switch_ids() {
            let n_ports = topo.switch(s).num_ports();
            out_link.push(vec![None; n_ports]);
            in_link.push(vec![None; n_ports]);
        }
        let mut inject_link: Vec<Option<LinkId>> = vec![None; num_nodes];
        let mut recv_link: Vec<Option<LinkId>> = vec![None; num_nodes];
        let node_sink_credits = 4 * switch_ram_flits.max(1024);

        let push_link = |links: &mut Vec<Link>,
                         link_dst: &mut Vec<LinkDst>,
                         params: ccfit_topology::LinkParams,
                         dst: LinkDst,
                         credits: u32| {
            let id = LinkId(links.len() as u32);
            links.push(Link::new(
                LinkConfig {
                    bw_flits_per_cycle: params.bw_flits_per_cycle,
                    delay_cycles: params.delay_cycles,
                },
                credits,
            ));
            link_dst.push(dst);
            id
        };

        for s in topo.switch_ids() {
            for p in topo.switch(s).connected() {
                let (peer, params) = topo.peer(s, p).expect("connected");
                match peer {
                    Endpoint::Switch(t, q) => {
                        let id = push_link(
                            &mut links,
                            &mut link_dst,
                            params,
                            LinkDst::SwitchIn(t, q),
                            switch_ram_flits,
                        );
                        out_link[s.index()][p.index()] = Some(id);
                        in_link[t.index()][q.index()] = Some(id);
                    }
                    Endpoint::Node(n) => {
                        // switch -> node (reception)
                        let id = push_link(
                            &mut links,
                            &mut link_dst,
                            params,
                            LinkDst::NodeRecv(n),
                            node_sink_credits,
                        );
                        out_link[s.index()][p.index()] = Some(id);
                        recv_link[n.index()] = Some(id);
                        // node -> switch (injection)
                        let id = push_link(
                            &mut links,
                            &mut link_dst,
                            params,
                            LinkDst::SwitchIn(s, p),
                            switch_ram_flits,
                        );
                        inject_link[n.index()] = Some(id);
                        in_link[s.index()][p.index()] = Some(id);
                    }
                }
            }
        }

        let inject_link: Vec<LinkId> = inject_link
            .into_iter()
            .map(|l| l.expect("every node has an injection link"))
            .collect();
        let recv_link: Vec<LinkId> = recv_link
            .into_iter()
            .map(|l| l.expect("every node has a reception link"))
            .collect();

        // Sender of each directed link: every switch out-link (trunk or
        // reception) is transmitted by that switch, injection links by
        // their node. The sparse scheduler derives phase-4 ctrl
        // consumers from this (ctrl events travel to the sender).
        let mut link_src: Vec<Option<LinkSrc>> = vec![None; links.len()];
        for s in topo.switch_ids() {
            for l in out_link[s.index()].iter().flatten() {
                link_src[l.index()] = Some(LinkSrc::Switch(s.0));
            }
        }
        for (n, l) in inject_link.iter().enumerate() {
            link_src[l.index()] = Some(LinkSrc::Node(n as u32));
        }
        let link_src: Vec<LinkSrc> = link_src
            .into_iter()
            .map(|s| s.expect("every link has a sender"))
            .collect();

        // ---- VOQnet per-destination reserved credits ----
        let voqnet = match mech.queueing() {
            QueueingScheme::PerDest => {
                let vn = VoqNetCredits::new(links.len(), num_nodes);
                for (li, dst) in link_dst.iter().enumerate() {
                    if matches!(dst, LinkDst::SwitchIn(..)) {
                        for d in 0..num_nodes {
                            vn.set(li as u32, d as u32, per_dest_queue_flits);
                        }
                    }
                }
                Some(vn)
            }
            _ => None,
        };

        // ---- switches ----
        let mut switches: Vec<Switch> = topo
            .switch_ids()
            .map(|s| {
                let n_ports = topo.switch(s).num_ports();
                let wiring: Vec<(Option<LinkId>, Option<LinkId>)> = (0..n_ports)
                    .map(|p| (in_link[s.index()][p], out_link[s.index()][p]))
                    .collect();
                Switch::new(
                    s,
                    switch_cfg.clone(),
                    &wiring,
                    num_nodes,
                    seeds.rng("marking", s.index() as u64),
                )
            })
            .collect();
        // Cache each output's link bandwidth on the switch (read by the
        // starvation detector without touching the link array; refreshed
        // by `LinkDegrade` / `LinkRestoreRate` events).
        for sw in switches.iter_mut() {
            for p in 0..sw.outputs.len() {
                if let Some(l) = sw.outputs[p].out_link {
                    sw.set_output_link_bw(p, links[l.index()].config().bw_flits_per_cycle);
                }
            }
        }

        // ---- adapters ----
        let adapter_thr = mech
            .throttle()
            .map(|t| AdapterThrottle::from_params(t, &units));
        let adapters: Vec<Adapter> = topo
            .node_ids()
            .map(|n| {
                let (_, _, params) = topo.node_attachment(n);
                let acfg = AdapterCfg {
                    iso: mech.isolation().copied(),
                    thr: adapter_thr.clone(),
                    mtu_flits,
                    out_ram_flits: ram_flits,
                    advoq_cap_flits: cfg.advoq_cap_mtus * mtu_flits,
                    nfq_gate_flits: cfg.nfq_gate_mtus * mtu_flits,
                    per_dest_output: mech.queueing() == QueueingScheme::PerDest,
                    dcqcn: dcqcn_cfg.clone(),
                    hpcc: hpcc_cfg.clone(),
                    data_overhead_bytes: mech.hpcc_params().map_or(0, |p| p.int_overhead_bytes),
                };
                Adapter::new(
                    n,
                    acfg,
                    inject_link[n.index()],
                    params.bw_flits_per_cycle,
                    num_nodes,
                )
            })
            .collect();

        // ---- traffic ----
        let gens = pattern.build_generators(
            num_nodes,
            &units,
            |n| topo.node_attachment(n).2.bw_flits_per_cycle,
            &seeds,
        );

        let mut metrics = MetricsCollector::new(units, cfg.metrics_bin_ns);
        if let Some(ec) = cfg.events {
            metrics.enable_events(ec);
        }
        if !pattern.sized.is_empty() {
            let goals = pattern
                .sized
                .iter()
                .map(|f| FlowGoal {
                    id: f.id,
                    label: f.label.clone(),
                    bytes: f.bytes,
                    // The start the source generator actually observes:
                    // its activation cycle, back in ns. Using the raw
                    // (un-quantized) start_ns could make slowdown dip
                    // below 1 by a fraction of a cycle.
                    start_ns: units.cycles_to_ns(units.ns_to_cycles(f.start_ns)),
                    ideal_ns: units.cycles_to_ns(ideal_fct_cycles(&topo, &routing, &units, f)),
                    priority: f.priority,
                })
                .collect();
            metrics.track_flows(goals);
        }
        let end = units.ns_to_cycles(cfg.duration_ns);

        let gauge_every = units.ns_to_cycles(cfg.metrics_bin_ns / 4.0).max(64);
        let trace = cfg.trace_sample_every.map(crate::trace::TraceLog::new);
        let faults = faults.map(|(schedule, fcfg)| FaultRuntime::new(schedule, fcfg, &topo));
        let cc_wire = dcqcn_cfg.is_some() || hpcc_cfg.is_some();

        // ---- sparse scheduler state (DESIGN.md §12) ----
        // SoA port-occupancy mirror: one contiguous u32 per input port,
        // indexed by global port id.
        let mut port_base: Vec<u32> = Vec::with_capacity(num_switches);
        let mut total_ports = 0u32;
        for sw in &switches {
            port_base.push(total_ports);
            total_ports += sw.inputs.len() as u32;
        }
        let port_occ = vec![0u32; total_ports as usize];
        let sparse_on = cfg.sparse && !cfg.force_slow_path;
        for sw in switches.iter_mut() {
            sw.set_record_touched(sparse_on);
        }
        let mut act_links = ccfit_engine::ActiveSet::new(links.len());
        let mut act_sw = ccfit_engine::ActiveSet::new(num_switches);
        let mut act_nodes = ccfit_engine::ActiveSet::new(num_nodes);
        if sparse_on {
            // Seed-all at cycle 0: every component proves itself quiet
            // once before dropping off the work-lists.
            act_links.fill_all();
            act_sw.fill_all();
            act_nodes.fill_all();
        }

        Simulator {
            cfg,
            topo,
            routing,
            mech,
            pattern,
            switches,
            adapters,
            gens,
            links,
            link_dst,
            voqnet,
            metrics,
            release_q: CalendarQueue::new(),
            becn_q: BinaryHeap::new(),
            becn_delay_cache: BecnDelayCache::new(num_nodes),
            num_nodes,
            delivery_scratch: Vec::new(),
            release_scratch: Vec::new(),
            seq: 0,
            now: 0,
            end,
            next_packet_id: 0,
            injected: 0,
            delivered: 0,
            gauge_every,
            trace,
            inject_link,
            recv_link,
            node_sink_credits,
            faults,
            cc_wire,
            link_src,
            port_base,
            port_occ,
            sparse_on,
            act_links,
            act_sw,
            act_sw_next: ccfit_engine::ActiveSet::new(num_switches),
            act_nodes,
            act_nodes_next: ccfit_engine::ActiveSet::new(num_nodes),
            ctrl_sw: ccfit_engine::ActiveSet::new(num_switches),
            ctrl_nodes: ccfit_engine::ActiveSet::new(num_nodes),
            node_wake: BinaryHeap::new(),
            act_stats: ActiveSetStats::default(),
        }
    }

    /// The mechanism under simulation.
    pub fn mechanism(&self) -> &Mechanism {
        &self.mech
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Final cycle (exclusive).
    pub fn end_cycle(&self) -> Cycle {
        self.end
    }

    /// Data packets admitted into adapters so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Data packets delivered to their destinations so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Data packets currently buffered in adapters, switches, or on
    /// links — the conservation counterpart of
    /// `injected() - delivered()`. In-band BECNs are excluded (they are
    /// control traffic, not workload).
    pub fn resident_packets(&self) -> usize {
        self.adapters
            .iter()
            .map(|a| a.resident_packets())
            .sum::<usize>()
            + self
                .switches
                .iter()
                .map(|s| s.resident_data_packets())
                .sum::<usize>()
            + self
                .links
                .iter()
                .map(|l| l.in_flight_data_count())
                .sum::<usize>()
    }

    /// CFQs currently allocated network-wide (scalability introspection;
    /// O(switches) via each switch's incremental counter).
    pub fn cfqs_allocated(&self) -> usize {
        self.switches.iter().map(|s| s.cfq_count()).sum()
    }

    /// Live access to a metrics counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }

    /// BECN transit time from `from` to `to`: one propagation delay plus
    /// one flit serialization per hop (CNPs are single-flit priority
    /// packets riding the NFQ path; see DESIGN.md §3).
    fn becn_delay(&mut self, from: NodeId, to: NodeId) -> Cycle {
        if let Some(d) = self.becn_delay_cache.get(from, to, self.num_nodes) {
            return d;
        }
        let hops = self
            .routing
            .trace(&self.topo, from, to)
            .map(|p| p.len())
            .unwrap_or(1) as Cycle;
        let d = hops * 2 + 1;
        self.becn_delay_cache.insert(from, to, self.num_nodes, d);
        d
    }

    /// Advance one cycle through the deterministic phase order.
    pub fn tick(&mut self) {
        if self.sparse_on {
            self.tick_sparse(None);
        } else {
            self.tick_dense(None);
        }
    }

    /// [`Self::tick`] with a per-phase wall-time breakdown accumulated
    /// into `prof` (the `engine_bench --profile` path). Identical
    /// results; the only extra work is one monotonic-clock read per
    /// phase.
    pub fn tick_profiled(&mut self, prof: &mut PhaseProfile) {
        prof.ticks += 1;
        if self.sparse_on {
            self.tick_sparse(Some(prof));
        } else {
            self.tick_dense(Some(prof));
        }
    }

    /// The dense engine: every phase scans the whole component array and
    /// relies on per-component skip gates (`force_slow_path` disables
    /// even those). Kept as the byte-identity baseline for the sparse
    /// scheduler.
    fn tick_dense(&mut self, mut prof: Option<&mut PhaseProfile>) {
        let now = self.now;
        let fast = !self.cfg.force_slow_path;
        let mut timer = PhaseTimer::start(prof.is_some());

        // Phase 0: dynamic network events (fault injection) and pending
        // routing recomputations.
        if self.faults.is_some() {
            self.apply_fault_events(now);
        }
        timer.lap(&mut prof, 0);

        // Phase 1: scheduled RAM releases + credit returns.
        self.drain_releases(now);
        timer.lap(&mut prof, 1);

        // Phase 2: senders absorb returned credits.
        for l in &mut self.links {
            l.poll_credits(now);
        }
        timer.lap(&mut prof, 2);

        // Phase 3: link deliveries (drained into a persistent scratch
        // buffer so the hot path never allocates).
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        for li in 0..self.links.len() {
            if !self.links[li].has_delivery(now) {
                continue;
            }
            deliveries.clear();
            self.links[li].deliver_into(now, &mut deliveries);
            match self.link_dst[li] {
                LinkDst::SwitchIn(s, p) => {
                    for d in deliveries.drain(..) {
                        // Fault guard: a straggler that drained off a
                        // gracefully closed link may arrive at a dead
                        // switch or carry a destination the routing in
                        // force cannot deliver — consume it here rather
                        // than forward it down a stale route.
                        if let Some(frt) = self.faults.as_mut() {
                            if frt.arrival_is_undeliverable(s, d.packet.dst) {
                                frt.note_purged(d.packet.is_data());
                                self.links[li].return_credits(d.ready_at, d.packet.size_flits);
                                if let Some(vn) = self.voqnet.as_mut() {
                                    vn.add(li as u32, d.packet.dst.0, d.packet.size_flits);
                                }
                                continue;
                            }
                        }
                        if let Some(tr) = &mut self.trace {
                            if d.packet.is_data() && tr.wants(d.packet.id) {
                                tr.switch_hop(d.packet.id, s, d.visible_at);
                            }
                        }
                        self.port_occ[self.port_base[s.index()] as usize + p.index()] +=
                            d.packet.size_flits;
                        self.switches[s.index()].accept_delivery(p.index(), d, &self.routing);
                    }
                }
                LinkDst::NodeRecv(n) => {
                    for d in deliveries.drain(..) {
                        self.deliver_to_node(n, li, d);
                    }
                }
            }
        }
        self.delivery_scratch = deliveries;
        timer.lap(&mut prof, 3);

        // Phase 4: congestion-information control traffic.
        for sw in &mut self.switches {
            sw.poll_output_ctrl(now, &mut self.links, &mut self.metrics);
        }
        for a in &mut self.adapters {
            a.poll_ctrl(now, &mut self.links, &mut self.metrics);
        }
        timer.lap(&mut prof, 4);

        // Phase 5: post-processing (detection, isolation, Stop/Go,
        // deallocation) and congestion-state update. Quiescent switches
        // provably do nothing here (see `Switch::is_quiescent`).
        for sw in &mut self.switches {
            if fast && sw.is_quiescent() {
                continue;
            }
            sw.isolation_tick(now, &self.routing, &mut self.links, &mut self.metrics);
            sw.congestion_state_tick(now, &self.links, &mut self.metrics);
        }
        timer.lap(&mut prof, 5);

        // Phase 6: crossbar scheduling and transmission. Switches with
        // nothing buffered cannot match or transmit anything.
        let mut releases = std::mem::take(&mut self.release_scratch);
        for si in 0..self.switches.len() {
            if fast && !self.switches[si].has_buffered() {
                continue;
            }
            releases.clear();
            self.switches[si].arbitrate_and_transmit_into(
                now,
                &self.routing,
                &mut self.links,
                self.voqnet.as_ref(),
                &mut self.metrics,
                &mut releases,
            );
            for r in releases.drain(..) {
                self.release_q.push(
                    r.at,
                    Release::SwitchPort {
                        sw: si as u32,
                        port: r.port as u16,
                        flits: r.flits,
                        dst: r.dst.0,
                    },
                );
            }
        }
        self.release_scratch = releases;
        timer.lap(&mut prof, 6);

        // Phase 7: BECN arrivals throttle their sources.
        self.drain_becns(now);
        timer.lap(&mut prof, 7);

        // Phase 8: traffic generation and adapter work. A generator with
        // no flow in its active window injects nothing and draws no
        // randomness; an adapter that is quiet with no armed timer has
        // provably nothing to do (see `Adapter::is_quiet`).
        for n in 0..self.adapters.len() {
            if !fast || self.gens[n].any_active(now) {
                self.gen_node(n, now);
            }
            if fast && self.adapters[n].is_quiet() && self.adapters[n].armed_timer_count() == 0 {
                continue;
            }
            if let Some(rel) = self.adapters[n].tick(
                now,
                &mut self.links,
                self.voqnet.as_ref(),
                &mut self.metrics,
            ) {
                self.release_q.push(
                    rel.at,
                    Release::Node {
                        node: n as u32,
                        flits: rel.flits,
                    },
                );
            }
        }
        timer.lap(&mut prof, 8);

        // Gauge sampling: congestion-tree size over time.
        self.sample_gauges(now);

        self.now = if fast {
            self.quiet_jump_target(now)
        } else {
            now + 1
        };
        timer.lap(&mut prof, 9);
    }

    // SPARSE-REGION-BEGIN: phase loops below must iterate active-set
    // members, never whole component arrays (enforced by the
    // `no_dense_iteration_in_sparse_tick` lint test).

    /// The sparse engine (DESIGN.md §12): each phase walks a work-list
    /// of components that *may* act, maintained by the events that can
    /// activate them. Every dense skip gate is preserved inside the
    /// member loops, so a conservative (stale) member is a no-op and the
    /// results are byte-identical to [`Self::tick_dense`] — the
    /// determinism matrix and golden snapshots enforce it.
    ///
    /// Activation rules (who inserts whom):
    /// * `act_links` — senders: switch transmits (data phase 6, ctrl
    ///   phase 5) via `Switch::drain_touched_links`, adapter ticks
    ///   (its injection link), credit returns in `drain_releases`.
    ///   Links leave the set when idle (nothing in flight, no pending
    ///   credits/ctrl).
    /// * `act_sw` — deliveries (phase 3), ctrl consumers (phase 4),
    ///   plus a carry while `!is_quiescent()`.
    /// * `act_nodes` — deliveries to the node (phase 3), ctrl on the
    ///   injection link (phase 4), BECN arrivals (phase 7), CC-timer /
    ///   generator wake-ups (`node_wake`), plus a carry while the
    ///   adapter is not quiet or the generator has a full packet of
    ///   budget banked. A generator merely accruing tokens parks at a
    ///   lower bound of its next emission and replays the skipped
    ///   accrual on wake (see `NodeGenerator::next_park_wake`).
    /// * fault events re-activate everything (`activate_all`).
    fn tick_sparse(&mut self, mut prof: Option<&mut PhaseProfile>) {
        let now = self.now;
        let mut timer = PhaseTimer::start(prof.is_some());

        // Wake parked nodes whose CC-timer deadline or generator
        // activation edge is due. Stale (superseded) entries wake a
        // quiet node into a gated no-op tick — harmless.
        while let Some(&Reverse((at, n))) = self.node_wake.peek() {
            if at > now {
                break;
            }
            self.node_wake.pop();
            self.act_nodes.insert(n);
        }

        #[cfg(debug_assertions)]
        self.assert_sparse_invariants(now);

        // Phase 0: fault events re-activate the whole network (they can
        // purge/reroute/restore arbitrary components) and resync the
        // SoA port-occupancy mirror after purges.
        if self.faults.is_some() {
            self.apply_fault_events(now);
        }
        timer.lap(&mut prof, 0);

        // Phase 1: releases also re-activate the credited links so the
        // same-cycle phase-2 absorption below still sees them.
        self.drain_releases(now);
        timer.lap(&mut prof, 1);

        // Phase 2: only links with events in flight can have credits to
        // absorb. Sorted so phases 2–4 walk links in dense order.
        self.act_links.sort();
        let n_links_act = self.act_links.len();
        for i in 0..n_links_act {
            let li = self.act_links.member(i) as usize;
            self.links[li].poll_credits(now);
        }
        timer.lap(&mut prof, 2);

        // Phase 3: link deliveries, in ascending link order (the member
        // list is sorted above and phases 3–8 only append via
        // insert-after-sort paths that are not iterated here).
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        for i in 0..n_links_act {
            let li = self.act_links.member(i) as usize;
            if !self.links[li].has_delivery(now) {
                continue;
            }
            deliveries.clear();
            self.links[li].deliver_into(now, &mut deliveries);
            match self.link_dst[li] {
                LinkDst::SwitchIn(s, p) => {
                    // A delivery activates the receiving switch for this
                    // cycle's phases 5/6.
                    self.act_sw.insert(s.0);
                    for d in deliveries.drain(..) {
                        // Fault guard — see `tick_dense`.
                        if let Some(frt) = self.faults.as_mut() {
                            if frt.arrival_is_undeliverable(s, d.packet.dst) {
                                frt.note_purged(d.packet.is_data());
                                self.links[li].return_credits(d.ready_at, d.packet.size_flits);
                                if let Some(vn) = self.voqnet.as_mut() {
                                    vn.add(li as u32, d.packet.dst.0, d.packet.size_flits);
                                }
                                continue;
                            }
                        }
                        if let Some(tr) = &mut self.trace {
                            if d.packet.is_data() && tr.wants(d.packet.id) {
                                tr.switch_hop(d.packet.id, s, d.visible_at);
                            }
                        }
                        self.port_occ[self.port_base[s.index()] as usize + p.index()] +=
                            d.packet.size_flits;
                        self.switches[s.index()].accept_delivery(p.index(), d, &self.routing);
                    }
                }
                LinkDst::NodeRecv(n) => {
                    for d in deliveries.drain(..) {
                        // `deliver_to_node` activates the node.
                        self.deliver_to_node(n, li, d);
                    }
                }
            }
        }
        self.delivery_scratch = deliveries;
        timer.lap(&mut prof, 3);

        // Phase 4: ctrl consumers are the *senders* of links carrying a
        // due ctrl event (Stop/Go/alloc travel upstream). A component
        // without such a link provably does nothing in its poll (the
        // polls early-return without pending ctrl and emit nothing).
        // Consumers are conservatively activated for phases 5/6/8 too:
        // absorbed ctrl (Stop, CFQ alloc, CNP/ACK) feeds switch
        // isolation state and can un-quiet an adapter.
        self.derive_ctrl_sets(now);
        for i in 0..self.ctrl_sw.len() {
            let s = self.ctrl_sw.member(i);
            self.act_sw.insert(s);
            self.switches[s as usize].poll_output_ctrl(now, &mut self.links, &mut self.metrics);
        }
        for i in 0..self.ctrl_nodes.len() {
            let n = self.ctrl_nodes.member(i);
            self.act_nodes.insert(n);
            self.adapters[n as usize].poll_ctrl(now, &mut self.links, &mut self.metrics);
        }
        timer.lap(&mut prof, 4);

        // Phase 5: isolation + congestion state over active switches,
        // dense gate preserved.
        self.act_sw.sort();
        let n_sw_act = self.act_sw.len();
        for i in 0..n_sw_act {
            let si = self.act_sw.member(i) as usize;
            if self.switches[si].is_quiescent() {
                continue;
            }
            self.switches[si].isolation_tick(
                now,
                &self.routing,
                &mut self.links,
                &mut self.metrics,
            );
            self.switches[si].congestion_state_tick(now, &self.links, &mut self.metrics);
        }
        timer.lap(&mut prof, 5);

        // Phase 6: arbitration over the same member list (is_quiescent
        // implies !has_buffered, so one switch set serves both phases);
        // afterwards each member activates the links it sent on (ctrl in
        // phase 5 or data here) and carries itself while non-quiescent.
        let mut releases = std::mem::take(&mut self.release_scratch);
        for i in 0..n_sw_act {
            let si = self.act_sw.member(i) as usize;
            if self.switches[si].has_buffered() {
                releases.clear();
                self.switches[si].arbitrate_and_transmit_into(
                    now,
                    &self.routing,
                    &mut self.links,
                    self.voqnet.as_ref(),
                    &mut self.metrics,
                    &mut releases,
                );
                for r in releases.drain(..) {
                    self.release_q.push(
                        r.at,
                        Release::SwitchPort {
                            sw: si as u32,
                            port: r.port as u16,
                            flits: r.flits,
                            dst: r.dst.0,
                        },
                    );
                }
            }
            self.switches[si].drain_touched_links(&mut self.act_links);
            if !self.switches[si].is_quiescent() {
                self.act_sw_next.insert(si as u32);
            }
        }
        self.release_scratch = releases;
        timer.lap(&mut prof, 6);

        // Phase 7: BECN arrivals (drain_becns activates the throttled
        // nodes before their phase-8 tick).
        self.drain_becns(now);
        timer.lap(&mut prof, 7);

        // Phase 8: generation + adapter work over active nodes, dense
        // gates preserved. A ticked adapter may send on its injection
        // link; a node leaving the set parks its future wake-ups
        // (CC-timer deadline, generator activation edge) in `node_wake`.
        self.act_nodes.sort();
        let n_nodes_act = self.act_nodes.len();
        for i in 0..n_nodes_act {
            let n = self.act_nodes.member(i) as usize;
            if self.gens[n].any_active(now) {
                self.gen_node(n, now);
            }
            if !(self.adapters[n].is_quiet() && self.adapters[n].armed_timer_count() == 0) {
                if let Some(rel) = self.adapters[n].tick(
                    now,
                    &mut self.links,
                    self.voqnet.as_ref(),
                    &mut self.metrics,
                ) {
                    self.release_q.push(
                        rel.at,
                        Release::Node {
                            node: n as u32,
                            flits: rel.flits,
                        },
                    );
                }
                self.act_links.insert(self.inject_link[n].0);
            }
            // Park unless the adapter still has work or the generator
            // has a full packet banked (emission / backpressure retry
            // next cycle). A parked generator mid-flow wakes at a
            // conservative lower bound of its next emission or ON/OFF
            // boundary and replays the skipped accrual cycles on wake
            // (`NodeGenerator::next_park_wake`), so skipping its ticks
            // is byte-identical.
            let gen_wake = self.gens[n].next_park_wake(now);
            match gen_wake {
                None => {
                    self.act_nodes_next.insert(n as u32);
                }
                Some(at) => {
                    if !self.adapters[n].is_quiet() {
                        self.act_nodes_next.insert(n as u32);
                    } else {
                        let dl = self.adapters[n].next_timer_deadline();
                        if dl != Cycle::MAX {
                            self.node_wake.push(Reverse((dl, n as u32)));
                        }
                        if at != Cycle::MAX {
                            self.node_wake.push(Reverse((at, n as u32)));
                        }
                    }
                }
            }
        }
        timer.lap(&mut prof, 8);

        self.act_stats.record(n_sw_act, n_nodes_act, n_links_act);

        // Gauge sampling: congestion-tree size over time.
        self.sample_gauges(now);

        // Swap in next cycle's work-lists and retire idle links.
        std::mem::swap(&mut self.act_sw, &mut self.act_sw_next);
        self.act_sw_next.clear();
        std::mem::swap(&mut self.act_nodes, &mut self.act_nodes_next);
        self.act_nodes_next.clear();
        let links = &self.links;
        self.act_links.retain(|li| !links[li as usize].is_idle());

        self.now = self.sparse_jump_target(now);
        timer.lap(&mut prof, 9);
    }

    /// Fill `ctrl_sw` / `ctrl_nodes` with the senders of active links
    /// carrying a control event due at `now`, sorted ascending.
    fn derive_ctrl_sets(&mut self, now: Cycle) {
        let mut ctrl_sw = std::mem::take(&mut self.ctrl_sw);
        let mut ctrl_nodes = std::mem::take(&mut self.ctrl_nodes);
        ctrl_sw.clear();
        ctrl_nodes.clear();
        for &li in self.act_links.members() {
            if !self.links[li as usize].has_ctrl(now) {
                continue;
            }
            match self.link_src[li as usize] {
                LinkSrc::Switch(s) => {
                    ctrl_sw.insert(s);
                }
                LinkSrc::Node(n) => {
                    ctrl_nodes.insert(n);
                }
            }
        }
        ctrl_sw.sort();
        ctrl_nodes.sort();
        self.ctrl_sw = ctrl_sw;
        self.ctrl_nodes = ctrl_nodes;
    }

    /// Where the clock may jump to after a sparse cycle. Empty
    /// work-lists mean every component is provably unable to act before
    /// its next pending event (carries keep every non-quiescent switch
    /// / non-quiet node in the sets, and non-members satisfy the debug
    /// invariant) — this is *stronger* than the dense engine's
    /// network-quiet predicate, because generator parking lets the
    /// lists drain even mid-flow, between emissions. The jump is still
    /// observably identical: `node_wake` holds a conservative lower
    /// bound of every parked node's next action (emission, ON/OFF
    /// boundary, CC-timer, activation edge), skipped generator accrual
    /// is replayed on wake, and an early landing on a quiet cycle is a
    /// no-op tick that re-jumps.
    fn sparse_jump_target(&self, now: Cycle) -> Cycle {
        let step = now + 1;
        if !self.act_sw.is_empty() || !self.act_nodes.is_empty() {
            return step;
        }
        let mut target = (now / self.gauge_every + 1) * self.gauge_every;
        if let Some(at) = self.release_q.next_at() {
            target = target.min(at);
        }
        if let Some(&Reverse((at, _, _, _))) = self.becn_q.peek() {
            target = target.min(at);
        }
        for &li in self.act_links.members() {
            if let Some(at) = self.links[li as usize].next_event_at() {
                target = target.min(at);
            }
        }
        if let Some(&Reverse((at, _))) = self.node_wake.peek() {
            target = target.min(at);
        }
        if let Some(frt) = &self.faults {
            if let Some(ev) = frt.schedule.events().get(frt.next) {
                target = target.min(ev.at);
            }
            if let Some(at) = frt.routing_update_at {
                target = target.min(at);
            }
        }
        target.min(self.end).max(step)
    }

    // SPARSE-REGION-END

    /// Debug-mode conservativeness cross-check: at the top of a sparse
    /// tick, every component *not* on its work-list must be provably
    /// unable to act this cycle — the exact predicates the dense gates
    /// use. A violation means an activation rule missed an event.
    #[cfg(debug_assertions)]
    fn assert_sparse_invariants(&self, now: Cycle) {
        for (i, sw) in self.switches.iter().enumerate() {
            debug_assert!(
                self.act_sw.contains(i as u32) || sw.is_quiescent(),
                "switch {i} is active but not in act_sw at cycle {now}"
            );
        }
        let parked: std::collections::HashSet<u32> =
            self.node_wake.iter().map(|&Reverse((_, n))| n).collect();
        for (i, a) in self.adapters.iter().enumerate() {
            // A non-member node must be quiet and its generator either
            // must-tick-never (`Some`: no banked packet) with a pending
            // wake entry covering any finite next action, or inert.
            let gen_ok = match self.gens[i].next_park_wake(now) {
                None => false,
                Some(Cycle::MAX) => true,
                Some(_) => parked.contains(&(i as u32)),
            };
            debug_assert!(
                self.act_nodes.contains(i as u32) || (a.is_quiet() && gen_ok),
                "node {i} is active but not in act_nodes at cycle {now}"
            );
        }
        for (i, l) in self.links.iter().enumerate() {
            debug_assert!(
                self.act_links.contains(i as u32) || l.is_idle(),
                "link {i} has events in flight but is not in act_links at cycle {now}"
            );
        }
    }

    /// Re-activate every component (fault events can purge, reroute or
    /// restore arbitrary hardware; everything re-proves quietness).
    fn activate_all(&mut self) {
        self.act_links.fill_all();
        self.act_sw.fill_all();
        self.act_nodes.fill_all();
    }

    /// Rebuild the SoA port-occupancy mirror from the switches' RAMs
    /// (after fault events, which purge RAM outside the phase loops).
    fn resync_port_occ(&mut self) {
        for (si, sw) in self.switches.iter().enumerate() {
            let base = self.port_base[si] as usize;
            for (p, inp) in sw.inputs.iter().enumerate() {
                self.port_occ[base + p] = inp.ram.used();
            }
        }
    }

    /// Active-set occupancy statistics (all-zero for dense runs).
    pub fn active_set_stats(&self) -> ActiveSetStats {
        self.act_stats
    }

    /// Phase 1: apply every RAM release / credit return due at `now`.
    fn drain_releases(&mut self, now: Cycle) {
        while let Some((_, rel)) = self.release_q.pop_due(now) {
            match rel {
                Release::SwitchPort {
                    sw,
                    port,
                    flits,
                    dst,
                } => {
                    let sw_idx = sw as usize;
                    let port_idx = port as usize;
                    self.port_occ[self.port_base[sw_idx] as usize + port_idx] -= flits;
                    self.switches[sw_idx].release_ram(port_idx, flits);
                    if let Some(link) = self.switches[sw_idx].inputs[port_idx].in_link {
                        self.links[link.index()].return_credits(now, flits);
                        if self.sparse_on {
                            // The credited link must be polled by this
                            // cycle's phase 2 (dense absorbs same-cycle).
                            self.act_links.insert(link.0);
                        }
                        if let Some(vn) = self.voqnet.as_ref() {
                            vn.add(link.0, dst, flits);
                        }
                    }
                }
                Release::Node { node, flits } => {
                    self.adapters[node as usize].release_ram(flits);
                }
            }
        }
    }

    /// Phase 7: BECN arrivals throttle their sources.
    fn drain_becns(&mut self, now: Cycle) {
        while let Some(&Reverse((at, _, congested_dst, node))) = self.becn_q.peek() {
            if at > now {
                break;
            }
            self.becn_q.pop();
            if self.sparse_on {
                // A throttle update can arm timers / stretch gaps: the
                // node must run this cycle's phase 8.
                self.act_nodes.insert(node);
            }
            self.adapters[node as usize].on_becn(now, NodeId(congested_dst), &mut self.metrics);
        }
    }

    /// Phase 8a: run node `n`'s traffic generator against its adapter's
    /// admittance logic.
    fn gen_node(&mut self, n: usize, now: Cycle) {
        let adapter = &mut self.adapters[n];
        let next_packet_id = &mut self.next_packet_id;
        let injected = &mut self.injected;
        let trace = &mut self.trace;
        let faults = &mut self.faults;
        let metrics = &mut self.metrics;
        let cc_wire = self.cc_wire;
        let data_overhead = self.mech.hpcc_params().map_or(0, |p| p.int_overhead_bytes);
        let mut sink = |gp: GenPacket| {
            // Fault guard: a source never stalls on a currently
            // unreachable destination — the packet is consumed
            // (counted as refused) but not injected.
            if let Some(frt) = faults.as_mut() {
                if frt.pair_unreachable(n, gp.dst) {
                    frt.packets_refused += 1;
                    return true;
                }
            }
            let id = PacketId(*next_packet_id);
            if adapter.try_inject(now, gp, id) {
                *next_packet_id += 1;
                *injected += 1;
                if cc_wire {
                    metrics.count(
                        "wire_bytes_injected",
                        u64::from(gp.size_bytes) + u64::from(data_overhead),
                    );
                }
                if let Some(tr) = trace {
                    if tr.wants(id) {
                        tr.injected(id, gp.flow, adapter.node(), gp.dst, now);
                    }
                }
                true
            } else {
                false
            }
        };
        self.gens[n].tick(now, &mut sink);
    }

    /// Sample the congestion-tree gauges on `gauge_every` boundaries.
    fn sample_gauges(&mut self, now: Cycle) {
        if !now.is_multiple_of(self.gauge_every) {
            return;
        }
        let at_ns = self.cfg.units.cycles_to_ns(now);
        // Cache-linear SoA sum instead of a pointer chase through every
        // switch struct (the mirror is maintained in all engine modes).
        let buffered: u32 = self.port_occ.iter().sum();
        debug_assert_eq!(
            buffered,
            self.switches
                .iter()
                .flat_map(|sw| sw.inputs.iter().map(|i| i.ram.used()))
                .sum::<u32>(),
            "SoA port-occupancy mirror diverged from the switch RAMs"
        );
        self.metrics
            .gauge("network_buffered_flits", at_ns, buffered as f64);
        self.metrics
            .gauge("cfqs_allocated", at_ns, self.cfqs_allocated() as f64);
        if let Some(frt) = &self.faults {
            let unreachable = frt.unreachable_since.iter().filter(|s| s.is_some()).count();
            self.metrics
                .gauge("unreachable_nodes", at_ns, unreachable as f64);
        }
        if self.cfg.port_telemetry {
            // Per-port series: input-RAM occupancy and output-link sender
            // credits for every switch port. Opt-in because it adds one
            // series per port to the report (formatting here is fine —
            // gauges sample on bin boundaries, not per cycle).
            for sw in &self.switches {
                let s = sw.id.0;
                for (p, inp) in sw.inputs.iter().enumerate() {
                    if inp.in_link.is_some() {
                        self.metrics.gauge(
                            &format!("port_occ_sw{s}_in{p}"),
                            at_ns,
                            inp.ram.used() as f64,
                        );
                    }
                }
                for (p, out) in sw.outputs.iter().enumerate() {
                    if let Some(l) = out.out_link {
                        self.metrics.gauge(
                            &format!("port_credits_sw{s}_out{p}"),
                            at_ns,
                            self.links[l.index()].credits() as f64,
                        );
                    }
                }
            }
        }
    }

    /// Where the clock may jump to after this cycle. When any component
    /// is active this is `now + 1` (normal single-step). When the whole
    /// network is provably quiet, nothing observable can happen before
    /// the earliest pending event, so the clock jumps straight to it:
    /// the next gauge-sampling boundary (samples must land on every
    /// multiple of `gauge_every`), the next scheduled RAM release or
    /// out-of-band BECN, the next in-flight link event, the next armed
    /// CCTI timer deadline, or the next flow activation. The jump is
    /// clamped to `end` so runs terminate on the exact same cycle as the
    /// slow path.
    fn quiet_jump_target(&self, now: Cycle) -> Cycle {
        let step = now + 1;
        let quiet = self.switches.iter().all(|s| s.is_quiescent())
            && self.adapters.iter().all(|a| a.is_quiet())
            && self.gens.iter().all(|g| !g.any_active(now));
        if !quiet {
            return step;
        }
        let mut target = (now / self.gauge_every + 1) * self.gauge_every;
        if let Some(at) = self.release_q.next_at() {
            target = target.min(at);
        }
        if let Some(&Reverse((at, _, _, _))) = self.becn_q.peek() {
            target = target.min(at);
        }
        for l in &self.links {
            if let Some(at) = l.next_event_at() {
                target = target.min(at);
            }
        }
        for a in &self.adapters {
            target = target.min(a.next_timer_deadline());
        }
        for g in &self.gens {
            if let Some(at) = g.next_activation(now) {
                target = target.min(at);
            }
        }
        if let Some(frt) = &self.faults {
            if let Some(ev) = frt.schedule.events().get(frt.next) {
                target = target.min(ev.at);
            }
            if let Some(at) = frt.routing_update_at {
                target = target.min(at);
            }
        }
        target.min(self.end).max(step)
    }

    /// Phase 0: apply every scheduled event due at `now`, then any
    /// pending routing recomputation. The runtime is temporarily moved
    /// out of `self` so event application can borrow the rest of the
    /// simulator freely.
    fn apply_fault_events(&mut self, now: Cycle) {
        let mut frt = self.faults.take().expect("caller checked");
        let applied_before = frt.events_applied;
        let reroutes_before = frt.reroutes;
        while let Some(ev) = frt.schedule.events().get(frt.next).copied() {
            if ev.at > now {
                break;
            }
            frt.next += 1;
            let before = frt.events_applied;
            self.apply_network_event(now, &mut frt, ev.event);
            // Skipped events (stale schedule entries) are not logged —
            // they changed nothing.
            if frt.events_applied > before && self.metrics.wants_events(EventClass::FAULT) {
                let kind = match ev.event {
                    NetworkEvent::LinkDown { .. } => FaultKind::LinkDown,
                    NetworkEvent::LinkUp { .. } => FaultKind::LinkUp,
                    NetworkEvent::SwitchDown { .. } => FaultKind::SwitchDown,
                    NetworkEvent::SwitchUp { .. } => FaultKind::SwitchUp,
                    NetworkEvent::LinkDegrade { .. } => FaultKind::LinkDegrade,
                    NetworkEvent::LinkRestoreRate { .. } => FaultKind::LinkRestore,
                };
                let (sw, port) = ev.event.target();
                self.metrics.cc_event(CcEvent {
                    at: now,
                    kind: CcEventKind::Fault {
                        kind,
                        sw: sw.0,
                        port: port.map_or(0, |p| p.index() as u32),
                    },
                });
            }
        }
        if frt.routing_update_at.is_some_and(|t| t <= now) {
            frt.routing_update_at = None;
            self.complete_reroute(now, &mut frt);
        }
        let changed = frt.events_applied != applied_before || frt.reroutes != reroutes_before;
        self.faults = Some(frt);
        if changed {
            // Events and re-route completions purge RAM / reset links /
            // re-route packets outside the phase loops: rebuild the SoA
            // occupancy mirror and re-activate everything.
            self.resync_port_occ();
            if self.sparse_on {
                self.activate_all();
            }
        }
    }

    fn apply_network_event(&mut self, now: Cycle, frt: &mut FaultRuntime, event: NetworkEvent) {
        match event {
            NetworkEvent::LinkDown {
                switch: s,
                port: p,
                policy,
            } => {
                let Some((Endpoint::Switch(os, op), _)) = self.topo.peer(s, p) else {
                    // Already down, or a node cable (validation rejects
                    // the latter up front, but a hand-built schedule
                    // could still race a switch failure).
                    frt.events_skipped += 1;
                    return;
                };
                if frt.is_switch_down(s) || frt.is_switch_down(os) {
                    frt.events_skipped += 1;
                    return;
                }
                let (_, _, params) = self.topo.remove_cable(s, p).expect("peer verified");
                self.take_cable_down(frt, s, p, os, op, policy);
                frt.down_cables.push(DownCable {
                    s,
                    p,
                    os,
                    op,
                    params,
                    by_switch: false,
                });
                frt.schedule_reroute(now);
                frt.applied(now);
            }
            NetworkEvent::LinkUp { switch: s, port: p } => {
                let Some(i) = frt
                    .down_cables
                    .iter()
                    .position(|c| (c.s, c.p) == (s, p) || (c.os, c.op) == (s, p))
                else {
                    frt.events_skipped += 1;
                    return;
                };
                let c = frt.down_cables[i];
                if frt.is_switch_down(c.s) || frt.is_switch_down(c.os) {
                    // The cable comes back with the switch (`SwitchUp`).
                    frt.events_skipped += 1;
                    return;
                }
                frt.down_cables.remove(i);
                self.topo
                    .restore_cable(c.s, c.p, c.os, c.op, c.params)
                    .expect("recorded from remove_cable");
                self.restore_cable_links(frt, c);
                frt.schedule_reroute(now);
                frt.applied(now);
            }
            NetworkEvent::SwitchDown { switch: sw, policy } => {
                if frt.is_switch_down(sw) {
                    frt.events_skipped += 1;
                    return;
                }
                let ports: Vec<PortId> = self.topo.switch(sw).connected().collect();
                for p in ports {
                    match self.topo.peer(sw, p) {
                        Some((Endpoint::Switch(os, op), _)) => {
                            let (_, _, params) =
                                self.topo.remove_cable(sw, p).expect("peer verified");
                            self.take_cable_down(frt, sw, p, os, op, policy);
                            frt.down_cables.push(DownCable {
                                s: sw,
                                p,
                                os,
                                op,
                                params,
                                by_switch: true,
                            });
                        }
                        Some((Endpoint::Node(n), _)) => {
                            // The node's access links die with the
                            // switch (the node itself is fine — it is
                            // orphaned until `SwitchUp`).
                            let inj = self.inject_link[n.index()].index();
                            let rcv = self.recv_link[n.index()].index();
                            match policy {
                                FaultPolicy::FailStop => {
                                    frt.loss.absorb(self.links[inj].fail());
                                    frt.loss.absorb(self.links[rcv].fail());
                                }
                                FaultPolicy::Graceful => {
                                    self.links[inj].close();
                                    self.links[rcv].close();
                                }
                            }
                            if frt.unreachable_since[n.index()].is_none() {
                                frt.unreachable_since[n.index()] = Some(now);
                            }
                        }
                        None => {}
                    }
                }
                // The switch's buffers are lost regardless of policy —
                // a policy only governs what happens on the wires.
                let stats = self.switches[sw.index()].purge_all();
                frt.absorb_purge(stats);
                // Its scheduled RAM releases die with it (the upstream
                // credits they would have returned are already tallied
                // as lost by the wire cut or will be re-granted on
                // restore from ground-truth RAM occupancy).
                self.release_q.retain(|rel| {
                    !matches!(rel, Release::SwitchPort { sw: x, .. } if *x == sw.index() as u32)
                });
                frt.down_switches.push(sw);
                frt.schedule_reroute(now);
                frt.applied(now);
            }
            NetworkEvent::SwitchUp { switch: sw } => {
                let Some(i) = frt.down_switches.iter().position(|&d| d == sw) else {
                    frt.events_skipped += 1;
                    return;
                };
                frt.down_switches.remove(i);
                // Reinstall the cables its failure took down, skipping
                // those whose far end is still a dead switch (they come
                // back with *that* switch) and those that had failed
                // individually before the switch died (they need their
                // own `LinkUp`).
                let mut i = 0;
                while i < frt.down_cables.len() {
                    let c = frt.down_cables[i];
                    let other = if c.s == sw {
                        Some(c.os)
                    } else if c.os == sw {
                        Some(c.s)
                    } else {
                        None
                    };
                    match other {
                        Some(o) if c.by_switch && !frt.is_switch_down(o) => {
                            frt.down_cables.remove(i);
                            self.topo
                                .restore_cable(c.s, c.p, c.os, c.op, c.params)
                                .expect("recorded from remove_cable");
                            self.restore_cable_links(frt, c);
                        }
                        _ => i += 1,
                    }
                }
                // Node access links retrain. The switch-side input RAM
                // was purged with the switch, so the fresh grant is its
                // full capacity; nodes stay accounted unreachable until
                // the re-route completes.
                let ports: Vec<PortId> = self.topo.switch(sw).connected().collect();
                for p in ports {
                    if let Some((Endpoint::Node(n), _)) = self.topo.peer(sw, p) {
                        let inj = self.inject_link[n.index()];
                        let rcv = self.recv_link[n.index()].index();
                        let grant = self.switches[sw.index()].inputs[p.index()].ram.free();
                        frt.loss.absorb(self.links[inj.index()].restore(grant));
                        frt.loss
                            .absorb(self.links[rcv].restore(self.node_sink_credits));
                        self.reset_voqnet_credits(inj, sw, p.index());
                    }
                }
                frt.schedule_reroute(now);
                frt.applied(now);
            }
            NetworkEvent::LinkDegrade {
                switch: s,
                port: p,
                bw_divisor,
                extra_delay_cycles,
            } => {
                let Some((Endpoint::Switch(os, op), _)) = self.topo.peer(s, p) else {
                    frt.events_skipped += 1;
                    return;
                };
                let fwd = self.switches[s.index()].outputs[p.index()]
                    .out_link
                    .expect("cabled");
                let rev = self.switches[os.index()].outputs[op.index()]
                    .out_link
                    .expect("cabled");
                self.links[fwd.index()].degrade(bw_divisor, extra_delay_cycles);
                self.links[rev.index()].degrade(bw_divisor, extra_delay_cycles);
                self.refresh_link_bw_cache(s, p, fwd);
                self.refresh_link_bw_cache(os, op, rev);
                frt.applied(now);
            }
            NetworkEvent::LinkRestoreRate { switch: s, port: p } => {
                let Some((Endpoint::Switch(os, op), _)) = self.topo.peer(s, p) else {
                    frt.events_skipped += 1;
                    return;
                };
                let fwd = self.switches[s.index()].outputs[p.index()]
                    .out_link
                    .expect("cabled");
                let rev = self.switches[os.index()].outputs[op.index()]
                    .out_link
                    .expect("cabled");
                self.links[fwd.index()].restore_rate();
                self.links[rev.index()].restore_rate();
                self.refresh_link_bw_cache(s, p, fwd);
                self.refresh_link_bw_cache(os, op, rev);
                frt.applied(now);
                frt.last_recovery = now;
            }
        }
    }

    /// Re-cache an output's link bandwidth on its switch after a rate
    /// change (the starvation detector reads the cached copy).
    fn refresh_link_bw_cache(&mut self, s: SwitchId, p: PortId, link: LinkId) {
        let bw = self.links[link.index()].config().bw_flits_per_cycle;
        self.switches[s.index()].set_output_link_bw(p.index(), bw);
    }

    /// Cut (fail-stop) or close (graceful) both directed links of a
    /// trunk cable and, under fail-stop, quiesce the per-cable protocol
    /// state at both ends: the output CAMs mirroring downstream
    /// congestion, and the CFQ alloc/Stop flags that claim upstream has
    /// been notified — all of that state died with the wire and must
    /// re-propagate after a repair.
    fn take_cable_down(
        &mut self,
        frt: &mut FaultRuntime,
        s: SwitchId,
        p: PortId,
        os: SwitchId,
        op: PortId,
        policy: FaultPolicy,
    ) {
        let fwd = self.switches[s.index()].outputs[p.index()]
            .out_link
            .expect("cabled");
        let rev = self.switches[os.index()].outputs[op.index()]
            .out_link
            .expect("cabled");
        match policy {
            FaultPolicy::FailStop => {
                frt.loss.absorb(self.links[fwd.index()].fail());
                frt.loss.absorb(self.links[rev.index()].fail());
                self.switches[s.index()].clear_output_cam(p.index());
                self.switches[os.index()].clear_output_cam(op.index());
                self.switches[s.index()].reset_upstream_ctrl_flags(p.index());
                self.switches[os.index()].reset_upstream_ctrl_flags(op.index());
            }
            FaultPolicy::Graceful => {
                self.links[fwd.index()].close();
                self.links[rev.index()].close();
            }
        }
    }

    /// Retrain both directed links of a reinstalled trunk cable. The
    /// fresh credit grant is the receiving input port's *current* free
    /// RAM — ground truth either way: under fail-stop the credit
    /// returns of the downtime were destroyed while the RAM kept
    /// draining, and under graceful `Link::restore` resets the sender
    /// pool before re-granting.
    fn restore_cable_links(&mut self, frt: &mut FaultRuntime, c: DownCable) {
        let fwd = self.switches[c.s.index()].outputs[c.p.index()]
            .out_link
            .expect("cabled");
        let rev = self.switches[c.os.index()].outputs[c.op.index()]
            .out_link
            .expect("cabled");
        let fwd_grant = self.switches[c.os.index()].inputs[c.op.index()].ram.free();
        let rev_grant = self.switches[c.s.index()].inputs[c.p.index()].ram.free();
        frt.loss.absorb(self.links[fwd.index()].restore(fwd_grant));
        frt.loss.absorb(self.links[rev.index()].restore(rev_grant));
        self.reset_voqnet_credits(fwd, c.os, c.op.index());
        self.reset_voqnet_credits(rev, c.s, c.p.index());
    }

    /// VOQnet retrains its per-destination reserved credits alongside
    /// the link-level grant: each destination's remote credit is its
    /// queue reservation minus what is still buffered at the receiver.
    fn reset_voqnet_credits(&mut self, link: LinkId, sw: SwitchId, port: usize) {
        let Some(vn) = self.voqnet.as_mut() else {
            return;
        };
        let per_q = match self.mech {
            Mechanism::VoqNet { per_queue_flits } => per_queue_flits,
            _ => return,
        };
        for d in 0..self.num_nodes {
            let held = self.switches[sw.index()].per_dest_occupancy_flits(port, d);
            vn.set(link.0, d as u32, per_q.saturating_sub(held));
        }
    }

    /// The re-routing latency elapsed: recompute routing tables for the
    /// surviving topology, refresh the reachability snapshot, purge
    /// every buffered packet the new tables cannot deliver, and settle
    /// the availability accounting.
    fn complete_reroute(&mut self, now: Cycle, frt: &mut FaultRuntime) {
        self.routing = RoutingTable::shortest_path(&self.topo);
        // BECN transit times follow the new paths.
        self.becn_delay_cache.invalidate();
        let (comp, node_comp) = compute_components(&self.topo, &frt.down_switches);
        frt.comp = comp;
        frt.node_comp = node_comp;
        for n in 0..self.num_nodes {
            if frt.node_comp[n] != u32::MAX {
                if let Some(t0) = frt.unreachable_since[n].take() {
                    frt.unreachable_cycles += now - t0;
                }
            } else if frt.unreachable_since[n].is_none() {
                frt.unreachable_since[n] = Some(now);
            }
        }
        self.purge_unreachable_everywhere(now, frt);
        for si in 0..self.switches.len() {
            if !frt.is_switch_down(SwitchId(si as u32)) {
                self.switches[si].on_routing_changed(&self.routing);
            }
        }
        if let Some(t0) = frt.stale_since.take() {
            frt.stale_cycles += now - t0;
        }
        frt.reroutes += 1;
        frt.last_recovery = now;
        if self.metrics.wants_events(EventClass::FAULT) {
            let unreachable = frt.unreachable_since.iter().filter(|s| s.is_some()).count();
            self.metrics.cc_event(CcEvent {
                at: now,
                kind: CcEventKind::RerouteDone {
                    unreachable_nodes: unreachable as u32,
                },
            });
        }
    }

    /// Drop every buffered packet (switch queues and adapter queues)
    /// whose destination the routing now in force cannot deliver,
    /// freeing RAM and returning upstream credits exactly as a normal
    /// departure would.
    fn purge_unreachable_everywhere(&mut self, now: Cycle, frt: &mut FaultRuntime) {
        let mut purged = std::mem::take(&mut frt.switch_purge_scratch);
        for si in 0..self.switches.len() {
            if frt.is_switch_down(SwitchId(si as u32)) {
                continue;
            }
            let swc = frt.comp[si];
            let node_comp = &frt.node_comp;
            purged.clear();
            self.switches[si].purge_unreachable(
                &|d: NodeId| {
                    let dc = node_comp[d.index()];
                    dc == u32::MAX || dc != swc
                },
                &mut purged,
            );
            for (port, e) in purged.drain(..) {
                frt.note_purged(e.packet.is_data());
                if let Some(link) = self.switches[si].inputs[port].in_link {
                    self.links[link.index()].return_credits(now, e.packet.size_flits);
                    if let Some(vn) = self.voqnet.as_mut() {
                        vn.add(link.0, e.packet.dst.0, e.packet.size_flits);
                    }
                }
            }
        }
        frt.switch_purge_scratch = purged;
        let mut scratch = std::mem::take(&mut frt.purge_scratch);
        for n in 0..self.num_nodes {
            let sc = frt.node_comp[n];
            let node_comp = &frt.node_comp;
            // An orphaned source keeps its buffered packets — they can
            // flow again once its switch recovers — except those for
            // destinations that are themselves orphaned.
            let stats = self.adapters[n].purge_unreachable(
                &|d: NodeId| {
                    let dc = node_comp[d.index()];
                    dc == u32::MAX || (sc != u32::MAX && dc != sc)
                },
                &mut scratch,
            );
            frt.absorb_purge(stats);
        }
        frt.purge_scratch = scratch;
    }

    /// Nodes the fault runtime currently counts as unreachable (empty
    /// for fault-free runs).
    pub fn unreachable_nodes(&self) -> Vec<NodeId> {
        self.faults
            .as_ref()
            .map(|frt| {
                frt.unreachable_since
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_some())
                    .map(|(n, _)| NodeId(n as u32))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn deliver_to_node(&mut self, node: NodeId, link_idx: usize, d: ccfit_engine::link::Delivery) {
        if self.sparse_on {
            // Any arrival (data completion, BECN/CNP/ACK feedback) can
            // change the adapter's state: it must run this cycle's
            // phase 8.
            self.act_nodes.insert(node.0);
        }
        // Ideal sink: space is freed the moment the tail lands.
        self.links[link_idx].return_credits(d.ready_at, d.packet.size_flits);
        match d.packet.kind {
            ccfit_engine::packet::PacketKind::Becn => {
                // An in-band BECN reached the source it throttles.
                self.adapters[node.index()].on_becn(d.ready_at, d.packet.src, &mut self.metrics);
                return;
            }
            ccfit_engine::packet::PacketKind::Cnp => {
                // DCQCN: a CNP reached the reaction point.
                self.metrics
                    .count("ctrl_wire_bytes_delivered", d.packet.wire_bytes());
                self.adapters[node.index()].on_cnp(d.ready_at, d.packet.src, &mut self.metrics);
                return;
            }
            ccfit_engine::packet::PacketKind::Ack => {
                // HPCC: the INT echo reached the sender's window machine.
                self.metrics
                    .count("ctrl_wire_bytes_delivered", d.packet.wire_bytes());
                self.adapters[node.index()].on_ack(
                    d.ready_at,
                    d.packet.src,
                    d.packet.int_u,
                    d.packet.int_hops,
                    d.packet.ack_bytes,
                    &mut self.metrics,
                );
                return;
            }
            ccfit_engine::packet::PacketKind::Data => {}
        }
        self.metrics.record_delivery(d.ready_at, &d.packet);
        if d.packet.is_data() {
            self.delivered += 1;
            if self.cc_wire {
                // Byte accounting at reception, consistent across data
                // and control traffic: wire = payload + scheme overhead.
                self.metrics
                    .count("wire_bytes_delivered", d.packet.wire_bytes());
                self.metrics
                    .count("payload_bytes_delivered", u64::from(d.packet.size_bytes));
                self.metrics.count(
                    "overhead_bytes_delivered",
                    u64::from(d.packet.overhead_bytes),
                );
            }
            if let Some(tr) = &mut self.trace {
                if tr.wants(d.packet.id) {
                    tr.delivered(d.packet.id, d.ready_at, d.packet.fecn);
                }
            }
            if self.metrics.wants_events(EventClass::DELIVERY) {
                self.metrics.cc_event(CcEvent {
                    at: d.ready_at,
                    kind: CcEventKind::Delivered {
                        node: node.0,
                        flow: d.packet.flow.0,
                        bytes: d.packet.size_bytes,
                        latency_cycles: d.ready_at.saturating_sub(d.packet.injected_at),
                        fecn: d.packet.fecn,
                    },
                });
            }
        }
        // FECN → BECN (§III-B): the destination returns a congestion
        // notification to the packet's source.
        if d.packet.fecn && self.mech.throttle().is_some() {
            self.metrics.count("becn_generated", 1);
            if self.metrics.wants_events(EventClass::BECN) {
                self.metrics.cc_event(CcEvent {
                    at: d.ready_at,
                    kind: CcEventKind::BecnGenerated {
                        node: node.0,
                        src: d.packet.src.0,
                    },
                });
            }
            match self.cfg.becn_transport {
                BecnTransport::InBand => {
                    let id = PacketId(self.next_packet_id);
                    self.next_packet_id += 1;
                    self.adapters[node.index()].queue_becn(Packet::becn(
                        id,
                        node,
                        d.packet.src,
                        d.ready_at,
                    ));
                }
                BecnTransport::OutOfBand => {
                    let delay = self.becn_delay(node, d.packet.src);
                    self.seq += 1;
                    self.becn_q.push(Reverse((
                        d.ready_at + delay,
                        self.seq,
                        node.0,         // the congested destination
                        d.packet.src.0, // the source to throttle
                    )));
                }
            }
        }
        // ECN-CE → CNP (DCQCN notification point): answer a marked
        // delivery with one CNP, rate-limited per source.
        if d.packet.ecn && self.mech.dcqcn_params().is_some() {
            let overhead = self.mech.dcqcn_params().map_or(0, |p| p.cnp_overhead_bytes);
            if self.adapters[node.index()].cnp_due(d.ready_at, d.packet.src) {
                let id = PacketId(self.next_packet_id);
                self.next_packet_id += 1;
                let cnp = Packet::cnp(id, node, d.packet.src, d.ready_at, overhead);
                self.metrics.count("cnp_generated", 1);
                self.metrics.count("ctrl_wire_bytes_sent", cnp.wire_bytes());
                if self.metrics.wants_events(EventClass::CNP) {
                    self.metrics.cc_event(CcEvent {
                        at: d.ready_at,
                        kind: CcEventKind::CnpGenerated {
                            node: node.0,
                            src: d.packet.src.0,
                        },
                    });
                }
                self.adapters[node.index()].queue_becn(cnp);
            }
        }
        // Data delivery → per-packet ACK echoing the INT fold (HPCC).
        if let Some(p) = self.mech.hpcc_params() {
            let id = PacketId(self.next_packet_id);
            self.next_packet_id += 1;
            let ack = Packet::ack(
                id,
                node,
                d.packet.src,
                d.ready_at,
                d.packet.int_u,
                d.packet.int_hops,
                d.packet.wire_bytes() as u32,
                p.ack_overhead_bytes,
            );
            self.metrics.count("ack_generated", 1);
            self.metrics.count("ctrl_wire_bytes_sent", ack.wire_bytes());
            self.adapters[node.index()].queue_becn(ack);
        }
    }

    /// Run to completion and produce the report.
    ///
    /// With [`SimConfig::parallel`] requesting more than one thread the
    /// network ticks on the sharded worker pool (byte-identical results,
    /// packet traces and CC event logs included; DESIGN.md §9), unless
    /// `force_slow_path` pins the serial engine. [`Self::run_cycles`]
    /// always ticks serially.
    pub fn run(mut self) -> SimReport {
        self.run_to_end();
        self.finish()
    }

    /// Advance the clock to the end of the configured duration without
    /// consuming the simulator, so callers can still inspect live state
    /// ([`Self::traces`], [`Self::counter`], …) before [`Self::finish`].
    pub fn run_to_end(&mut self) {
        let decision = self.engine_decision();
        warn_fallback_once(&decision);
        if decision.effective_threads > 1 && !self.cfg.force_slow_path {
            self.run_parallel(&decision);
        } else {
            while self.now < self.end {
                self.tick();
            }
        }
    }

    /// Per-switch static work weights for shard balancing: connected
    /// ports scaled by the mechanism's per-port tick cost, plus one unit
    /// per attached adapter (adapters are ticked by their own shard, but
    /// their control/BECN load lands on the attachment switch).
    fn switch_weights(&self) -> Vec<u64> {
        let factor = self.mech.tick_weight();
        let mut w: Vec<u64> = (0..self.switches.len())
            .map(|s| self.topo.switch(SwitchId(s as u32)).connected().count() as u64 * factor)
            .collect();
        for n in 0..self.num_nodes {
            let (sw, _, _) = self.topo.node_attachment(NodeId(n as u32));
            w[sw.index()] += 1;
        }
        w
    }

    /// How [`Self::run_to_end`] will execute the configured
    /// [`ParallelConfig`] on this host: the effective thread count,
    /// batch size, and the fallback reason when the request was
    /// degraded (see `crate::parallel::decide`). Deliberately not part
    /// of the [`SimReport`], which stays byte-identical across hosts.
    pub fn engine_decision(&self) -> EngineDecision {
        let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let weight = network_weight(
            (0..self.switches.len())
                .map(|s| self.topo.switch(SwitchId(s as u32)).connected().count()),
            self.adapters.len(),
            self.mech.tick_weight(),
        );
        decide(&self.cfg.parallel, host_cpus, weight)
    }

    /// Tick to `end` on the worker pool, `batch_cycles` cycles per
    /// dispatch (see `tick_parallel`).
    fn run_parallel(&mut self, decision: &EngineDecision) {
        let threads = decision.effective_threads;
        let link_sw_dst: Vec<Option<(u32, u32)>> = self
            .link_dst
            .iter()
            .map(|d| match d {
                LinkDst::SwitchIn(s, p) => Some((s.0, p.index() as u32)),
                LinkDst::NodeRecv(_) => None,
            })
            .collect();
        let plan = ShardPlan::build(
            threads,
            &self.switch_weights(),
            self.adapters.len(),
            &link_sw_dst,
        );
        let mut outboxes: Vec<ShardOutbox> = (0..2 * plan.shards)
            .map(|_| ShardOutbox::default())
            .collect();
        // Shard workers filter events against a copied mask so the
        // off-path cost stays a predicted branch; sampling and capacity
        // are applied only when the op-logs replay into the collector
        // (per-shard sampling would break byte-identity across thread
        // counts).
        let mask = self.metrics.event_mask();
        for ob in outboxes.iter_mut() {
            ob.metrics.set_event_mask(mask);
        }
        let mut p5_ran = vec![false; self.switches.len()];
        let pool = Pool::new(threads, threads > decision.host_cpus);
        // Batch loop: one park-capable rendezvous per `batch_cycles`
        // simulated cycles; everything inside a batch crosses only the
        // spin-biased step barrier. Per-cycle phase and merge order are
        // untouched, so batch size cannot affect results.
        while self.now < self.end {
            pool.begin_batch();
            for _ in 0..decision.batch_cycles {
                if self.now >= self.end {
                    break;
                }
                self.tick_parallel(&pool, &plan, &mut outboxes, &mut p5_ran);
            }
            pool.end_batch();
        }
    }

    /// Snapshot the raw pointers a parallel section needs. Rebuilt
    /// before every section so serial interludes (which borrow the same
    /// component vectors) stay in the clear.
    fn make_ctx(
        &mut self,
        now: Cycle,
        plan: &ShardPlan,
        outboxes: &mut [ShardOutbox],
        p5_ran: &mut [bool],
    ) -> TickCtx {
        TickCtx {
            now,
            fast: true,
            switches: self.switches.as_mut_ptr(),
            adapters: self.adapters.as_mut_ptr(),
            links: self.links.as_mut_ptr(),
            n_links: self.links.len(),
            routing: &self.routing,
            voqnet: self
                .voqnet
                .as_ref()
                .map_or(std::ptr::null(), |v| v as *const VoqNetCredits),
            outboxes: outboxes.as_mut_ptr(),
            p5_ran: p5_ran.as_mut_ptr(),
            plan,
            trace_sample: self.trace.as_ref().map_or(0, |t| t.sample_every()),
            sparse: self.sparse_on,
            act_links: (self.act_links.members().as_ptr(), self.act_links.len()),
            act_sw: (self.act_sw.members().as_ptr(), self.act_sw.len()),
            ctrl_sw: (self.ctrl_sw.members().as_ptr(), self.ctrl_sw.len()),
            ctrl_nodes: (self.ctrl_nodes.members().as_ptr(), self.ctrl_nodes.len()),
            act_nodes: (self.act_nodes.members().as_ptr(), self.act_nodes.len()),
            port_base: self.port_base.as_ptr(),
            port_occ: self.port_occ.as_mut_ptr(),
            faults: self.faults.as_ref().map(|frt| FaultView {
                comp: frt.comp.as_ptr(),
                node_comp: frt.node_comp.as_ptr(),
                down: frt.down_switches.as_ptr(),
                n_down: frt.down_switches.len(),
            }),
        }
    }

    /// Replay every shard's metric op-log into the collector, in shard
    /// order — switch-side outboxes first, adapter-side second, which is
    /// exactly the serial engine's per-phase emission order (outboxes
    /// not involved in the section just finished are empty no-ops).
    fn apply_outbox_metrics(&mut self, outboxes: &mut [ShardOutbox]) {
        for ob in outboxes.iter_mut() {
            self.metrics.apply_scratch(&mut ob.metrics);
        }
    }

    /// One cycle on the worker pool. Phase structure, ordering and
    /// results are identical to [`Self::tick`] with `fast` semantics;
    /// the cross-component phases (releases, node deliveries, BECNs,
    /// traffic generation, gauges) stay serial, the per-component
    /// phases fan out over the shards, and every shard effect is merged
    /// back in canonical order (DESIGN.md §9).
    fn tick_parallel(
        &mut self,
        pool: &Pool,
        plan: &ShardPlan,
        outboxes: &mut [ShardOutbox],
        p5_ran: &mut [bool],
    ) {
        let now = self.now;
        let sparse = self.sparse_on;

        // Wake parked nodes (see `tick_sparse`).
        if sparse {
            while let Some(&Reverse((at, n))) = self.node_wake.peek() {
                if at > now {
                    break;
                }
                self.node_wake.pop();
                self.act_nodes.insert(n);
            }
            #[cfg(debug_assertions)]
            self.assert_sparse_invariants(now);
        }

        // Phase 0 + 1 + 2 (serial): fault events, RAM releases, credit
        // absorption.
        if self.faults.is_some() {
            self.apply_fault_events(now);
        }
        self.drain_releases(now);
        if sparse {
            self.act_links.sort();
            for i in 0..self.act_links.len() {
                let li = self.act_links.member(i) as usize;
                self.links[li].poll_credits(now);
            }
        } else {
            for l in &mut self.links {
                l.poll_credits(now);
            }
        }

        // Phase 3a (parallel): drain switch-bound links into their
        // receiving switches.
        let ctx = self.make_ctx(now, plan, outboxes, p5_ran);
        pool.run_step(&[PhaseKind::Deliver], &ctx);
        // Switches the shards delivered into join the active set (the
        // serial engine inserts them inline in phase 3).
        if sparse {
            for ob in outboxes[..plan.shards].iter_mut() {
                for s in ob.activated.drain(..) {
                    self.act_sw.insert(s);
                }
            }
        }
        if let Some(frt) = self.faults.as_mut() {
            for ob in outboxes[..plan.shards].iter_mut() {
                frt.packets_purged += ob.purged_data;
                frt.ctrl_purged += ob.purged_ctrl;
                ob.purged_data = 0;
                ob.purged_ctrl = 0;
            }
        }
        // Sampled switch arrivals recorded by the shard workers replay
        // into the trace log in shard order. A packet makes at most one
        // hop per cycle, so each trace's hop list still accumulates in
        // cycle order — identical to the serial engine's.
        if let Some(tr) = self.trace.as_mut() {
            for ob in outboxes[..plan.shards].iter_mut() {
                for (id, sw, at) in ob.trace_hops.drain(..) {
                    tr.switch_hop(id, sw, at);
                }
            }
        }

        // Phase 3b (serial): node-bound deliveries — these touch the
        // global delivery metrics, the delivered counter, and the BECN
        // generation sequence, all of which must accumulate in link
        // order (the active-link list is sorted above).
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        let n_links_act = if sparse {
            self.act_links.len()
        } else {
            self.links.len()
        };
        for i in 0..n_links_act {
            let li = if sparse {
                self.act_links.member(i) as usize
            } else {
                i
            };
            let LinkDst::NodeRecv(n) = self.link_dst[li] else {
                continue;
            };
            if !self.links[li].has_delivery(now) {
                continue;
            }
            deliveries.clear();
            self.links[li].deliver_into(now, &mut deliveries);
            for d in deliveries.drain(..) {
                self.deliver_to_node(n, li, d);
            }
        }
        self.delivery_scratch = deliveries;

        // Sparse phase-4 prep: derive ctrl consumers from the active
        // links and conservatively activate them (see `tick_sparse`);
        // the member lists the workers slice must be sorted.
        if sparse {
            self.derive_ctrl_sets(now);
            for i in 0..self.ctrl_sw.len() {
                let s = self.ctrl_sw.member(i);
                self.act_sw.insert(s);
            }
            for i in 0..self.ctrl_nodes.len() {
                let n = self.ctrl_nodes.member(i);
                self.act_nodes.insert(n);
            }
            self.act_sw.sort();
        }

        // Phases 4 + 5a + 5b/6 (parallel, chained): control polling,
        // isolation, congestion-state + arbitration run as one step
        // chain — barriers between them (the link-ownership sets
        // differ), but no coordinator work, so the merge happens once.
        // Workers drop a scratch mark at each section end; replaying
        // segment-major/shard-minor below reproduces the serial emission
        // order exactly: all switch ctrl ops, all adapter ctrl ops, all
        // isolation ops, all arbitration ops.
        let ctx = self.make_ctx(now, plan, outboxes, p5_ran);
        pool.run_step(&[PhaseKind::Ctrl, PhaseKind::Iso, PhaseKind::CstArb], &ctx);
        let (switch_obs, adapter_obs) = outboxes.split_at_mut(plan.shards);
        for seg in 0..3 {
            for ob in switch_obs.iter() {
                self.metrics
                    .apply_scratch_range(&ob.metrics, ob.metrics.segment(seg));
            }
            if seg == 0 {
                // Adapter-side outboxes hold only ctrl ops at this
                // point; the serial engine emits them right after the
                // switch ctrl ops.
                for ob in adapter_obs.iter_mut() {
                    self.metrics
                        .apply_scratch_range(&ob.metrics, 0..ob.metrics.len());
                    ob.metrics.clear();
                }
            }
        }
        for ob in switch_obs.iter_mut() {
            ob.metrics.clear();
        }
        // RAM releases merge into the calendar queue in (shard, switch)
        // order == switch order, the serial push order.
        for ob in switch_obs.iter_mut() {
            for (sw, r) in ob.releases.drain(..) {
                self.release_q.push(
                    r.at,
                    Release::SwitchPort {
                        sw,
                        port: r.port as u16,
                        flits: r.flits,
                        dst: r.dst.0,
                    },
                );
            }
        }
        // Active switches hand over the links they sent on and carry
        // themselves while non-quiescent (see `tick_sparse` phase 6).
        if sparse {
            for i in 0..self.act_sw.len() {
                let si = self.act_sw.member(i) as usize;
                self.switches[si].drain_touched_links(&mut self.act_links);
                if !self.switches[si].is_quiescent() {
                    self.act_sw_next.insert(si as u32);
                }
            }
        }

        // Phase 7 (serial): BECN arrivals.
        self.drain_becns(now);

        // Phase 8a (serial): traffic generation draws seeded randomness
        // and allocates global packet ids — strictly node order. Running
        // every generator before any adapter tick is equivalent to the
        // serial interleave: a generator only touches its own adapter
        // (pre-tick state in both engines) and the global id counters,
        // which no adapter tick reads.
        if sparse {
            self.act_nodes.sort();
            for i in 0..self.act_nodes.len() {
                let n = self.act_nodes.member(i) as usize;
                if self.gens[n].any_active(now) {
                    self.gen_node(n, now);
                }
            }
        } else {
            for n in 0..self.adapters.len() {
                if self.gens[n].any_active(now) {
                    self.gen_node(n, now);
                }
            }
        }

        // Phase 8b (parallel): adapter arbitration and injection.
        let ctx = self.make_ctx(now, plan, outboxes, p5_ran);
        pool.run_step(&[PhaseKind::AdapterTick], &ctx);
        self.apply_outbox_metrics(outboxes);
        for ob in outboxes[plan.shards..].iter_mut() {
            for (node, rel) in ob.adapter_releases.drain(..) {
                self.release_q.push(
                    rel.at,
                    Release::Node {
                        node,
                        flits: rel.flits,
                    },
                );
            }
        }

        // Node carries / parking and work-list swap (see `tick_sparse`
        // phase 8 + advance). Injection links of every ticked-or-member
        // node are conservatively activated; idle ones retire in the
        // retain below.
        if sparse {
            let n_nodes_act = self.act_nodes.len();
            for i in 0..n_nodes_act {
                let n = self.act_nodes.member(i) as usize;
                self.act_links.insert(self.inject_link[n].0);
                // Same parking rule as `tick_sparse` phase 8: only an
                // adapter with work or a generator with a banked packet
                // keeps the node on the list; emission-idle generators
                // park at a conservative wake and replay on wake-up.
                match self.gens[n].next_park_wake(now) {
                    None => {
                        self.act_nodes_next.insert(n as u32);
                    }
                    Some(at) => {
                        if !self.adapters[n].is_quiet() {
                            self.act_nodes_next.insert(n as u32);
                        } else {
                            let dl = self.adapters[n].next_timer_deadline();
                            if dl != Cycle::MAX {
                                self.node_wake.push(Reverse((dl, n as u32)));
                            }
                            if at != Cycle::MAX {
                                self.node_wake.push(Reverse((at, n as u32)));
                            }
                        }
                    }
                }
            }
            self.act_stats
                .record(self.act_sw.len(), n_nodes_act, n_links_act);
        }

        self.sample_gauges(now);

        if sparse {
            std::mem::swap(&mut self.act_sw, &mut self.act_sw_next);
            self.act_sw_next.clear();
            std::mem::swap(&mut self.act_nodes, &mut self.act_nodes_next);
            self.act_nodes_next.clear();
            let links = &self.links;
            self.act_links.retain(|li| !links[li as usize].is_idle());
            self.now = self.sparse_jump_target(now);
        } else {
            self.now = self.quiet_jump_target(now);
        }
    }

    /// Run `cycles` more cycles (tests drive the simulator piecewise).
    /// The clock lands exactly on `now + cycles` regardless of any
    /// quiet-cycle fast-forward: the jump horizon is temporarily capped
    /// so a jump can never overshoot the caller's target.
    pub fn run_cycles(&mut self, cycles: Cycle) {
        let target = self.now.saturating_add(cycles);
        let saved_end = self.end;
        self.end = self.end.min(target);
        while self.now < target {
            self.tick();
        }
        self.end = saved_end;
    }

    /// Freeze into a report without necessarily having reached the end.
    pub fn finish(self) -> SimReport {
        let labels: BTreeMap<FlowId, String> = self
            .pattern
            .flows
            .iter()
            .map(|f| (f.id, f.label.clone()))
            .chain(self.pattern.sized.iter().map(|f| (f.id, f.label.clone())))
            .collect();
        // Reception capacity: Σ node-link bandwidths, in bytes/ns.
        let capacity: f64 = self
            .topo
            .node_ids()
            .map(|n| {
                let (_, _, p) = self.topo.node_attachment(n);
                self.cfg
                    .units
                    .flits_per_cycle_to_bandwidth(p.bw_flits_per_cycle)
                    / 1e9
            })
            .sum();
        let simulated_ns = self.cfg.units.cycles_to_ns(self.now);
        let mut m = self.metrics;
        m.count("injected_packets", self.injected);
        m.count("delivered_packets_total", self.delivered);
        if let Some(mut frt) = self.faults {
            // Close the availability windows still open at the end of
            // the run.
            for s in frt.unreachable_since.iter_mut() {
                if let Some(t0) = s.take() {
                    frt.unreachable_cycles += self.now - t0;
                }
            }
            if let Some(t0) = frt.stale_since.take() {
                frt.stale_cycles += self.now - t0;
            }
            let u = &self.cfg.units;
            m.set_faults(FaultSummary {
                events_applied: frt.events_applied,
                events_skipped: frt.events_skipped,
                packets_lost_wire: frt.loss.data_packets,
                flits_lost_wire: frt.loss.data_flits,
                packets_purged: frt.packets_purged,
                packets_refused: frt.packets_refused,
                ctrl_lost: frt.loss.ctrl_packets + frt.loss.ctrl_events + frt.ctrl_purged,
                credits_lost: frt.loss.credit_flits,
                node_unreachable_ns: u.cycles_to_ns(frt.unreachable_cycles),
                stale_route_ns: u.cycles_to_ns(frt.stale_cycles),
                reroutes: frt.reroutes,
                first_fault_ns: frt.first_fault.map(|c| u.cycles_to_ns(c)).unwrap_or(0.0),
                last_recovery_ns: u.cycles_to_ns(frt.last_recovery),
            });
        }
        m.finish(
            format!("{}/{}", self.mech.name(), self.pattern.name),
            simulated_ns,
            capacity,
            &labels,
        )
    }

    /// Immutable access to an adapter (tests).
    pub fn adapter(&self, n: NodeId) -> &Adapter {
        &self.adapters[n.index()]
    }

    /// Immutable access to a switch (tests).
    pub fn switch(&self, s: SwitchId) -> &Switch {
        &self.switches[s.index()]
    }

    /// The packet traces collected so far (empty unless
    /// [`SimConfig::trace_sample_every`] was set).
    pub fn traces(&self) -> Vec<&crate::trace::PacketTrace> {
        self.trace.as_ref().map(|t| t.traces()).unwrap_or_default()
    }

    /// Debug dump of every switch's port state.
    pub fn debug_state(&self) -> String {
        self.switches
            .iter()
            .map(|s| s.debug_state(&self.links))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfit_topology::config1_topology;
    use ccfit_traffic::{FlowSpec, TrafficPattern};

    fn tiny_pattern() -> TrafficPattern {
        TrafficPattern::new(
            "tiny",
            vec![FlowSpec::hotspot(0, NodeId(0), NodeId(3), 0.0, None)],
        )
    }

    /// Source lint: the sparse tick (between the SPARSE-REGION markers)
    /// must never fall back to whole-component-array iteration — that is
    /// exactly the O(network-size) cost the scheduler exists to remove,
    /// and an accidental dense loop would pass every byte-identity test
    /// while silently reverting the perf win.
    #[test]
    fn sparse_region_has_no_dense_iteration() {
        let src = include_str!("simulator.rs");
        let begin = src
            .find("// SPARSE-REGION-BEGIN")
            .expect("sparse region begin marker");
        let end = src[begin..]
            .find("// SPARSE-REGION-END")
            .map(|i| begin + i)
            .expect("sparse region end marker");
        let region = &src[begin..end];
        for banned in [
            "for l in &mut self.links",
            "for l in &self.links",
            "for sw in &mut self.switches",
            "for sw in &self.switches",
            "for a in &mut self.adapters",
            "for a in &self.adapters",
            "0..self.links.len()",
            "0..self.switches.len()",
            "0..self.adapters.len()",
            "0..self.gens.len()",
        ] {
            assert!(
                !region.contains(banned),
                "dense iteration {banned:?} inside the sparse tick region"
            );
        }
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let sim = SimBuilder::new(config1_topology())
            .traffic(tiny_pattern())
            .duration_ns(51_200.0)
            .seed(9)
            .build();
        assert_eq!(sim.mechanism().name(), "CCFIT", "CCFIT is the default");
        assert_eq!(sim.end_cycle(), 2000, "51.2 us at 25.6 ns/cycle");
        assert_eq!(sim.now(), 0);
    }

    #[test]
    #[should_panic(expected = "traffic pattern is required")]
    fn builder_requires_traffic() {
        let _ = SimBuilder::new(config1_topology()).build();
    }

    #[test]
    #[should_panic(expected = "mechanism parameters are invalid")]
    fn builder_validates_mechanism() {
        let mut iso = crate::params::IsolationParams::default();
        iso.num_cfqs = 0;
        let _ = SimBuilder::new(config1_topology())
            .mechanism(Mechanism::Fbicm(iso))
            .traffic(tiny_pattern())
            .build();
    }

    #[test]
    fn run_cycles_then_finish_matches_run() {
        let build = || {
            SimBuilder::new(config1_topology())
                .traffic(tiny_pattern())
                .duration_ns(100_000.0)
                .seed(4)
                .build()
        };
        let a = build().run();
        let mut sim = build();
        sim.run_cycles(sim.end_cycle());
        let b = sim.finish();
        assert_eq!(a, b);
    }

    #[test]
    fn counters_start_clean_and_accumulate() {
        let mut sim = SimBuilder::new(config1_topology())
            .traffic(tiny_pattern())
            .duration_ns(200_000.0)
            .seed(5)
            .build();
        assert_eq!(sim.injected(), 0);
        assert_eq!(sim.delivered(), 0);
        assert_eq!(sim.resident_packets(), 0);
        sim.run_cycles(sim.end_cycle());
        assert!(sim.injected() > 100);
        assert!(sim.delivered() > 100);
    }

    #[test]
    fn debug_state_mentions_every_switch() {
        let sim = SimBuilder::new(config1_topology())
            .traffic(tiny_pattern())
            .duration_ns(10_000.0)
            .build();
        let dump = sim.debug_state();
        assert!(dump.contains("SwitchId0"));
        assert!(dump.contains("SwitchId1"));
    }

    /// First switch-to-switch cable of the topology (fault targets).
    fn first_trunk_cable(topo: &Topology) -> (SwitchId, PortId) {
        for s in topo.switch_ids() {
            for p in topo.switch(s).connected() {
                if let Some((Endpoint::Switch(..), _)) = topo.peer(s, p) {
                    return (s, p);
                }
            }
        }
        panic!("topology has no trunk cable");
    }

    fn tree_sim(schedule: FaultSchedule, mech: Mechanism, slow: bool) -> Simulator {
        use ccfit_topology::KAryNTree;
        let tree = KAryNTree::new(2, 3);
        let topo = tree.build(LinkParams::default());
        let mut cfg = SimConfig {
            duration_ns: 400_000.0,
            metrics_bin_ns: 20_000.0,
            ..SimConfig::default()
        };
        cfg.force_slow_path = slow;
        SimBuilder::new(topo)
            .routing(tree.det_routing())
            .mechanism(mech)
            .traffic(TrafficPattern::new(
                "faulty",
                vec![
                    FlowSpec::hotspot(0, NodeId(0), NodeId(7), 0.0, None),
                    FlowSpec::hotspot(1, NodeId(3), NodeId(5), 0.0, None),
                ],
            ))
            .config(cfg)
            .seed(11)
            .faults(schedule)
            .build()
    }

    #[test]
    fn fail_stop_trunk_failure_reroutes_and_conserves() {
        use ccfit_topology::KAryNTree;
        let tree = KAryNTree::new(2, 3);
        let topo = tree.build(LinkParams::default());
        let (s, p) = first_trunk_cable(&topo);
        let mut sched = FaultSchedule::new();
        sched.link_down(2000, s, p, FaultPolicy::FailStop);
        let mut sim = tree_sim(sched, Mechanism::ccfit(), false);
        sim.run_cycles(5000);
        let delivered_early = sim.delivered();
        sim.run_cycles(sim.end_cycle() - sim.now());
        let injected = sim.injected();
        let delivered = sim.delivered();
        let resident = sim.resident_packets() as u64;
        assert!(
            delivered > delivered_early,
            "delivery must continue after the re-route"
        );
        let report = sim.finish();
        let f = report.faults.as_ref().expect("fault summary attached");
        assert_eq!(f.events_applied, 1);
        assert_eq!(f.events_skipped, 0);
        assert_eq!(f.reroutes, 1);
        assert!(f.stale_route_ns > 0.0, "re-route latency was modelled");
        assert_eq!(
            injected,
            delivered + resident + f.packets_lost(),
            "every injected packet is delivered, buffered, or accounted lost"
        );
    }

    #[test]
    fn switch_down_orphans_nodes_then_recovers() {
        use ccfit_topology::KAryNTree;
        let tree = KAryNTree::new(2, 3);
        let topo = tree.build(LinkParams::default());
        let leaf = topo.node_attachment(NodeId(7)).0;
        let mut sched = FaultSchedule::new();
        sched.switch_down(2000, leaf, FaultPolicy::Graceful);
        sched.switch_up(8000, leaf);
        let mut sim = tree_sim(sched, Mechanism::ccfit(), false);
        sim.run_cycles(4000);
        assert!(
            sim.unreachable_nodes().contains(&NodeId(7)),
            "node 7 is orphaned while its switch is down"
        );
        sim.run_cycles(sim.end_cycle() - sim.now());
        assert!(sim.unreachable_nodes().is_empty(), "recovery completed");
        let injected = sim.injected();
        let delivered = sim.delivered();
        let resident = sim.resident_packets() as u64;
        let report = sim.finish();
        let f = report.faults.as_ref().expect("fault summary attached");
        assert_eq!(f.events_applied, 2);
        assert_eq!(f.reroutes, 2, "one re-route per topology change");
        assert!(f.node_unreachable_ns > 0.0);
        assert!(
            f.packets_refused > 0,
            "sources refuse injection toward the orphaned node"
        );
        assert_eq!(injected, delivered + resident + f.packets_lost());
        assert!(
            report.gauges.contains_key("unreachable_nodes"),
            "availability gauge sampled"
        );
    }

    #[test]
    fn degrade_applies_and_bogus_link_up_is_skipped() {
        use ccfit_topology::KAryNTree;
        let tree = KAryNTree::new(2, 3);
        let topo = tree.build(LinkParams::default());
        let (s, p) = first_trunk_cable(&topo);
        let mut sched = FaultSchedule::new();
        sched
            .degrade(500, s, p, 4, 10)
            .restore_rate(3000, s, p)
            .link_up(4000, s, p); // never went down -> skipped
        let report = tree_sim(sched, Mechanism::ccfit(), false).run();
        let f = report.faults.as_ref().expect("fault summary attached");
        assert_eq!(f.events_applied, 2);
        assert_eq!(f.events_skipped, 1);
        assert_eq!(f.reroutes, 0, "degradation does not change topology");
        assert_eq!(f.packets_lost(), 0, "degradation loses nothing");
        assert!(report.delivered_packets > 0);
    }

    #[test]
    fn fault_schedule_is_deterministic_across_fast_and_slow_paths() {
        use ccfit_topology::KAryNTree;
        let tree = KAryNTree::new(2, 3);
        let topo = tree.build(LinkParams::default());
        let (s, p) = first_trunk_cable(&topo);
        let make = || {
            let mut sched = FaultSchedule::new();
            sched
                .link_down(1500, s, p, FaultPolicy::FailStop)
                .link_up(6000, s, p);
            sched
        };
        let fast = tree_sim(make(), Mechanism::ccfit(), false).run();
        let slow = tree_sim(make(), Mechanism::ccfit(), true).run();
        assert_eq!(fast, slow, "fault handling must not break determinism");
    }

    #[test]
    fn voqnet_survives_link_failure_and_repair() {
        use ccfit_topology::KAryNTree;
        let tree = KAryNTree::new(2, 3);
        let topo = tree.build(LinkParams::default());
        let (s, p) = first_trunk_cable(&topo);
        let mut sched = FaultSchedule::new();
        sched
            .link_down(2000, s, p, FaultPolicy::FailStop)
            .link_up(7000, s, p);
        let mut sim = tree_sim(sched, Mechanism::voqnet(), false);
        sim.run_cycles(sim.end_cycle());
        let injected = sim.injected();
        let delivered = sim.delivered();
        let resident = sim.resident_packets() as u64;
        let report = sim.finish();
        let f = report.faults.as_ref().expect("fault summary attached");
        assert_eq!(f.events_applied, 2);
        assert_eq!(injected, delivered + resident + f.packets_lost());
    }

    #[test]
    fn report_name_combines_mechanism_and_pattern() {
        let report = SimBuilder::new(config1_topology())
            .mechanism(Mechanism::fbicm())
            .traffic(tiny_pattern())
            .duration_ns(50_000.0)
            .build()
            .run();
        assert_eq!(report.name, "FBICM/tiny");
        // Capacity: 7 nodes at 2.5 GB/s = 17.5 bytes/ns.
        assert!((report.reception_capacity_bytes_per_ns - 17.5).abs() < 1e-9);
    }
}
