//! The network simulator: assembles switches, adapters and links from a
//! topology + mechanism + traffic pattern, and runs the deterministic
//! per-cycle phase loop (DESIGN.md §6).

use crate::endnode::{Adapter, AdapterCfg, AdapterThrottle};
use crate::parallel::{
    decide, network_weight, EngineDecision, FaultView, ParallelConfig, ParallelFallback, PhaseKind,
    Pool, ShardOutbox, ShardPlan, TickCtx,
};
use crate::params::{CongestionControl, DetectionPolicy, Mechanism, QueueingScheme};
use crate::switch::{
    MarkingSource, PurgeStats, Switch, SwitchCcMode, SwitchCfg, SwitchThrottle, VoqNetCredits,
};
use ccfit_cc::{DcqcnCfg, HpccCfg};
use ccfit_engine::ids::{FlowId, LinkId, NodeId, PacketId, PortId, SwitchId};
use ccfit_engine::link::{Link, LinkConfig, WireLoss};
use ccfit_engine::packet::Packet;
use ccfit_engine::queue::QueuedPacket;
use ccfit_engine::rng::SeedSplitter;
use ccfit_engine::units::{Cycle, UnitModel};
use ccfit_engine::CalendarQueue;
use ccfit_faults::{FaultConfig, FaultPolicy, FaultSchedule, NetworkEvent};
use ccfit_metrics::{
    CcEvent, CcEventKind, EventClass, EventConfig, FaultKind, FaultSummary, MetricsCollector,
    MetricsSink, SimReport,
};
use ccfit_topology::{Endpoint, LinkParams, RoutingTable, Topology};
use ccfit_traffic::{GenPacket, NodeGenerator, TrafficPattern};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// How congestion notification packets travel back to the sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BecnTransport {
    /// The paper's model: BECNs are 1-flit packets injected by the
    /// destination with absolute priority, riding the normal data path
    /// (NFQs only) back to the source.
    InBand,
    /// Modelling shortcut: BECNs arrive after `hops × (delay + 1)`
    /// cycles without touching the data path. Useful to isolate the
    /// feedback loop from data-path effects and to validate that the
    /// in-band path behaves equivalently (see the integration tests).
    OutOfBand,
}

/// Global simulation parameters (defaults reproduce Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Unit model (flit size / cycle time).
    pub units: UnitModel,
    /// MTU in bytes (Table I: 2048).
    pub mtu_bytes: u32,
    /// Input-port memory in bytes (Table I: 64 KB). VOQnet overrides this
    /// with its per-destination reservation.
    pub port_ram_bytes: u32,
    /// Simulated time in nanoseconds.
    pub duration_ns: f64,
    /// Metrics bin width in nanoseconds.
    pub metrics_bin_ns: f64,
    /// Master seed.
    pub seed: u64,
    /// iSLIP iterations per cycle.
    pub islip_iterations: usize,
    /// AdVOQ admittance capacity in MTUs.
    pub advoq_cap_mtus: u32,
    /// IA NFQ gate in MTUs.
    pub nfq_gate_mtus: u32,
    /// NFQ→CFQ post-processing moves per port per cycle.
    pub move_budget: u32,
    /// Crossbar bandwidth in flits/cycle (Table I: 2 for Config #1,
    /// 1 for Configs #2/#3).
    pub crossbar_bw_flits_per_cycle: u32,
    /// BECN transport model.
    pub becn_transport: BecnTransport,
    /// Trace every Nth injected data packet (None = tracing off).
    pub trace_sample_every: Option<u64>,
    /// Disable the active-set scheduler and the quiet-cycle fast-forward,
    /// forcing the original exhaustive per-cycle iteration. Results are
    /// bit-identical either way (the determinism test enforces it); this
    /// exists as the baseline for the perf harness and as an escape hatch.
    pub force_slow_path: bool,
    /// Sharded parallel-tick configuration (DESIGN.md §9). With
    /// `threads > 1`, [`Simulator::run`] ticks the network on a worker
    /// pool; results are byte-identical to the serial engine for every
    /// thread count (packet traces and CC event logs included). Ignored
    /// (serial engine) when `force_slow_path` is set.
    pub parallel: ParallelConfig,
    /// Structured congestion-control event recording (DESIGN.md §10).
    /// `None` (the default) compiles the emission sites down to a single
    /// predicted-false branch each; `Some` captures the selected event
    /// classes into the report's [`ccfit_metrics::EventLogReport`].
    pub events: Option<EventConfig>,
    /// Sample per-port telemetry gauges (input-RAM occupancy and output
    /// link credits per switch port) alongside the network-wide gauges.
    /// Off by default: it adds one series per port to the report.
    pub port_telemetry: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            units: UnitModel::default(),
            mtu_bytes: 2048,
            port_ram_bytes: 64 * 1024,
            duration_ns: 1e6,
            metrics_bin_ns: 100_000.0,
            seed: 0xCCF1_7000,
            islip_iterations: 2,
            advoq_cap_mtus: 8,
            nfq_gate_mtus: 4,
            move_budget: 4,
            crossbar_bw_flits_per_cycle: 1,
            becn_transport: BecnTransport::InBand,
            trace_sample_every: None,
            force_slow_path: false,
            parallel: ParallelConfig::default(),
            events: None,
            port_telemetry: false,
        }
    }
}

/// Where a directed link terminates.
#[derive(Debug, Clone, Copy)]
enum LinkDst {
    SwitchIn(SwitchId, PortId),
    NodeRecv(NodeId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Release {
    /// Free `flits` of switch `sw` input `port` RAM and return credits on
    /// its in-link (plus VOQnet per-destination credits for `dst`).
    SwitchPort {
        sw: u32,
        port: u16,
        flits: u32,
        dst: u32,
    },
    /// Free `flits` of node `node`'s adapter output RAM.
    Node { node: u32, flits: u32 },
}

/// A trunk cable currently down, recorded from the end the triggering
/// event named so it can be reinstalled exactly as it was.
#[derive(Debug, Clone, Copy)]
struct DownCable {
    s: SwitchId,
    p: PortId,
    os: SwitchId,
    op: PortId,
    params: LinkParams,
    /// Downed as a side effect of a whole-switch failure; such cables
    /// are restored by `SwitchUp`, while individually failed cables
    /// need an explicit `LinkUp`.
    by_switch: bool,
}

/// Live state of the fault-injection subsystem (DESIGN.md §8): the
/// schedule cursor, which hardware is currently down, the pending
/// re-route deadline, the reachability snapshot the *current* routing
/// tables were computed against, and all loss/availability accounting.
///
/// The reachability snapshot (`comp`/`node_comp`) is deliberately only
/// refreshed when a re-route completes, never at event time: drop and
/// refusal guards must agree with the routing tables actually in force,
/// otherwise a packet could be refused for a route that still works or,
/// worse, forwarded on a stale default route and misdelivered.
struct FaultRuntime {
    schedule: FaultSchedule,
    cfg: FaultConfig,
    /// Index of the next unapplied schedule entry.
    next: usize,
    down_cables: Vec<DownCable>,
    down_switches: Vec<SwitchId>,
    /// When the pending routing recomputation takes effect.
    routing_update_at: Option<Cycle>,
    /// Start of the current stale-routing window.
    stale_since: Option<Cycle>,
    /// Connected component of each switch under the routing in force
    /// (`u32::MAX` = switch was down at the last recomputation).
    comp: Vec<u32>,
    /// Component of each node's attachment switch (`u32::MAX` = the
    /// node is orphaned: its switch is down).
    node_comp: Vec<u32>,
    /// Per-node unreachability window start (`Some` while counted).
    unreachable_since: Vec<Option<Cycle>>,
    loss: WireLoss,
    packets_purged: u64,
    ctrl_purged: u64,
    packets_refused: u64,
    events_applied: u64,
    events_skipped: u64,
    reroutes: u64,
    unreachable_cycles: u64,
    stale_cycles: u64,
    first_fault: Option<Cycle>,
    last_recovery: Cycle,
    /// Scratch for adapter purges.
    purge_scratch: Vec<QueuedPacket>,
    /// Scratch for switch purges.
    switch_purge_scratch: Vec<(usize, QueuedPacket)>,
}

impl FaultRuntime {
    fn new(schedule: FaultSchedule, cfg: FaultConfig, topo: &Topology) -> Self {
        let (comp, node_comp) = compute_components(topo, &[]);
        Self {
            schedule,
            cfg,
            next: 0,
            down_cables: Vec::new(),
            down_switches: Vec::new(),
            routing_update_at: None,
            stale_since: None,
            comp,
            node_comp,
            unreachable_since: vec![None; topo.num_nodes()],
            loss: WireLoss::default(),
            packets_purged: 0,
            ctrl_purged: 0,
            packets_refused: 0,
            events_applied: 0,
            events_skipped: 0,
            reroutes: 0,
            unreachable_cycles: 0,
            stale_cycles: 0,
            first_fault: None,
            last_recovery: 0,
            purge_scratch: Vec::new(),
            switch_purge_scratch: Vec::new(),
        }
    }

    fn is_switch_down(&self, s: SwitchId) -> bool {
        self.down_switches.contains(&s)
    }

    /// Mark one event applied.
    fn applied(&mut self, now: Cycle) {
        self.events_applied += 1;
        if self.first_fault.is_none() {
            self.first_fault = Some(now);
        }
    }

    /// Arm (or re-arm) the routing recomputation: every topology change
    /// restarts the re-routing latency, and the stale window runs from
    /// the first unabsorbed change.
    fn schedule_reroute(&mut self, now: Cycle) {
        self.routing_update_at = Some(now + self.cfg.reroute_latency_cycles);
        if self.stale_since.is_none() {
            self.stale_since = Some(now);
        }
    }

    /// A packet arriving at switch `sw` cannot be delivered: the switch
    /// is down, or the destination is not in the switch's component
    /// under the routing in force (forwarding it would follow a stale
    /// or default route and could misdeliver).
    fn arrival_is_undeliverable(&self, sw: SwitchId, dst: NodeId) -> bool {
        if self.is_switch_down(sw) {
            return true;
        }
        let dc = self.node_comp[dst.index()];
        dc == u32::MAX || dc != self.comp[sw.index()]
    }

    /// Injection guard: `src` cannot currently reach `dst` under the
    /// routing in force.
    fn pair_unreachable(&self, src: usize, dst: NodeId) -> bool {
        let sc = self.node_comp[src];
        let dc = self.node_comp[dst.index()];
        sc == u32::MAX || dc == u32::MAX || sc != dc
    }

    fn note_purged(&mut self, data: bool) {
        if data {
            self.packets_purged += 1;
        } else {
            self.ctrl_purged += 1;
        }
    }

    fn absorb_purge(&mut self, stats: PurgeStats) {
        self.packets_purged += stats.data_packets;
        self.ctrl_purged += stats.ctrl_packets;
    }
}

/// Connected components of the switch graph with `down` switches
/// removed, plus each node's component (`u32::MAX` for switches/nodes
/// that are down or attached to a down switch). BFS in switch-index
/// order, so component numbering is deterministic.
fn compute_components(topo: &Topology, down: &[SwitchId]) -> (Vec<u32>, Vec<u32>) {
    let n = topo.num_switches();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut q: VecDeque<SwitchId> = VecDeque::new();
    for s0 in topo.switch_ids() {
        if comp[s0.index()] != u32::MAX || down.contains(&s0) {
            continue;
        }
        comp[s0.index()] = next;
        q.push_back(s0);
        while let Some(s) = q.pop_front() {
            let neighbors: Vec<SwitchId> = topo
                .switch(s)
                .connected()
                .filter_map(|p| match topo.peer(s, p) {
                    Some((Endpoint::Switch(t, _), _)) => Some(t),
                    _ => None,
                })
                .collect();
            for t in neighbors {
                if comp[t.index()] == u32::MAX && !down.contains(&t) {
                    comp[t.index()] = next;
                    q.push_back(t);
                }
            }
        }
        next += 1;
    }
    let node_comp = topo
        .node_ids()
        .map(|nid| comp[topo.node_attachment(nid).0.index()])
        .collect();
    (comp, node_comp)
}

/// Builder for a [`Simulator`].
#[derive(Debug, Clone)]
pub struct SimBuilder {
    topo: Topology,
    routing: Option<RoutingTable>,
    mech: Mechanism,
    pattern: Option<TrafficPattern>,
    cfg: SimConfig,
    faults: Option<FaultSchedule>,
    fault_cfg: FaultConfig,
}

impl SimBuilder {
    /// Start from a topology. Mechanism defaults to CCFIT; routing to
    /// deterministic shortest-path (use [`Self::routing`] to install DET
    /// fat-tree tables).
    pub fn new(topo: Topology) -> Self {
        Self {
            topo,
            routing: None,
            mech: Mechanism::ccfit(),
            pattern: None,
            cfg: SimConfig::default(),
            faults: None,
            fault_cfg: FaultConfig::default(),
        }
    }

    /// Select the congestion-control mechanism.
    pub fn mechanism(mut self, m: Mechanism) -> Self {
        self.mech = m;
        self
    }

    /// Install explicit routing tables.
    pub fn routing(mut self, r: RoutingTable) -> Self {
        self.routing = Some(r);
        self
    }

    /// Set the workload.
    pub fn traffic(mut self, p: TrafficPattern) -> Self {
        self.pattern = Some(p);
        self
    }

    /// Simulated duration in nanoseconds.
    pub fn duration_ns(mut self, ns: f64) -> Self {
        self.cfg.duration_ns = ns;
        self
    }

    /// Metrics bin width in nanoseconds.
    pub fn metrics_bin_ns(mut self, ns: f64) -> Self {
        self.cfg.metrics_bin_ns = ns;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Crossbar bandwidth in flits per cycle (Table I: Config #1 uses 2,
    /// i.e. a 5 GB/s crossbar; the fat-tree configs use 1).
    pub fn crossbar_bw(mut self, flits_per_cycle: u32) -> Self {
        self.cfg.crossbar_bw_flits_per_cycle = flits_per_cycle;
        self
    }

    /// Tick the network on `n` worker threads (byte-identical to the
    /// serial engine; see [`SimConfig::parallel`]). The engine may
    /// degrade the request when parallelism cannot pay — see
    /// [`Simulator::engine_decision`] and [`Self::force_parallel`].
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.parallel.threads = n.max(1);
        self
    }

    /// Simulated cycles per worker-pool dispatch (`0` = auto). Purely a
    /// scheduling knob; results are byte-identical for every value.
    pub fn batch_cycles(mut self, k: usize) -> Self {
        self.cfg.parallel.batch_cycles = k;
        self
    }

    /// Disable the automatic serial fallback: run exactly the requested
    /// thread count even on hosts where that is known to be slower
    /// (single CPU, tiny shards). The determinism suite uses this to
    /// exercise the sharded engine on 1-CPU CI runners.
    pub fn force_parallel(mut self) -> Self {
        self.cfg.parallel.fallback = ParallelFallback::Never;
        self
    }

    /// Record structured CC events with the given configuration
    /// (classes, sampling stride, ring capacity). See
    /// [`SimConfig::events`].
    pub fn events(mut self, cfg: EventConfig) -> Self {
        self.cfg.events = Some(cfg);
        self
    }

    /// Restrict event recording to the given classes (enables recording
    /// with default sampling/capacity if not configured yet).
    pub fn event_classes(mut self, classes: EventClass) -> Self {
        self.cfg
            .events
            .get_or_insert_with(EventConfig::default)
            .classes = classes;
        self
    }

    /// Keep every `n`-th event that passes the class mask (1 = all).
    /// Enables recording if not configured yet.
    pub fn event_sample_every(mut self, n: u64) -> Self {
        self.cfg
            .events
            .get_or_insert_with(EventConfig::default)
            .sample_every = n.max(1);
        self
    }

    /// Bound the event ring buffer to `cap` events; overflow drops the
    /// oldest and is tallied in `EventLogReport::dropped_cap`. Enables
    /// recording if not configured yet.
    pub fn event_buffer_cap(mut self, cap: usize) -> Self {
        self.cfg.events.get_or_insert_with(EventConfig::default).cap = cap;
        self
    }

    /// Sample per-port occupancy/credit gauges (see
    /// [`SimConfig::port_telemetry`]).
    pub fn port_telemetry(mut self, on: bool) -> Self {
        self.cfg.port_telemetry = on;
        self
    }

    /// Trace every `n`-th injected data packet (see
    /// [`SimConfig::trace_sample_every`]).
    pub fn trace_sample_every(mut self, n: u64) -> Self {
        self.cfg.trace_sample_every = Some(n.max(1));
        self
    }

    /// Override every [`SimConfig`] field at once.
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Install a dynamic network-event schedule (mid-run link/switch
    /// failures, recoveries, degradations). An empty schedule is the
    /// same as not calling this.
    pub fn faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Tune the fault subsystem (re-routing latency).
    pub fn fault_config(mut self, cfg: FaultConfig) -> Self {
        self.fault_cfg = cfg;
        self
    }

    /// Assemble the simulator.
    ///
    /// # Panics
    /// Panics on invalid mechanism parameters, a missing traffic pattern,
    /// or a pattern referencing nodes outside the topology.
    pub fn build(self) -> Simulator {
        let pattern = self.pattern.expect("a traffic pattern is required");
        self.mech
            .validate()
            .expect("mechanism parameters are invalid");
        let routing = self
            .routing
            .unwrap_or_else(|| RoutingTable::shortest_path(&self.topo));
        let faults = self.faults.filter(|s| !s.is_empty()).map(|s| {
            s.validate(&self.topo)
                .expect("fault schedule references hardware the topology does not have");
            (s, self.fault_cfg)
        });
        Simulator::assemble(self.topo, routing, self.mech, pattern, self.cfg, faults)
    }
}

/// Flat-array memo of BECN transit delays for small networks; above
/// [`BECN_CACHE_FLAT_MAX`] nodes the dense `from × to` table is replaced
/// by a hash map — at 4096 nodes the table would burn 128 MB to memoize
/// a handful of hot (destination, source) pairs. Lookups are keyed only
/// (never iterated), so the map cannot leak iteration order into
/// results.
const BECN_CACHE_FLAT_MAX: usize = 1024;

#[derive(Debug)]
enum BecnDelayCache {
    Flat(Vec<Cycle>),
    Sparse(std::collections::HashMap<(u32, u32), Cycle>),
}

impl BecnDelayCache {
    fn new(num_nodes: usize) -> Self {
        if num_nodes <= BECN_CACHE_FLAT_MAX {
            BecnDelayCache::Flat(vec![Cycle::MAX; num_nodes * num_nodes])
        } else {
            BecnDelayCache::Sparse(std::collections::HashMap::new())
        }
    }

    fn get(&self, from: NodeId, to: NodeId, num_nodes: usize) -> Option<Cycle> {
        match self {
            BecnDelayCache::Flat(v) => {
                let d = v[from.index() * num_nodes + to.index()];
                (d != Cycle::MAX).then_some(d)
            }
            BecnDelayCache::Sparse(m) => m.get(&(from.0, to.0)).copied(),
        }
    }

    fn insert(&mut self, from: NodeId, to: NodeId, num_nodes: usize, d: Cycle) {
        match self {
            BecnDelayCache::Flat(v) => v[from.index() * num_nodes + to.index()] = d,
            BecnDelayCache::Sparse(m) => {
                m.insert((from.0, to.0), d);
            }
        }
    }

    /// Drop every memoized delay (paths changed after a re-route).
    fn invalidate(&mut self) {
        match self {
            BecnDelayCache::Flat(v) => v.fill(Cycle::MAX),
            BecnDelayCache::Sparse(m) => m.clear(),
        }
    }
}

/// One-line stderr advisory, emitted once per process, when the
/// auto-fallback overrules or clamps a parallel request — the visible
/// fix for the silent 0.008×-speedup trap. Suppressed for
/// [`ParallelFallback::Never`] (the caller opted out) and for explicit
/// serial runs.
fn warn_fallback_once(d: &EngineDecision) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    if d.fallback.is_some() {
        ONCE.call_once(|| eprintln!("ccfit: {}", d.summary()));
    }
}

/// The assembled network, ready to run.
pub struct Simulator {
    cfg: SimConfig,
    topo: Topology,
    routing: RoutingTable,
    mech: Mechanism,
    pattern: TrafficPattern,
    switches: Vec<Switch>,
    adapters: Vec<Adapter>,
    gens: Vec<NodeGenerator>,
    links: Vec<Link>,
    link_dst: Vec<LinkDst>,
    voqnet: Option<VoqNetCredits>,
    metrics: MetricsCollector,
    /// Scheduled RAM releases / credit returns. The calendar queue pops
    /// in ascending-cycle FIFO order, which is exactly the `(at, seq)`
    /// heap order it replaced: pushes within a cycle happen in component
    /// order, so FIFO == seq order.
    release_q: CalendarQueue<Release>,
    becn_q: BinaryHeap<Reverse<(Cycle, u64, u32, u32)>>, // (at, seq, congested_dst, throttle_node)
    /// BECN-delay memo (flat for small networks, sparse for large ones).
    becn_delay_cache: BecnDelayCache,
    num_nodes: usize,
    /// Per-tick delivery scratch (no state across ticks).
    delivery_scratch: Vec<ccfit_engine::link::Delivery>,
    /// Per-tick release scratch (no state across ticks).
    release_scratch: Vec<crate::switch::PendingRelease>,
    seq: u64,
    now: Cycle,
    end: Cycle,
    next_packet_id: u64,
    injected: u64,
    delivered: u64,
    gauge_every: Cycle,
    trace: Option<crate::trace::TraceLog>,
    /// Injection link of each node (node → switch).
    inject_link: Vec<LinkId>,
    /// Reception link of each node (switch → node).
    recv_link: Vec<LinkId>,
    /// Credit grant of a node's ideal reception sink.
    node_sink_credits: u32,
    /// Fault-injection runtime (`None` for fault-free runs: the hot
    /// path then pays a single branch per tick).
    faults: Option<FaultRuntime>,
    /// Wire-byte accounting is active (modern CC only, so the paper
    /// mechanisms' counter sets — pinned by golden snapshots — never
    /// change).
    cc_wire: bool,
}

impl Simulator {
    fn assemble(
        topo: Topology,
        routing: RoutingTable,
        mech: Mechanism,
        pattern: TrafficPattern,
        cfg: SimConfig,
        faults: Option<(FaultSchedule, FaultConfig)>,
    ) -> Self {
        let units = cfg.units;
        let mtu_flits = units.bytes_to_flits(cfg.mtu_bytes);
        let ram_flits = units
            .bytes_to_flits_exact(cfg.port_ram_bytes)
            .expect("port RAM must be a whole number of flits");
        let num_nodes = topo.num_nodes();
        let num_switches = topo.num_switches();
        let seeds = SeedSplitter::new(cfg.seed);

        // ---- mechanism-derived static configs ----
        let per_dest_queue_flits = match mech {
            Mechanism::VoqNet { per_queue_flits } => per_queue_flits,
            _ => 0,
        };

        let switch_ram_flits = match mech.queueing() {
            QueueingScheme::PerDest => per_dest_queue_flits * num_nodes as u32,
            _ => ram_flits,
        };
        let thr_cfg = mech.throttle().map(|t| SwitchThrottle {
            marking_rate: t.marking_rate,
            packet_size_threshold_bytes: t.packet_size_threshold_bytes,
            high_flits: t.high_mtus * mtu_flits,
            low_flits: t.low_mtus * mtu_flits,
            entry_delay_cycles: units.ns_to_cycles(t.congestion_entry_delay_ns),
            starvation_window_cycles: units.ns_to_cycles(t.starvation_window_ns),
            source: if mech.isolation().is_some() {
                MarkingSource::RootCfq
            } else {
                MarkingSource::VoqOccupancy
            },
        });
        // Modern CC (DCQCN/HPCC): materialise the cycle-domain configs
        // once and derive the switch-side marking/telemetry mode from the
        // mechanism's detection policy. Paper mechanisms get `None`
        // everywhere, which keeps their tick behaviour untouched.
        let cycles_per_ns = 1.0 / units.cycle_ns;
        let dcqcn_cfg = mech
            .dcqcn_params()
            .map(|p| DcqcnCfg::materialise(p, cycles_per_ns));
        let hpcc_cfg = mech
            .hpcc_params()
            .map(|p| HpccCfg::materialise(p, cycles_per_ns));
        let switch_cc = match mech.detection() {
            DetectionPolicy::EcnQueue(p) => Some(SwitchCcMode::Ecn {
                kmin_flits: p.kmin_mtus * mtu_flits,
                kmax_flits: (p.kmax_mtus * mtu_flits).max(p.kmin_mtus * mtu_flits + 1),
                pmax: p.pmax,
            }),
            DetectionPolicy::IntWindow(_) => Some(SwitchCcMode::Int {
                window_cycles: hpcc_cfg
                    .as_ref()
                    .expect("IntWindow detection implies HPCC params")
                    .window_cycles,
            }),
            _ => None,
        };
        let switch_cfg = SwitchCfg {
            scheme: mech.queueing(),
            iso: mech.isolation().copied(),
            thr: thr_cfg,
            mtu_flits,
            ram_flits,
            per_dest_queue_flits,
            dbbm_queues: mech.dbbm_queues(),
            islip_iterations: cfg.islip_iterations,
            move_budget: cfg.move_budget,
            crossbar_bw_flits_per_cycle: cfg.crossbar_bw_flits_per_cycle,
            cc: switch_cc,
        };

        // ---- links ----
        // For each switch port we create this port's *outgoing* directed
        // link; incoming links are created by the peer's iteration (or by
        // the node loop for injection links).
        let mut links: Vec<Link> = Vec::new();
        let mut link_dst: Vec<LinkDst> = Vec::new();
        let mut out_link: Vec<Vec<Option<LinkId>>> = Vec::with_capacity(num_switches);
        let mut in_link: Vec<Vec<Option<LinkId>>> = Vec::with_capacity(num_switches);
        for s in topo.switch_ids() {
            let n_ports = topo.switch(s).num_ports();
            out_link.push(vec![None; n_ports]);
            in_link.push(vec![None; n_ports]);
        }
        let mut inject_link: Vec<Option<LinkId>> = vec![None; num_nodes];
        let mut recv_link: Vec<Option<LinkId>> = vec![None; num_nodes];
        let node_sink_credits = 4 * switch_ram_flits.max(1024);

        let push_link = |links: &mut Vec<Link>,
                         link_dst: &mut Vec<LinkDst>,
                         params: ccfit_topology::LinkParams,
                         dst: LinkDst,
                         credits: u32| {
            let id = LinkId(links.len() as u32);
            links.push(Link::new(
                LinkConfig {
                    bw_flits_per_cycle: params.bw_flits_per_cycle,
                    delay_cycles: params.delay_cycles,
                },
                credits,
            ));
            link_dst.push(dst);
            id
        };

        for s in topo.switch_ids() {
            for p in topo.switch(s).connected() {
                let (peer, params) = topo.peer(s, p).expect("connected");
                match peer {
                    Endpoint::Switch(t, q) => {
                        let id = push_link(
                            &mut links,
                            &mut link_dst,
                            params,
                            LinkDst::SwitchIn(t, q),
                            switch_ram_flits,
                        );
                        out_link[s.index()][p.index()] = Some(id);
                        in_link[t.index()][q.index()] = Some(id);
                    }
                    Endpoint::Node(n) => {
                        // switch -> node (reception)
                        let id = push_link(
                            &mut links,
                            &mut link_dst,
                            params,
                            LinkDst::NodeRecv(n),
                            node_sink_credits,
                        );
                        out_link[s.index()][p.index()] = Some(id);
                        recv_link[n.index()] = Some(id);
                        // node -> switch (injection)
                        let id = push_link(
                            &mut links,
                            &mut link_dst,
                            params,
                            LinkDst::SwitchIn(s, p),
                            switch_ram_flits,
                        );
                        inject_link[n.index()] = Some(id);
                        in_link[s.index()][p.index()] = Some(id);
                    }
                }
            }
        }

        let inject_link: Vec<LinkId> = inject_link
            .into_iter()
            .map(|l| l.expect("every node has an injection link"))
            .collect();
        let recv_link: Vec<LinkId> = recv_link
            .into_iter()
            .map(|l| l.expect("every node has a reception link"))
            .collect();

        // ---- VOQnet per-destination reserved credits ----
        let voqnet = match mech.queueing() {
            QueueingScheme::PerDest => {
                let vn = VoqNetCredits::new(links.len(), num_nodes);
                for (li, dst) in link_dst.iter().enumerate() {
                    if matches!(dst, LinkDst::SwitchIn(..)) {
                        for d in 0..num_nodes {
                            vn.set(li as u32, d as u32, per_dest_queue_flits);
                        }
                    }
                }
                Some(vn)
            }
            _ => None,
        };

        // ---- switches ----
        let mut switches: Vec<Switch> = topo
            .switch_ids()
            .map(|s| {
                let n_ports = topo.switch(s).num_ports();
                let wiring: Vec<(Option<LinkId>, Option<LinkId>)> = (0..n_ports)
                    .map(|p| (in_link[s.index()][p], out_link[s.index()][p]))
                    .collect();
                Switch::new(
                    s,
                    switch_cfg.clone(),
                    &wiring,
                    num_nodes,
                    seeds.rng("marking", s.index() as u64),
                )
            })
            .collect();
        // Cache each output's link bandwidth on the switch (read by the
        // starvation detector without touching the link array; refreshed
        // by `LinkDegrade` / `LinkRestoreRate` events).
        for sw in switches.iter_mut() {
            for p in 0..sw.outputs.len() {
                if let Some(l) = sw.outputs[p].out_link {
                    sw.set_output_link_bw(p, links[l.index()].config().bw_flits_per_cycle);
                }
            }
        }

        // ---- adapters ----
        let adapter_thr = mech
            .throttle()
            .map(|t| AdapterThrottle::from_params(t, &units));
        let adapters: Vec<Adapter> = topo
            .node_ids()
            .map(|n| {
                let (_, _, params) = topo.node_attachment(n);
                let acfg = AdapterCfg {
                    iso: mech.isolation().copied(),
                    thr: adapter_thr.clone(),
                    mtu_flits,
                    out_ram_flits: ram_flits,
                    advoq_cap_flits: cfg.advoq_cap_mtus * mtu_flits,
                    nfq_gate_flits: cfg.nfq_gate_mtus * mtu_flits,
                    per_dest_output: mech.queueing() == QueueingScheme::PerDest,
                    dcqcn: dcqcn_cfg.clone(),
                    hpcc: hpcc_cfg.clone(),
                    data_overhead_bytes: mech.hpcc_params().map_or(0, |p| p.int_overhead_bytes),
                };
                Adapter::new(
                    n,
                    acfg,
                    inject_link[n.index()],
                    params.bw_flits_per_cycle,
                    num_nodes,
                )
            })
            .collect();

        // ---- traffic ----
        let gens = pattern.build_generators(
            num_nodes,
            &units,
            |n| topo.node_attachment(n).2.bw_flits_per_cycle,
            &seeds,
        );

        let mut metrics = MetricsCollector::new(units, cfg.metrics_bin_ns);
        if let Some(ec) = cfg.events {
            metrics.enable_events(ec);
        }
        let end = units.ns_to_cycles(cfg.duration_ns);

        let gauge_every = units.ns_to_cycles(cfg.metrics_bin_ns / 4.0).max(64);
        let trace = cfg.trace_sample_every.map(crate::trace::TraceLog::new);
        let faults = faults.map(|(schedule, fcfg)| FaultRuntime::new(schedule, fcfg, &topo));
        let cc_wire = dcqcn_cfg.is_some() || hpcc_cfg.is_some();
        Simulator {
            cfg,
            topo,
            routing,
            mech,
            pattern,
            switches,
            adapters,
            gens,
            links,
            link_dst,
            voqnet,
            metrics,
            release_q: CalendarQueue::new(),
            becn_q: BinaryHeap::new(),
            becn_delay_cache: BecnDelayCache::new(num_nodes),
            num_nodes,
            delivery_scratch: Vec::new(),
            release_scratch: Vec::new(),
            seq: 0,
            now: 0,
            end,
            next_packet_id: 0,
            injected: 0,
            delivered: 0,
            gauge_every,
            trace,
            inject_link,
            recv_link,
            node_sink_credits,
            faults,
            cc_wire,
        }
    }

    /// The mechanism under simulation.
    pub fn mechanism(&self) -> &Mechanism {
        &self.mech
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Final cycle (exclusive).
    pub fn end_cycle(&self) -> Cycle {
        self.end
    }

    /// Data packets admitted into adapters so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Data packets delivered to their destinations so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Data packets currently buffered in adapters, switches, or on
    /// links — the conservation counterpart of
    /// `injected() - delivered()`. In-band BECNs are excluded (they are
    /// control traffic, not workload).
    pub fn resident_packets(&self) -> usize {
        self.adapters
            .iter()
            .map(|a| a.resident_packets())
            .sum::<usize>()
            + self
                .switches
                .iter()
                .map(|s| s.resident_data_packets())
                .sum::<usize>()
            + self
                .links
                .iter()
                .map(|l| l.in_flight_data_count())
                .sum::<usize>()
    }

    /// CFQs currently allocated network-wide (scalability introspection).
    pub fn cfqs_allocated(&self) -> usize {
        self.switches.iter().map(|s| s.cfqs_allocated()).sum()
    }

    /// Live access to a metrics counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }

    /// BECN transit time from `from` to `to`: one propagation delay plus
    /// one flit serialization per hop (CNPs are single-flit priority
    /// packets riding the NFQ path; see DESIGN.md §3).
    fn becn_delay(&mut self, from: NodeId, to: NodeId) -> Cycle {
        if let Some(d) = self.becn_delay_cache.get(from, to, self.num_nodes) {
            return d;
        }
        let hops = self
            .routing
            .trace(&self.topo, from, to)
            .map(|p| p.len())
            .unwrap_or(1) as Cycle;
        let d = hops * 2 + 1;
        self.becn_delay_cache.insert(from, to, self.num_nodes, d);
        d
    }

    /// Advance one cycle through the deterministic phase order.
    pub fn tick(&mut self) {
        let now = self.now;
        let fast = !self.cfg.force_slow_path;

        // Phase 0: dynamic network events (fault injection) and pending
        // routing recomputations.
        if self.faults.is_some() {
            self.apply_fault_events(now);
        }

        // Phase 1: scheduled RAM releases + credit returns.
        self.drain_releases(now);

        // Phase 2: senders absorb returned credits.
        for l in &mut self.links {
            l.poll_credits(now);
        }

        // Phase 3: link deliveries (drained into a persistent scratch
        // buffer so the hot path never allocates).
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        for li in 0..self.links.len() {
            if !self.links[li].has_delivery(now) {
                continue;
            }
            deliveries.clear();
            self.links[li].deliver_into(now, &mut deliveries);
            match self.link_dst[li] {
                LinkDst::SwitchIn(s, p) => {
                    for d in deliveries.drain(..) {
                        // Fault guard: a straggler that drained off a
                        // gracefully closed link may arrive at a dead
                        // switch or carry a destination the routing in
                        // force cannot deliver — consume it here rather
                        // than forward it down a stale route.
                        if let Some(frt) = self.faults.as_mut() {
                            if frt.arrival_is_undeliverable(s, d.packet.dst) {
                                frt.note_purged(d.packet.is_data());
                                self.links[li].return_credits(d.ready_at, d.packet.size_flits);
                                if let Some(vn) = self.voqnet.as_mut() {
                                    vn.add(li as u32, d.packet.dst.0, d.packet.size_flits);
                                }
                                continue;
                            }
                        }
                        if let Some(tr) = &mut self.trace {
                            if d.packet.is_data() && tr.wants(d.packet.id) {
                                tr.switch_hop(d.packet.id, s, d.visible_at);
                            }
                        }
                        self.switches[s.index()].accept_delivery(p.index(), d, &self.routing);
                    }
                }
                LinkDst::NodeRecv(n) => {
                    for d in deliveries.drain(..) {
                        self.deliver_to_node(n, li, d);
                    }
                }
            }
        }
        self.delivery_scratch = deliveries;

        // Phase 4: congestion-information control traffic.
        for sw in &mut self.switches {
            sw.poll_output_ctrl(now, &mut self.links, &mut self.metrics);
        }
        for a in &mut self.adapters {
            a.poll_ctrl(now, &mut self.links, &mut self.metrics);
        }

        // Phase 5: post-processing (detection, isolation, Stop/Go,
        // deallocation) and congestion-state update. Quiescent switches
        // provably do nothing here (see `Switch::is_quiescent`).
        for sw in &mut self.switches {
            if fast && sw.is_quiescent() {
                continue;
            }
            sw.isolation_tick(now, &self.routing, &mut self.links, &mut self.metrics);
            sw.congestion_state_tick(now, &self.links, &mut self.metrics);
        }

        // Phase 6: crossbar scheduling and transmission. Switches with
        // nothing buffered cannot match or transmit anything.
        let mut releases = std::mem::take(&mut self.release_scratch);
        for si in 0..self.switches.len() {
            if fast && !self.switches[si].has_buffered() {
                continue;
            }
            releases.clear();
            self.switches[si].arbitrate_and_transmit_into(
                now,
                &self.routing,
                &mut self.links,
                self.voqnet.as_ref(),
                &mut self.metrics,
                &mut releases,
            );
            for r in releases.drain(..) {
                self.release_q.push(
                    r.at,
                    Release::SwitchPort {
                        sw: si as u32,
                        port: r.port as u16,
                        flits: r.flits,
                        dst: r.dst.0,
                    },
                );
            }
        }
        self.release_scratch = releases;

        // Phase 7: BECN arrivals throttle their sources.
        self.drain_becns(now);

        // Phase 8: traffic generation and adapter work. A generator with
        // no flow in its active window injects nothing and draws no
        // randomness; an adapter that is quiet with no armed timer has
        // provably nothing to do (see `Adapter::is_quiet`).
        for n in 0..self.adapters.len() {
            if !fast || self.gens[n].any_active(now) {
                self.gen_node(n, now);
            }
            if fast && self.adapters[n].is_quiet() && self.adapters[n].armed_timer_count() == 0 {
                continue;
            }
            if let Some(rel) = self.adapters[n].tick(
                now,
                &mut self.links,
                self.voqnet.as_ref(),
                &mut self.metrics,
            ) {
                self.release_q.push(
                    rel.at,
                    Release::Node {
                        node: n as u32,
                        flits: rel.flits,
                    },
                );
            }
        }

        // Gauge sampling: congestion-tree size over time.
        self.sample_gauges(now);

        self.now = if fast {
            self.quiet_jump_target(now)
        } else {
            now + 1
        };
    }

    /// Phase 1: apply every RAM release / credit return due at `now`.
    fn drain_releases(&mut self, now: Cycle) {
        while let Some((_, rel)) = self.release_q.pop_due(now) {
            match rel {
                Release::SwitchPort {
                    sw,
                    port,
                    flits,
                    dst,
                } => {
                    let sw_idx = sw as usize;
                    let port_idx = port as usize;
                    self.switches[sw_idx].release_ram(port_idx, flits);
                    if let Some(link) = self.switches[sw_idx].inputs[port_idx].in_link {
                        self.links[link.index()].return_credits(now, flits);
                        if let Some(vn) = self.voqnet.as_ref() {
                            vn.add(link.0, dst, flits);
                        }
                    }
                }
                Release::Node { node, flits } => {
                    self.adapters[node as usize].release_ram(flits);
                }
            }
        }
    }

    /// Phase 7: BECN arrivals throttle their sources.
    fn drain_becns(&mut self, now: Cycle) {
        while let Some(&Reverse((at, _, congested_dst, node))) = self.becn_q.peek() {
            if at > now {
                break;
            }
            self.becn_q.pop();
            self.adapters[node as usize].on_becn(now, NodeId(congested_dst), &mut self.metrics);
        }
    }

    /// Phase 8a: run node `n`'s traffic generator against its adapter's
    /// admittance logic.
    fn gen_node(&mut self, n: usize, now: Cycle) {
        let adapter = &mut self.adapters[n];
        let next_packet_id = &mut self.next_packet_id;
        let injected = &mut self.injected;
        let trace = &mut self.trace;
        let faults = &mut self.faults;
        let metrics = &mut self.metrics;
        let cc_wire = self.cc_wire;
        let data_overhead = self.mech.hpcc_params().map_or(0, |p| p.int_overhead_bytes);
        let mut sink = |gp: GenPacket| {
            // Fault guard: a source never stalls on a currently
            // unreachable destination — the packet is consumed
            // (counted as refused) but not injected.
            if let Some(frt) = faults.as_mut() {
                if frt.pair_unreachable(n, gp.dst) {
                    frt.packets_refused += 1;
                    return true;
                }
            }
            let id = PacketId(*next_packet_id);
            if adapter.try_inject(now, gp, id) {
                *next_packet_id += 1;
                *injected += 1;
                if cc_wire {
                    metrics.count(
                        "wire_bytes_injected",
                        u64::from(gp.size_bytes) + u64::from(data_overhead),
                    );
                }
                if let Some(tr) = trace {
                    if tr.wants(id) {
                        tr.injected(id, gp.flow, adapter.node(), gp.dst, now);
                    }
                }
                true
            } else {
                false
            }
        };
        self.gens[n].tick(now, &mut sink);
    }

    /// Sample the congestion-tree gauges on `gauge_every` boundaries.
    fn sample_gauges(&mut self, now: Cycle) {
        if !now.is_multiple_of(self.gauge_every) {
            return;
        }
        let at_ns = self.cfg.units.cycles_to_ns(now);
        let buffered: u32 = self
            .switches
            .iter()
            .flat_map(|sw| sw.inputs.iter().map(|i| i.ram.used()))
            .sum();
        self.metrics
            .gauge("network_buffered_flits", at_ns, buffered as f64);
        self.metrics
            .gauge("cfqs_allocated", at_ns, self.cfqs_allocated() as f64);
        if let Some(frt) = &self.faults {
            let unreachable = frt.unreachable_since.iter().filter(|s| s.is_some()).count();
            self.metrics
                .gauge("unreachable_nodes", at_ns, unreachable as f64);
        }
        if self.cfg.port_telemetry {
            // Per-port series: input-RAM occupancy and output-link sender
            // credits for every switch port. Opt-in because it adds one
            // series per port to the report (formatting here is fine —
            // gauges sample on bin boundaries, not per cycle).
            for sw in &self.switches {
                let s = sw.id.0;
                for (p, inp) in sw.inputs.iter().enumerate() {
                    if inp.in_link.is_some() {
                        self.metrics.gauge(
                            &format!("port_occ_sw{s}_in{p}"),
                            at_ns,
                            inp.ram.used() as f64,
                        );
                    }
                }
                for (p, out) in sw.outputs.iter().enumerate() {
                    if let Some(l) = out.out_link {
                        self.metrics.gauge(
                            &format!("port_credits_sw{s}_out{p}"),
                            at_ns,
                            self.links[l.index()].credits() as f64,
                        );
                    }
                }
            }
        }
    }

    /// Where the clock may jump to after this cycle. When any component
    /// is active this is `now + 1` (normal single-step). When the whole
    /// network is provably quiet, nothing observable can happen before
    /// the earliest pending event, so the clock jumps straight to it:
    /// the next gauge-sampling boundary (samples must land on every
    /// multiple of `gauge_every`), the next scheduled RAM release or
    /// out-of-band BECN, the next in-flight link event, the next armed
    /// CCTI timer deadline, or the next flow activation. The jump is
    /// clamped to `end` so runs terminate on the exact same cycle as the
    /// slow path.
    fn quiet_jump_target(&self, now: Cycle) -> Cycle {
        let step = now + 1;
        let quiet = self.switches.iter().all(|s| s.is_quiescent())
            && self.adapters.iter().all(|a| a.is_quiet())
            && self.gens.iter().all(|g| !g.any_active(now));
        if !quiet {
            return step;
        }
        let mut target = (now / self.gauge_every + 1) * self.gauge_every;
        if let Some(at) = self.release_q.next_at() {
            target = target.min(at);
        }
        if let Some(&Reverse((at, _, _, _))) = self.becn_q.peek() {
            target = target.min(at);
        }
        for l in &self.links {
            if let Some(at) = l.next_event_at() {
                target = target.min(at);
            }
        }
        for a in &self.adapters {
            target = target.min(a.next_timer_deadline());
        }
        for g in &self.gens {
            if let Some(at) = g.next_activation(now) {
                target = target.min(at);
            }
        }
        if let Some(frt) = &self.faults {
            if let Some(ev) = frt.schedule.events().get(frt.next) {
                target = target.min(ev.at);
            }
            if let Some(at) = frt.routing_update_at {
                target = target.min(at);
            }
        }
        target.min(self.end).max(step)
    }

    /// Phase 0: apply every scheduled event due at `now`, then any
    /// pending routing recomputation. The runtime is temporarily moved
    /// out of `self` so event application can borrow the rest of the
    /// simulator freely.
    fn apply_fault_events(&mut self, now: Cycle) {
        let mut frt = self.faults.take().expect("caller checked");
        while let Some(ev) = frt.schedule.events().get(frt.next).copied() {
            if ev.at > now {
                break;
            }
            frt.next += 1;
            let before = frt.events_applied;
            self.apply_network_event(now, &mut frt, ev.event);
            // Skipped events (stale schedule entries) are not logged —
            // they changed nothing.
            if frt.events_applied > before && self.metrics.wants_events(EventClass::FAULT) {
                let kind = match ev.event {
                    NetworkEvent::LinkDown { .. } => FaultKind::LinkDown,
                    NetworkEvent::LinkUp { .. } => FaultKind::LinkUp,
                    NetworkEvent::SwitchDown { .. } => FaultKind::SwitchDown,
                    NetworkEvent::SwitchUp { .. } => FaultKind::SwitchUp,
                    NetworkEvent::LinkDegrade { .. } => FaultKind::LinkDegrade,
                    NetworkEvent::LinkRestoreRate { .. } => FaultKind::LinkRestore,
                };
                let (sw, port) = ev.event.target();
                self.metrics.cc_event(CcEvent {
                    at: now,
                    kind: CcEventKind::Fault {
                        kind,
                        sw: sw.0,
                        port: port.map_or(0, |p| p.index() as u32),
                    },
                });
            }
        }
        if frt.routing_update_at.is_some_and(|t| t <= now) {
            frt.routing_update_at = None;
            self.complete_reroute(now, &mut frt);
        }
        self.faults = Some(frt);
    }

    fn apply_network_event(&mut self, now: Cycle, frt: &mut FaultRuntime, event: NetworkEvent) {
        match event {
            NetworkEvent::LinkDown {
                switch: s,
                port: p,
                policy,
            } => {
                let Some((Endpoint::Switch(os, op), _)) = self.topo.peer(s, p) else {
                    // Already down, or a node cable (validation rejects
                    // the latter up front, but a hand-built schedule
                    // could still race a switch failure).
                    frt.events_skipped += 1;
                    return;
                };
                if frt.is_switch_down(s) || frt.is_switch_down(os) {
                    frt.events_skipped += 1;
                    return;
                }
                let (_, _, params) = self.topo.remove_cable(s, p).expect("peer verified");
                self.take_cable_down(frt, s, p, os, op, policy);
                frt.down_cables.push(DownCable {
                    s,
                    p,
                    os,
                    op,
                    params,
                    by_switch: false,
                });
                frt.schedule_reroute(now);
                frt.applied(now);
            }
            NetworkEvent::LinkUp { switch: s, port: p } => {
                let Some(i) = frt
                    .down_cables
                    .iter()
                    .position(|c| (c.s, c.p) == (s, p) || (c.os, c.op) == (s, p))
                else {
                    frt.events_skipped += 1;
                    return;
                };
                let c = frt.down_cables[i];
                if frt.is_switch_down(c.s) || frt.is_switch_down(c.os) {
                    // The cable comes back with the switch (`SwitchUp`).
                    frt.events_skipped += 1;
                    return;
                }
                frt.down_cables.remove(i);
                self.topo
                    .restore_cable(c.s, c.p, c.os, c.op, c.params)
                    .expect("recorded from remove_cable");
                self.restore_cable_links(frt, c);
                frt.schedule_reroute(now);
                frt.applied(now);
            }
            NetworkEvent::SwitchDown { switch: sw, policy } => {
                if frt.is_switch_down(sw) {
                    frt.events_skipped += 1;
                    return;
                }
                let ports: Vec<PortId> = self.topo.switch(sw).connected().collect();
                for p in ports {
                    match self.topo.peer(sw, p) {
                        Some((Endpoint::Switch(os, op), _)) => {
                            let (_, _, params) =
                                self.topo.remove_cable(sw, p).expect("peer verified");
                            self.take_cable_down(frt, sw, p, os, op, policy);
                            frt.down_cables.push(DownCable {
                                s: sw,
                                p,
                                os,
                                op,
                                params,
                                by_switch: true,
                            });
                        }
                        Some((Endpoint::Node(n), _)) => {
                            // The node's access links die with the
                            // switch (the node itself is fine — it is
                            // orphaned until `SwitchUp`).
                            let inj = self.inject_link[n.index()].index();
                            let rcv = self.recv_link[n.index()].index();
                            match policy {
                                FaultPolicy::FailStop => {
                                    frt.loss.absorb(self.links[inj].fail());
                                    frt.loss.absorb(self.links[rcv].fail());
                                }
                                FaultPolicy::Graceful => {
                                    self.links[inj].close();
                                    self.links[rcv].close();
                                }
                            }
                            if frt.unreachable_since[n.index()].is_none() {
                                frt.unreachable_since[n.index()] = Some(now);
                            }
                        }
                        None => {}
                    }
                }
                // The switch's buffers are lost regardless of policy —
                // a policy only governs what happens on the wires.
                let stats = self.switches[sw.index()].purge_all();
                frt.absorb_purge(stats);
                // Its scheduled RAM releases die with it (the upstream
                // credits they would have returned are already tallied
                // as lost by the wire cut or will be re-granted on
                // restore from ground-truth RAM occupancy).
                self.release_q.retain(|rel| {
                    !matches!(rel, Release::SwitchPort { sw: x, .. } if *x == sw.index() as u32)
                });
                frt.down_switches.push(sw);
                frt.schedule_reroute(now);
                frt.applied(now);
            }
            NetworkEvent::SwitchUp { switch: sw } => {
                let Some(i) = frt.down_switches.iter().position(|&d| d == sw) else {
                    frt.events_skipped += 1;
                    return;
                };
                frt.down_switches.remove(i);
                // Reinstall the cables its failure took down, skipping
                // those whose far end is still a dead switch (they come
                // back with *that* switch) and those that had failed
                // individually before the switch died (they need their
                // own `LinkUp`).
                let mut i = 0;
                while i < frt.down_cables.len() {
                    let c = frt.down_cables[i];
                    let other = if c.s == sw {
                        Some(c.os)
                    } else if c.os == sw {
                        Some(c.s)
                    } else {
                        None
                    };
                    match other {
                        Some(o) if c.by_switch && !frt.is_switch_down(o) => {
                            frt.down_cables.remove(i);
                            self.topo
                                .restore_cable(c.s, c.p, c.os, c.op, c.params)
                                .expect("recorded from remove_cable");
                            self.restore_cable_links(frt, c);
                        }
                        _ => i += 1,
                    }
                }
                // Node access links retrain. The switch-side input RAM
                // was purged with the switch, so the fresh grant is its
                // full capacity; nodes stay accounted unreachable until
                // the re-route completes.
                let ports: Vec<PortId> = self.topo.switch(sw).connected().collect();
                for p in ports {
                    if let Some((Endpoint::Node(n), _)) = self.topo.peer(sw, p) {
                        let inj = self.inject_link[n.index()];
                        let rcv = self.recv_link[n.index()].index();
                        let grant = self.switches[sw.index()].inputs[p.index()].ram.free();
                        frt.loss.absorb(self.links[inj.index()].restore(grant));
                        frt.loss
                            .absorb(self.links[rcv].restore(self.node_sink_credits));
                        self.reset_voqnet_credits(inj, sw, p.index());
                    }
                }
                frt.schedule_reroute(now);
                frt.applied(now);
            }
            NetworkEvent::LinkDegrade {
                switch: s,
                port: p,
                bw_divisor,
                extra_delay_cycles,
            } => {
                let Some((Endpoint::Switch(os, op), _)) = self.topo.peer(s, p) else {
                    frt.events_skipped += 1;
                    return;
                };
                let fwd = self.switches[s.index()].outputs[p.index()]
                    .out_link
                    .expect("cabled");
                let rev = self.switches[os.index()].outputs[op.index()]
                    .out_link
                    .expect("cabled");
                self.links[fwd.index()].degrade(bw_divisor, extra_delay_cycles);
                self.links[rev.index()].degrade(bw_divisor, extra_delay_cycles);
                self.refresh_link_bw_cache(s, p, fwd);
                self.refresh_link_bw_cache(os, op, rev);
                frt.applied(now);
            }
            NetworkEvent::LinkRestoreRate { switch: s, port: p } => {
                let Some((Endpoint::Switch(os, op), _)) = self.topo.peer(s, p) else {
                    frt.events_skipped += 1;
                    return;
                };
                let fwd = self.switches[s.index()].outputs[p.index()]
                    .out_link
                    .expect("cabled");
                let rev = self.switches[os.index()].outputs[op.index()]
                    .out_link
                    .expect("cabled");
                self.links[fwd.index()].restore_rate();
                self.links[rev.index()].restore_rate();
                self.refresh_link_bw_cache(s, p, fwd);
                self.refresh_link_bw_cache(os, op, rev);
                frt.applied(now);
                frt.last_recovery = now;
            }
        }
    }

    /// Re-cache an output's link bandwidth on its switch after a rate
    /// change (the starvation detector reads the cached copy).
    fn refresh_link_bw_cache(&mut self, s: SwitchId, p: PortId, link: LinkId) {
        let bw = self.links[link.index()].config().bw_flits_per_cycle;
        self.switches[s.index()].set_output_link_bw(p.index(), bw);
    }

    /// Cut (fail-stop) or close (graceful) both directed links of a
    /// trunk cable and, under fail-stop, quiesce the per-cable protocol
    /// state at both ends: the output CAMs mirroring downstream
    /// congestion, and the CFQ alloc/Stop flags that claim upstream has
    /// been notified — all of that state died with the wire and must
    /// re-propagate after a repair.
    fn take_cable_down(
        &mut self,
        frt: &mut FaultRuntime,
        s: SwitchId,
        p: PortId,
        os: SwitchId,
        op: PortId,
        policy: FaultPolicy,
    ) {
        let fwd = self.switches[s.index()].outputs[p.index()]
            .out_link
            .expect("cabled");
        let rev = self.switches[os.index()].outputs[op.index()]
            .out_link
            .expect("cabled");
        match policy {
            FaultPolicy::FailStop => {
                frt.loss.absorb(self.links[fwd.index()].fail());
                frt.loss.absorb(self.links[rev.index()].fail());
                self.switches[s.index()].clear_output_cam(p.index());
                self.switches[os.index()].clear_output_cam(op.index());
                self.switches[s.index()].reset_upstream_ctrl_flags(p.index());
                self.switches[os.index()].reset_upstream_ctrl_flags(op.index());
            }
            FaultPolicy::Graceful => {
                self.links[fwd.index()].close();
                self.links[rev.index()].close();
            }
        }
    }

    /// Retrain both directed links of a reinstalled trunk cable. The
    /// fresh credit grant is the receiving input port's *current* free
    /// RAM — ground truth either way: under fail-stop the credit
    /// returns of the downtime were destroyed while the RAM kept
    /// draining, and under graceful `Link::restore` resets the sender
    /// pool before re-granting.
    fn restore_cable_links(&mut self, frt: &mut FaultRuntime, c: DownCable) {
        let fwd = self.switches[c.s.index()].outputs[c.p.index()]
            .out_link
            .expect("cabled");
        let rev = self.switches[c.os.index()].outputs[c.op.index()]
            .out_link
            .expect("cabled");
        let fwd_grant = self.switches[c.os.index()].inputs[c.op.index()].ram.free();
        let rev_grant = self.switches[c.s.index()].inputs[c.p.index()].ram.free();
        frt.loss.absorb(self.links[fwd.index()].restore(fwd_grant));
        frt.loss.absorb(self.links[rev.index()].restore(rev_grant));
        self.reset_voqnet_credits(fwd, c.os, c.op.index());
        self.reset_voqnet_credits(rev, c.s, c.p.index());
    }

    /// VOQnet retrains its per-destination reserved credits alongside
    /// the link-level grant: each destination's remote credit is its
    /// queue reservation minus what is still buffered at the receiver.
    fn reset_voqnet_credits(&mut self, link: LinkId, sw: SwitchId, port: usize) {
        let Some(vn) = self.voqnet.as_mut() else {
            return;
        };
        let per_q = match self.mech {
            Mechanism::VoqNet { per_queue_flits } => per_queue_flits,
            _ => return,
        };
        for d in 0..self.num_nodes {
            let held = self.switches[sw.index()].per_dest_occupancy_flits(port, d);
            vn.set(link.0, d as u32, per_q.saturating_sub(held));
        }
    }

    /// The re-routing latency elapsed: recompute routing tables for the
    /// surviving topology, refresh the reachability snapshot, purge
    /// every buffered packet the new tables cannot deliver, and settle
    /// the availability accounting.
    fn complete_reroute(&mut self, now: Cycle, frt: &mut FaultRuntime) {
        self.routing = RoutingTable::shortest_path(&self.topo);
        // BECN transit times follow the new paths.
        self.becn_delay_cache.invalidate();
        let (comp, node_comp) = compute_components(&self.topo, &frt.down_switches);
        frt.comp = comp;
        frt.node_comp = node_comp;
        for n in 0..self.num_nodes {
            if frt.node_comp[n] != u32::MAX {
                if let Some(t0) = frt.unreachable_since[n].take() {
                    frt.unreachable_cycles += now - t0;
                }
            } else if frt.unreachable_since[n].is_none() {
                frt.unreachable_since[n] = Some(now);
            }
        }
        self.purge_unreachable_everywhere(now, frt);
        for si in 0..self.switches.len() {
            if !frt.is_switch_down(SwitchId(si as u32)) {
                self.switches[si].on_routing_changed(&self.routing);
            }
        }
        if let Some(t0) = frt.stale_since.take() {
            frt.stale_cycles += now - t0;
        }
        frt.reroutes += 1;
        frt.last_recovery = now;
        if self.metrics.wants_events(EventClass::FAULT) {
            let unreachable = frt.unreachable_since.iter().filter(|s| s.is_some()).count();
            self.metrics.cc_event(CcEvent {
                at: now,
                kind: CcEventKind::RerouteDone {
                    unreachable_nodes: unreachable as u32,
                },
            });
        }
    }

    /// Drop every buffered packet (switch queues and adapter queues)
    /// whose destination the routing now in force cannot deliver,
    /// freeing RAM and returning upstream credits exactly as a normal
    /// departure would.
    fn purge_unreachable_everywhere(&mut self, now: Cycle, frt: &mut FaultRuntime) {
        let mut purged = std::mem::take(&mut frt.switch_purge_scratch);
        for si in 0..self.switches.len() {
            if frt.is_switch_down(SwitchId(si as u32)) {
                continue;
            }
            let swc = frt.comp[si];
            let node_comp = &frt.node_comp;
            purged.clear();
            self.switches[si].purge_unreachable(
                &|d: NodeId| {
                    let dc = node_comp[d.index()];
                    dc == u32::MAX || dc != swc
                },
                &mut purged,
            );
            for (port, e) in purged.drain(..) {
                frt.note_purged(e.packet.is_data());
                if let Some(link) = self.switches[si].inputs[port].in_link {
                    self.links[link.index()].return_credits(now, e.packet.size_flits);
                    if let Some(vn) = self.voqnet.as_mut() {
                        vn.add(link.0, e.packet.dst.0, e.packet.size_flits);
                    }
                }
            }
        }
        frt.switch_purge_scratch = purged;
        let mut scratch = std::mem::take(&mut frt.purge_scratch);
        for n in 0..self.num_nodes {
            let sc = frt.node_comp[n];
            let node_comp = &frt.node_comp;
            // An orphaned source keeps its buffered packets — they can
            // flow again once its switch recovers — except those for
            // destinations that are themselves orphaned.
            let stats = self.adapters[n].purge_unreachable(
                &|d: NodeId| {
                    let dc = node_comp[d.index()];
                    dc == u32::MAX || (sc != u32::MAX && dc != sc)
                },
                &mut scratch,
            );
            frt.absorb_purge(stats);
        }
        frt.purge_scratch = scratch;
    }

    /// Nodes the fault runtime currently counts as unreachable (empty
    /// for fault-free runs).
    pub fn unreachable_nodes(&self) -> Vec<NodeId> {
        self.faults
            .as_ref()
            .map(|frt| {
                frt.unreachable_since
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_some())
                    .map(|(n, _)| NodeId(n as u32))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn deliver_to_node(&mut self, node: NodeId, link_idx: usize, d: ccfit_engine::link::Delivery) {
        // Ideal sink: space is freed the moment the tail lands.
        self.links[link_idx].return_credits(d.ready_at, d.packet.size_flits);
        match d.packet.kind {
            ccfit_engine::packet::PacketKind::Becn => {
                // An in-band BECN reached the source it throttles.
                self.adapters[node.index()].on_becn(d.ready_at, d.packet.src, &mut self.metrics);
                return;
            }
            ccfit_engine::packet::PacketKind::Cnp => {
                // DCQCN: a CNP reached the reaction point.
                self.metrics
                    .count("ctrl_wire_bytes_delivered", d.packet.wire_bytes());
                self.adapters[node.index()].on_cnp(d.ready_at, d.packet.src, &mut self.metrics);
                return;
            }
            ccfit_engine::packet::PacketKind::Ack => {
                // HPCC: the INT echo reached the sender's window machine.
                self.metrics
                    .count("ctrl_wire_bytes_delivered", d.packet.wire_bytes());
                self.adapters[node.index()].on_ack(
                    d.ready_at,
                    d.packet.src,
                    d.packet.int_u,
                    d.packet.int_hops,
                    d.packet.ack_bytes,
                    &mut self.metrics,
                );
                return;
            }
            ccfit_engine::packet::PacketKind::Data => {}
        }
        self.metrics.record_delivery(d.ready_at, &d.packet);
        if d.packet.is_data() {
            self.delivered += 1;
            if self.cc_wire {
                // Byte accounting at reception, consistent across data
                // and control traffic: wire = payload + scheme overhead.
                self.metrics
                    .count("wire_bytes_delivered", d.packet.wire_bytes());
                self.metrics
                    .count("payload_bytes_delivered", u64::from(d.packet.size_bytes));
                self.metrics.count(
                    "overhead_bytes_delivered",
                    u64::from(d.packet.overhead_bytes),
                );
            }
            if let Some(tr) = &mut self.trace {
                if tr.wants(d.packet.id) {
                    tr.delivered(d.packet.id, d.ready_at, d.packet.fecn);
                }
            }
            if self.metrics.wants_events(EventClass::DELIVERY) {
                self.metrics.cc_event(CcEvent {
                    at: d.ready_at,
                    kind: CcEventKind::Delivered {
                        node: node.0,
                        flow: d.packet.flow.0,
                        bytes: d.packet.size_bytes,
                        latency_cycles: d.ready_at.saturating_sub(d.packet.injected_at),
                        fecn: d.packet.fecn,
                    },
                });
            }
        }
        // FECN → BECN (§III-B): the destination returns a congestion
        // notification to the packet's source.
        if d.packet.fecn && self.mech.throttle().is_some() {
            self.metrics.count("becn_generated", 1);
            if self.metrics.wants_events(EventClass::BECN) {
                self.metrics.cc_event(CcEvent {
                    at: d.ready_at,
                    kind: CcEventKind::BecnGenerated {
                        node: node.0,
                        src: d.packet.src.0,
                    },
                });
            }
            match self.cfg.becn_transport {
                BecnTransport::InBand => {
                    let id = PacketId(self.next_packet_id);
                    self.next_packet_id += 1;
                    self.adapters[node.index()].queue_becn(Packet::becn(
                        id,
                        node,
                        d.packet.src,
                        d.ready_at,
                    ));
                }
                BecnTransport::OutOfBand => {
                    let delay = self.becn_delay(node, d.packet.src);
                    self.seq += 1;
                    self.becn_q.push(Reverse((
                        d.ready_at + delay,
                        self.seq,
                        node.0,         // the congested destination
                        d.packet.src.0, // the source to throttle
                    )));
                }
            }
        }
        // ECN-CE → CNP (DCQCN notification point): answer a marked
        // delivery with one CNP, rate-limited per source.
        if d.packet.ecn && self.mech.dcqcn_params().is_some() {
            let overhead = self.mech.dcqcn_params().map_or(0, |p| p.cnp_overhead_bytes);
            if self.adapters[node.index()].cnp_due(d.ready_at, d.packet.src) {
                let id = PacketId(self.next_packet_id);
                self.next_packet_id += 1;
                let cnp = Packet::cnp(id, node, d.packet.src, d.ready_at, overhead);
                self.metrics.count("cnp_generated", 1);
                self.metrics.count("ctrl_wire_bytes_sent", cnp.wire_bytes());
                if self.metrics.wants_events(EventClass::CNP) {
                    self.metrics.cc_event(CcEvent {
                        at: d.ready_at,
                        kind: CcEventKind::CnpGenerated {
                            node: node.0,
                            src: d.packet.src.0,
                        },
                    });
                }
                self.adapters[node.index()].queue_becn(cnp);
            }
        }
        // Data delivery → per-packet ACK echoing the INT fold (HPCC).
        if let Some(p) = self.mech.hpcc_params() {
            let id = PacketId(self.next_packet_id);
            self.next_packet_id += 1;
            let ack = Packet::ack(
                id,
                node,
                d.packet.src,
                d.ready_at,
                d.packet.int_u,
                d.packet.int_hops,
                d.packet.wire_bytes() as u32,
                p.ack_overhead_bytes,
            );
            self.metrics.count("ack_generated", 1);
            self.metrics.count("ctrl_wire_bytes_sent", ack.wire_bytes());
            self.adapters[node.index()].queue_becn(ack);
        }
    }

    /// Run to completion and produce the report.
    ///
    /// With [`SimConfig::parallel`] requesting more than one thread the
    /// network ticks on the sharded worker pool (byte-identical results,
    /// packet traces and CC event logs included; DESIGN.md §9), unless
    /// `force_slow_path` pins the serial engine. [`Self::run_cycles`]
    /// always ticks serially.
    pub fn run(mut self) -> SimReport {
        self.run_to_end();
        self.finish()
    }

    /// Advance the clock to the end of the configured duration without
    /// consuming the simulator, so callers can still inspect live state
    /// ([`Self::traces`], [`Self::counter`], …) before [`Self::finish`].
    pub fn run_to_end(&mut self) {
        let decision = self.engine_decision();
        warn_fallback_once(&decision);
        if decision.effective_threads > 1 && !self.cfg.force_slow_path {
            self.run_parallel(&decision);
        } else {
            while self.now < self.end {
                self.tick();
            }
        }
    }

    /// Per-switch static work weights for shard balancing: connected
    /// ports scaled by the mechanism's per-port tick cost, plus one unit
    /// per attached adapter (adapters are ticked by their own shard, but
    /// their control/BECN load lands on the attachment switch).
    fn switch_weights(&self) -> Vec<u64> {
        let factor = self.mech.tick_weight();
        let mut w: Vec<u64> = (0..self.switches.len())
            .map(|s| self.topo.switch(SwitchId(s as u32)).connected().count() as u64 * factor)
            .collect();
        for n in 0..self.num_nodes {
            let (sw, _, _) = self.topo.node_attachment(NodeId(n as u32));
            w[sw.index()] += 1;
        }
        w
    }

    /// How [`Self::run_to_end`] will execute the configured
    /// [`ParallelConfig`] on this host: the effective thread count,
    /// batch size, and the fallback reason when the request was
    /// degraded (see `crate::parallel::decide`). Deliberately not part
    /// of the [`SimReport`], which stays byte-identical across hosts.
    pub fn engine_decision(&self) -> EngineDecision {
        let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let weight = network_weight(
            (0..self.switches.len())
                .map(|s| self.topo.switch(SwitchId(s as u32)).connected().count()),
            self.adapters.len(),
            self.mech.tick_weight(),
        );
        decide(&self.cfg.parallel, host_cpus, weight)
    }

    /// Tick to `end` on the worker pool, `batch_cycles` cycles per
    /// dispatch (see `tick_parallel`).
    fn run_parallel(&mut self, decision: &EngineDecision) {
        let threads = decision.effective_threads;
        let link_sw_dst: Vec<Option<(u32, u32)>> = self
            .link_dst
            .iter()
            .map(|d| match d {
                LinkDst::SwitchIn(s, p) => Some((s.0, p.index() as u32)),
                LinkDst::NodeRecv(_) => None,
            })
            .collect();
        let plan = ShardPlan::build(
            threads,
            &self.switch_weights(),
            self.adapters.len(),
            &link_sw_dst,
        );
        let mut outboxes: Vec<ShardOutbox> = (0..2 * plan.shards)
            .map(|_| ShardOutbox::default())
            .collect();
        // Shard workers filter events against a copied mask so the
        // off-path cost stays a predicted branch; sampling and capacity
        // are applied only when the op-logs replay into the collector
        // (per-shard sampling would break byte-identity across thread
        // counts).
        let mask = self.metrics.event_mask();
        for ob in outboxes.iter_mut() {
            ob.metrics.set_event_mask(mask);
        }
        let mut p5_ran = vec![false; self.switches.len()];
        let pool = Pool::new(threads, threads > decision.host_cpus);
        // Batch loop: one park-capable rendezvous per `batch_cycles`
        // simulated cycles; everything inside a batch crosses only the
        // spin-biased step barrier. Per-cycle phase and merge order are
        // untouched, so batch size cannot affect results.
        while self.now < self.end {
            pool.begin_batch();
            for _ in 0..decision.batch_cycles {
                if self.now >= self.end {
                    break;
                }
                self.tick_parallel(&pool, &plan, &mut outboxes, &mut p5_ran);
            }
            pool.end_batch();
        }
    }

    /// Snapshot the raw pointers a parallel section needs. Rebuilt
    /// before every section so serial interludes (which borrow the same
    /// component vectors) stay in the clear.
    fn make_ctx(
        &mut self,
        now: Cycle,
        plan: &ShardPlan,
        outboxes: &mut [ShardOutbox],
        p5_ran: &mut [bool],
    ) -> TickCtx {
        TickCtx {
            now,
            fast: true,
            switches: self.switches.as_mut_ptr(),
            adapters: self.adapters.as_mut_ptr(),
            links: self.links.as_mut_ptr(),
            n_links: self.links.len(),
            routing: &self.routing,
            voqnet: self
                .voqnet
                .as_ref()
                .map_or(std::ptr::null(), |v| v as *const VoqNetCredits),
            outboxes: outboxes.as_mut_ptr(),
            p5_ran: p5_ran.as_mut_ptr(),
            plan,
            trace_sample: self.trace.as_ref().map_or(0, |t| t.sample_every()),
            faults: self.faults.as_ref().map(|frt| FaultView {
                comp: frt.comp.as_ptr(),
                node_comp: frt.node_comp.as_ptr(),
                down: frt.down_switches.as_ptr(),
                n_down: frt.down_switches.len(),
            }),
        }
    }

    /// Replay every shard's metric op-log into the collector, in shard
    /// order — switch-side outboxes first, adapter-side second, which is
    /// exactly the serial engine's per-phase emission order (outboxes
    /// not involved in the section just finished are empty no-ops).
    fn apply_outbox_metrics(&mut self, outboxes: &mut [ShardOutbox]) {
        for ob in outboxes.iter_mut() {
            self.metrics.apply_scratch(&mut ob.metrics);
        }
    }

    /// One cycle on the worker pool. Phase structure, ordering and
    /// results are identical to [`Self::tick`] with `fast` semantics;
    /// the cross-component phases (releases, node deliveries, BECNs,
    /// traffic generation, gauges) stay serial, the per-component
    /// phases fan out over the shards, and every shard effect is merged
    /// back in canonical order (DESIGN.md §9).
    fn tick_parallel(
        &mut self,
        pool: &Pool,
        plan: &ShardPlan,
        outboxes: &mut [ShardOutbox],
        p5_ran: &mut [bool],
    ) {
        let now = self.now;

        // Phase 0 + 1 + 2 (serial): fault events, RAM releases, credit
        // absorption.
        if self.faults.is_some() {
            self.apply_fault_events(now);
        }
        self.drain_releases(now);
        for l in &mut self.links {
            l.poll_credits(now);
        }

        // Phase 3a (parallel): drain switch-bound links into their
        // receiving switches.
        let ctx = self.make_ctx(now, plan, outboxes, p5_ran);
        pool.run_step(&[PhaseKind::Deliver], &ctx);
        if let Some(frt) = self.faults.as_mut() {
            for ob in outboxes[..plan.shards].iter_mut() {
                frt.packets_purged += ob.purged_data;
                frt.ctrl_purged += ob.purged_ctrl;
                ob.purged_data = 0;
                ob.purged_ctrl = 0;
            }
        }
        // Sampled switch arrivals recorded by the shard workers replay
        // into the trace log in shard order. A packet makes at most one
        // hop per cycle, so each trace's hop list still accumulates in
        // cycle order — identical to the serial engine's.
        if let Some(tr) = self.trace.as_mut() {
            for ob in outboxes[..plan.shards].iter_mut() {
                for (id, sw, at) in ob.trace_hops.drain(..) {
                    tr.switch_hop(id, sw, at);
                }
            }
        }

        // Phase 3b (serial): node-bound deliveries — these touch the
        // global delivery metrics, the delivered counter, and the BECN
        // generation sequence, all of which must accumulate in link
        // order.
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        for li in 0..self.links.len() {
            let LinkDst::NodeRecv(n) = self.link_dst[li] else {
                continue;
            };
            if !self.links[li].has_delivery(now) {
                continue;
            }
            deliveries.clear();
            self.links[li].deliver_into(now, &mut deliveries);
            for d in deliveries.drain(..) {
                self.deliver_to_node(n, li, d);
            }
        }
        self.delivery_scratch = deliveries;

        // Phases 4 + 5a + 5b/6 (parallel, chained): control polling,
        // isolation, congestion-state + arbitration run as one step
        // chain — barriers between them (the link-ownership sets
        // differ), but no coordinator work, so the merge happens once.
        // Workers drop a scratch mark at each section end; replaying
        // segment-major/shard-minor below reproduces the serial emission
        // order exactly: all switch ctrl ops, all adapter ctrl ops, all
        // isolation ops, all arbitration ops.
        let ctx = self.make_ctx(now, plan, outboxes, p5_ran);
        pool.run_step(&[PhaseKind::Ctrl, PhaseKind::Iso, PhaseKind::CstArb], &ctx);
        let (switch_obs, adapter_obs) = outboxes.split_at_mut(plan.shards);
        for seg in 0..3 {
            for ob in switch_obs.iter() {
                self.metrics
                    .apply_scratch_range(&ob.metrics, ob.metrics.segment(seg));
            }
            if seg == 0 {
                // Adapter-side outboxes hold only ctrl ops at this
                // point; the serial engine emits them right after the
                // switch ctrl ops.
                for ob in adapter_obs.iter_mut() {
                    self.metrics
                        .apply_scratch_range(&ob.metrics, 0..ob.metrics.len());
                    ob.metrics.clear();
                }
            }
        }
        for ob in switch_obs.iter_mut() {
            ob.metrics.clear();
        }
        // RAM releases merge into the calendar queue in (shard, switch)
        // order == switch order, the serial push order.
        for ob in switch_obs.iter_mut() {
            for (sw, r) in ob.releases.drain(..) {
                self.release_q.push(
                    r.at,
                    Release::SwitchPort {
                        sw,
                        port: r.port as u16,
                        flits: r.flits,
                        dst: r.dst.0,
                    },
                );
            }
        }

        // Phase 7 (serial): BECN arrivals.
        self.drain_becns(now);

        // Phase 8a (serial): traffic generation draws seeded randomness
        // and allocates global packet ids — strictly node order. Running
        // every generator before any adapter tick is equivalent to the
        // serial interleave: a generator only touches its own adapter
        // (pre-tick state in both engines) and the global id counters,
        // which no adapter tick reads.
        for n in 0..self.adapters.len() {
            if self.gens[n].any_active(now) {
                self.gen_node(n, now);
            }
        }

        // Phase 8b (parallel): adapter arbitration and injection.
        let ctx = self.make_ctx(now, plan, outboxes, p5_ran);
        pool.run_step(&[PhaseKind::AdapterTick], &ctx);
        self.apply_outbox_metrics(outboxes);
        for ob in outboxes[plan.shards..].iter_mut() {
            for (node, rel) in ob.adapter_releases.drain(..) {
                self.release_q.push(
                    rel.at,
                    Release::Node {
                        node,
                        flits: rel.flits,
                    },
                );
            }
        }

        self.sample_gauges(now);
        self.now = self.quiet_jump_target(now);
    }

    /// Run `cycles` more cycles (tests drive the simulator piecewise).
    /// The clock lands exactly on `now + cycles` regardless of any
    /// quiet-cycle fast-forward: the jump horizon is temporarily capped
    /// so a jump can never overshoot the caller's target.
    pub fn run_cycles(&mut self, cycles: Cycle) {
        let target = self.now.saturating_add(cycles);
        let saved_end = self.end;
        self.end = self.end.min(target);
        while self.now < target {
            self.tick();
        }
        self.end = saved_end;
    }

    /// Freeze into a report without necessarily having reached the end.
    pub fn finish(self) -> SimReport {
        let labels: BTreeMap<FlowId, String> = self
            .pattern
            .flows
            .iter()
            .map(|f| (f.id, f.label.clone()))
            .collect();
        // Reception capacity: Σ node-link bandwidths, in bytes/ns.
        let capacity: f64 = self
            .topo
            .node_ids()
            .map(|n| {
                let (_, _, p) = self.topo.node_attachment(n);
                self.cfg
                    .units
                    .flits_per_cycle_to_bandwidth(p.bw_flits_per_cycle)
                    / 1e9
            })
            .sum();
        let simulated_ns = self.cfg.units.cycles_to_ns(self.now);
        let mut m = self.metrics;
        m.count("injected_packets", self.injected);
        m.count("delivered_packets_total", self.delivered);
        if let Some(mut frt) = self.faults {
            // Close the availability windows still open at the end of
            // the run.
            for s in frt.unreachable_since.iter_mut() {
                if let Some(t0) = s.take() {
                    frt.unreachable_cycles += self.now - t0;
                }
            }
            if let Some(t0) = frt.stale_since.take() {
                frt.stale_cycles += self.now - t0;
            }
            let u = &self.cfg.units;
            m.set_faults(FaultSummary {
                events_applied: frt.events_applied,
                events_skipped: frt.events_skipped,
                packets_lost_wire: frt.loss.data_packets,
                flits_lost_wire: frt.loss.data_flits,
                packets_purged: frt.packets_purged,
                packets_refused: frt.packets_refused,
                ctrl_lost: frt.loss.ctrl_packets + frt.loss.ctrl_events + frt.ctrl_purged,
                credits_lost: frt.loss.credit_flits,
                node_unreachable_ns: u.cycles_to_ns(frt.unreachable_cycles),
                stale_route_ns: u.cycles_to_ns(frt.stale_cycles),
                reroutes: frt.reroutes,
                first_fault_ns: frt.first_fault.map(|c| u.cycles_to_ns(c)).unwrap_or(0.0),
                last_recovery_ns: u.cycles_to_ns(frt.last_recovery),
            });
        }
        m.finish(
            format!("{}/{}", self.mech.name(), self.pattern.name),
            simulated_ns,
            capacity,
            &labels,
        )
    }

    /// Immutable access to an adapter (tests).
    pub fn adapter(&self, n: NodeId) -> &Adapter {
        &self.adapters[n.index()]
    }

    /// Immutable access to a switch (tests).
    pub fn switch(&self, s: SwitchId) -> &Switch {
        &self.switches[s.index()]
    }

    /// The packet traces collected so far (empty unless
    /// [`SimConfig::trace_sample_every`] was set).
    pub fn traces(&self) -> Vec<&crate::trace::PacketTrace> {
        self.trace.as_ref().map(|t| t.traces()).unwrap_or_default()
    }

    /// Debug dump of every switch's port state.
    pub fn debug_state(&self) -> String {
        self.switches
            .iter()
            .map(|s| s.debug_state(&self.links))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfit_topology::config1_topology;
    use ccfit_traffic::{FlowSpec, TrafficPattern};

    fn tiny_pattern() -> TrafficPattern {
        TrafficPattern::new(
            "tiny",
            vec![FlowSpec::hotspot(0, NodeId(0), NodeId(3), 0.0, None)],
        )
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let sim = SimBuilder::new(config1_topology())
            .traffic(tiny_pattern())
            .duration_ns(51_200.0)
            .seed(9)
            .build();
        assert_eq!(sim.mechanism().name(), "CCFIT", "CCFIT is the default");
        assert_eq!(sim.end_cycle(), 2000, "51.2 us at 25.6 ns/cycle");
        assert_eq!(sim.now(), 0);
    }

    #[test]
    #[should_panic(expected = "traffic pattern is required")]
    fn builder_requires_traffic() {
        let _ = SimBuilder::new(config1_topology()).build();
    }

    #[test]
    #[should_panic(expected = "mechanism parameters are invalid")]
    fn builder_validates_mechanism() {
        let mut iso = crate::params::IsolationParams::default();
        iso.num_cfqs = 0;
        let _ = SimBuilder::new(config1_topology())
            .mechanism(Mechanism::Fbicm(iso))
            .traffic(tiny_pattern())
            .build();
    }

    #[test]
    fn run_cycles_then_finish_matches_run() {
        let build = || {
            SimBuilder::new(config1_topology())
                .traffic(tiny_pattern())
                .duration_ns(100_000.0)
                .seed(4)
                .build()
        };
        let a = build().run();
        let mut sim = build();
        sim.run_cycles(sim.end_cycle());
        let b = sim.finish();
        assert_eq!(a, b);
    }

    #[test]
    fn counters_start_clean_and_accumulate() {
        let mut sim = SimBuilder::new(config1_topology())
            .traffic(tiny_pattern())
            .duration_ns(200_000.0)
            .seed(5)
            .build();
        assert_eq!(sim.injected(), 0);
        assert_eq!(sim.delivered(), 0);
        assert_eq!(sim.resident_packets(), 0);
        sim.run_cycles(sim.end_cycle());
        assert!(sim.injected() > 100);
        assert!(sim.delivered() > 100);
    }

    #[test]
    fn debug_state_mentions_every_switch() {
        let sim = SimBuilder::new(config1_topology())
            .traffic(tiny_pattern())
            .duration_ns(10_000.0)
            .build();
        let dump = sim.debug_state();
        assert!(dump.contains("SwitchId0"));
        assert!(dump.contains("SwitchId1"));
    }

    /// First switch-to-switch cable of the topology (fault targets).
    fn first_trunk_cable(topo: &Topology) -> (SwitchId, PortId) {
        for s in topo.switch_ids() {
            for p in topo.switch(s).connected() {
                if let Some((Endpoint::Switch(..), _)) = topo.peer(s, p) {
                    return (s, p);
                }
            }
        }
        panic!("topology has no trunk cable");
    }

    fn tree_sim(schedule: FaultSchedule, mech: Mechanism, slow: bool) -> Simulator {
        use ccfit_topology::KAryNTree;
        let tree = KAryNTree::new(2, 3);
        let topo = tree.build(LinkParams::default());
        let mut cfg = SimConfig {
            duration_ns: 400_000.0,
            metrics_bin_ns: 20_000.0,
            ..SimConfig::default()
        };
        cfg.force_slow_path = slow;
        SimBuilder::new(topo)
            .routing(tree.det_routing())
            .mechanism(mech)
            .traffic(TrafficPattern::new(
                "faulty",
                vec![
                    FlowSpec::hotspot(0, NodeId(0), NodeId(7), 0.0, None),
                    FlowSpec::hotspot(1, NodeId(3), NodeId(5), 0.0, None),
                ],
            ))
            .config(cfg)
            .seed(11)
            .faults(schedule)
            .build()
    }

    #[test]
    fn fail_stop_trunk_failure_reroutes_and_conserves() {
        use ccfit_topology::KAryNTree;
        let tree = KAryNTree::new(2, 3);
        let topo = tree.build(LinkParams::default());
        let (s, p) = first_trunk_cable(&topo);
        let mut sched = FaultSchedule::new();
        sched.link_down(2000, s, p, FaultPolicy::FailStop);
        let mut sim = tree_sim(sched, Mechanism::ccfit(), false);
        sim.run_cycles(5000);
        let delivered_early = sim.delivered();
        sim.run_cycles(sim.end_cycle() - sim.now());
        let injected = sim.injected();
        let delivered = sim.delivered();
        let resident = sim.resident_packets() as u64;
        assert!(
            delivered > delivered_early,
            "delivery must continue after the re-route"
        );
        let report = sim.finish();
        let f = report.faults.as_ref().expect("fault summary attached");
        assert_eq!(f.events_applied, 1);
        assert_eq!(f.events_skipped, 0);
        assert_eq!(f.reroutes, 1);
        assert!(f.stale_route_ns > 0.0, "re-route latency was modelled");
        assert_eq!(
            injected,
            delivered + resident + f.packets_lost(),
            "every injected packet is delivered, buffered, or accounted lost"
        );
    }

    #[test]
    fn switch_down_orphans_nodes_then_recovers() {
        use ccfit_topology::KAryNTree;
        let tree = KAryNTree::new(2, 3);
        let topo = tree.build(LinkParams::default());
        let leaf = topo.node_attachment(NodeId(7)).0;
        let mut sched = FaultSchedule::new();
        sched.switch_down(2000, leaf, FaultPolicy::Graceful);
        sched.switch_up(8000, leaf);
        let mut sim = tree_sim(sched, Mechanism::ccfit(), false);
        sim.run_cycles(4000);
        assert!(
            sim.unreachable_nodes().contains(&NodeId(7)),
            "node 7 is orphaned while its switch is down"
        );
        sim.run_cycles(sim.end_cycle() - sim.now());
        assert!(sim.unreachable_nodes().is_empty(), "recovery completed");
        let injected = sim.injected();
        let delivered = sim.delivered();
        let resident = sim.resident_packets() as u64;
        let report = sim.finish();
        let f = report.faults.as_ref().expect("fault summary attached");
        assert_eq!(f.events_applied, 2);
        assert_eq!(f.reroutes, 2, "one re-route per topology change");
        assert!(f.node_unreachable_ns > 0.0);
        assert!(
            f.packets_refused > 0,
            "sources refuse injection toward the orphaned node"
        );
        assert_eq!(injected, delivered + resident + f.packets_lost());
        assert!(
            report.gauges.contains_key("unreachable_nodes"),
            "availability gauge sampled"
        );
    }

    #[test]
    fn degrade_applies_and_bogus_link_up_is_skipped() {
        use ccfit_topology::KAryNTree;
        let tree = KAryNTree::new(2, 3);
        let topo = tree.build(LinkParams::default());
        let (s, p) = first_trunk_cable(&topo);
        let mut sched = FaultSchedule::new();
        sched
            .degrade(500, s, p, 4, 10)
            .restore_rate(3000, s, p)
            .link_up(4000, s, p); // never went down -> skipped
        let report = tree_sim(sched, Mechanism::ccfit(), false).run();
        let f = report.faults.as_ref().expect("fault summary attached");
        assert_eq!(f.events_applied, 2);
        assert_eq!(f.events_skipped, 1);
        assert_eq!(f.reroutes, 0, "degradation does not change topology");
        assert_eq!(f.packets_lost(), 0, "degradation loses nothing");
        assert!(report.delivered_packets > 0);
    }

    #[test]
    fn fault_schedule_is_deterministic_across_fast_and_slow_paths() {
        use ccfit_topology::KAryNTree;
        let tree = KAryNTree::new(2, 3);
        let topo = tree.build(LinkParams::default());
        let (s, p) = first_trunk_cable(&topo);
        let make = || {
            let mut sched = FaultSchedule::new();
            sched
                .link_down(1500, s, p, FaultPolicy::FailStop)
                .link_up(6000, s, p);
            sched
        };
        let fast = tree_sim(make(), Mechanism::ccfit(), false).run();
        let slow = tree_sim(make(), Mechanism::ccfit(), true).run();
        assert_eq!(fast, slow, "fault handling must not break determinism");
    }

    #[test]
    fn voqnet_survives_link_failure_and_repair() {
        use ccfit_topology::KAryNTree;
        let tree = KAryNTree::new(2, 3);
        let topo = tree.build(LinkParams::default());
        let (s, p) = first_trunk_cable(&topo);
        let mut sched = FaultSchedule::new();
        sched
            .link_down(2000, s, p, FaultPolicy::FailStop)
            .link_up(7000, s, p);
        let mut sim = tree_sim(sched, Mechanism::voqnet(), false);
        sim.run_cycles(sim.end_cycle());
        let injected = sim.injected();
        let delivered = sim.delivered();
        let resident = sim.resident_packets() as u64;
        let report = sim.finish();
        let f = report.faults.as_ref().expect("fault summary attached");
        assert_eq!(f.events_applied, 2);
        assert_eq!(injected, delivered + resident + f.packets_lost());
    }

    #[test]
    fn report_name_combines_mechanism_and_pattern() {
        let report = SimBuilder::new(config1_topology())
            .mechanism(Mechanism::fbicm())
            .traffic(tiny_pattern())
            .duration_ns(50_000.0)
            .build()
            .run();
        assert_eq!(report.name, "FBICM/tiny");
        // Capacity: 7 nodes at 2.5 GB/s = 17.5 bytes/ns.
        assert!((report.reception_capacity_bytes_per_ns - 17.5).abs() < 1e-9);
    }
}
