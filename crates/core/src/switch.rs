//! The input-queued switch model (§III-A, §III-C).
//!
//! A [`Switch`] owns its input ports (RAM + queues + isolation state) and
//! output ports (congestion state + output CAM), and implements the four
//! per-cycle duties of a CCFIT switch:
//!
//! 1. **accept** arriving packets into the scheme's queues,
//! 2. **post-process**: detect congestion on NFQ occupancy, allocate
//!    CFQs/CAM lines, move congested packets out of the NFQ, drive the
//!    Stop/Go and allocation/deallocation protocol with the upstream hop,
//!    and maintain the CCFIT High/Low congestion-state counters,
//! 3. **schedule** the crossbar with iSLIP over the eligible queue heads,
//! 4. **transmit** winners onto their output links, FECN-marking packets
//!    that cross an output port in the congestion state.
//!
//! The same structure runs every mechanism of the paper — the queueing
//! scheme, the isolation machinery and the marking source are selected by
//! [`SwitchCfg`].

use crate::arbiter::Islip;
use crate::params::{IsolationParams, QueueingScheme};
use crate::port::{CfqState, InputQueues};
use ccfit_engine::cam::Cam;
use ccfit_engine::ids::{LinkId, NodeId, SwitchId};
use ccfit_engine::link::{CtrlEvent, Delivery, Link, LinkSlice};
use ccfit_engine::queue::QueuedPacket;
use ccfit_engine::ram::PortRam;
use ccfit_engine::units::Cycle;
use ccfit_metrics::{CcEvent, CcEventKind, EventClass, MetricsSink};
use ccfit_topology::RoutingTable;
use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::atomic::{AtomicU32, Ordering};

/// Where the congestion state of an output port comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkingSource {
    /// ITh: aggregate VOQ occupancy for the output crosses High/Low and
    /// the port has credits (root condition of the IB CC).
    VoqOccupancy,
    /// CCFIT: the count of *root* CFQs above the High threshold that
    /// drain through this output (§III-C).
    RootCfq,
}

/// Switch-side throttling (marking) configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchThrottle {
    /// Fraction of eligible packets marked.
    pub marking_rate: f64,
    /// `Packet_Size`: only larger packets are marked.
    pub packet_size_threshold_bytes: u32,
    /// High threshold in flits.
    pub high_flits: u32,
    /// Low threshold in flits.
    pub low_flits: u32,
    /// Root-CFQ congestion-state entry hysteresis, in cycles (CCFIT).
    pub entry_delay_cycles: Cycle,
    /// Root-CFQ drain-rate measurement window, in cycles (CCFIT).
    pub starvation_window_cycles: Cycle,
    /// What drives the congestion state.
    pub source: MarkingSource,
}

/// Switch-side behaviour of the modern (non-paper) congestion-control
/// schemes, derived from the mechanism's
/// [`crate::params::DetectionPolicy`]. Both act at the same place the
/// FECN marker does — the instant a packet wins arbitration for an
/// output — but on different header bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwitchCcMode {
    /// DCQCN-style RED/ECN marking on the aggregate per-output VOQ
    /// occupancy: mark with probability 0 below `kmin_flits`, ramping
    /// linearly to `pmax` at `kmax_flits`, and 1 above.
    Ecn {
        /// RED ramp start (flits queued for the output).
        kmin_flits: u32,
        /// RED ramp end: occupancy at/above this always marks.
        kmax_flits: u32,
        /// Marking probability at the top of the ramp.
        pmax: f64,
    },
    /// HPCC-style INT stamping: every data packet crossing an output
    /// folds the hop's utilization sample — queued flits plus flits
    /// transmitted in the current `window_cycles` window, over the
    /// bandwidth-delay product — into its `int_u` header field.
    Int {
        /// INT measurement window in cycles.
        window_cycles: u64,
    },
}

/// Static switch configuration derived from the mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCfg {
    /// Input queue organisation.
    pub scheme: QueueingScheme,
    /// Isolation parameters (FBICM/CCFIT).
    pub iso: Option<IsolationParams>,
    /// Marking configuration (ITh/CCFIT).
    pub thr: Option<SwitchThrottle>,
    /// MTU in flits (threshold unit).
    pub mtu_flits: u32,
    /// Input-port RAM in flits.
    pub ram_flits: u32,
    /// Reserved per-destination queue capacity in flits (VOQnet only).
    pub per_dest_queue_flits: u32,
    /// DBBM queues per port (DstMod scheme only).
    pub dbbm_queues: usize,
    /// Crossbar bandwidth in flits per cycle (Table I: 5 GB/s = 2 for
    /// Config #1, 2.5 GB/s = 1 for Configs #2/#3). An input port is busy
    /// for `size / crossbar_bw` cycles per transfer, so with speedup it
    /// can feed several outputs in the time one output link serializes a
    /// packet — without it, a trunk faster than the node links would
    /// overrun input FIFOs even when no output is contended.
    pub crossbar_bw_flits_per_cycle: u32,
    /// iSLIP iterations per cycle.
    pub islip_iterations: usize,
    /// Maximum NFQ→CFQ moves per input port per cycle (post-processing
    /// bandwidth).
    pub move_budget: u32,
    /// Modern-CC switch behaviour (ECN marking / INT stamping); `None`
    /// for the six paper mechanisms.
    pub cc: Option<SwitchCcMode>,
}

/// Output-port CAM payload: congestion info propagated from downstream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutCamState {
    /// Downstream CFQ asked us to pause this congested flow.
    pub stopped: bool,
}

/// One input port.
#[derive(Debug, Clone)]
pub struct InputPort {
    /// Cabled?
    pub connected: bool,
    /// Link delivering packets into this port (this switch is receiver).
    pub in_link: Option<LinkId>,
    /// The shared, dynamically partitioned port memory.
    pub ram: PortRam,
    /// Queue organisation.
    pub queues: InputQueues,
    /// Crossbar-input busy horizon.
    pub busy_until: Cycle,
}

/// One output port.
#[derive(Debug, Clone)]
pub struct OutputPort {
    /// Cabled?
    pub connected: bool,
    /// Link this port transmits on (this switch is sender).
    pub out_link: Option<LinkId>,
    /// Congestion info from downstream, keyed by congested destination.
    pub cam: Cam<NodeId, OutCamState>,
    /// Port is in the congestion state: crossing packets get FECN-marked.
    pub congested: bool,
    /// CCFIT: number of root CFQs above High draining through this port.
    pub over_high_count: u32,
    /// Cached bandwidth (flits/cycle) of `out_link`, so the starvation
    /// test in `isolation_tick` never reads a foreign shard's link. Set
    /// by the simulator at assembly and refreshed on degrade/restore
    /// fault events (which run in the serial fault phase).
    pub link_bw: u32,
    /// HPCC INT: index (`now / window_cycles`) of the measurement window
    /// `int_tx_flits` accumulates into. Rolled lazily at transmit time,
    /// so idle stretches (and the quiet-cycle fast-forward) cost nothing.
    pub int_win: u64,
    /// HPCC INT: flits transmitted in the current window.
    pub int_tx_flits: u64,
    /// HPCC INT: flits transmitted in the last *completed* window (zero
    /// if the port skipped a whole window).
    pub int_tx_last: u64,
}

/// Identifies a queue within an input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKey {
    /// The single queue (1Q).
    Single,
    /// VOQsw queue for an output.
    PerOutput(usize),
    /// VOQnet queue for a destination.
    PerDest(usize),
    /// The normal flow queue.
    Nfq,
    /// A congested flow queue slot.
    Cfq(usize),
}

/// A queue head eligible for arbitration.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    queue: QueueKey,
    out: usize,
    /// Head packet is a BECN: transmitted with priority (§III-B).
    becn: bool,
}

/// A transmission completed this cycle: the simulator schedules the RAM
/// release and upstream credit return at `at`.
#[derive(Debug, Clone, Copy)]
pub struct PendingRelease {
    /// Completion cycle (tail has left the port).
    pub at: Cycle,
    /// Input port index the packet departed from.
    pub port: usize,
    /// Flits to release.
    pub flits: u32,
    /// Packet destination (per-destination VOQnet credit return).
    pub dst: NodeId,
}

/// Packets destroyed by a fault purge (see DESIGN.md §8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PurgeStats {
    /// Data packets destroyed.
    pub data_packets: u64,
    /// Control (BECN) packets destroyed.
    pub ctrl_packets: u64,
}

impl PurgeStats {
    /// Tally one purged packet.
    pub fn note(&mut self, data: bool) {
        if data {
            self.data_packets += 1;
        } else {
            self.ctrl_packets += 1;
        }
    }
}

/// Per-link, per-destination reserved-buffer credits (VOQnet only; see
/// DESIGN.md §3).
///
/// A flat dense table indexed by `(link, dst)` — the hot paths (candidate
/// gathering, per-send debits, per-release credits) touch it every cycle,
/// so it must not hash. Entries default to *untracked* (the sentinel
/// `u32::MAX`): links whose receiver is not a switch input have no
/// per-destination reservation and always pass the credit check, matching
/// the old `HashMap`'s missing-key behaviour.
///
/// Cells are atomics accessed through `&self` so the parallel tick can
/// share the table across shard workers. All operations use relaxed
/// plain load/store pairs, *not* read-modify-write: the phase structure
/// guarantees each `(link, dst)` row is touched by exactly one thread
/// within a parallel section (the link's owning shard), with barriers
/// ordering the phases, so there is never a data race to resolve.
#[derive(Debug)]
pub struct VoqNetCredits {
    num_dests: usize,
    table: Vec<AtomicU32>,
}

impl Clone for VoqNetCredits {
    fn clone(&self) -> Self {
        Self {
            num_dests: self.num_dests,
            table: self
                .table
                .iter()
                .map(|c| AtomicU32::new(c.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

impl VoqNetCredits {
    /// Sentinel for an untracked `(link, dst)` pair.
    const UNTRACKED: u32 = u32::MAX;

    /// Build a table covering `num_links × num_dests`, all untracked.
    pub fn new(num_links: usize, num_dests: usize) -> Self {
        Self {
            num_dests,
            table: (0..num_links * num_dests)
                .map(|_| AtomicU32::new(Self::UNTRACKED))
                .collect(),
        }
    }

    fn idx(&self, link: u32, dst: u32) -> usize {
        link as usize * self.num_dests + dst as usize
    }

    /// Start tracking `(link, dst)` with `credits` flits of reserved space.
    pub fn set(&self, link: u32, dst: u32, credits: u32) {
        debug_assert_ne!(credits, Self::UNTRACKED);
        let i = self.idx(link, dst);
        self.table[i].store(credits, Ordering::Relaxed);
    }

    /// Current credits, or `None` if the pair is untracked.
    pub fn get(&self, link: u32, dst: u32) -> Option<u32> {
        match self.table[self.idx(link, dst)].load(Ordering::Relaxed) {
            Self::UNTRACKED => None,
            c => Some(c),
        }
    }

    /// Whether a packet of `flits` may be sent (untracked pairs always
    /// pass).
    pub fn has(&self, link: u32, dst: u32, flits: u32) -> bool {
        let c = self.table[self.idx(link, dst)].load(Ordering::Relaxed);
        c == Self::UNTRACKED || c >= flits
    }

    /// Return `flits` credits (no-op when untracked).
    pub fn add(&self, link: u32, dst: u32, flits: u32) {
        let cell = &self.table[self.idx(link, dst)];
        let c = cell.load(Ordering::Relaxed);
        if c != Self::UNTRACKED {
            debug_assert_ne!(c + flits, Self::UNTRACKED);
            cell.store(c + flits, Ordering::Relaxed);
        }
    }

    /// Debit `flits` credits (no-op when untracked).
    pub fn sub(&self, link: u32, dst: u32, flits: u32) {
        let cell = &self.table[self.idx(link, dst)];
        let c = cell.load(Ordering::Relaxed);
        if c != Self::UNTRACKED {
            cell.store(c - flits, Ordering::Relaxed);
        }
    }
}

/// The switch.
#[derive(Debug, Clone)]
pub struct Switch {
    /// This switch's id.
    pub id: SwitchId,
    cfg: SwitchCfg,
    /// Input ports, by port index.
    pub inputs: Vec<InputPort>,
    /// Output ports, by port index.
    pub outputs: Vec<OutputPort>,
    islip: Islip,
    /// Per-input round-robin pointer over that port's queues.
    queue_rr: Vec<usize>,
    marking_rng: SmallRng,
    num_dests: usize,
    /// Packets buffered across all input queues (mirror of
    /// `resident_packets()`, maintained incrementally for the active-set
    /// scheduler).
    buffered: usize,
    /// CFQs allocated across all input ports (mirror of
    /// `cfqs_allocated()`).
    cfq_count: usize,
    /// Output ports currently in the congestion state.
    congested_count: usize,
    /// Per-call arbitration scratch (no state between calls).
    arb: ArbScratch,
    /// Per-call control-event scratch.
    ctrl_scratch: Vec<CtrlEvent>,
    /// When set, every link this switch sends on (ctrl or data) is noted
    /// in `touched_links` so the sparse scheduler can activate it
    /// (DESIGN.md §12). Off on the dense paths: zero hot-path cost.
    record_touched: bool,
    /// Links sent on since the last [`Self::drain_touched_links`].
    touched_links: Vec<u32>,
}

/// Reusable buffers for `arbitrate_and_transmit` so the per-cycle hot
/// path does not allocate. Taken out of the switch with `mem::take` for
/// the duration of a call (borrow-splitting) and put back after.
#[derive(Debug, Clone, Default)]
struct ArbScratch {
    all_candidates: Vec<Vec<Candidate>>,
    requests: Vec<Vec<usize>>,
    in_free: Vec<bool>,
    out_free: Vec<bool>,
    matches: Vec<(usize, usize)>,
}

impl Switch {
    /// Build a switch. `wiring[p]` gives the directed links of port `p`
    /// (`None, None` for unconnected ports).
    pub fn new(
        id: SwitchId,
        cfg: SwitchCfg,
        wiring: &[(Option<LinkId>, Option<LinkId>)],
        num_dests: usize,
        marking_rng: SmallRng,
    ) -> Self {
        let num_ports = wiring.len();
        let num_cfqs = match cfg.scheme {
            QueueingScheme::DstMod => cfg.dbbm_queues,
            _ => cfg.iso.map_or(0, |i| i.num_cfqs),
        };
        let ram_flits = match cfg.scheme {
            QueueingScheme::PerDest => cfg.per_dest_queue_flits * num_dests as u32,
            _ => cfg.ram_flits,
        };
        let inputs = wiring
            .iter()
            .map(|&(in_link, _)| InputPort {
                connected: in_link.is_some(),
                in_link,
                ram: PortRam::new(ram_flits),
                queues: InputQueues::new(cfg.scheme, num_ports, num_dests, num_cfqs),
                busy_until: 0,
            })
            .collect();
        let out_cam_lines = cfg.iso.map_or(0, |i| i.out_cam_lines);
        let outputs = wiring
            .iter()
            .map(|&(_, out_link)| OutputPort {
                connected: out_link.is_some(),
                out_link,
                cam: Cam::new(out_cam_lines),
                congested: false,
                over_high_count: 0,
                link_bw: 1,
                int_win: 0,
                int_tx_flits: 0,
                int_tx_last: 0,
            })
            .collect();
        let islip = Islip::new(num_ports, cfg.islip_iterations);
        Self {
            id,
            cfg,
            inputs,
            outputs,
            islip,
            queue_rr: vec![0; num_ports],
            marking_rng,
            num_dests,
            buffered: 0,
            cfq_count: 0,
            congested_count: 0,
            arb: ArbScratch {
                all_candidates: vec![Vec::new(); num_ports],
                requests: vec![Vec::new(); num_ports],
                in_free: vec![false; num_ports],
                out_free: vec![false; num_ports],
                matches: Vec::new(),
            },
            ctrl_scratch: Vec::new(),
            record_touched: false,
            touched_links: Vec::new(),
        }
    }

    /// Static configuration.
    pub fn cfg(&self) -> &SwitchCfg {
        &self.cfg
    }

    /// Input-port RAM capacity in flits (the credits a sender gets).
    pub fn input_ram_flits(&self) -> u32 {
        self.inputs[0].ram.capacity()
    }

    /// Refresh the cached bandwidth of output `port`'s link (assembly,
    /// and the serial fault phase after a degrade/restore event).
    pub fn set_output_link_bw(&mut self, port: usize, bw_flits_per_cycle: u32) {
        self.outputs[port].link_bw = bw_flits_per_cycle;
    }

    /// Accept a packet delivered on input `port`. BECN notification
    /// packets travel the normal data path but only ever use the NFQ
    /// (§III-B).
    pub fn accept_delivery(&mut self, port: usize, d: Delivery, routing: &RoutingTable) {
        self.buffered += 1;
        let input = &mut self.inputs[port];
        input
            .ram
            .reserve(d.packet.size_flits)
            .expect("credit flow control guarantees RAM space");
        match &mut input.queues {
            InputQueues::Single(q) => q.push(d.packet, d.visible_at, d.ready_at),
            InputQueues::PerOutput(qs) => {
                let out = routing.route(self.id, d.packet.dst).index();
                qs[out].push(d.packet, d.visible_at, d.ready_at);
            }
            InputQueues::PerDest(qs) => {
                qs[d.packet.dst.index()].push(d.packet, d.visible_at, d.ready_at)
            }
            InputQueues::DstMod(qs) => {
                let q = d.packet.dst.index() % qs.len();
                qs[q].push(d.packet, d.visible_at, d.ready_at)
            }
            InputQueues::Isolating { nfq, .. } => nfq.push(d.packet, d.visible_at, d.ready_at),
        }
    }

    /// Drain control events arriving at the output ports (congestion info
    /// propagated upstream by the downstream switch/adapter).
    pub fn poll_output_ctrl<M: MetricsSink>(
        &mut self,
        now: Cycle,
        links: &mut [Link],
        metrics: &mut M,
    ) {
        self.poll_output_ctrl_ls(now, &mut LinkSlice::new(links), metrics)
    }

    /// [`Switch::poll_output_ctrl`] against a [`LinkSlice`] view. Only
    /// touches this switch's own output links (shard-safe).
    pub fn poll_output_ctrl_ls<M: MetricsSink>(
        &mut self,
        now: Cycle,
        links: &mut LinkSlice<'_>,
        metrics: &mut M,
    ) {
        let sw = self.id.0;
        let scratch = &mut self.ctrl_scratch;
        for (o, out) in self.outputs.iter_mut().enumerate() {
            let Some(link) = out.out_link else { continue };
            if !links[link.index()].has_ctrl(now) {
                continue;
            }
            scratch.clear();
            links[link.index()].poll_ctrl_into(now, scratch);
            for &ev in scratch.iter() {
                match ev {
                    CtrlEvent::CfqAlloc { dst } => {
                        if out.cam.lookup(dst).is_none()
                            && out
                                .cam
                                .allocate(dst, OutCamState { stopped: false })
                                .is_err()
                        {
                            metrics.count("out_cam_exhausted", 1);
                            if metrics.wants_events(EventClass::CAM) {
                                metrics.cc_event(CcEvent {
                                    at: now,
                                    kind: CcEventKind::CamExhausted {
                                        sw,
                                        port: o as u32,
                                        dst: dst.0,
                                    },
                                });
                            }
                        }
                    }
                    CtrlEvent::CfqDealloc { dst } => {
                        if let Some(idx) = out.cam.lookup(dst) {
                            out.cam.free(idx);
                        }
                    }
                    CtrlEvent::Stop { dst } => {
                        if let Some(idx) = out.cam.lookup(dst) {
                            out.cam.get_mut(idx).unwrap().value.stopped = true;
                        } else if out
                            .cam
                            .allocate(dst, OutCamState { stopped: true })
                            .is_err()
                        {
                            metrics.count("out_cam_exhausted", 1);
                            if metrics.wants_events(EventClass::CAM) {
                                metrics.cc_event(CcEvent {
                                    at: now,
                                    kind: CcEventKind::CamExhausted {
                                        sw,
                                        port: o as u32,
                                        dst: dst.0,
                                    },
                                });
                            }
                        }
                        metrics.count("stops_received", 1);
                        if metrics.wants_events(EventClass::STOP_GO) {
                            metrics.cc_event(CcEvent {
                                at: now,
                                kind: CcEventKind::StopReceived {
                                    sw,
                                    port: o as u32,
                                    dst: dst.0,
                                },
                            });
                        }
                    }
                    CtrlEvent::Go { dst } => {
                        if let Some(idx) = out.cam.lookup(dst) {
                            out.cam.get_mut(idx).unwrap().value.stopped = false;
                        }
                        metrics.count("gos_received", 1);
                        if metrics.wants_events(EventClass::STOP_GO) {
                            metrics.cc_event(CcEvent {
                                at: now,
                                kind: CcEventKind::GoReceived {
                                    sw,
                                    port: o as u32,
                                    dst: dst.0,
                                },
                            });
                        }
                    }
                }
            }
        }
    }

    /// Is the congested flow `dst` draining through `out` currently
    /// stopped by the downstream hop?
    fn downstream_stopped(&self, out: usize, dst: NodeId) -> bool {
        let cam = &self.outputs[out].cam;
        cam.lookup(dst)
            .map(|i| cam.get(i).unwrap().value.stopped)
            .unwrap_or(false)
    }

    /// The isolation duties of the post-processing stage (§III-C): runs
    /// only when the mechanism isolates congested flows.
    pub fn isolation_tick<M: MetricsSink>(
        &mut self,
        now: Cycle,
        routing: &RoutingTable,
        links: &mut [Link],
        metrics: &mut M,
    ) {
        self.isolation_tick_ls(now, routing, &mut LinkSlice::new(links), metrics)
    }

    /// [`Switch::isolation_tick`] against a [`LinkSlice`] view. Only
    /// touches this switch's own input links — control propagation goes
    /// upstream on `in_link` — so it is shard-safe.
    pub fn isolation_tick_ls<M: MetricsSink>(
        &mut self,
        now: Cycle,
        routing: &RoutingTable,
        links: &mut LinkSlice<'_>,
        metrics: &mut M,
    ) {
        let Some(iso) = self.cfg.iso else { return };
        let mtu = self.cfg.mtu_flits;
        let detect_flits = iso.detect_threshold_mtus * mtu;
        let propagate_flits = iso.propagate_threshold_mtus * mtu;
        let stop_flits = iso.stop_mtus * mtu;
        let go_flits = iso.go_mtus * mtu;
        let high_low = self.cfg.thr.filter(|t| t.source == MarkingSource::RootCfq);

        for port in 0..self.inputs.len() {
            if !self.inputs[port].connected {
                continue;
            }
            // ------- congestion detection (§III-C event #2) -------
            //
            // When the NFQ fill level crosses the detection threshold,
            // identify the congested destination and allocate a CFQ + CAM
            // line for it. Packets that already match a CFQ or a
            // propagated output-CAM line are about to be isolated anyway,
            // so only *unisolated* traffic counts — otherwise the residue
            // of an already-detected hotspot gets mis-attributed to
            // whatever victim packet sits at the head (allocating a CFQ
            // for a non-congested destination and, in CCFIT, marking and
            // throttling the victim).
            let nfq_occ = {
                let InputQueues::Isolating { nfq, .. } = &self.inputs[port].queues else {
                    unreachable!("isolation_tick on non-isolating scheme")
                };
                nfq.occupancy_flits()
            };
            if nfq_occ >= detect_flits {
                // Tally unisolated flits per destination (the NFQ holds at
                // most RAM/MTU packets, so this scan is tiny).
                let mut tally: Vec<(NodeId, u32)> = Vec::new();
                let mut unmatched_total = 0u32;
                {
                    let InputQueues::Isolating { nfq, cfqs } = &self.inputs[port].queues else {
                        unreachable!()
                    };
                    for e in nfq.iter() {
                        if !e.packet.is_data() {
                            continue;
                        }
                        let dst = e.packet.dst;
                        if cfqs
                            .iter()
                            .any(|c| matches!(c.state, Some(s) if s.dst == dst))
                        {
                            continue;
                        }
                        let out = routing.route(self.id, dst).index();
                        if self.outputs[out].cam.lookup(dst).is_some() {
                            continue;
                        }
                        unmatched_total += e.packet.size_flits;
                        match tally.iter_mut().find(|(d, _)| *d == dst) {
                            Some((_, f)) => *f += e.packet.size_flits,
                            None => tally.push((dst, e.packet.size_flits)),
                        }
                    }
                }
                if unmatched_total >= detect_flits {
                    // The congested destination is the one dominating the
                    // unisolated backlog.
                    let (dst, _) = *tally
                        .iter()
                        .max_by_key(|(_, f)| *f)
                        .expect("unmatched_total > 0 implies a tally entry");
                    let out = routing.route(self.id, dst).index();
                    match self.inputs[port].queues.cfq_free_slot() {
                        Some(free) => {
                            let InputQueues::Isolating { cfqs, .. } = &mut self.inputs[port].queues
                            else {
                                unreachable!()
                            };
                            // Locally detected => this switch is 1 hop from
                            // the congestion point: a root CFQ.
                            cfqs[free].state = Some(CfqState::new(dst, out, true));
                            self.cfq_count += 1;
                            metrics.count("cfq_allocated", 1);
                            metrics.count("congestion_detected", 1);
                            metrics.count(
                                &format!("detected_sw{}_in{}_dst{}", self.id.0, port, dst.0),
                                1,
                            );
                            if metrics.wants_events(EventClass::CFQ) {
                                metrics.cc_event(CcEvent {
                                    at: now,
                                    kind: CcEventKind::CfqAlloc {
                                        sw: self.id.0,
                                        port: port as u32,
                                        dst: dst.0,
                                        root: true,
                                    },
                                });
                            }
                            if std::env::var_os("CCFIT_TRACE_DETECT").is_some() {
                                eprintln!(
                                    "[{} cyc] detect sw{} in{} dst{} unmatched={} nfq_occ={}",
                                    now, self.id.0, port, dst.0, unmatched_total, nfq_occ
                                );
                            }
                        }
                        None => {
                            // The FBICM failure mode (Fig. 8b/c): no CFQ
                            // left, congested packets stay in the NFQ and
                            // HoL-block everything behind them.
                            metrics.count("cfq_exhausted", 1);
                            if metrics.wants_events(EventClass::CFQ) {
                                metrics.cc_event(CcEvent {
                                    at: now,
                                    kind: CcEventKind::CfqExhausted {
                                        sw: self.id.0,
                                        port: port as u32,
                                        dst: dst.0,
                                    },
                                });
                            }
                        }
                    }
                }
            }

            // ------- head post-processing: move congested packets -------
            for _ in 0..self.cfg.move_budget {
                let dst = {
                    let InputQueues::Isolating { nfq, .. } = &self.inputs[port].queues else {
                        unreachable!()
                    };
                    let Some(head) = nfq.head_visible(now) else {
                        break;
                    };
                    if !head.packet.is_data() {
                        break; // BECNs only use NFQs (§III-B), never CFQs
                    }
                    head.packet.dst
                };
                let out = routing.route(self.id, dst).index();
                let existing = self.inputs[port].queues.cfq_lookup(dst);
                let out_cam_hit = self.outputs[out].cam.lookup(dst).is_some();
                let slot = match existing {
                    Some(s) => Some(s),
                    None if out_cam_hit => {
                        // A congestion tree propagated from downstream:
                        // isolate its packets here too (non-root CFQ).
                        match self.inputs[port].queues.cfq_free_slot() {
                            Some(free) => {
                                let InputQueues::Isolating { cfqs, .. } =
                                    &mut self.inputs[port].queues
                                else {
                                    unreachable!()
                                };
                                cfqs[free].state = Some(CfqState::new(dst, out, false));
                                self.cfq_count += 1;
                                metrics.count("cfq_allocated", 1);
                                if metrics.wants_events(EventClass::CFQ) {
                                    metrics.cc_event(CcEvent {
                                        at: now,
                                        kind: CcEventKind::CfqAlloc {
                                            sw: self.id.0,
                                            port: port as u32,
                                            dst: dst.0,
                                            root: false,
                                        },
                                    });
                                }
                                Some(free)
                            }
                            None => {
                                metrics.count("cfq_exhausted", 1);
                                if metrics.wants_events(EventClass::CFQ) {
                                    metrics.cc_event(CcEvent {
                                        at: now,
                                        kind: CcEventKind::CfqExhausted {
                                            sw: self.id.0,
                                            port: port as u32,
                                            dst: dst.0,
                                        },
                                    });
                                }
                                None
                            }
                        }
                    }
                    None => None,
                };
                match slot {
                    Some(s) => {
                        let InputQueues::Isolating { nfq, cfqs } = &mut self.inputs[port].queues
                        else {
                            unreachable!()
                        };
                        let entry = nfq.pop().expect("head exists");
                        cfqs[s]
                            .queue
                            .push(entry.packet, entry.visible_at, entry.ready_at);
                        metrics.count("packets_isolated", 1);
                    }
                    None => break, // head is non-congested (or unisolatable)
                }
            }

            // ------- per-CFQ protocol: propagate / stop / go / high-low /
            // dealloc -------
            let in_link = self.inputs[port].in_link;
            let num_cfqs = iso.num_cfqs;
            for c in 0..num_cfqs {
                let (occ, mut st) = {
                    let InputQueues::Isolating { cfqs, .. } = &self.inputs[port].queues else {
                        unreachable!()
                    };
                    let Some(st) = cfqs[c].state else { continue };
                    (cfqs[c].queue.occupancy_flits(), st)
                };
                // Congestion-information propagation upstream.
                if let Some(link) = in_link {
                    if !st.alloc_sent && occ >= propagate_flits {
                        self.send_ctrl_noting(
                            links,
                            link,
                            now,
                            CtrlEvent::CfqAlloc { dst: st.dst },
                        );
                        st.alloc_sent = true;
                        metrics.count("allocs_propagated", 1);
                        if metrics.wants_events(EventClass::CFQ) {
                            metrics.cc_event(CcEvent {
                                at: now,
                                kind: CcEventKind::AllocPropagated {
                                    sw: self.id.0,
                                    port: port as u32,
                                    dst: st.dst.0,
                                },
                            });
                        }
                    }
                    if !st.stop_sent && occ >= stop_flits {
                        if !st.alloc_sent {
                            self.send_ctrl_noting(
                                links,
                                link,
                                now,
                                CtrlEvent::CfqAlloc { dst: st.dst },
                            );
                            st.alloc_sent = true;
                        }
                        self.send_ctrl_noting(links, link, now, CtrlEvent::Stop { dst: st.dst });
                        st.stop_sent = true;
                        metrics.count("stops_sent", 1);
                        if metrics.wants_events(EventClass::STOP_GO) {
                            metrics.cc_event(CcEvent {
                                at: now,
                                kind: CcEventKind::StopSent {
                                    sw: self.id.0,
                                    port: port as u32,
                                    dst: st.dst.0,
                                },
                            });
                        }
                    }
                    if st.stop_sent && occ <= go_flits {
                        self.send_ctrl_noting(links, link, now, CtrlEvent::Go { dst: st.dst });
                        st.stop_sent = false;
                        metrics.count("gos_sent", 1);
                        if metrics.wants_events(EventClass::STOP_GO) {
                            metrics.cc_event(CcEvent {
                                at: now,
                                kind: CcEventKind::GoSent {
                                    sw: self.id.0,
                                    port: port as u32,
                                    dst: st.dst.0,
                                },
                            });
                        }
                    }
                }
                // CCFIT congestion state: root CFQs *persistently* above
                // High move the output port into the congestion state;
                // below Low they leave it. Two refinements reject false
                // roots: an entry delay (the High excursion must be
                // sustained), and a starvation test (the CFQ must be
                // receiving clearly less than its output link's capacity,
                // which a genuinely oversubscribed root always is).
                if let Some(thr) = high_low {
                    if st.root {
                        // Periodic drain-rate evaluation.
                        if now.saturating_sub(st.window_start) >= thr.starvation_window_cycles {
                            // Cached at assembly / fault-phase: reading the
                            // out-link's live config here would cross into
                            // another shard's links.
                            let out_bw = self.outputs[st.out_port].link_bw;
                            let capacity = (now - st.window_start) as f64 * out_bw as f64;
                            st.starved = (st.granted_window as f64) < 0.9 * capacity;
                            st.granted_window = 0;
                            st.window_start = now;
                        }
                        if occ >= thr.high_flits && st.starved {
                            let since = *st.over_high_since.get_or_insert(now);
                            if !st.over_high && now - since >= thr.entry_delay_cycles {
                                st.over_high = true;
                                self.outputs[st.out_port].over_high_count += 1;
                            }
                        } else if occ < thr.low_flits || !st.starved {
                            st.over_high_since = None;
                            if st.over_high && occ < thr.low_flits {
                                st.over_high = false;
                                self.outputs[st.out_port].over_high_count -= 1;
                            }
                        }
                    }
                }
                // Deallocation: the congestion tree has vanished when the
                // CFQ has stayed calm (below the propagation threshold)
                // for the linger period; release at a moment it is empty
                // and in Go status both ways.
                if occ < propagate_flits {
                    if st.calm_since.is_none() {
                        st.calm_since = Some(now);
                    }
                    let lingered = st
                        .calm_since
                        .is_some_and(|s| now.saturating_sub(s) >= iso.dealloc_linger_cycles);
                    let stopped_down = self.downstream_stopped(st.out_port, st.dst);
                    if occ == 0 && lingered && !stopped_down {
                        if let Some(link) = in_link {
                            if st.stop_sent {
                                self.send_ctrl_noting(
                                    links,
                                    link,
                                    now,
                                    CtrlEvent::Go { dst: st.dst },
                                );
                            }
                            if st.alloc_sent {
                                self.send_ctrl_noting(
                                    links,
                                    link,
                                    now,
                                    CtrlEvent::CfqDealloc { dst: st.dst },
                                );
                            }
                        }
                        if st.over_high {
                            self.outputs[st.out_port].over_high_count -= 1;
                        }
                        let InputQueues::Isolating { cfqs, .. } = &mut self.inputs[port].queues
                        else {
                            unreachable!()
                        };
                        cfqs[c].state = None;
                        self.cfq_count -= 1;
                        metrics.count("cfq_deallocated", 1);
                        if metrics.wants_events(EventClass::CFQ) {
                            metrics.cc_event(CcEvent {
                                at: now,
                                kind: CcEventKind::CfqDealloc {
                                    sw: self.id.0,
                                    port: port as u32,
                                    dst: st.dst.0,
                                },
                            });
                        }
                        continue;
                    }
                } else {
                    st.calm_since = None;
                }
                // Write back the updated state.
                let InputQueues::Isolating { cfqs, .. } = &mut self.inputs[port].queues else {
                    unreachable!()
                };
                cfqs[c].state = Some(st);
            }
        }
    }

    /// Update each output port's congestion state, emitting
    /// enter/leave events on transitions when the sink asks for them.
    pub fn congestion_state_tick<M: MetricsSink>(
        &mut self,
        now: Cycle,
        links: &[Link],
        metrics: &mut M,
    ) {
        self.congestion_state_tick_inner(now, |i| links[i].credits(), metrics)
    }

    /// [`Switch::congestion_state_tick`] against a [`LinkSlice`] view.
    /// Only reads this switch's own output links (shard-safe).
    pub fn congestion_state_tick_ls<M: MetricsSink>(
        &mut self,
        now: Cycle,
        links: &LinkSlice<'_>,
        metrics: &mut M,
    ) {
        self.congestion_state_tick_inner(now, |i| links[i].credits(), metrics)
    }

    /// Summed occupancy of the root CFQs draining through output `out`
    /// — the queue backlog behind a RootCfq congestion-state decision.
    /// Only called on state transitions, so the scan stays off the hot
    /// path.
    fn root_cfq_occupancy_flits(&self, out: usize) -> u32 {
        self.inputs
            .iter()
            .map(|inp| match &inp.queues {
                InputQueues::Isolating { cfqs, .. } => cfqs
                    .iter()
                    .filter(|c| matches!(c.state, Some(st) if st.root && st.out_port == out))
                    .map(|c| c.queue.occupancy_flits())
                    .sum(),
                _ => 0,
            })
            .sum()
    }

    fn congestion_state_tick_inner<M: MetricsSink>(
        &mut self,
        now: Cycle,
        link_credits: impl Fn(usize) -> u32,
        metrics: &mut M,
    ) {
        let Some(thr) = self.cfg.thr else { return };
        match thr.source {
            MarkingSource::RootCfq => {
                for o in 0..self.outputs.len() {
                    let congested = self.outputs[o].over_high_count > 0;
                    if congested != self.outputs[o].congested {
                        self.outputs[o].congested = congested;
                        if congested {
                            self.congested_count += 1;
                        } else {
                            self.congested_count -= 1;
                        }
                        if metrics.wants_events(EventClass::CONGESTION) {
                            let occupancy_flits = self.root_cfq_occupancy_flits(o);
                            let kind = if congested {
                                CcEventKind::CongestionEnter {
                                    sw: self.id.0,
                                    port: o as u32,
                                    occupancy_flits,
                                }
                            } else {
                                CcEventKind::CongestionLeave {
                                    sw: self.id.0,
                                    port: o as u32,
                                    occupancy_flits,
                                }
                            };
                            metrics.cc_event(CcEvent { at: now, kind });
                        }
                    }
                }
            }
            MarkingSource::VoqOccupancy => {
                for o in 0..self.outputs.len() {
                    if !self.outputs[o].connected {
                        continue;
                    }
                    let occ: u32 = self
                        .inputs
                        .iter()
                        .map(|inp| match &inp.queues {
                            InputQueues::PerOutput(qs) => qs[o].occupancy_flits(),
                            _ => 0,
                        })
                        .sum();
                    let out = &mut self.outputs[o];
                    if !out.congested {
                        // Root condition: the port can still forward
                        // (it has credits), so it is the tree root rather
                        // than a victim of spreading.
                        let has_credits = out
                            .out_link
                            .is_some_and(|l| link_credits(l.index()) >= self.cfg.mtu_flits);
                        if occ >= thr.high_flits && has_credits {
                            out.congested = true;
                            self.congested_count += 1;
                            if metrics.wants_events(EventClass::CONGESTION) {
                                metrics.cc_event(CcEvent {
                                    at: now,
                                    kind: CcEventKind::CongestionEnter {
                                        sw: self.id.0,
                                        port: o as u32,
                                        occupancy_flits: occ,
                                    },
                                });
                            }
                        }
                    } else if occ <= thr.low_flits {
                        out.congested = false;
                        self.congested_count -= 1;
                        if metrics.wants_events(EventClass::CONGESTION) {
                            metrics.cc_event(CcEvent {
                                at: now,
                                kind: CcEventKind::CongestionLeave {
                                    sw: self.id.0,
                                    port: o as u32,
                                    occupancy_flits: occ,
                                },
                            });
                        }
                    }
                }
            }
        }
    }

    /// Aggregate VOQ backlog for output `out` across the input ports —
    /// the same on-demand sum the ITh congestion detector uses. Both
    /// modern CC schemes run on [`QueueingScheme::PerOutput`], so other
    /// queue organisations contribute zero; computing it stateless keeps
    /// purge/fault paths free of marking bookkeeping.
    fn output_voq_occupancy_flits(&self, out: usize) -> u32 {
        self.inputs
            .iter()
            .map(|inp| match &inp.queues {
                InputQueues::PerOutput(qs) => qs[out].occupancy_flits(),
                _ => 0,
            })
            .sum()
    }

    /// Gather eligible queue heads at one input port into `out`.
    fn candidates_into(
        &self,
        port: usize,
        now: Cycle,
        routing: &RoutingTable,
        links: &LinkSlice<'_>,
        voqnet: Option<&VoqNetCredits>,
        out: &mut Vec<Candidate>,
    ) {
        let input = &self.inputs[port];
        if input.busy_until > now {
            return;
        }
        let consider =
            |queue: QueueKey, head: &QueuedPacket, out_port: usize, acc: &mut Vec<Candidate>| {
                let output = &self.outputs[out_port];
                let Some(link) = output.out_link else { return };
                let link = &links[link.index()];
                if !link.can_send(now, head.packet.size_flits) {
                    return;
                }
                if let Some(vn) = voqnet {
                    // Per-destination reserved space downstream (switch hops
                    // only; node sinks consume at line rate).
                    if !vn.has(
                        output.out_link.unwrap().0,
                        head.packet.dst.0,
                        head.packet.size_flits,
                    ) {
                        return;
                    }
                }
                acc.push(Candidate {
                    queue,
                    out: out_port,
                    // CNPs and ACKs inherit the BECN transmission
                    // priority: all three are 1-flit feedback packets
                    // whose latency is the control loop's delay.
                    becn: head.packet.is_ctrl(),
                });
            };
        match &input.queues {
            InputQueues::Single(q) => {
                if let Some(h) = q.head_visible(now) {
                    let o = routing.route(self.id, h.packet.dst).index();
                    consider(QueueKey::Single, h, o, out);
                }
            }
            InputQueues::PerOutput(qs) => {
                for (o, q) in qs.iter().enumerate() {
                    if let Some(h) = q.head_visible(now) {
                        consider(QueueKey::PerOutput(o), h, o, out);
                    }
                }
            }
            InputQueues::PerDest(qs) => {
                for (d, q) in qs.iter().enumerate() {
                    if let Some(h) = q.head_visible(now) {
                        let o = routing.route(self.id, NodeId::from(d)).index();
                        consider(QueueKey::PerDest(d), h, o, out);
                    }
                }
            }
            InputQueues::DstMod(qs) => {
                for (qi, q) in qs.iter().enumerate() {
                    if let Some(h) = q.head_visible(now) {
                        let o = routing.route(self.id, h.packet.dst).index();
                        consider(QueueKey::PerDest(qi), h, o, out);
                    }
                }
            }
            InputQueues::Isolating { nfq, cfqs } => {
                if let Some(h) = nfq.head_visible(now) {
                    // Post-processing guarantees only non-congested heads
                    // compete from the NFQ (§III-C): a head matching an
                    // allocated CFQ is awaiting its move and must not
                    // bypass through the normal path (it would corrupt
                    // in-CFQ ordering accounting and the CFQ drain-rate
                    // measurement). Heads that *cannot* be isolated (CFQs
                    // exhausted) do compete — that is FBICM's HoL failure
                    // mode.
                    let awaiting_move = h.packet.is_data()
                        && cfqs
                            .iter()
                            .any(|c| matches!(c.state, Some(s) if s.dst == h.packet.dst));
                    if !awaiting_move {
                        let o = routing.route(self.id, h.packet.dst).index();
                        consider(QueueKey::Nfq, h, o, out);
                    }
                }
                for (c, slot) in cfqs.iter().enumerate() {
                    let Some(st) = slot.state else { continue };
                    if self.downstream_stopped(st.out_port, st.dst) {
                        continue; // Stop/Go flow control pauses this CFQ.
                    }
                    if let Some(h) = slot.queue.head_visible(now) {
                        consider(QueueKey::Cfq(c), h, st.out_port, out);
                    }
                }
            }
        }
    }

    /// Pop the head of a queue.
    fn pop_queue(&mut self, port: usize, key: QueueKey) -> QueuedPacket {
        self.buffered -= 1;
        let input = &mut self.inputs[port];
        let entry = match (&mut input.queues, key) {
            (InputQueues::Single(q), QueueKey::Single) => q.pop(),
            (InputQueues::PerOutput(qs), QueueKey::PerOutput(o)) => qs[o].pop(),
            (InputQueues::PerDest(qs), QueueKey::PerDest(d)) => qs[d].pop(),
            (InputQueues::DstMod(qs), QueueKey::PerDest(q)) => qs[q].pop(),
            (InputQueues::Isolating { nfq, .. }, QueueKey::Nfq) => nfq.pop(),
            (InputQueues::Isolating { cfqs, .. }, QueueKey::Cfq(c)) => cfqs[c].queue.pop(),
            _ => unreachable!("queue key does not match the scheme"),
        };
        entry.expect("candidate queue cannot be empty")
    }

    /// Run iSLIP and start the winning transmissions. Returns the RAM
    /// releases to schedule. `voqnet` per-destination credits are debited
    /// here for the packets sent.
    pub fn arbitrate_and_transmit<M: MetricsSink>(
        &mut self,
        now: Cycle,
        routing: &RoutingTable,
        links: &mut [Link],
        voqnet: Option<&VoqNetCredits>,
        metrics: &mut M,
    ) -> Vec<PendingRelease> {
        let mut releases = Vec::new();
        self.arbitrate_and_transmit_into(now, routing, links, voqnet, metrics, &mut releases);
        releases
    }

    /// Allocation-free `arbitrate_and_transmit`: append the RAM releases
    /// to `releases`, reusing scratch kept inside the switch.
    pub fn arbitrate_and_transmit_into<M: MetricsSink>(
        &mut self,
        now: Cycle,
        routing: &RoutingTable,
        links: &mut [Link],
        voqnet: Option<&VoqNetCredits>,
        metrics: &mut M,
        releases: &mut Vec<PendingRelease>,
    ) {
        self.arbitrate_and_transmit_ls(
            now,
            routing,
            &mut LinkSlice::new(links),
            voqnet,
            metrics,
            releases,
        )
    }

    /// [`Switch::arbitrate_and_transmit_into`] against a [`LinkSlice`]
    /// view. Only touches this switch's own output links (shard-safe).
    pub fn arbitrate_and_transmit_ls<M: MetricsSink>(
        &mut self,
        now: Cycle,
        routing: &RoutingTable,
        links: &mut LinkSlice<'_>,
        voqnet: Option<&VoqNetCredits>,
        metrics: &mut M,
        releases: &mut Vec<PendingRelease>,
    ) {
        if self.buffered == 0 {
            // No packet anywhere: no candidates, no requests, and iSLIP
            // with an empty request set makes no matches and moves no
            // pointers, so skipping it outright is behavior-identical.
            debug_assert_eq!(self.resident_packets(), 0);
            return;
        }
        let num_ports = self.inputs.len();
        // Borrow-split: take the scratch out of `self` so `self` stays
        // free for `candidates_into` / `islip` below; put it back at the
        // end.
        let mut arb = std::mem::take(&mut self.arb);
        for port in 0..num_ports {
            let cands = &mut arb.all_candidates[port];
            cands.clear();
            self.candidates_into(port, now, routing, links, voqnet, cands);
            let req = &mut arb.requests[port];
            req.clear();
            req.extend(cands.iter().map(|c| c.out));
            req.sort_unstable();
            req.dedup();
        }
        arb.in_free.clear();
        arb.in_free.extend(
            (0..num_ports)
                .map(|p| self.inputs[p].busy_until <= now && !arb.all_candidates[p].is_empty()),
        );
        arb.out_free.clear();
        arb.out_free.extend((0..num_ports).map(|o| {
            self.outputs[o]
                .out_link
                .is_some_and(|l| links[l.index()].tx_idle(now))
        }));
        arb.matches.clear();
        self.islip
            .schedule_into(&arb.requests, &arb.in_free, &arb.out_free, &mut arb.matches);

        for &(port, out) in &arb.matches {
            // Choose which of the port's queues serves this output:
            // round-robin over the queue list for intra-port fairness.
            // BECNs have transmission priority (§III-B); otherwise round
            // robin over the port's queues. Two passes over the (tiny)
            // candidate list avoid collecting the matching subset.
            let port_cands = &arb.all_candidates[port];
            let count = port_cands.iter().filter(|c| c.out == out).count();
            debug_assert!(count > 0);
            let pick = port_cands
                .iter()
                .filter(|c| c.out == out)
                .find(|c| c.becn)
                .copied()
                .unwrap_or_else(|| {
                    port_cands
                        .iter()
                        .filter(|c| c.out == out)
                        .nth(self.queue_rr[port] % count)
                        .copied()
                        .expect("count > 0")
                });
            self.queue_rr[port] = self.queue_rr[port].wrapping_add(1);

            let mut entry = self.pop_queue(port, pick.queue);
            if let QueueKey::Cfq(c) = pick.queue {
                if let InputQueues::Isolating { cfqs, .. } = &mut self.inputs[port].queues {
                    if let Some(st) = &mut cfqs[c].state {
                        st.granted_window += entry.packet.size_flits;
                    }
                }
            }
            // FECN marking at a congested output (§III-C event #7).
            if let Some(thr) = self.cfg.thr {
                if self.outputs[out].congested
                    && entry.packet.is_data()
                    && entry.packet.size_bytes > thr.packet_size_threshold_bytes
                    && self.marking_rng.random::<f64>() < thr.marking_rate
                {
                    entry.packet.fecn = true;
                    metrics.count("fecn_marked", 1);
                    metrics.count(
                        &format!(
                            "fecn_marked_sw{}_out{}_dst{}",
                            self.id.0, out, entry.packet.dst.0
                        ),
                        1,
                    );
                    if metrics.wants_events(EventClass::FECN) {
                        metrics.cc_event(CcEvent {
                            at: now,
                            kind: CcEventKind::FecnMark {
                                sw: self.id.0,
                                port: out as u32,
                                dst: entry.packet.dst.0,
                                flow: entry.packet.flow.0,
                            },
                        });
                    }
                }
            }
            // Modern-CC header work at the same adjudication point
            // (ECN-CE marking / INT stamping). Shard-safe for the same
            // reason the FECN marker is: only this switch's own state
            // (queues, RNG, output counters) is touched.
            match self.cfg.cc {
                Some(SwitchCcMode::Ecn {
                    kmin_flits,
                    kmax_flits,
                    pmax,
                }) if entry.packet.is_data() => {
                    let occ = self.output_voq_occupancy_flits(out);
                    let p = if occ >= kmax_flits {
                        1.0
                    } else if occ > kmin_flits {
                        pmax * f64::from(occ - kmin_flits) / f64::from(kmax_flits - kmin_flits)
                    } else {
                        0.0
                    };
                    if p > 0.0 && self.marking_rng.random::<f64>() < p {
                        entry.packet.ecn = true;
                        metrics.count("ecn_marked", 1);
                        if metrics.wants_events(EventClass::ECN) {
                            metrics.cc_event(CcEvent {
                                at: now,
                                kind: CcEventKind::EcnMark {
                                    sw: self.id.0,
                                    port: out as u32,
                                    dst: entry.packet.dst.0,
                                    occupancy_flits: occ,
                                },
                            });
                        }
                    }
                }
                Some(SwitchCcMode::Int { window_cycles }) => {
                    let occ = self.output_voq_occupancy_flits(out);
                    let op = &mut self.outputs[out];
                    let win = now / window_cycles;
                    if win != op.int_win {
                        op.int_tx_last = if win == op.int_win + 1 {
                            op.int_tx_flits
                        } else {
                            0 // the port idled through at least one window
                        };
                        op.int_win = win;
                        op.int_tx_flits = 0;
                    }
                    op.int_tx_flits += u64::from(entry.packet.size_flits);
                    if entry.packet.is_data() {
                        // The busier of the completing and completed
                        // windows: responsive on ramp-up, stable once
                        // the link streams.
                        let tx = op.int_tx_flits.max(op.int_tx_last);
                        let u = ccfit_cc::hop_utilization(
                            u64::from(occ),
                            tx,
                            f64::from(op.link_bw.max(1)),
                            window_cycles,
                        );
                        entry.packet.int_u = ccfit_cc::fold_u(entry.packet.int_u, u);
                        entry.packet.int_hops = entry.packet.int_hops.saturating_add(1);
                    }
                }
                _ => {}
            }
            let link_id = self.outputs[out]
                .out_link
                .expect("matched output is cabled");
            let wire_done = links[link_id.index()].send(now, entry.packet);
            if self.record_touched {
                self.touched_links.push(link_id.0);
            }
            // The input port is occupied for the crossbar-transfer time
            // (shorter than wire serialization when the crossbar has
            // speedup), but virtual cut-through forwarding cannot
            // complete before the packet's tail has arrived from
            // upstream.
            let xbar = self.cfg.crossbar_bw_flits_per_cycle.max(1);
            let input_done = (now + (entry.packet.size_flits.div_ceil(xbar)).max(1) as Cycle)
                .max(entry.ready_at);
            let _ = wire_done; // the output link tracks its own busy time
            self.inputs[port].busy_until = input_done;
            if let Some(vn) = voqnet {
                vn.sub(link_id.0, entry.packet.dst.0, entry.packet.size_flits);
            }
            releases.push(PendingRelease {
                at: input_done,
                port,
                flits: entry.packet.size_flits,
                dst: entry.packet.dst,
            });
        }
        self.arb = arb;
    }

    /// Release RAM for a departed packet (called by the simulator at the
    /// scheduled completion time; the credit return to the upstream hop
    /// is the simulator's job since it owns the links).
    pub fn release_ram(&mut self, port: usize, flits: u32) {
        self.inputs[port].ram.release(flits);
    }

    /// Send a control event, noting the link as touched when the sparse
    /// scheduler is recording, so the event's consumer gets activated
    /// (DESIGN.md §12).
    fn send_ctrl_noting(
        &mut self,
        links: &mut LinkSlice<'_>,
        link: LinkId,
        now: Cycle,
        ev: CtrlEvent,
    ) {
        links[link.index()].send_ctrl(now, ev);
        if self.record_touched {
            self.touched_links.push(link.0);
        }
    }

    /// Toggle touched-link recording (on for sparse-scheduled runs).
    pub fn set_record_touched(&mut self, on: bool) {
        self.record_touched = on;
        if !on {
            self.touched_links.clear();
        }
    }

    /// Move the links sent on since the last drain into `set`,
    /// activating them for the sparse scheduler's link phases.
    pub fn drain_touched_links(&mut self, set: &mut ccfit_engine::ActiveSet) {
        for l in self.touched_links.drain(..) {
            set.insert(l);
        }
    }

    /// CFQs currently allocated, O(1) (incremental mirror of
    /// [`Self::cfqs_allocated`]).
    pub fn cfq_count(&self) -> usize {
        debug_assert_eq!(self.cfq_count, self.cfqs_allocated());
        self.cfq_count
    }

    /// Fault subsystem: the whole switch failed. Wipe every queue, RAM
    /// and congestion state — its buffers are gone regardless of the
    /// fault policy (a policy only governs what happens on the wires).
    /// Returns what was destroyed.
    pub fn purge_all(&mut self) -> PurgeStats {
        let mut stats = PurgeStats::default();
        let mut drained: Vec<QueuedPacket> = Vec::new();
        for inp in &mut self.inputs {
            match &mut inp.queues {
                InputQueues::Single(q) => q.drain_all_into(&mut drained),
                InputQueues::PerOutput(qs) | InputQueues::PerDest(qs) | InputQueues::DstMod(qs) => {
                    for q in qs {
                        q.drain_all_into(&mut drained);
                    }
                }
                InputQueues::Isolating { nfq, cfqs } => {
                    nfq.drain_all_into(&mut drained);
                    for c in cfqs {
                        c.queue.drain_all_into(&mut drained);
                        c.state = None;
                    }
                }
            }
            inp.ram = PortRam::new(inp.ram.capacity());
            inp.busy_until = 0;
        }
        for e in &drained {
            stats.note(e.packet.is_data());
        }
        for out in &mut self.outputs {
            out.cam.clear();
            out.congested = false;
            out.over_high_count = 0;
            out.int_win = 0;
            out.int_tx_flits = 0;
            out.int_tx_last = 0;
        }
        self.buffered = 0;
        self.cfq_count = 0;
        self.congested_count = 0;
        stats
    }

    /// Fault subsystem: drop every buffered packet whose destination
    /// satisfies `unreachable`, appending `(input_port, entry)` pairs to
    /// `out` so the caller can return the upstream credits (the simulator
    /// owns the links). Port RAM is freed here.
    pub fn purge_unreachable(
        &mut self,
        unreachable: &dyn Fn(NodeId) -> bool,
        out: &mut Vec<(usize, QueuedPacket)>,
    ) {
        let mut scratch: Vec<QueuedPacket> = Vec::new();
        for port in 0..self.inputs.len() {
            scratch.clear();
            {
                let inp = &mut self.inputs[port];
                match &mut inp.queues {
                    InputQueues::Single(q) => {
                        q.drain_where_into(|e| unreachable(e.packet.dst), &mut scratch)
                    }
                    InputQueues::PerOutput(qs)
                    | InputQueues::PerDest(qs)
                    | InputQueues::DstMod(qs) => {
                        for q in qs {
                            q.drain_where_into(|e| unreachable(e.packet.dst), &mut scratch);
                        }
                    }
                    InputQueues::Isolating { nfq, cfqs } => {
                        nfq.drain_where_into(|e| unreachable(e.packet.dst), &mut scratch);
                        for c in cfqs {
                            c.queue
                                .drain_where_into(|e| unreachable(e.packet.dst), &mut scratch);
                        }
                    }
                }
                for e in &scratch {
                    inp.ram.release(e.packet.size_flits);
                }
            }
            self.buffered -= scratch.len();
            for e in scratch.drain(..) {
                out.push((port, e));
            }
        }
    }

    /// Fault subsystem: forget the downstream congestion state mirrored
    /// at output `port` — it died with the cable (fail-stop quiesce).
    pub fn clear_output_cam(&mut self, port: usize) {
        self.outputs[port].cam.clear();
    }

    /// Fault subsystem: forget that alloc/Stop notifications were sent
    /// upstream from input `port`'s CFQs — the upstream end of the cable
    /// lost that state, so the protocol must re-propagate it after a
    /// repair (fail-stop quiesce).
    pub fn reset_upstream_ctrl_flags(&mut self, port: usize) {
        if let InputQueues::Isolating { cfqs, .. } = &mut self.inputs[port].queues {
            for c in cfqs {
                if let Some(st) = &mut c.state {
                    st.alloc_sent = false;
                    st.stop_sent = false;
                }
            }
        }
    }

    /// Occupancy (flits) of the VOQnet per-destination queue `dst` at
    /// input `port` (0 for other queue schemes). Used to re-derive
    /// remote per-destination credits when a cable is repaired.
    pub fn per_dest_occupancy_flits(&self, port: usize, dst: usize) -> u32 {
        match &self.inputs[port].queues {
            InputQueues::PerDest(qs) => qs[dst].occupancy_flits(),
            _ => 0,
        }
    }

    /// Routing tables changed (live re-route): re-bin VOQsw queues — a
    /// packet's queue is its *output port*, chosen at acceptance — and
    /// re-point allocated CFQs at their destination's new output,
    /// migrating the over-High accounting with them. Queue contents are
    /// re-binned in input-port, then queue, order, preserving FIFO order
    /// within each source queue, so the result is deterministic.
    pub fn on_routing_changed(&mut self, routing: &RoutingTable) {
        let mut rebin: Vec<QueuedPacket> = Vec::new();
        for port in 0..self.inputs.len() {
            match &mut self.inputs[port].queues {
                InputQueues::PerOutput(qs) => {
                    rebin.clear();
                    for q in qs.iter_mut() {
                        q.drain_all_into(&mut rebin);
                    }
                    for e in rebin.drain(..) {
                        let o = routing.route(self.id, e.packet.dst).index();
                        qs[o].push(e.packet, e.visible_at, e.ready_at);
                    }
                }
                InputQueues::Isolating { cfqs, .. } => {
                    for c in cfqs.iter_mut() {
                        let Some(st) = &mut c.state else { continue };
                        let new_out = routing.route(self.id, st.dst).index();
                        if new_out != st.out_port {
                            if st.over_high {
                                self.outputs[st.out_port].over_high_count -= 1;
                                self.outputs[new_out].over_high_count += 1;
                            }
                            st.out_port = new_out;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Whether any packet is buffered in this switch (O(1); incremental
    /// mirror of `resident_packets()`). Gates the arbitration phase in
    /// the active-set scheduler.
    pub fn has_buffered(&self) -> bool {
        debug_assert_eq!(self.buffered, self.resident_packets());
        self.buffered > 0
    }

    /// Whether the switch's congestion machinery provably does nothing
    /// this cycle: no buffered packets (so no detection, no moves, no
    /// arbitration), no allocated CFQs (so no propagation, Stop/Go,
    /// High/Low bookkeeping, or deallocation), and no output in the
    /// congestion state (so no exit transition is pending). A degenerate
    /// `High = 0` threshold could enter the congestion state with zero
    /// occupancy, so such a switch never counts as quiescent.
    pub fn is_quiescent(&self) -> bool {
        debug_assert_eq!(self.buffered, self.resident_packets());
        debug_assert_eq!(self.cfq_count, self.cfqs_allocated());
        debug_assert_eq!(
            self.congested_count,
            self.outputs.iter().filter(|o| o.congested).count()
        );
        self.buffered == 0
            && self.cfq_count == 0
            && self.congested_count == 0
            && self.cfg.thr.is_none_or(|t| t.high_flits > 0)
    }

    /// Buffered packets across all input ports.
    pub fn resident_packets(&self) -> usize {
        self.inputs.iter().map(|i| i.queues.total_packets()).sum()
    }

    /// Buffered *data* packets (conservation checks).
    pub fn resident_data_packets(&self) -> usize {
        self.inputs
            .iter()
            .map(|i| i.queues.total_data_packets())
            .sum()
    }

    /// Number of CFQs currently allocated across all input ports.
    pub fn cfqs_allocated(&self) -> usize {
        self.inputs.iter().map(|i| i.queues.cfqs_allocated()).sum()
    }

    /// Number of destinations this switch routes (for VOQnet sizing).
    pub fn num_dests(&self) -> usize {
        self.num_dests
    }

    /// Human-readable dump of the port state (debugging and examples).
    pub fn debug_state(&self, links: &[Link]) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "{} :", self.id).unwrap();
        for (p, inp) in self.inputs.iter().enumerate() {
            if !inp.connected {
                continue;
            }
            match &inp.queues {
                InputQueues::Isolating { nfq, cfqs } => {
                    write!(
                        out,
                        "  in{p}: ram={}/{} nfq={}f",
                        inp.ram.used(),
                        inp.ram.capacity(),
                        nfq.occupancy_flits()
                    )
                    .unwrap();
                    for (c, slot) in cfqs.iter().enumerate() {
                        if let Some(st) = slot.state {
                            write!(
                                out,
                                " cfq{c}[dst={} occ={}f root={} stop_sent={} down_stopped={}]",
                                st.dst.0,
                                slot.queue.occupancy_flits(),
                                st.root,
                                st.stop_sent,
                                self.downstream_stopped(st.out_port, st.dst)
                            )
                            .unwrap();
                        }
                    }
                    writeln!(out).unwrap();
                }
                q => {
                    writeln!(
                        out,
                        "  in{p}: ram={}/{} occ={}f pkts={}",
                        inp.ram.used(),
                        inp.ram.capacity(),
                        q.total_occupancy_flits(),
                        q.total_packets()
                    )
                    .unwrap();
                }
            }
        }
        for (p, o) in self.outputs.iter().enumerate() {
            if !o.connected {
                continue;
            }
            let credits = o.out_link.map(|l| links[l.index()].credits()).unwrap_or(0);
            write!(
                out,
                "  out{p}: congested={} over_high={} credits={}",
                o.congested, o.over_high_count, credits
            )
            .unwrap();
            for (_, line) in o.cam.iter() {
                write!(
                    out,
                    " cam[dst={} stopped={}]",
                    line.key.0, line.value.stopped
                )
                .unwrap();
            }
            writeln!(out).unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ThrottleParams;
    use ccfit_engine::ids::{FlowId, PacketId, PortId};
    use ccfit_engine::link::LinkConfig;
    use ccfit_engine::packet::Packet;
    use ccfit_engine::rng::SeedSplitter;
    use ccfit_engine::units::UnitModel;
    use ccfit_metrics::MetricsCollector;

    const MTU: u32 = 32;

    /// A 3-port test switch: port 0 is an input (fed by link 0, which we
    /// drive directly), ports 1 and 2 are outputs (links 1 and 2).
    /// Destinations 0..4 route to output 1, destinations 4.. to output 2.
    struct Fixture {
        sw: Switch,
        links: Vec<Link>,
        routing: RoutingTable,
        metrics: MetricsCollector,
    }

    fn fixture(
        scheme: QueueingScheme,
        iso: Option<IsolationParams>,
        thr: Option<SwitchThrottle>,
    ) -> Fixture {
        fixture_cc(scheme, iso, thr, None)
    }

    fn fixture_cc(
        scheme: QueueingScheme,
        iso: Option<IsolationParams>,
        thr: Option<SwitchThrottle>,
        cc: Option<SwitchCcMode>,
    ) -> Fixture {
        let cfg = SwitchCfg {
            scheme,
            iso,
            thr,
            mtu_flits: MTU,
            ram_flits: 1024,
            per_dest_queue_flits: 64,
            dbbm_queues: 2,
            islip_iterations: 2,
            move_budget: 4,
            crossbar_bw_flits_per_cycle: 1,
            cc,
        };
        let wiring = vec![
            (Some(LinkId(0)), None), // port 0: input only
            (None, Some(LinkId(1))), // port 1: output only
            (None, Some(LinkId(2))), // port 2: output only
        ];
        let sw = Switch::new(
            SwitchId(0),
            cfg,
            &wiring,
            8,
            SeedSplitter::new(1).rng("m", 0),
        );
        let links = (0..3)
            .map(|_| Link::new(LinkConfig::default(), 1024))
            .collect();
        let routing = RoutingTable::from_tables(vec![(0..8)
            .map(|d| if d < 4 { PortId(1) } else { PortId(2) })
            .collect()]);
        let metrics = MetricsCollector::new(UnitModel::default(), 100_000.0);
        Fixture {
            sw,
            links,
            routing,
            metrics,
        }
    }

    fn pkt(id: u64, dst: u32) -> Packet {
        Packet::data(
            PacketId(id),
            NodeId(0),
            NodeId(dst),
            MTU,
            2048,
            FlowId(0),
            0,
        )
    }

    fn deliver(fx: &mut Fixture, now: Cycle, p: Packet) {
        fx.sw.accept_delivery(
            0,
            Delivery {
                packet: p,
                visible_at: now,
                ready_at: now,
            },
            &fx.routing,
        );
    }

    fn drain(l: &mut Link, now: Cycle) -> Vec<Delivery> {
        let mut v = Vec::new();
        l.deliver_into(now, &mut v);
        v
    }

    fn drain_ctrl(l: &mut Link, now: Cycle) -> Vec<CtrlEvent> {
        let mut v = Vec::new();
        l.poll_ctrl_into(now, &mut v);
        v
    }

    fn default_thr(source: MarkingSource) -> SwitchThrottle {
        let t = ThrottleParams::default();
        SwitchThrottle {
            marking_rate: 1.0, // deterministic marking for the tests
            packet_size_threshold_bytes: t.packet_size_threshold_bytes,
            high_flits: t.high_mtus * MTU,
            low_flits: t.low_mtus * MTU,
            entry_delay_cycles: 0,
            starvation_window_cycles: 64,
            source,
        }
    }

    #[test]
    fn accept_delivery_reserves_ram_per_scheme() {
        for scheme in [
            QueueingScheme::Single,
            QueueingScheme::PerOutput,
            QueueingScheme::PerDest,
        ] {
            let mut fx = fixture(scheme, None, None);
            deliver(&mut fx, 0, pkt(1, 2));
            deliver(&mut fx, 0, pkt(2, 6));
            assert_eq!(fx.sw.inputs[0].ram.used(), 2 * MTU, "{scheme:?}");
            assert_eq!(fx.sw.resident_packets(), 2);
        }
    }

    #[test]
    fn arbitration_routes_to_the_right_output() {
        let mut fx = fixture(QueueingScheme::PerOutput, None, None);
        deliver(&mut fx, 0, pkt(1, 2)); // -> output 1
        deliver(&mut fx, 0, pkt(2, 6)); // -> output 2
        let rel =
            fx.sw
                .arbitrate_and_transmit(0, &fx.routing, &mut fx.links, None, &mut fx.metrics);
        // Only one transfer can start per input per cycle.
        assert_eq!(rel.len(), 1);
        // After the input frees up, the second follows.
        let done = rel[0].at;
        let rel2 =
            fx.sw
                .arbitrate_and_transmit(done, &fx.routing, &mut fx.links, None, &mut fx.metrics);
        assert_eq!(rel2.len(), 1);
        let d1 = drain(&mut fx.links[1], 1000);
        let d2 = drain(&mut fx.links[2], 1000);
        assert_eq!(d1.len(), 1);
        assert_eq!(d2.len(), 1);
        assert_eq!(d1[0].packet.dst, NodeId(2));
        assert_eq!(d2[0].packet.dst, NodeId(6));
    }

    #[test]
    fn crossbar_speedup_halves_input_occupancy() {
        let mut fx = fixture(QueueingScheme::PerOutput, None, None);
        fx.sw.cfg.crossbar_bw_flits_per_cycle = 2;
        deliver(&mut fx, 0, pkt(1, 2));
        deliver(&mut fx, 0, pkt(2, 6));
        let rel =
            fx.sw
                .arbitrate_and_transmit(0, &fx.routing, &mut fx.links, None, &mut fx.metrics);
        assert_eq!(rel.len(), 1);
        assert_eq!(
            rel[0].at, 16,
            "32 flits at 2 flits/cycle across the crossbar"
        );
        // Input free at 16 even though the wire serializes for 32 cycles.
        let rel2 =
            fx.sw
                .arbitrate_and_transmit(16, &fx.routing, &mut fx.links, None, &mut fx.metrics);
        assert_eq!(
            rel2.len(),
            1,
            "second output served while the first wire is busy"
        );
    }

    #[test]
    fn single_queue_exhibits_hol_blocking() {
        let mut fx = fixture(QueueingScheme::Single, None, None);
        // Make output 1 unusable by exhausting its credits.
        fx.links[1] = Link::new(LinkConfig::default(), 0);
        deliver(&mut fx, 0, pkt(1, 2)); // head, blocked (-> output 1)
        deliver(&mut fx, 0, pkt(2, 6)); // victim behind it (-> output 2)
        let rel =
            fx.sw
                .arbitrate_and_transmit(0, &fx.routing, &mut fx.links, None, &mut fx.metrics);
        assert!(
            rel.is_empty(),
            "single queue: blocked head blocks the victim"
        );
        // Per-output queueing would have let the victim through.
        let mut fx2 = fixture(QueueingScheme::PerOutput, None, None);
        fx2.links[1] = Link::new(LinkConfig::default(), 0);
        deliver(&mut fx2, 0, pkt(1, 2));
        deliver(&mut fx2, 0, pkt(2, 6));
        let rel2 =
            fx2.sw
                .arbitrate_and_transmit(0, &fx2.routing, &mut fx2.links, None, &mut fx2.metrics);
        assert_eq!(rel2.len(), 1, "VOQsw: victim bypasses the blocked flow");
        assert_eq!(rel2[0].dst, NodeId(6));
    }

    #[test]
    fn detection_allocates_a_root_cfq_for_the_dominant_destination() {
        let mut fx = fixture(
            QueueingScheme::Isolating,
            Some(IsolationParams::default()),
            None,
        );
        // Fill the NFQ past 8 MTUs: 6 packets to dst 6 (hot), 3 to dst 2.
        let mut id = 0;
        for _ in 0..6 {
            deliver(&mut fx, 0, pkt(id, 6));
            id += 1;
        }
        for _ in 0..3 {
            deliver(&mut fx, 0, pkt(id, 2));
            id += 1;
        }
        fx.sw
            .isolation_tick(0, &fx.routing, &mut fx.links, &mut fx.metrics);
        let q = &fx.sw.inputs[0].queues;
        let cfq = q.cfq_lookup(NodeId(6)).expect("hot destination isolated");
        if let InputQueues::Isolating { cfqs, .. } = q {
            let st = cfqs[cfq].state.unwrap();
            assert!(st.root, "locally detected => root");
            assert_eq!(st.out_port, 2);
        }
        assert_eq!(
            q.cfq_lookup(NodeId(2)),
            None,
            "minority destination not isolated"
        );
        assert_eq!(fx.metrics.counter("congestion_detected"), 1);
    }

    #[test]
    fn post_processing_moves_matching_heads_only() {
        let mut fx = fixture(
            QueueingScheme::Isolating,
            Some(IsolationParams::default()),
            None,
        );
        let mut id = 0;
        for _ in 0..9 {
            deliver(&mut fx, 0, pkt(id, 6));
            id += 1;
        }
        deliver(&mut fx, 0, pkt(id, 2));
        fx.sw
            .isolation_tick(0, &fx.routing, &mut fx.links, &mut fx.metrics);
        // move_budget = 4: four hot packets moved this cycle.
        assert_eq!(fx.metrics.counter("packets_isolated"), 4);
        fx.sw
            .isolation_tick(1, &fx.routing, &mut fx.links, &mut fx.metrics);
        fx.sw
            .isolation_tick(2, &fx.routing, &mut fx.links, &mut fx.metrics);
        // All nine hot packets isolated; the dst-2 packet stays in the NFQ.
        assert_eq!(fx.metrics.counter("packets_isolated"), 9);
        if let InputQueues::Isolating { nfq, .. } = &fx.sw.inputs[0].queues {
            assert_eq!(nfq.len(), 1);
            assert_eq!(nfq.head().unwrap().packet.dst, NodeId(2));
        }
    }

    #[test]
    fn stop_is_sent_upstream_and_matched_by_go() {
        let mut fx = fixture(
            QueueingScheme::Isolating,
            Some(IsolationParams::default()),
            None,
        );
        // Saturate: 11 MTUs to dst 6 (stop threshold is 10).
        for id in 0..11 {
            deliver(&mut fx, 0, pkt(id, 6));
        }
        for now in 0..4 {
            fx.sw
                .isolation_tick(now, &fx.routing, &mut fx.links, &mut fx.metrics);
        }
        assert_eq!(fx.metrics.counter("stops_sent"), 1);
        // The upstream side of link 0 sees CfqAlloc then Stop.
        let evs = drain_ctrl(&mut fx.links[0], 100);
        assert!(evs.contains(&CtrlEvent::CfqAlloc { dst: NodeId(6) }));
        assert!(evs.contains(&CtrlEvent::Stop { dst: NodeId(6) }));
        // Drain the CFQ via arbitration; Go must follow.
        let mut now = 100;
        for _ in 0..11 {
            let rel = fx.sw.arbitrate_and_transmit(
                now,
                &fx.routing,
                &mut fx.links,
                None,
                &mut fx.metrics,
            );
            now = rel.first().map(|r| r.at).unwrap_or(now + 32);
            for r in rel {
                fx.sw.release_ram(r.port, r.flits);
            }
            fx.sw
                .isolation_tick(now, &fx.routing, &mut fx.links, &mut fx.metrics);
        }
        assert_eq!(fx.metrics.counter("gos_sent"), 1);
        let evs = drain_ctrl(&mut fx.links[0], 10_000);
        assert!(evs.contains(&CtrlEvent::Go { dst: NodeId(6) }));
    }

    #[test]
    fn output_cam_stop_pauses_the_cfq() {
        let mut fx = fixture(
            QueueingScheme::Isolating,
            Some(IsolationParams::default()),
            None,
        );
        // Downstream announces a congestion tree for dst 6 and stops it.
        fx.links[2].send_ctrl(0, CtrlEvent::CfqAlloc { dst: NodeId(6) });
        fx.links[2].send_ctrl(0, CtrlEvent::Stop { dst: NodeId(6) });
        fx.sw.poll_output_ctrl(10, &mut fx.links, &mut fx.metrics);
        deliver(&mut fx, 10, pkt(1, 6));
        deliver(&mut fx, 10, pkt(2, 2));
        fx.sw
            .isolation_tick(10, &fx.routing, &mut fx.links, &mut fx.metrics);
        // The hot packet was isolated (out-CAM hit) into a *non-root* CFQ.
        let q = &fx.sw.inputs[0].queues;
        let c = q
            .cfq_lookup(NodeId(6))
            .expect("isolated via propagated info");
        if let InputQueues::Isolating { cfqs, .. } = q {
            assert!(!cfqs[c].state.unwrap().root);
        }
        // Arbitration: only the dst-2 packet may go (dst 6 is stopped).
        let rel =
            fx.sw
                .arbitrate_and_transmit(10, &fx.routing, &mut fx.links, None, &mut fx.metrics);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].dst, NodeId(2));
        // Go resumes the flow.
        fx.links[2].send_ctrl(50, CtrlEvent::Go { dst: NodeId(6) });
        fx.sw.poll_output_ctrl(60, &mut fx.links, &mut fx.metrics);
        let rel =
            fx.sw
                .arbitrate_and_transmit(60, &fx.routing, &mut fx.links, None, &mut fx.metrics);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].dst, NodeId(6));
    }

    #[test]
    fn cfq_exhaustion_leaves_the_head_blocked() {
        let iso = IsolationParams {
            num_cfqs: 1,
            ..IsolationParams::default()
        };
        let mut fx = fixture(QueueingScheme::Isolating, Some(iso), None);
        // First tree (dst 6) takes the only CFQ.
        for id in 0..9 {
            deliver(&mut fx, 0, pkt(id, 6));
        }
        fx.sw
            .isolation_tick(0, &fx.routing, &mut fx.links, &mut fx.metrics);
        assert_eq!(fx.sw.cfqs_allocated(), 1);
        // Second tree (dst 2) cannot be isolated.
        for id in 10..19 {
            deliver(&mut fx, 0, pkt(id, 2));
        }
        for now in 1..6 {
            fx.sw
                .isolation_tick(now, &fx.routing, &mut fx.links, &mut fx.metrics);
        }
        assert!(fx.metrics.counter("cfq_exhausted") > 0);
        assert_eq!(fx.sw.cfqs_allocated(), 1, "no second CFQ materialised");
    }

    #[test]
    fn ith_congestion_state_follows_voq_occupancy_with_hysteresis() {
        let thr = default_thr(MarkingSource::VoqOccupancy);
        let mut fx = fixture(QueueingScheme::PerOutput, None, Some(thr));
        // 5 MTUs toward output 2 (High = 4 MTUs) and credits available.
        for id in 0..5 {
            deliver(&mut fx, 0, pkt(id, 6));
        }
        fx.sw
            .congestion_state_tick(0, &fx.links, &mut ccfit_metrics::MetricsScratch::new());
        assert!(
            fx.sw.outputs[2].congested,
            "above High with credits => congested"
        );
        assert!(!fx.sw.outputs[1].congested);
        // Drain below Low (2 MTUs): three departures.
        let mut now = 0;
        for _ in 0..3 {
            let rel = fx.sw.arbitrate_and_transmit(
                now,
                &fx.routing,
                &mut fx.links,
                None,
                &mut fx.metrics,
            );
            assert_eq!(rel.len(), 1);
            now = rel[0].at;
            fx.sw.release_ram(rel[0].port, rel[0].flits);
        }
        fx.sw
            .congestion_state_tick(now, &fx.links, &mut ccfit_metrics::MetricsScratch::new());
        assert!(
            !fx.sw.outputs[2].congested,
            "below Low => out of congestion state"
        );
    }

    #[test]
    fn marking_sets_fecn_only_in_congestion_state() {
        let thr = default_thr(MarkingSource::VoqOccupancy);
        let mut fx = fixture(QueueingScheme::PerOutput, None, Some(thr));
        for id in 0..5 {
            deliver(&mut fx, 0, pkt(id, 6));
        }
        // Not congested yet: first departure unmarked.
        let rel =
            fx.sw
                .arbitrate_and_transmit(0, &fx.routing, &mut fx.links, None, &mut fx.metrics);
        fx.sw.release_ram(rel[0].port, rel[0].flits);
        assert_eq!(fx.metrics.counter("fecn_marked"), 0);
        // Enter congestion state; with marking_rate = 1 every departure
        // through output 2 is marked.
        fx.sw
            .congestion_state_tick(32, &fx.links, &mut ccfit_metrics::MetricsScratch::new());
        assert!(fx.sw.outputs[2].congested);
        let rel =
            fx.sw
                .arbitrate_and_transmit(32, &fx.routing, &mut fx.links, None, &mut fx.metrics);
        assert_eq!(rel.len(), 1);
        assert_eq!(fx.metrics.counter("fecn_marked"), 1);
        let delivered = drain(&mut fx.links[2], 10_000);
        assert!(delivered.last().unwrap().packet.fecn);
    }

    #[test]
    fn ecn_marks_above_kmin_and_never_below() {
        let cc = SwitchCcMode::Ecn {
            kmin_flits: MTU,     // one buffered MTU behind the head
            kmax_flits: 2 * MTU, // two -> always mark
            pmax: 0.2,
        };
        let mut fx = fixture_cc(QueueingScheme::PerOutput, None, None, Some(cc));
        deliver(&mut fx, 0, pkt(1, 6));
        // Occupancy 1 MTU == kmin: below the ramp, never marked.
        let rel =
            fx.sw
                .arbitrate_and_transmit(0, &fx.routing, &mut fx.links, None, &mut fx.metrics);
        fx.sw.release_ram(rel[0].port, rel[0].flits);
        assert_eq!(fx.metrics.counter("ecn_marked"), 0);
        // Backlog of 3 MTUs >= kmax: marking probability 1.
        let now = rel[0].at;
        for id in 2..5 {
            deliver(&mut fx, now, pkt(id, 6));
        }
        let rel =
            fx.sw
                .arbitrate_and_transmit(now, &fx.routing, &mut fx.links, None, &mut fx.metrics);
        assert_eq!(rel.len(), 1);
        assert_eq!(fx.metrics.counter("ecn_marked"), 1);
        let delivered = drain(&mut fx.links[2], 10_000);
        let last = delivered.last().unwrap().packet;
        assert!(last.ecn);
        assert!(!last.fecn, "ECN mode never touches the FECN bit");
    }

    #[test]
    fn int_stamping_folds_hop_utilization_and_rolls_the_window() {
        let window_cycles = 64;
        let mut fx = fixture_cc(
            QueueingScheme::PerOutput,
            None,
            None,
            Some(SwitchCcMode::Int { window_cycles }),
        );
        fx.sw.set_output_link_bw(2, 1);
        for id in 0..3 {
            deliver(&mut fx, 0, pkt(id, 6));
        }
        let mut now = 0;
        let mut got = Vec::new();
        while got.len() < 3 {
            let rel = fx.sw.arbitrate_and_transmit(
                now,
                &fx.routing,
                &mut fx.links,
                None,
                &mut fx.metrics,
            );
            for r in &rel {
                fx.sw.release_ram(r.port, r.flits);
            }
            now = rel.first().map_or(now + 1, |r| r.at);
            got.extend(drain(&mut fx.links[2], 10_000));
            assert!(now < 10_000, "packets must drain");
        }
        // First departure: 3 MTUs queued (head included in occupancy at
        // sample time minus itself after pop = 2 MTUs) + its own tx
        // flits over bw*T = 64 flits -> u > 0, one hop.
        assert_eq!(got[0].packet.int_hops, 1);
        assert!(got[0].packet.int_u > 0.0);
        // The busiest sample (most backlog) is the first one.
        assert!(got[0].packet.int_u >= got[2].packet.int_u);
        // The tx-window counters rolled with the clock.
        assert_eq!(fx.sw.outputs[2].int_win, now / window_cycles);
    }

    #[test]
    fn starved_root_cfq_drives_ccfit_congestion_state() {
        let thr = default_thr(MarkingSource::RootCfq);
        let mut fx = fixture(
            QueueingScheme::Isolating,
            Some(IsolationParams::default()),
            Some(thr),
        );
        // Hot backlog: 9 MTUs to dst 6 -> root CFQ above High.
        for id in 0..9 {
            deliver(&mut fx, 0, pkt(id, 6));
        }
        // Block output 2 so the CFQ is starved (no grants at all).
        fx.links[2] = Link::new(LinkConfig::default(), 0);
        for now in 0..200 {
            fx.sw
                .isolation_tick(now, &fx.routing, &mut fx.links, &mut fx.metrics);
            fx.sw
                .congestion_state_tick(now, &fx.links, &mut ccfit_metrics::MetricsScratch::new());
        }
        assert!(
            fx.sw.outputs[2].congested,
            "starved root CFQ above High => congestion state"
        );
        // A CFQ draining at full output rate must NOT mark: new fixture,
        // same backlog, output free, and we keep draining while refilling.
        let thr = default_thr(MarkingSource::RootCfq);
        let mut fx2 = fixture(
            QueueingScheme::Isolating,
            Some(IsolationParams::default()),
            Some(thr),
        );
        for id in 0..9 {
            deliver(&mut fx2, 0, pkt(id, 6));
        }
        let mut now = 0u64;
        let mut next_id = 100u64;
        for _ in 0..20 {
            fx2.sw
                .isolation_tick(now, &fx2.routing, &mut fx2.links, &mut fx2.metrics);
            fx2.sw.congestion_state_tick(
                now,
                &fx2.links,
                &mut ccfit_metrics::MetricsScratch::new(),
            );
            assert!(!fx2.sw.outputs[2].congested, "full-rate CFQ never congests");
            let rel = fx2.sw.arbitrate_and_transmit(
                now,
                &fx2.routing,
                &mut fx2.links,
                None,
                &mut fx2.metrics,
            );
            for r in &rel {
                fx2.sw.release_ram(r.port, r.flits);
            }
            fx2.links[2].poll_credits(now);
            // Refill one packet per departure: steady full-rate stream.
            deliver(&mut fx2, now, pkt(next_id, 6));
            next_id += 1;
            now += 32;
            for d in drain(&mut fx2.links[2], now) {
                fx2.links[2].return_credits(now, d.packet.size_flits);
            }
        }
    }

    #[test]
    fn cfq_deallocates_after_calm_and_notifies_upstream() {
        let iso = IsolationParams {
            dealloc_linger_cycles: 16,
            ..IsolationParams::default()
        };
        let mut fx = fixture(QueueingScheme::Isolating, Some(iso), None);
        for id in 0..9 {
            deliver(&mut fx, 0, pkt(id, 6));
        }
        let mut now = 0u64;
        fx.sw
            .isolation_tick(now, &fx.routing, &mut fx.links, &mut fx.metrics);
        assert_eq!(fx.sw.cfqs_allocated(), 1);
        // Drain completely.
        for _ in 0..9 {
            let rel = fx.sw.arbitrate_and_transmit(
                now,
                &fx.routing,
                &mut fx.links,
                None,
                &mut fx.metrics,
            );
            now = rel.first().map(|r| r.at).unwrap_or(now + 32);
            for r in rel {
                fx.sw.release_ram(r.port, r.flits);
            }
            fx.sw
                .isolation_tick(now, &fx.routing, &mut fx.links, &mut fx.metrics);
            fx.links[2].poll_credits(now);
        }
        // Linger, then deallocate.
        for t in 0..40 {
            fx.sw
                .isolation_tick(now + t, &fx.routing, &mut fx.links, &mut fx.metrics);
        }
        assert_eq!(fx.sw.cfqs_allocated(), 0);
        assert_eq!(fx.metrics.counter("cfq_deallocated"), 1);
        // Upstream got the CfqDealloc (after the earlier CfqAlloc).
        let evs = drain_ctrl(&mut fx.links[0], 1 << 30);
        assert!(evs.contains(&CtrlEvent::CfqDealloc { dst: NodeId(6) }));
    }

    #[test]
    fn out_cam_exhaustion_is_counted() {
        let iso = IsolationParams {
            out_cam_lines: 1,
            ..IsolationParams::default()
        };
        let mut fx = fixture(QueueingScheme::Isolating, Some(iso), None);
        fx.links[2].send_ctrl(0, CtrlEvent::CfqAlloc { dst: NodeId(6) });
        fx.links[2].send_ctrl(0, CtrlEvent::CfqAlloc { dst: NodeId(7) });
        fx.sw.poll_output_ctrl(10, &mut fx.links, &mut fx.metrics);
        assert_eq!(fx.metrics.counter("out_cam_exhausted"), 1);
        // Dealloc frees the line for reuse.
        fx.links[2].send_ctrl(20, CtrlEvent::CfqDealloc { dst: NodeId(6) });
        fx.links[2].send_ctrl(21, CtrlEvent::CfqAlloc { dst: NodeId(7) });
        fx.sw.poll_output_ctrl(30, &mut fx.links, &mut fx.metrics);
        assert_eq!(
            fx.metrics.counter("out_cam_exhausted"),
            1,
            "no new exhaustion"
        );
        assert!(fx.sw.outputs[2].cam.lookup(NodeId(7)).is_some());
    }
}

#[cfg(test)]
mod dbbm_tests {
    use super::tests_support::*;

    #[test]
    fn dstmod_maps_destinations_to_queue_classes() {
        let mut fx = fixture_dbbm(2);
        // dsts 2 and 6 share class 0; dst 3 is class 1.
        deliver_pkt(&mut fx, 0, 1, 2);
        deliver_pkt(&mut fx, 0, 2, 6);
        deliver_pkt(&mut fx, 0, 3, 3);
        if let crate::port::InputQueues::DstMod(qs) = &fx.sw.inputs[0].queues {
            assert_eq!(qs.len(), 2);
            assert_eq!(qs[0].len(), 2, "dst 2 and 6 share queue 0");
            assert_eq!(qs[1].len(), 1, "dst 3 in queue 1");
        } else {
            panic!("expected DstMod queues");
        }
    }

    #[test]
    fn dbbm_reduces_hol_across_classes_but_not_within() {
        // Blocked output 1 (dsts < 4); free output 2 (dsts >= 4).
        // dst 2 (class 0) blocks; dst 3 (class 1) and dst 6 (class 0).
        let mut fx = fixture_dbbm(2);
        fx.links[1] = ccfit_engine::link::Link::new(ccfit_engine::link::LinkConfig::default(), 0);
        deliver_pkt(&mut fx, 0, 1, 2); // class 0 head, blocked (output 1)
        deliver_pkt(&mut fx, 0, 2, 6); // class 0, victim of in-class HoL
        deliver_pkt(&mut fx, 0, 3, 5); // class 1, escapes via output 2
        let rel =
            fx.sw
                .arbitrate_and_transmit(0, &fx.routing, &mut fx.links, None, &mut fx.metrics);
        assert_eq!(rel.len(), 1);
        assert_eq!(
            rel[0].dst,
            ccfit_engine::ids::NodeId(5),
            "cross-class victim escapes"
        );
        // dst 6 stays stuck behind dst 2 within class 0.
        let rel = fx.sw.arbitrate_and_transmit(
            rel[0].at,
            &fx.routing,
            &mut fx.links,
            None,
            &mut fx.metrics,
        );
        assert!(rel.is_empty(), "in-class HoL remains: {rel:?}");
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::params::QueueingScheme;
    use ccfit_engine::ids::{FlowId, PacketId, PortId};
    use ccfit_engine::link::LinkConfig;
    use ccfit_engine::packet::Packet;
    use ccfit_engine::rng::SeedSplitter;
    use ccfit_engine::units::UnitModel;
    use ccfit_metrics::MetricsCollector;

    pub struct DbbmFixture {
        pub sw: Switch,
        pub links: Vec<Link>,
        pub routing: RoutingTable,
        pub metrics: MetricsCollector,
    }

    pub fn fixture_dbbm(queues: usize) -> DbbmFixture {
        let cfg = SwitchCfg {
            scheme: QueueingScheme::DstMod,
            iso: None,
            thr: None,
            mtu_flits: 32,
            ram_flits: 1024,
            per_dest_queue_flits: 64,
            dbbm_queues: queues,
            islip_iterations: 2,
            move_budget: 4,
            crossbar_bw_flits_per_cycle: 1,
            cc: None,
        };
        let wiring = vec![
            (Some(LinkId(0)), None),
            (None, Some(LinkId(1))),
            (None, Some(LinkId(2))),
        ];
        let sw = Switch::new(
            SwitchId(0),
            cfg,
            &wiring,
            8,
            SeedSplitter::new(1).rng("m", 0),
        );
        let links = (0..3)
            .map(|_| Link::new(LinkConfig::default(), 1024))
            .collect();
        let routing = RoutingTable::from_tables(vec![(0..8)
            .map(|d| if d < 4 { PortId(1) } else { PortId(2) })
            .collect()]);
        DbbmFixture {
            sw,
            links,
            routing,
            metrics: MetricsCollector::new(UnitModel::default(), 100_000.0),
        }
    }

    pub fn deliver_pkt(fx: &mut DbbmFixture, now: Cycle, id: u64, dst: u32) {
        let p = Packet::data(
            PacketId(id),
            NodeId(0),
            NodeId(dst),
            32,
            2048,
            FlowId(0),
            now,
        );
        fx.sw.accept_delivery(
            0,
            Delivery {
                packet: p,
                visible_at: now,
                ready_at: now,
            },
            &fx.routing,
        );
    }
}
