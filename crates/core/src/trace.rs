//! Per-packet path tracing.
//!
//! An opt-in diagnostic: sample every Nth injected data packet and record
//! where it went and when — which switches it crossed, when it was
//! delivered, whether it was FECN-marked on the way. Used by the test
//! suite to verify that packets physically follow the routing tables, and
//! by users to debug congestion behaviour ("where did my packet wait?").

use ccfit_engine::ids::{FlowId, NodeId, PacketId, SwitchId};
use ccfit_engine::units::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The recorded life of one traced packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketTrace {
    /// Packet id.
    pub id: PacketId,
    /// Flow it belongs to.
    pub flow: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycle it entered the source adapter.
    pub injected_at: Cycle,
    /// Switch arrivals, in order, with the arrival cycle.
    pub hops: Vec<(SwitchId, Cycle)>,
    /// Cycle its tail reached the destination (None = still in flight).
    pub delivered_at: Option<Cycle>,
    /// Whether it carried a FECN mark on delivery.
    pub fecn: bool,
}

impl PacketTrace {
    /// End-to-end latency in cycles, if delivered.
    pub fn latency_cycles(&self) -> Option<Cycle> {
        self.delivered_at
            .map(|d| d.saturating_sub(self.injected_at))
    }

    /// The switch path (without timestamps).
    pub fn switch_path(&self) -> Vec<SwitchId> {
        self.hops.iter().map(|&(s, _)| s).collect()
    }
}

/// Collects traces for a sampled subset of packets.
#[derive(Debug, Clone)]
pub struct TraceLog {
    sample_every: u64,
    traces: HashMap<PacketId, PacketTrace>,
}

impl TraceLog {
    /// Trace every `sample_every`-th injected data packet (1 = all).
    pub fn new(sample_every: u64) -> Self {
        assert!(sample_every >= 1);
        Self {
            sample_every,
            traces: HashMap::new(),
        }
    }

    /// Should the packet with this id be traced?
    #[inline]
    pub fn wants(&self, id: PacketId) -> bool {
        id.0.is_multiple_of(self.sample_every)
    }

    /// The sampling stride (the parallel engine copies it into the tick
    /// context so shard workers can apply the same filter).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Record an injection (called only for sampled ids).
    pub fn injected(&mut self, id: PacketId, flow: FlowId, src: NodeId, dst: NodeId, now: Cycle) {
        self.traces.insert(
            id,
            PacketTrace {
                id,
                flow,
                src,
                dst,
                injected_at: now,
                hops: Vec::new(),
                delivered_at: None,
                fecn: false,
            },
        );
    }

    /// Record arrival at a switch.
    #[inline]
    pub fn switch_hop(&mut self, id: PacketId, sw: SwitchId, now: Cycle) {
        if let Some(t) = self.traces.get_mut(&id) {
            t.hops.push((sw, now));
        }
    }

    /// Record final delivery.
    #[inline]
    pub fn delivered(&mut self, id: PacketId, now: Cycle, fecn: bool) {
        if let Some(t) = self.traces.get_mut(&id) {
            t.delivered_at = Some(now);
            t.fecn = fecn;
        }
    }

    /// All traces, sorted by packet id.
    pub fn traces(&self) -> Vec<&PacketTrace> {
        let mut v: Vec<&PacketTrace> = self.traces.values().collect();
        v.sort_by_key(|t| t.id);
        v
    }

    /// Number of traced packets.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_filter() {
        let log = TraceLog::new(4);
        assert!(log.wants(PacketId(0)));
        assert!(!log.wants(PacketId(1)));
        assert!(log.wants(PacketId(8)));
        let all = TraceLog::new(1);
        assert!(all.wants(PacketId(7)));
    }

    #[test]
    fn trace_lifecycle() {
        let mut log = TraceLog::new(1);
        log.injected(PacketId(3), FlowId(1), NodeId(0), NodeId(5), 10);
        log.switch_hop(PacketId(3), SwitchId(0), 12);
        log.switch_hop(PacketId(3), SwitchId(4), 50);
        log.delivered(PacketId(3), 90, true);
        let t = log.traces()[0];
        assert_eq!(t.switch_path(), vec![SwitchId(0), SwitchId(4)]);
        assert_eq!(t.latency_cycles(), Some(80));
        assert!(t.fecn);
    }

    #[test]
    fn events_for_untraced_packets_are_ignored() {
        let mut log = TraceLog::new(2);
        log.switch_hop(PacketId(9), SwitchId(0), 1);
        log.delivered(PacketId(9), 2, false);
        assert!(log.is_empty());
    }

    #[test]
    fn traces_sorted_by_id() {
        let mut log = TraceLog::new(1);
        log.injected(PacketId(5), FlowId(0), NodeId(0), NodeId(1), 0);
        log.injected(PacketId(2), FlowId(0), NodeId(0), NodeId(1), 0);
        let ids: Vec<u64> = log.traces().iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![2, 5]);
    }
}
