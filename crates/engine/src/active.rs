//! Epoch-stamped dense active set for the sparse activity-driven
//! scheduler (DESIGN.md §12).
//!
//! An [`ActiveSet`] tracks which components (switches, adapters, links —
//! anything indexable by a dense `u32`) may have work to do in the
//! current cycle. Membership is a *conservative over-approximation*: the
//! phase loops still apply their per-component skip gates, so a stale
//! member is a cheap no-op while a missed activation would change
//! results. Clearing is O(1) (an epoch bump), insertion is O(1)
//! (a stamp compare), and iteration touches only the members — the whole
//! point of the structure is that a quiet 4096-node network pays for its
//! handful of active components, not for its size.

/// Dense set over `0..capacity` with O(1) insert/clear and
/// member-only iteration.
#[derive(Debug, Clone, Default)]
pub struct ActiveSet {
    /// `stamp[i] == epoch` ⇔ `i` is a member.
    stamp: Vec<u32>,
    /// Current epoch; bumping it empties the set without touching
    /// `stamp`.
    epoch: u32,
    /// Members in insertion order (sorted on demand by [`Self::sort`]).
    members: Vec<u32>,
}

impl ActiveSet {
    /// An empty set over the index space `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            stamp: vec![0; capacity],
            epoch: 1,
            members: Vec::new(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `i` is a member.
    pub fn contains(&self, i: u32) -> bool {
        self.stamp[i as usize] == self.epoch
    }

    /// Insert `i`; duplicate inserts are free. Returns whether the
    /// member is new.
    pub fn insert(&mut self, i: u32) -> bool {
        if self.stamp[i as usize] == self.epoch {
            return false;
        }
        self.stamp[i as usize] = self.epoch;
        self.members.push(i);
        true
    }

    /// Empty the set in O(1) (epoch bump; stamps are only rewritten on
    /// the rare epoch wrap).
    pub fn clear(&mut self) {
        self.members.clear();
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Insert every index in `0..capacity` (seed-all: cycle 0, fault
    /// events, re-routes).
    pub fn fill_all(&mut self) {
        self.clear();
        self.members.extend(0..self.stamp.len() as u32);
        self.stamp.fill(self.epoch);
    }

    /// Sort the members ascending, so member-order iteration reproduces
    /// the dense loops' component-index order exactly.
    pub fn sort(&mut self) {
        self.members.sort_unstable();
    }

    /// The members, in insertion order (ascending after [`Self::sort`]).
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Member at `idx` (index-based iteration lets callers mutate other
    /// state while walking the set).
    pub fn member(&self, idx: usize) -> u32 {
        self.members[idx]
    }

    /// Drop every member for which `keep` returns false.
    pub fn retain(&mut self, mut keep: impl FnMut(u32) -> bool) {
        let epoch = self.epoch;
        let stamp = &mut self.stamp;
        self.members.retain(|&i| {
            if keep(i) {
                true
            } else {
                stamp[i as usize] = epoch.wrapping_sub(1);
                false
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups_and_iterates_members_only() {
        let mut s = ActiveSet::new(10);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(s.insert(7));
        assert!(!s.insert(3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(3) && s.contains(7) && !s.contains(4));
        assert_eq!(s.members(), &[3, 7]);
    }

    #[test]
    fn clear_is_epoch_bump() {
        let mut s = ActiveSet::new(4);
        s.insert(1);
        s.insert(2);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(1));
        assert!(s.insert(1));
        assert_eq!(s.members(), &[1]);
    }

    #[test]
    fn epoch_wrap_resets_stamps() {
        let mut s = ActiveSet::new(3);
        s.epoch = u32::MAX - 1;
        s.insert(0);
        s.clear(); // epoch -> MAX
        s.insert(1);
        s.clear(); // wrap: stamps zeroed, epoch back to 1
        assert!(!s.contains(0) && !s.contains(1));
        assert!(s.insert(1));
        assert!(s.contains(1));
    }

    #[test]
    fn sort_orders_members_ascending() {
        let mut s = ActiveSet::new(10);
        for i in [9, 1, 5, 0] {
            s.insert(i);
        }
        s.sort();
        assert_eq!(s.members(), &[0, 1, 5, 9]);
    }

    #[test]
    fn fill_all_contains_everything() {
        let mut s = ActiveSet::new(5);
        s.insert(2);
        s.fill_all();
        assert_eq!(s.members(), &[0, 1, 2, 3, 4]);
        assert!((0..5).all(|i| s.contains(i)));
        assert!(!s.insert(4));
    }

    #[test]
    fn retain_unstamps_dropped_members() {
        let mut s = ActiveSet::new(10);
        for i in [2, 4, 6, 8] {
            s.insert(i);
        }
        s.retain(|i| i % 4 == 0);
        assert_eq!(s.members(), &[4, 8]);
        assert!(!s.contains(2) && s.contains(4));
        assert!(s.insert(2)); // re-insertable after retain dropped it
    }

    #[test]
    fn default_is_empty_zero_capacity() {
        let s = ActiveSet::default();
        assert!(s.is_empty());
        assert_eq!(s.members(), &[] as &[u32]);
    }
}
