//! A calendar (bucket) queue for near-future timed events.
//!
//! The simulator's RAM-release queue holds events scheduled at most a few
//! hundred cycles ahead (packet serialization times), but under congestion
//! it churns thousands of push/pop pairs per simulated microsecond — the
//! largest remaining serial-phase cost once arbitration is parallelized.
//! A binary heap pays `O(log n)` plus comparator-tuple shuffling per
//! operation; a calendar queue indexed by `(cycle - now)` pays `O(1)`
//! amortized: events land in a circular wheel of FIFO buckets, one bucket
//! per future cycle, and popping scans an occupancy bitset.
//!
//! Ordering contract: [`CalendarQueue::pop_due`] yields events in
//! ascending cycle order, FIFO within a cycle — exactly the order a
//! `BinaryHeap<Reverse<(Cycle, seq, T)>>` with a monotonically increasing
//! `seq` would produce (a proptest in `tests/` pins this equivalence).
//! Events scheduled beyond the wheel horizon, or behind the wheel cursor,
//! overflow into a `BTreeMap` that is checked first on every pop; an
//! overflow entry for cycle `c` was necessarily pushed before any wheel
//! entry for `c` (the cursor only moves forward), so overflow-first
//! preserves FIFO order between the two stores.

use crate::units::Cycle;
use std::collections::{BTreeMap, VecDeque};

/// Wheel horizon in cycles; must be a power of two. Events further than
/// this ahead of the cursor overflow into the `BTreeMap`.
const WHEEL: usize = 1024;
const MASK: u64 = (WHEEL as u64) - 1;
const WORDS: usize = WHEEL / 64;

/// Capacity a bucket shrinks back to once it drains. A fault purge or a
/// congestion spike can pile thousands of releases into one cycle's
/// bucket; without a shrink the `VecDeque` keeps that peak allocation
/// for the rest of the run — multiplied by up to `WHEEL` buckets over a
/// long fault storm. 32 entries covers steady-state occupancy without
/// re-allocation.
const BUCKET_KEEP_CAP: usize = 32;

/// Return a drained bucket's spike allocation to the allocator.
fn shrink_drained<E>(bucket: &mut VecDeque<E>) {
    if bucket.is_empty() && bucket.capacity() > BUCKET_KEEP_CAP {
        bucket.shrink_to(BUCKET_KEEP_CAP);
    }
}

/// A timed FIFO event queue optimized for near-future scheduling.
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// `WHEEL` buckets; bucket `at & MASK` holds events for the unique
    /// cycle `at` in `[cursor, cursor + WHEEL)` mapping to it.
    wheel: Vec<VecDeque<(Cycle, T)>>,
    /// One bit per bucket: non-empty.
    occ: [u64; WORDS],
    /// Lower bound of the wheel window. Only ever moves forward, and never
    /// past the earliest wheel entry.
    cursor: Cycle,
    /// Far-future (or, defensively, past-cursor) events.
    overflow: BTreeMap<Cycle, VecDeque<T>>,
    wheel_len: usize,
    overflow_len: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue with its window starting at cycle 0.
    pub fn new() -> Self {
        Self {
            wheel: (0..WHEEL).map(|_| VecDeque::new()).collect(),
            occ: [0; WORDS],
            cursor: 0,
            overflow: BTreeMap::new(),
            wheel_len: 0,
            overflow_len: 0,
        }
    }

    /// Total queued events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow_len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `value` for cycle `at`.
    pub fn push(&mut self, at: Cycle, value: T) {
        if at >= self.cursor && at - self.cursor < WHEEL as Cycle {
            let slot = (at & MASK) as usize;
            debug_assert!(self.wheel[slot].back().is_none_or(|&(c, _)| c == at));
            self.wheel[slot].push_back((at, value));
            self.occ[slot / 64] |= 1 << (slot % 64);
            self.wheel_len += 1;
        } else {
            self.overflow.entry(at).or_default().push_back(value);
            self.overflow_len += 1;
        }
    }

    /// Earliest cycle in the wheel, or `None` if the wheel is empty.
    fn wheel_earliest(&self) -> Option<Cycle> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.cursor & MASK) as usize;
        let (sw, sb) = (start / 64, start % 64);
        // Ring scan from `start`: the first occupied slot in ring order is
        // the earliest cycle, because slot distance == cycle distance
        // within the window.
        let probe = |word: usize, mask: u64| -> Option<usize> {
            let bits = self.occ[word] & mask;
            (bits != 0).then(|| word * 64 + bits.trailing_zeros() as usize)
        };
        let slot = probe(sw, !0u64 << sb)
            .or_else(|| (1..WORDS).find_map(|i| probe((sw + i) % WORDS, !0u64)))
            .or_else(|| probe(sw, !(!0u64 << sb)));
        slot.map(|s| self.cursor + ((s as u64).wrapping_sub(start as u64) & MASK))
    }

    /// Earliest scheduled cycle over both stores, or `None` when empty.
    /// (The simulator's quiet-cycle fast-forward peeks this.)
    pub fn next_at(&self) -> Option<Cycle> {
        let o = self.overflow.keys().next().copied();
        let w = self.wheel_earliest();
        match (o, w) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pop the earliest event scheduled at or before `now` (FIFO within a
    /// cycle), or `None` if nothing is due. Advances the wheel window
    /// opportunistically.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        if self.is_empty() {
            self.cursor = self.cursor.max(now.saturating_add(1));
            return None;
        }
        let o_at = self.overflow.keys().next().copied();
        let w_at = self.wheel_earliest();
        // Slide the window forward as far as the earliest wheel entry (or
        // freely, if the wheel is empty) so future pushes stay on-wheel.
        self.cursor = match w_at {
            Some(w) => self.cursor.max(now.saturating_add(1)).min(w),
            None => self.cursor.max(now.saturating_add(1)),
        };
        // Overflow wins ties: its entries were pushed first (see module
        // docs).
        if let Some(o) = o_at {
            if o <= now && w_at.is_none_or(|w| o <= w) {
                let mut entry = self.overflow.first_entry().expect("non-empty");
                let v = entry.get_mut().pop_front().expect("non-empty bucket");
                if entry.get().is_empty() {
                    entry.remove();
                }
                self.overflow_len -= 1;
                return Some((o, v));
            }
        }
        if let Some(w) = w_at {
            if w <= now {
                let slot = (w & MASK) as usize;
                let (at, v) = self.wheel[slot].pop_front().expect("occupied slot");
                debug_assert_eq!(at, w);
                if self.wheel[slot].is_empty() {
                    self.occ[slot / 64] &= !(1 << (slot % 64));
                    shrink_drained(&mut self.wheel[slot]);
                }
                self.wheel_len -= 1;
                return Some((at, v));
            }
        }
        None
    }

    /// Allocated capacity of the wheel bucket cycle `at` maps to
    /// (tests pin the post-drain shrink heuristic with this).
    #[cfg(test)]
    fn bucket_capacity(&self, at: Cycle) -> usize {
        self.wheel[(at & MASK) as usize].capacity()
    }

    /// Keep only events for which `f` returns true (used when a fault
    /// event invalidates scheduled releases). Preserves order.
    pub fn retain(&mut self, mut f: impl FnMut(&T) -> bool) {
        for slot in 0..WHEEL {
            let before = self.wheel[slot].len();
            if before == 0 {
                continue;
            }
            self.wheel[slot].retain(|(_, v)| f(v));
            self.wheel_len -= before - self.wheel[slot].len();
            if self.wheel[slot].is_empty() {
                self.occ[slot / 64] &= !(1 << (slot % 64));
                shrink_drained(&mut self.wheel[slot]);
            }
        }
        self.overflow.retain(|_, bucket| {
            let before = bucket.len();
            bucket.retain(|v| f(v));
            self.overflow_len -= before - bucket.len();
            !bucket.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_order_fifo_within_cycle() {
        let mut q = CalendarQueue::new();
        q.push(5, "a");
        q.push(3, "b");
        q.push(5, "c");
        q.push(3, "d");
        assert_eq!(q.len(), 4);
        assert_eq!(q.next_at(), Some(3));
        assert_eq!(q.pop_due(10), Some((3, "b")));
        assert_eq!(q.pop_due(10), Some((3, "d")));
        assert_eq!(q.pop_due(10), Some((5, "a")));
        assert_eq!(q.pop_due(10), Some((5, "c")));
        assert_eq!(q.pop_due(10), None);
        assert!(q.is_empty());
    }

    #[test]
    fn nothing_due_before_schedule() {
        let mut q = CalendarQueue::new();
        q.push(7, 1u32);
        assert_eq!(q.pop_due(6), None);
        assert_eq!(q.pop_due(7), Some((7, 1)));
    }

    #[test]
    fn far_future_events_overflow_and_still_pop() {
        let mut q = CalendarQueue::new();
        q.push(5_000_000, "far");
        q.push(10, "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_due(100), Some((10, "near")));
        assert_eq!(q.pop_due(100), None);
        assert_eq!(q.next_at(), Some(5_000_000));
        assert_eq!(q.pop_due(5_000_000), Some((5_000_000, "far")));
    }

    #[test]
    fn window_advances_and_reuses_slots() {
        let mut q = CalendarQueue::new();
        // Same wheel slot (at & MASK == 1) across three windows.
        for round in 0u64..3 {
            let at = round * WHEEL as u64 + 1;
            q.push(at, round);
            assert_eq!(q.pop_due(at), Some((at, round)));
            assert_eq!(q.pop_due(at), None);
        }
    }

    #[test]
    fn overflow_pops_before_wheel_at_same_cycle() {
        let mut q = CalendarQueue::new();
        let at = 2 * WHEEL as u64; // beyond the initial window -> overflow
        q.push(at, "first(overflow)");
        // Advance the window past the horizon so the same cycle now lands
        // on the wheel.
        assert_eq!(q.pop_due(WHEEL as u64 + 10), None);
        q.push(at, "second(wheel)");
        assert_eq!(q.pop_due(at), Some((at, "first(overflow)")));
        assert_eq!(q.pop_due(at), Some((at, "second(wheel)")));
    }

    #[test]
    fn past_cursor_push_is_defensively_accepted() {
        let mut q = CalendarQueue::<u32>::new();
        assert_eq!(q.pop_due(500), None); // cursor -> 501
        q.push(100, 7); // behind the cursor: overflows
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(500), Some((100, 7)));
    }

    #[test]
    fn retain_filters_both_stores() {
        let mut q = CalendarQueue::new();
        q.push(1, 1u32);
        q.push(2, 2);
        q.push(1_000_000, 3);
        q.push(1_000_000, 4);
        q.retain(|&v| v % 2 == 0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_due(u64::MAX), Some((2, 2)));
        assert_eq!(q.pop_due(u64::MAX), Some((1_000_000, 4)));
        assert!(q.is_empty());
    }

    #[test]
    fn drained_buckets_shed_spike_capacity() {
        let mut q = CalendarQueue::new();
        // A fault-purge-sized spike into a single cycle's bucket…
        for i in 0..10_000u32 {
            q.push(5, i);
        }
        assert!(q.bucket_capacity(5) >= 10_000);
        // …fully drained: the bucket must give the allocation back.
        while q.pop_due(5).is_some() {}
        assert!(q.is_empty());
        assert!(
            q.bucket_capacity(5) <= BUCKET_KEEP_CAP,
            "bucket kept {} slots after draining",
            q.bucket_capacity(5)
        );
        // The slot keeps working after the shrink.
        let at = 5 + WHEEL as u64; // same slot, next window
        q.push(at, 1);
        assert_eq!(q.pop_due(at), Some((at, 1)));
    }

    #[test]
    fn retain_wipe_sheds_spike_capacity() {
        let mut q = CalendarQueue::new();
        for i in 0..10_000u32 {
            q.push(9, i);
        }
        q.retain(|_| false);
        assert!(q.is_empty());
        assert!(q.bucket_capacity(9) <= BUCKET_KEEP_CAP);
    }

    #[test]
    fn next_at_sees_both_stores() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.next_at(), None);
        q.push(9_999_999, 'o');
        assert_eq!(q.next_at(), Some(9_999_999));
        q.push(3, 'w');
        assert_eq!(q.next_at(), Some(3));
    }
}
