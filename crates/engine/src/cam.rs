//! Content-addressable memory (CAM) for congestion tracking.
//!
//! RECN, FBICM and CCFIT keep a small CAM at each port whose lines record
//! the congested points currently known at that port. In FBICM and CCFIT
//! (distributed deterministic routing) a line is keyed by the
//! **destination** the congested packets are addressed to (footnote 3 of
//! the paper); the payload differs between input ports (which bind a line
//! to a CFQ and track Stop/Go state) and output ports (which track
//! propagated congestion info from the downstream switch).
//!
//! This module provides the storage discipline only — fixed number of
//! lines, associative lookup by key, explicit allocate/free — leaving the
//! congestion semantics to the payload type `V`. Lookups are linear scans:
//! hardware CAMs are fully associative and our line counts are tiny (2–8).

use crate::error::EngineError;

/// One occupied CAM line.
#[derive(Debug, Clone, PartialEq)]
pub struct CamLine<K, V> {
    /// Associative key (the congested destination).
    pub key: K,
    /// Mechanism-specific state.
    pub value: V,
}

/// A fixed-capacity content-addressable memory.
#[derive(Debug, Clone)]
pub struct Cam<K, V> {
    lines: Vec<Option<CamLine<K, V>>>,
}

impl<K: Eq + Copy, V> Cam<K, V> {
    /// Create a CAM with `lines` lines, all free.
    pub fn new(lines: usize) -> Self {
        Self {
            lines: (0..lines).map(|_| None).collect(),
        }
    }

    /// Total number of lines.
    pub fn capacity(&self) -> usize {
        self.lines.len()
    }

    /// Number of occupied lines.
    pub fn occupied(&self) -> usize {
        self.lines.iter().filter(|l| l.is_some()).count()
    }

    /// True when no line is free — the resource-exhaustion condition that
    /// makes pure congested-flow isolation lose to CCFIT in Fig. 8b/c.
    pub fn is_full(&self) -> bool {
        self.lines.iter().all(|l| l.is_some())
    }

    /// Index of the line matching `key`, if any.
    pub fn lookup(&self, key: K) -> Option<usize> {
        self.lines
            .iter()
            .position(|l| matches!(l, Some(line) if line.key == key))
    }

    /// Allocate a free line for `key`. Fails with [`EngineError::CamFull`]
    /// when no line is free; callers fall back to leaving packets in the
    /// NFQ (reintroducing HoL-blocking, as the paper describes).
    ///
    /// # Panics
    /// Debug-panics if `key` is already present — congestion bookkeeping
    /// must look up before allocating.
    pub fn allocate(&mut self, key: K, value: V) -> Result<usize, EngineError> {
        debug_assert!(self.lookup(key).is_none(), "duplicate CAM allocation");
        match self.lines.iter().position(|l| l.is_none()) {
            Some(idx) => {
                self.lines[idx] = Some(CamLine { key, value });
                Ok(idx)
            }
            None => Err(EngineError::CamFull {
                capacity: self.capacity(),
            }),
        }
    }

    /// Free line `idx`, returning its contents.
    ///
    /// # Panics
    /// Panics if the line is already free.
    pub fn free(&mut self, idx: usize) -> CamLine<K, V> {
        self.lines[idx]
            .take()
            .expect("freeing an already-free CAM line")
    }

    /// Borrow the line at `idx`, if occupied.
    pub fn get(&self, idx: usize) -> Option<&CamLine<K, V>> {
        self.lines.get(idx).and_then(|l| l.as_ref())
    }

    /// Mutably borrow the line at `idx`, if occupied.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut CamLine<K, V>> {
        self.lines.get_mut(idx).and_then(|l| l.as_mut())
    }

    /// Free every line at once. Used when a fail-stop fault quiesces a
    /// port: the CAM's lines describe congestion state of a cable that
    /// no longer exists, so all of it is discarded and rebuilt from
    /// live traffic after recovery.
    pub fn clear(&mut self) {
        for line in &mut self.lines {
            *line = None;
        }
    }

    /// Iterate over `(index, line)` pairs for occupied lines.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &CamLine<K, V>)> {
        self.lines
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.as_ref().map(|line| (i, line)))
    }

    /// Iterate mutably over `(index, line)` pairs for occupied lines.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut CamLine<K, V>)> {
        self.lines
            .iter_mut()
            .enumerate()
            .filter_map(|(i, l)| l.as_mut().map(|line| (i, line)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_lookup_free_cycle() {
        let mut cam: Cam<u32, &str> = Cam::new(2);
        assert_eq!(cam.capacity(), 2);
        assert_eq!(cam.occupied(), 0);

        let a = cam.allocate(7, "seven").unwrap();
        assert_eq!(cam.lookup(7), Some(a));
        assert_eq!(cam.get(a).unwrap().value, "seven");
        assert_eq!(cam.occupied(), 1);

        let freed = cam.free(a);
        assert_eq!(freed.key, 7);
        assert_eq!(cam.lookup(7), None);
        assert_eq!(cam.occupied(), 0);
    }

    #[test]
    fn exhaustion_returns_cam_full() {
        let mut cam: Cam<u32, ()> = Cam::new(2);
        cam.allocate(1, ()).unwrap();
        cam.allocate(2, ()).unwrap();
        assert!(cam.is_full());
        assert_eq!(
            cam.allocate(3, ()),
            Err(EngineError::CamFull { capacity: 2 })
        );
    }

    #[test]
    fn freed_line_is_reusable() {
        let mut cam: Cam<u32, u32> = Cam::new(1);
        let idx = cam.allocate(1, 10).unwrap();
        cam.free(idx);
        let idx2 = cam.allocate(2, 20).unwrap();
        assert_eq!(idx, idx2, "single line CAM reuses the line");
        assert_eq!(cam.lookup(2), Some(idx2));
        assert_eq!(cam.lookup(1), None);
    }

    #[test]
    fn iter_yields_only_occupied_lines() {
        let mut cam: Cam<u32, u32> = Cam::new(4);
        cam.allocate(5, 50).unwrap();
        let i6 = cam.allocate(6, 60).unwrap();
        cam.free(i6);
        cam.allocate(7, 70).unwrap();
        let keys: Vec<u32> = cam.iter().map(|(_, l)| l.key).collect();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&5) && keys.contains(&7));
    }

    #[test]
    fn get_mut_allows_state_updates() {
        let mut cam: Cam<u32, bool> = Cam::new(1);
        let idx = cam.allocate(9, false).unwrap();
        cam.get_mut(idx).unwrap().value = true;
        assert!(cam.get(idx).unwrap().value);
    }

    #[test]
    fn clear_frees_every_line() {
        let mut cam: Cam<u32, u32> = Cam::new(3);
        cam.allocate(1, 10).unwrap();
        cam.allocate(2, 20).unwrap();
        cam.clear();
        assert_eq!(cam.occupied(), 0);
        assert_eq!(cam.lookup(1), None);
        cam.allocate(3, 30).unwrap();
        assert_eq!(cam.occupied(), 1);
    }

    #[test]
    #[should_panic(expected = "already-free")]
    fn double_free_panics() {
        let mut cam: Cam<u32, ()> = Cam::new(1);
        let idx = cam.allocate(1, ()).unwrap();
        cam.free(idx);
        cam.free(idx);
    }
}
