//! Error types for the engine substrate.

use std::fmt;

/// Errors raised by engine-level structures.
///
/// The engine is used in an embedded, pre-validated context, so most hot
/// paths use debug assertions instead; `EngineError` covers the
/// configuration-time and capacity-exhaustion cases a caller can
/// meaningfully react to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An allocation was requested from a [`crate::ram::PortRam`] that does
    /// not have enough free flits.
    RamExhausted {
        /// Flits requested.
        requested: u32,
        /// Flits currently free.
        free: u32,
    },
    /// A CAM allocation was requested but every line is in use.
    CamFull {
        /// Total number of lines in the CAM.
        capacity: usize,
    },
    /// A configuration parameter was invalid (message explains which).
    InvalidConfig(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::RamExhausted { requested, free } => write!(
                f,
                "port RAM exhausted: requested {requested} flits but only {free} free"
            ),
            EngineError::CamFull { capacity } => {
                write!(f, "CAM full: all {capacity} lines in use")
            }
            EngineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = EngineError::RamExhausted {
            requested: 32,
            free: 4,
        };
        assert!(e.to_string().contains("32"));
        assert!(e.to_string().contains("4"));
        let e = EngineError::CamFull { capacity: 2 };
        assert!(e.to_string().contains("2"));
        let e = EngineError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
