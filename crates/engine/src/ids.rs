//! Strongly-typed identifiers used across the simulator.
//!
//! Indices into the simulator's flat arrays are wrapped in newtypes so that
//! a switch index can never be confused with a node or port index. All ids
//! are small (`u32`/`u16`) to keep hot structures compact (packets carry
//! several of them).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $repr:ty) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// The raw index as a `usize`, for array indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$repr> for $name {
            #[inline]
            fn from(v: $repr) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                Self(v as $repr)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// An end node (processing node / NIC). Nodes both inject and consume
    /// traffic.
    NodeId,
    u32
);
id_type!(
    /// A switch.
    SwitchId,
    u32
);
id_type!(
    /// A port local to one switch. Ports are bidirectional attachment
    /// points; each connected port has one outgoing and one incoming
    /// directed link.
    PortId,
    u16
);
id_type!(
    /// A directed link (one direction of a cable).
    LinkId,
    u32
);
id_type!(
    /// A traffic flow, as declared by the workload. Used for per-flow
    /// bandwidth accounting (Figs. 9 and 10 of the paper).
    FlowId,
    u32
);
id_type!(
    /// A unique packet identifier, for tracing and conservation checks.
    PacketId,
    u64
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_through_usize() {
        let n = NodeId::from(17usize);
        assert_eq!(n.index(), 17);
        let s = SwitchId::from(3u32);
        assert_eq!(s.index(), 3);
        let p = PortId::from(5usize);
        assert_eq!(p.index(), 5);
    }

    #[test]
    fn ids_display_with_type_name() {
        assert_eq!(NodeId(4).to_string(), "NodeId4");
        assert_eq!(PortId(2).to_string(), "PortId2");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(FlowId(1));
        set.insert(FlowId(1));
        set.insert(FlowId(2));
        assert_eq!(set.len(), 2);
        assert!(FlowId(1) < FlowId(2));
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Compile-time property: NodeId(1) == SwitchId(1) must not compile.
        // We assert the runtime equivalents work per-type.
        assert_eq!(NodeId(1), NodeId(1));
        assert_ne!(SwitchId(1), SwitchId(2));
    }
}
