#![warn(missing_docs)]

//! # ccfit-engine
//!
//! Cycle-level simulation substrate for lossless HPC interconnection
//! networks. This crate provides the building blocks shared by the switch,
//! end-node and network models in the [`ccfit`] crate:
//!
//! * a **unit model** ([`units`]) mapping wall-clock nanoseconds onto
//!   simulator cycles and bytes onto flits,
//! * **packets** ([`packet`]) with the congestion-notification header bits
//!   (FECN/BECN) used by InfiniBand-style congestion control,
//! * flit-accounted **packet queues** ([`queue`]) and a dynamically-shared
//!   **port RAM** ([`ram`]) from which queues allocate,
//! * a small **content-addressable memory** ([`cam`]) used to track
//!   congested destinations, modelled after the CAMs of RECN/FBICM/CCFIT,
//! * lossless **links** ([`link`]) with serialization latency, propagation
//!   delay, credit-based flow control, and a reverse control channel,
//! * deterministic **seed splitting** ([`rng`]) so every component draws
//!   from its own reproducible stream.
//!
//! The engine is intentionally agnostic of topology, routing and the
//! congestion-control mechanisms themselves; those live in higher-level
//! crates. Everything here is deterministic: given the same inputs and
//! seeds, every structure evolves identically.
//!
//! [`ccfit`]: https://example.org/ccfit-rs

pub mod active;
pub mod calq;
pub mod cam;
pub mod error;
pub mod ids;
pub mod link;
pub mod packet;
pub mod queue;
pub mod ram;
pub mod rng;
pub mod units;

pub use active::ActiveSet;
pub use calq::CalendarQueue;
pub use cam::{Cam, CamLine};
pub use error::EngineError;
pub use ids::{FlowId, LinkId, NodeId, PacketId, PortId, SwitchId};
pub use link::{CtrlEvent, Link, LinkConfig, LinkSlice, WireLoss};
pub use packet::{Packet, PacketKind};
pub use queue::PacketQueue;
pub use ram::PortRam;
pub use rng::SeedSplitter;
pub use units::{Cycle, UnitModel};
