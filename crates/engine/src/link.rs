//! Lossless links with credit-based flow control.
//!
//! A [`Link`] models **one direction** of a cable between two ports. The
//! forward direction carries data packets with a serialization latency
//! (`size / bandwidth`) plus a fixed propagation delay; the reverse
//! direction carries the bookkeeping the receiver sends back to the
//! sender:
//!
//! * **credit returns** — the receiver frees input-RAM space and the
//!   sender may use it again (credit-based link-level flow control,
//!   Table I), and
//! * **congestion-information control events** — the Stop/Go and CFQ
//!   allocation/deallocation notifications that FBICM/CCFIT propagate
//!   upstream, hop by hop, against the data flow.
//!
//! The sender consumes credits for the *whole* packet before starting to
//! transmit (virtual cut-through never commits a packet it cannot buffer
//! downstream), which is exactly what makes the network lossless. Control
//! events travel on a dedicated channel with the same propagation delay;
//! their bandwidth usage (a few flits per CFQ lifetime) is negligible and
//! not debited against data credits — see DESIGN.md §3 for the
//! substitution note.

use crate::ids::NodeId;
use crate::packet::Packet;
use crate::units::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Bandwidth in flits per cycle (1 = 2.5 GB/s under the default unit
    /// model, 2 = 5 GB/s).
    pub bw_flits_per_cycle: u32,
    /// Propagation delay in cycles.
    pub delay_cycles: Cycle,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            bw_flits_per_cycle: 1,
            delay_cycles: 1,
        }
    }
}

/// Congestion-information control events propagated upstream (receiver to
/// sender) by the congested-flow-isolation machinery. `dst` is always the
/// congested destination that keys the CAM lines on both sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CtrlEvent {
    /// Downstream allocated a CFQ for `dst` and its occupancy grew enough
    /// that the upstream switch must start isolating this flow too.
    CfqAlloc {
        /// Congested destination.
        dst: NodeId,
    },
    /// Downstream deallocated its CFQ for `dst`; the upstream output-port
    /// CAM line can be released.
    CfqDealloc {
        /// Congested destination.
        dst: NodeId,
    },
    /// Downstream CFQ for `dst` filled past the Stop threshold: pause
    /// forwarding packets of this congested flow.
    Stop {
        /// Congested destination.
        dst: NodeId,
    },
    /// Downstream CFQ for `dst` drained below the Go threshold: resume.
    Go {
        /// Congested destination.
        dst: NodeId,
    },
}

/// A packet on the wire.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    packet: Packet,
    /// Cycle the header reaches the receiver (packet becomes visible).
    header_at: Cycle,
    /// Cycle the tail reaches the receiver.
    tail_at: Cycle,
}

/// One direction of a cable, with its reverse bookkeeping channel.
#[derive(Debug, Clone)]
pub struct Link {
    /// Effective parameters (may differ from `base` while degraded).
    cfg: LinkConfig,
    /// Nominal parameters the cable was built with.
    base: LinkConfig,
    /// Credits (in flits) the sender currently holds against the
    /// receiver's input RAM.
    credits: u32,
    /// Cycle at which the transmitter finishes serializing the current
    /// packet and can accept another.
    tx_free_at: Cycle,
    /// The forward channel accepts new sends. Cleared by both
    /// [`Link::fail`] and [`Link::close`].
    up: bool,
    /// The reverse channel (credit returns + control events) still
    /// works. Cleared only by fail-stop ([`Link::fail`]); a gracefully
    /// closed link keeps draining its bookkeeping.
    reverse_open: bool,
    in_flight: VecDeque<InFlight>,
    /// Reverse channel: credit returns (arrival cycle, flits).
    credit_returns: VecDeque<(Cycle, u32)>,
    /// Reverse channel: congestion-information events.
    ctrl_in_flight: VecDeque<(Cycle, CtrlEvent)>,
}

/// What a fail-stop ([`Link::fail`]) or a restore ([`Link::restore`])
/// destroyed: everything that was travelling on the wire at that
/// instant. The fault-injection subsystem turns this into loss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireLoss {
    /// Data packets dropped from the forward channel.
    pub data_packets: u64,
    /// Flits of those data packets.
    pub data_flits: u64,
    /// Non-data (control notification) packets dropped from the forward
    /// channel.
    pub ctrl_packets: u64,
    /// Control events dropped from the reverse channel.
    pub ctrl_events: u64,
    /// Credit flits dropped from the reverse channel.
    pub credit_flits: u64,
}

impl WireLoss {
    /// Merge another loss tally into this one.
    pub fn absorb(&mut self, other: WireLoss) {
        self.data_packets += other.data_packets;
        self.data_flits += other.data_flits;
        self.ctrl_packets += other.ctrl_packets;
        self.ctrl_events += other.ctrl_events;
        self.credit_flits += other.credit_flits;
    }
}

/// A packet delivered to the receiver, with its cut-through timing.
#[derive(Debug, Clone, Copy)]
pub struct Delivery {
    /// The arriving packet.
    pub packet: Packet,
    /// Cycle the header arrived (the packet is visible to arbitration).
    pub visible_at: Cycle,
    /// Cycle the tail arrives (the packet is fully buffered).
    pub ready_at: Cycle,
}

impl Link {
    /// Create a link whose sender initially holds `initial_credits` flits
    /// of the receiver's RAM.
    pub fn new(cfg: LinkConfig, initial_credits: u32) -> Self {
        assert!(
            cfg.bw_flits_per_cycle > 0,
            "link bandwidth must be positive"
        );
        Self {
            cfg,
            base: cfg,
            credits: initial_credits,
            tx_free_at: 0,
            up: true,
            reverse_open: true,
            in_flight: VecDeque::new(),
            credit_returns: VecDeque::new(),
            ctrl_in_flight: VecDeque::new(),
        }
    }

    /// Whether the forward channel accepts new sends.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Drop everything on the wire, tallying the loss.
    fn purge(&mut self) -> WireLoss {
        let mut loss = WireLoss::default();
        for f in self.in_flight.drain(..) {
            if f.packet.is_data() {
                loss.data_packets += 1;
                loss.data_flits += f.packet.size_flits as u64;
            } else {
                loss.ctrl_packets += 1;
            }
        }
        loss.ctrl_events = self.ctrl_in_flight.len() as u64;
        self.ctrl_in_flight.clear();
        loss.credit_flits = self.credit_returns.iter().map(|&(_, f)| f as u64).sum();
        self.credit_returns.clear();
        loss
    }

    /// Fail-stop: the cable is cut. Everything in flight — data, credit
    /// returns, control events — is destroyed and tallied; the sender's
    /// remaining credits are zeroed (the receiver RAM they referenced is
    /// on the other side of the cut). Both channels stop working until
    /// [`Link::restore`].
    pub fn fail(&mut self) -> WireLoss {
        self.up = false;
        self.reverse_open = false;
        self.credits = 0;
        self.purge()
    }

    /// Graceful shutdown: the forward channel stops accepting new sends
    /// but everything already travelling (data, credits, control) drains
    /// normally. Use for planned link deactivation.
    pub fn close(&mut self) {
        self.up = false;
    }

    /// Bring a downed link back up with a fresh credit grant (the
    /// endpoints re-synchronize flow control on link training). Any
    /// residue still on the wire — possible when a gracefully closed
    /// link is restored before it finished draining — is destroyed and
    /// tallied, exactly like a fail-stop would have destroyed it.
    pub fn restore(&mut self, credits: u32) -> WireLoss {
        let loss = self.purge();
        self.up = true;
        self.reverse_open = true;
        self.credits = credits;
        loss
    }

    /// Degrade the link: divide the bandwidth by `bw_divisor` (floored at
    /// 1 flit/cycle) and add `extra_delay_cycles` of propagation delay.
    /// Only affects packets sent from now on.
    pub fn degrade(&mut self, bw_divisor: u32, extra_delay_cycles: Cycle) {
        self.cfg = LinkConfig {
            bw_flits_per_cycle: (self.base.bw_flits_per_cycle / bw_divisor.max(1)).max(1),
            delay_cycles: self.base.delay_cycles + extra_delay_cycles,
        };
    }

    /// Restore the nominal link parameters after a degradation.
    pub fn restore_rate(&mut self) {
        self.cfg = self.base;
    }

    /// Static parameters.
    pub fn config(&self) -> LinkConfig {
        self.cfg
    }

    /// Credits currently available to the sender.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Cycles needed to serialize `flits` onto this link.
    pub fn serialization_cycles(&self, flits: u32) -> Cycle {
        (flits.div_ceil(self.cfg.bw_flits_per_cycle)).max(1) as Cycle
    }

    /// Whether the transmitter is idle at `now`.
    pub fn tx_idle(&self, now: Cycle) -> bool {
        self.tx_free_at <= now
    }

    /// Whether a packet of `size_flits` can start transmission at `now`
    /// (link up, transmitter idle *and* enough credits for the whole
    /// packet — virtual cut-through buffer reservation).
    pub fn can_send(&self, now: Cycle, size_flits: u32) -> bool {
        self.up && self.tx_idle(now) && self.credits >= size_flits
    }

    /// Start transmitting `packet` at `now`. Consumes credits for the
    /// whole packet and occupies the transmitter for the serialization
    /// time. Returns the cycle at which the transmitter frees up.
    ///
    /// # Panics
    /// Panics if called while `can_send` is false — the arbiter must
    /// check eligibility first.
    pub fn send(&mut self, now: Cycle, packet: Packet) -> Cycle {
        assert!(self.up, "sending on a downed link");
        assert!(self.tx_idle(now), "link transmitter busy");
        assert!(
            self.credits >= packet.size_flits,
            "sending without credits: have {}, need {}",
            self.credits,
            packet.size_flits
        );
        self.credits -= packet.size_flits;
        let ser = self.serialization_cycles(packet.size_flits);
        self.tx_free_at = now + ser;
        let header_at = now + self.cfg.delay_cycles + 1;
        let tail_at = now + self.cfg.delay_cycles + ser;
        self.in_flight.push_back(InFlight {
            packet,
            header_at,
            tail_at,
        });
        self.tx_free_at
    }

    /// Whether `deliver` would pop anything at `now` — lets the hot loop
    /// skip the scratch-buffer dance for the (common) idle link.
    pub fn has_delivery(&self, now: Cycle) -> bool {
        self.in_flight.front().is_some_and(|f| f.header_at <= now)
    }

    /// Pop every packet whose header has arrived by `now` into `out`.
    /// In-order delivery is guaranteed because sends are serialized.
    pub fn deliver_into(&mut self, now: Cycle, out: &mut Vec<Delivery>) {
        while let Some(front) = self.in_flight.front() {
            if front.header_at <= now {
                let f = self.in_flight.pop_front().expect("front exists");
                out.push(Delivery {
                    packet: f.packet,
                    visible_at: f.header_at,
                    ready_at: f.tail_at,
                });
            } else {
                break;
            }
        }
    }

    /// Receiver-side: return `flits` credits to the sender; they arrive
    /// after the propagation delay. Silently discarded while the reverse
    /// channel is cut by a fail-stop (the sender re-synchronizes its
    /// credit state on [`Link::restore`]).
    /// Same-cycle returns are coalesced into the tail entry: under a
    /// hotspot storm a receiver frees many buffers per cycle, and one
    /// `(arrival, flits)` entry absorbs them all without growing the
    /// queue. Coalescing is observationally identical — `poll_credits`
    /// absorbs whole entries whose arrival cycle has passed, and a merged
    /// entry carries the same flit total at the same arrival cycle.
    pub fn return_credits(&mut self, now: Cycle, flits: u32) {
        if flits > 0 && self.reverse_open {
            let at = now + self.cfg.delay_cycles;
            if let Some(last) = self.credit_returns.back_mut() {
                if last.0 == at {
                    last.1 += flits;
                    return;
                }
            }
            self.credit_returns.push_back((at, flits));
        }
    }

    /// Number of distinct entries in the credit-return queue (tests the
    /// coalescing behaviour; conservation uses [`Link::credits_in_flight`]).
    pub fn credit_return_entries(&self) -> usize {
        self.credit_returns.len()
    }

    /// Sender-side: absorb credit returns that have arrived by `now`.
    pub fn poll_credits(&mut self, now: Cycle) {
        if self.credit_returns.is_empty() {
            return;
        }
        while let Some(&(at, flits)) = self.credit_returns.front() {
            if at <= now {
                self.credit_returns.pop_front();
                self.credits += flits;
            } else {
                break;
            }
        }
    }

    /// Receiver-side: send a congestion-information event upstream.
    /// Silently discarded while the reverse channel is cut by a
    /// fail-stop (the isolation state on the dead cable is quiesced by
    /// the fault subsystem instead).
    pub fn send_ctrl(&mut self, now: Cycle, ev: CtrlEvent) {
        if self.reverse_open {
            self.ctrl_in_flight
                .push_back((now + self.cfg.delay_cycles, ev));
        }
    }

    /// Whether a control event has arrived by `now` (events are
    /// time-ordered, so the front suffices). Lets pollers skip the
    /// drain entirely on the common no-event cycle.
    pub fn has_ctrl(&self, now: Cycle) -> bool {
        self.ctrl_in_flight
            .front()
            .is_some_and(|&(at, _)| at <= now)
    }

    /// Sender-side: pop control events that have arrived by `now` into
    /// `out`.
    pub fn poll_ctrl_into(&mut self, now: Cycle, out: &mut Vec<CtrlEvent>) {
        while let Some(&(at, ev)) = self.ctrl_in_flight.front() {
            if at <= now {
                self.ctrl_in_flight.pop_front();
                out.push(ev);
            } else {
                break;
            }
        }
    }

    /// Whether nothing at all is travelling on this link (no data, no
    /// credit returns, no control events). `tx_free_at` is irrelevant: a
    /// busy transmitter with nothing queued cannot produce future events
    /// on its own.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
            && self.credit_returns.is_empty()
            && self.ctrl_in_flight.is_empty()
    }

    /// Earliest cycle at which something on this link arrives (header,
    /// credit return, or control event), or `None` if the link is idle.
    /// Each queue is ordered by arrival time, so the fronts suffice.
    pub fn next_event_at(&self) -> Option<Cycle> {
        let mut next: Option<Cycle> = self.in_flight.front().map(|f| f.header_at);
        if let Some(&(at, _)) = self.credit_returns.front() {
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        if let Some(&(at, _)) = self.ctrl_in_flight.front() {
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        next
    }

    /// Number of packets currently on the wire (for conservation checks).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Number of *data* packets on the wire (conservation checks exclude
    /// control notifications).
    pub fn in_flight_data_count(&self) -> usize {
        self.in_flight.iter().filter(|f| f.packet.is_data()).count()
    }

    /// Flits of credit currently travelling back to the sender (for
    /// credit-conservation checks).
    pub fn credits_in_flight(&self) -> u32 {
        self.credit_returns.iter().map(|&(_, f)| f).sum()
    }
}

/// A mutable view of the simulator's link array that the sharded parallel
/// tick can hand to several workers at once.
///
/// Serially this behaves exactly like `&mut [Link]` (create with
/// [`LinkSlice::new`], index with `links[i]`); the borrow checker enforces
/// exclusivity through the `&mut self` of [`IndexMut`]. The parallel
/// engine additionally calls [`LinkSlice::alias`] to give every worker its
/// own copy of the view — soundness then rests on the phase invariant that
/// no two workers touch the same link index within a parallel section
/// (see DESIGN.md §9).
#[derive(Debug)]
pub struct LinkSlice<'a> {
    ptr: *mut Link,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [Link]>,
}

// SAFETY: a LinkSlice is only sent/shared across threads by the parallel
// tick engine, whose phase structure guarantees element-disjoint access
// (the contract of `alias`).
unsafe impl Send for LinkSlice<'_> {}
unsafe impl Sync for LinkSlice<'_> {}

impl<'a> LinkSlice<'a> {
    /// Wrap an exclusive borrow of the link array.
    pub fn new(links: &'a mut [Link]) -> Self {
        Self {
            ptr: links.as_mut_ptr(),
            len: links.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of links in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Duplicate the view for another worker thread.
    ///
    /// # Safety
    /// Callers must guarantee that, for the lifetime of the aliases, no
    /// link index is accessed by more than one of them (shard-disjoint
    /// access), and that accesses in later phases are separated from
    /// earlier ones by a synchronization barrier.
    pub unsafe fn alias(&self) -> LinkSlice<'a> {
        Self {
            ptr: self.ptr,
            len: self.len,
            _marker: std::marker::PhantomData,
        }
    }

    /// Rebuild a view from raw parts (the parallel engine ships the
    /// pointer through a `*const` context struct).
    ///
    /// # Safety
    /// `ptr` must point to `len` initialized `Link`s that outlive `'a`,
    /// and the resulting view is subject to the same element-disjoint
    /// aliasing contract as [`Self::alias`].
    pub unsafe fn from_raw(ptr: *mut Link, len: usize) -> LinkSlice<'a> {
        Self {
            ptr,
            len,
            _marker: std::marker::PhantomData,
        }
    }
}

impl std::ops::Index<usize> for LinkSlice<'_> {
    type Output = Link;
    fn index(&self, i: usize) -> &Link {
        assert!(i < self.len, "link index {i} out of bounds ({})", self.len);
        // SAFETY: in-bounds; exclusivity per the type's aliasing contract.
        unsafe { &*self.ptr.add(i) }
    }
}

impl std::ops::IndexMut<usize> for LinkSlice<'_> {
    fn index_mut(&mut self, i: usize) -> &mut Link {
        assert!(i < self.len, "link index {i} out of bounds ({})", self.len);
        // SAFETY: in-bounds; exclusivity per the type's aliasing contract.
        unsafe { &mut *self.ptr.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, PacketId};

    fn pkt(id: u64, flits: u32) -> Packet {
        Packet::data(
            PacketId(id),
            NodeId(0),
            NodeId(1),
            flits,
            flits * 64,
            FlowId(0),
            0,
        )
    }

    fn link(bw: u32, delay: Cycle, credits: u32) -> Link {
        Link::new(
            LinkConfig {
                bw_flits_per_cycle: bw,
                delay_cycles: delay,
            },
            credits,
        )
    }

    fn deliver(l: &mut Link, now: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        l.deliver_into(now, &mut out);
        out
    }

    fn poll_ctrl(l: &mut Link, now: Cycle) -> Vec<CtrlEvent> {
        let mut out = Vec::new();
        l.poll_ctrl_into(now, &mut out);
        out
    }

    #[test]
    fn send_consumes_credits_and_occupies_tx() {
        let mut l = link(1, 2, 64);
        assert!(l.can_send(0, 32));
        let free_at = l.send(0, pkt(1, 32));
        assert_eq!(free_at, 32, "32 flits at 1 flit/cycle");
        assert_eq!(l.credits(), 32);
        assert!(!l.tx_idle(10));
        assert!(l.tx_idle(32));
    }

    #[test]
    fn delivery_timing_honors_delay_and_serialization() {
        let mut l = link(1, 3, 64);
        l.send(10, pkt(1, 32));
        assert!(deliver(&mut l, 13).is_empty(), "header arrives at 10+3+1");
        let d = deliver(&mut l, 14);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].visible_at, 14);
        assert_eq!(d[0].ready_at, 10 + 3 + 32);
    }

    #[test]
    fn double_bandwidth_halves_serialization() {
        let mut l = link(2, 0, 64);
        let free_at = l.send(0, pkt(1, 32));
        assert_eq!(free_at, 16);
        let d = deliver(&mut l, 1);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].ready_at, 16);
    }

    #[test]
    fn in_order_delivery() {
        let mut l = link(1, 1, 64);
        l.send(0, pkt(1, 4));
        l.poll_credits(4);
        l.send(4, pkt(2, 4));
        let d = deliver(&mut l, 100);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].packet.id, PacketId(1));
        assert_eq!(d[1].packet.id, PacketId(2));
    }

    #[test]
    fn cannot_send_without_credits() {
        let mut l = link(1, 1, 40);
        l.send(0, pkt(1, 32));
        assert!(!l.can_send(32, 32), "only 8 credits left");
        assert!(l.can_send(32, 8));
    }

    #[test]
    fn credit_returns_arrive_after_delay() {
        let mut l = link(1, 5, 0);
        l.return_credits(10, 32);
        l.poll_credits(14);
        assert_eq!(l.credits(), 0, "in flight until cycle 15");
        l.poll_credits(15);
        assert_eq!(l.credits(), 32);
        assert_eq!(l.credits_in_flight(), 0);
    }

    #[test]
    fn zero_credit_return_is_a_no_op() {
        let mut l = link(1, 5, 0);
        l.return_credits(0, 0);
        assert_eq!(l.credits_in_flight(), 0);
    }

    #[test]
    fn same_cycle_credit_returns_coalesce() {
        let mut l = link(1, 5, 0);
        l.return_credits(10, 8);
        l.return_credits(10, 4);
        l.return_credits(10, 2);
        assert_eq!(l.credit_return_entries(), 1, "merged into one entry");
        assert_eq!(l.credits_in_flight(), 14);
        l.return_credits(11, 1);
        assert_eq!(l.credit_return_entries(), 2, "new cycle, new entry");
        l.poll_credits(14);
        assert_eq!(l.credits(), 0, "nothing arrived yet");
        l.poll_credits(15);
        assert_eq!(l.credits(), 14, "merged entry lands whole");
        l.poll_credits(16);
        assert_eq!(l.credits(), 15);
    }

    #[test]
    fn link_slice_indexes_like_a_slice() {
        let mut links = vec![link(1, 1, 8), link(2, 3, 16)];
        let mut ls = LinkSlice::new(&mut links);
        assert_eq!(ls.len(), 2);
        assert!(!ls.is_empty());
        assert_eq!(ls[1].credits(), 16);
        ls[0].return_credits(0, 4);
        ls[0].poll_credits(10);
        drop(ls);
        assert_eq!(links[0].credits(), 12);
    }

    #[test]
    fn ctrl_events_arrive_in_order_after_delay() {
        let mut l = link(1, 4, 0);
        l.send_ctrl(0, CtrlEvent::CfqAlloc { dst: NodeId(9) });
        l.send_ctrl(1, CtrlEvent::Stop { dst: NodeId(9) });
        assert!(poll_ctrl(&mut l, 3).is_empty());
        let evs = poll_ctrl(&mut l, 4);
        assert_eq!(evs, vec![CtrlEvent::CfqAlloc { dst: NodeId(9) }]);
        let evs = poll_ctrl(&mut l, 5);
        assert_eq!(evs, vec![CtrlEvent::Stop { dst: NodeId(9) }]);
    }

    #[test]
    #[should_panic(expected = "transmitter busy")]
    fn overlapping_send_panics() {
        let mut l = link(1, 1, 128);
        l.send(0, pkt(1, 32));
        l.send(5, pkt(2, 32));
    }

    #[test]
    #[should_panic(expected = "without credits")]
    fn send_without_credits_panics() {
        let mut l = link(1, 1, 8);
        l.send(0, pkt(1, 32));
    }

    #[test]
    fn fail_stop_destroys_everything_in_flight() {
        let mut l = link(1, 2, 64);
        l.send(0, pkt(1, 32));
        l.return_credits(1, 8);
        l.send_ctrl(1, CtrlEvent::Stop { dst: NodeId(3) });
        let loss = l.fail();
        assert_eq!(loss.data_packets, 1);
        assert_eq!(loss.data_flits, 32);
        assert_eq!(loss.ctrl_events, 1);
        assert_eq!(loss.credit_flits, 8);
        assert!(!l.is_up());
        assert_eq!(l.credits(), 0);
        assert!(l.is_idle());
        assert!(!l.can_send(1000, 1));
        // The reverse channel is cut too: bookkeeping is discarded.
        l.return_credits(5, 16);
        l.send_ctrl(5, CtrlEvent::Go { dst: NodeId(3) });
        assert_eq!(l.credits_in_flight(), 0);
        assert!(!l.has_ctrl(1000));
    }

    #[test]
    fn graceful_close_drains_in_flight_traffic() {
        let mut l = link(1, 2, 64);
        l.send(0, pkt(1, 4));
        l.close();
        assert!(!l.can_send(100, 1), "no new sends");
        let d = deliver(&mut l, 100);
        assert_eq!(d.len(), 1, "in-flight packet still delivers");
        // Reverse bookkeeping still works while closed.
        l.return_credits(100, 4);
        l.poll_credits(103);
        assert_eq!(l.credits(), 64);
    }

    #[test]
    fn restore_resynchronizes_credits() {
        let mut l = link(1, 2, 64);
        l.send(0, pkt(1, 32));
        l.fail();
        let loss = l.restore(48);
        assert_eq!(loss, WireLoss::default(), "fail already purged");
        assert!(l.is_up());
        assert_eq!(l.credits(), 48);
        assert!(l.can_send(100, 48));
    }

    #[test]
    fn restore_purges_undrained_residue() {
        let mut l = link(1, 2, 64);
        l.send(0, pkt(1, 32));
        l.close();
        let loss = l.restore(64);
        assert_eq!(loss.data_packets, 1, "undrained packet is destroyed");
    }

    #[test]
    fn degrade_and_restore_rate() {
        let mut l = link(4, 2, 256);
        l.degrade(2, 3);
        assert_eq!(l.config().bw_flits_per_cycle, 2);
        assert_eq!(l.config().delay_cycles, 5);
        let free_at = l.send(0, pkt(1, 32));
        assert_eq!(free_at, 16, "32 flits at 2 flits/cycle");
        l.restore_rate();
        assert_eq!(l.config().bw_flits_per_cycle, 4);
        assert_eq!(l.config().delay_cycles, 2);
        // Divisor larger than the bandwidth floors at 1 flit/cycle.
        l.degrade(100, 0);
        assert_eq!(l.config().bw_flits_per_cycle, 1);
    }

    #[test]
    fn wire_loss_absorb_accumulates() {
        let mut a = WireLoss {
            data_packets: 1,
            data_flits: 32,
            ctrl_packets: 0,
            ctrl_events: 2,
            credit_flits: 8,
        };
        a.absorb(WireLoss {
            data_packets: 2,
            data_flits: 64,
            ctrl_packets: 1,
            ctrl_events: 0,
            credit_flits: 0,
        });
        assert_eq!(a.data_packets, 3);
        assert_eq!(a.data_flits, 96);
        assert_eq!(a.ctrl_packets, 1);
        assert_eq!(a.ctrl_events, 2);
        assert_eq!(a.credit_flits, 8);
    }

    #[test]
    fn credit_conservation_across_round_trip() {
        let total = 64u32;
        let mut l = link(1, 2, total);
        l.send(0, pkt(1, 32));
        // Receiver immediately frees the space at tail arrival.
        l.return_credits(34, 32);
        // At any instant: sender credits + in-flight returns + "held by
        // receiver" == total. After the return lands:
        l.poll_credits(36);
        assert_eq!(l.credits(), total);
    }
}
