//! Lossless links with credit-based flow control.
//!
//! A [`Link`] models **one direction** of a cable between two ports. The
//! forward direction carries data packets with a serialization latency
//! (`size / bandwidth`) plus a fixed propagation delay; the reverse
//! direction carries the bookkeeping the receiver sends back to the
//! sender:
//!
//! * **credit returns** — the receiver frees input-RAM space and the
//!   sender may use it again (credit-based link-level flow control,
//!   Table I), and
//! * **congestion-information control events** — the Stop/Go and CFQ
//!   allocation/deallocation notifications that FBICM/CCFIT propagate
//!   upstream, hop by hop, against the data flow.
//!
//! The sender consumes credits for the *whole* packet before starting to
//! transmit (virtual cut-through never commits a packet it cannot buffer
//! downstream), which is exactly what makes the network lossless. Control
//! events travel on a dedicated channel with the same propagation delay;
//! their bandwidth usage (a few flits per CFQ lifetime) is negligible and
//! not debited against data credits — see DESIGN.md §3 for the
//! substitution note.

use crate::ids::NodeId;
use crate::packet::Packet;
use crate::units::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Bandwidth in flits per cycle (1 = 2.5 GB/s under the default unit
    /// model, 2 = 5 GB/s).
    pub bw_flits_per_cycle: u32,
    /// Propagation delay in cycles.
    pub delay_cycles: Cycle,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            bw_flits_per_cycle: 1,
            delay_cycles: 1,
        }
    }
}

/// Congestion-information control events propagated upstream (receiver to
/// sender) by the congested-flow-isolation machinery. `dst` is always the
/// congested destination that keys the CAM lines on both sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CtrlEvent {
    /// Downstream allocated a CFQ for `dst` and its occupancy grew enough
    /// that the upstream switch must start isolating this flow too.
    CfqAlloc {
        /// Congested destination.
        dst: NodeId,
    },
    /// Downstream deallocated its CFQ for `dst`; the upstream output-port
    /// CAM line can be released.
    CfqDealloc {
        /// Congested destination.
        dst: NodeId,
    },
    /// Downstream CFQ for `dst` filled past the Stop threshold: pause
    /// forwarding packets of this congested flow.
    Stop {
        /// Congested destination.
        dst: NodeId,
    },
    /// Downstream CFQ for `dst` drained below the Go threshold: resume.
    Go {
        /// Congested destination.
        dst: NodeId,
    },
}

/// A packet on the wire.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    packet: Packet,
    /// Cycle the header reaches the receiver (packet becomes visible).
    header_at: Cycle,
    /// Cycle the tail reaches the receiver.
    tail_at: Cycle,
}

/// One direction of a cable, with its reverse bookkeeping channel.
#[derive(Debug, Clone)]
pub struct Link {
    cfg: LinkConfig,
    /// Credits (in flits) the sender currently holds against the
    /// receiver's input RAM.
    credits: u32,
    /// Cycle at which the transmitter finishes serializing the current
    /// packet and can accept another.
    tx_free_at: Cycle,
    in_flight: VecDeque<InFlight>,
    /// Reverse channel: credit returns (arrival cycle, flits).
    credit_returns: VecDeque<(Cycle, u32)>,
    /// Reverse channel: congestion-information events.
    ctrl_in_flight: VecDeque<(Cycle, CtrlEvent)>,
}

/// A packet delivered to the receiver, with its cut-through timing.
#[derive(Debug, Clone, Copy)]
pub struct Delivery {
    /// The arriving packet.
    pub packet: Packet,
    /// Cycle the header arrived (the packet is visible to arbitration).
    pub visible_at: Cycle,
    /// Cycle the tail arrives (the packet is fully buffered).
    pub ready_at: Cycle,
}

impl Link {
    /// Create a link whose sender initially holds `initial_credits` flits
    /// of the receiver's RAM.
    pub fn new(cfg: LinkConfig, initial_credits: u32) -> Self {
        assert!(
            cfg.bw_flits_per_cycle > 0,
            "link bandwidth must be positive"
        );
        Self {
            cfg,
            credits: initial_credits,
            tx_free_at: 0,
            in_flight: VecDeque::new(),
            credit_returns: VecDeque::new(),
            ctrl_in_flight: VecDeque::new(),
        }
    }

    /// Static parameters.
    pub fn config(&self) -> LinkConfig {
        self.cfg
    }

    /// Credits currently available to the sender.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Cycles needed to serialize `flits` onto this link.
    pub fn serialization_cycles(&self, flits: u32) -> Cycle {
        (flits.div_ceil(self.cfg.bw_flits_per_cycle)).max(1) as Cycle
    }

    /// Whether the transmitter is idle at `now`.
    pub fn tx_idle(&self, now: Cycle) -> bool {
        self.tx_free_at <= now
    }

    /// Whether a packet of `size_flits` can start transmission at `now`
    /// (transmitter idle *and* enough credits for the whole packet —
    /// virtual cut-through buffer reservation).
    pub fn can_send(&self, now: Cycle, size_flits: u32) -> bool {
        self.tx_idle(now) && self.credits >= size_flits
    }

    /// Start transmitting `packet` at `now`. Consumes credits for the
    /// whole packet and occupies the transmitter for the serialization
    /// time. Returns the cycle at which the transmitter frees up.
    ///
    /// # Panics
    /// Panics if called while `can_send` is false — the arbiter must
    /// check eligibility first.
    pub fn send(&mut self, now: Cycle, packet: Packet) -> Cycle {
        assert!(self.tx_idle(now), "link transmitter busy");
        assert!(
            self.credits >= packet.size_flits,
            "sending without credits: have {}, need {}",
            self.credits,
            packet.size_flits
        );
        self.credits -= packet.size_flits;
        let ser = self.serialization_cycles(packet.size_flits);
        self.tx_free_at = now + ser;
        let header_at = now + self.cfg.delay_cycles + 1;
        let tail_at = now + self.cfg.delay_cycles + ser;
        self.in_flight.push_back(InFlight {
            packet,
            header_at,
            tail_at,
        });
        self.tx_free_at
    }

    /// Whether `deliver` would pop anything at `now` — lets the hot loop
    /// skip the scratch-buffer dance for the (common) idle link.
    pub fn has_delivery(&self, now: Cycle) -> bool {
        self.in_flight.front().is_some_and(|f| f.header_at <= now)
    }

    /// Pop every packet whose header has arrived by `now`. In-order
    /// delivery is guaranteed because sends are serialized.
    pub fn deliver(&mut self, now: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.deliver_into(now, &mut out);
        out
    }

    /// Allocation-free `deliver`: append arrived packets to `out` instead
    /// of returning a fresh `Vec`.
    pub fn deliver_into(&mut self, now: Cycle, out: &mut Vec<Delivery>) {
        while let Some(front) = self.in_flight.front() {
            if front.header_at <= now {
                let f = self.in_flight.pop_front().expect("front exists");
                out.push(Delivery {
                    packet: f.packet,
                    visible_at: f.header_at,
                    ready_at: f.tail_at,
                });
            } else {
                break;
            }
        }
    }

    /// Receiver-side: return `flits` credits to the sender; they arrive
    /// after the propagation delay.
    pub fn return_credits(&mut self, now: Cycle, flits: u32) {
        if flits > 0 {
            self.credit_returns
                .push_back((now + self.cfg.delay_cycles, flits));
        }
    }

    /// Sender-side: absorb credit returns that have arrived by `now`.
    pub fn poll_credits(&mut self, now: Cycle) {
        if self.credit_returns.is_empty() {
            return;
        }
        while let Some(&(at, flits)) = self.credit_returns.front() {
            if at <= now {
                self.credit_returns.pop_front();
                self.credits += flits;
            } else {
                break;
            }
        }
    }

    /// Receiver-side: send a congestion-information event upstream.
    pub fn send_ctrl(&mut self, now: Cycle, ev: CtrlEvent) {
        self.ctrl_in_flight
            .push_back((now + self.cfg.delay_cycles, ev));
    }

    /// Sender-side: pop control events that have arrived by `now`.
    pub fn poll_ctrl(&mut self, now: Cycle) -> Vec<CtrlEvent> {
        let mut out = Vec::new();
        self.poll_ctrl_into(now, &mut out);
        out
    }

    /// Whether a control event has arrived by `now` (events are
    /// time-ordered, so the front suffices). Lets pollers skip the
    /// drain entirely on the common no-event cycle.
    pub fn has_ctrl(&self, now: Cycle) -> bool {
        self.ctrl_in_flight
            .front()
            .is_some_and(|&(at, _)| at <= now)
    }

    /// Allocation-free `poll_ctrl`: append arrived events to `out`.
    pub fn poll_ctrl_into(&mut self, now: Cycle, out: &mut Vec<CtrlEvent>) {
        while let Some(&(at, ev)) = self.ctrl_in_flight.front() {
            if at <= now {
                self.ctrl_in_flight.pop_front();
                out.push(ev);
            } else {
                break;
            }
        }
    }

    /// Whether nothing at all is travelling on this link (no data, no
    /// credit returns, no control events). `tx_free_at` is irrelevant: a
    /// busy transmitter with nothing queued cannot produce future events
    /// on its own.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
            && self.credit_returns.is_empty()
            && self.ctrl_in_flight.is_empty()
    }

    /// Earliest cycle at which something on this link arrives (header,
    /// credit return, or control event), or `None` if the link is idle.
    /// Each queue is ordered by arrival time, so the fronts suffice.
    pub fn next_event_at(&self) -> Option<Cycle> {
        let mut next: Option<Cycle> = self.in_flight.front().map(|f| f.header_at);
        if let Some(&(at, _)) = self.credit_returns.front() {
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        if let Some(&(at, _)) = self.ctrl_in_flight.front() {
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        next
    }

    /// Number of packets currently on the wire (for conservation checks).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Number of *data* packets on the wire (conservation checks exclude
    /// control notifications).
    pub fn in_flight_data_count(&self) -> usize {
        self.in_flight.iter().filter(|f| f.packet.is_data()).count()
    }

    /// Flits of credit currently travelling back to the sender (for
    /// credit-conservation checks).
    pub fn credits_in_flight(&self) -> u32 {
        self.credit_returns.iter().map(|&(_, f)| f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, PacketId};

    fn pkt(id: u64, flits: u32) -> Packet {
        Packet::data(
            PacketId(id),
            NodeId(0),
            NodeId(1),
            flits,
            flits * 64,
            FlowId(0),
            0,
        )
    }

    fn link(bw: u32, delay: Cycle, credits: u32) -> Link {
        Link::new(
            LinkConfig {
                bw_flits_per_cycle: bw,
                delay_cycles: delay,
            },
            credits,
        )
    }

    #[test]
    fn send_consumes_credits_and_occupies_tx() {
        let mut l = link(1, 2, 64);
        assert!(l.can_send(0, 32));
        let free_at = l.send(0, pkt(1, 32));
        assert_eq!(free_at, 32, "32 flits at 1 flit/cycle");
        assert_eq!(l.credits(), 32);
        assert!(!l.tx_idle(10));
        assert!(l.tx_idle(32));
    }

    #[test]
    fn delivery_timing_honors_delay_and_serialization() {
        let mut l = link(1, 3, 64);
        l.send(10, pkt(1, 32));
        assert!(l.deliver(13).is_empty(), "header arrives at 10+3+1");
        let d = l.deliver(14);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].visible_at, 14);
        assert_eq!(d[0].ready_at, 10 + 3 + 32);
    }

    #[test]
    fn double_bandwidth_halves_serialization() {
        let mut l = link(2, 0, 64);
        let free_at = l.send(0, pkt(1, 32));
        assert_eq!(free_at, 16);
        let d = l.deliver(1);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].ready_at, 16);
    }

    #[test]
    fn in_order_delivery() {
        let mut l = link(1, 1, 64);
        l.send(0, pkt(1, 4));
        l.poll_credits(4);
        l.send(4, pkt(2, 4));
        let d = l.deliver(100);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].packet.id, PacketId(1));
        assert_eq!(d[1].packet.id, PacketId(2));
    }

    #[test]
    fn cannot_send_without_credits() {
        let mut l = link(1, 1, 40);
        l.send(0, pkt(1, 32));
        assert!(!l.can_send(32, 32), "only 8 credits left");
        assert!(l.can_send(32, 8));
    }

    #[test]
    fn credit_returns_arrive_after_delay() {
        let mut l = link(1, 5, 0);
        l.return_credits(10, 32);
        l.poll_credits(14);
        assert_eq!(l.credits(), 0, "in flight until cycle 15");
        l.poll_credits(15);
        assert_eq!(l.credits(), 32);
        assert_eq!(l.credits_in_flight(), 0);
    }

    #[test]
    fn zero_credit_return_is_a_no_op() {
        let mut l = link(1, 5, 0);
        l.return_credits(0, 0);
        assert_eq!(l.credits_in_flight(), 0);
    }

    #[test]
    fn ctrl_events_arrive_in_order_after_delay() {
        let mut l = link(1, 4, 0);
        l.send_ctrl(0, CtrlEvent::CfqAlloc { dst: NodeId(9) });
        l.send_ctrl(1, CtrlEvent::Stop { dst: NodeId(9) });
        assert!(l.poll_ctrl(3).is_empty());
        let evs = l.poll_ctrl(4);
        assert_eq!(evs, vec![CtrlEvent::CfqAlloc { dst: NodeId(9) }]);
        let evs = l.poll_ctrl(5);
        assert_eq!(evs, vec![CtrlEvent::Stop { dst: NodeId(9) }]);
    }

    #[test]
    #[should_panic(expected = "transmitter busy")]
    fn overlapping_send_panics() {
        let mut l = link(1, 1, 128);
        l.send(0, pkt(1, 32));
        l.send(5, pkt(2, 32));
    }

    #[test]
    #[should_panic(expected = "without credits")]
    fn send_without_credits_panics() {
        let mut l = link(1, 1, 8);
        l.send(0, pkt(1, 32));
    }

    #[test]
    fn credit_conservation_across_round_trip() {
        let total = 64u32;
        let mut l = link(1, 2, total);
        l.send(0, pkt(1, 32));
        // Receiver immediately frees the space at tail arrival.
        l.return_credits(34, 32);
        // At any instant: sender credits + in-flight returns + "held by
        // receiver" == total. After the return lands:
        l.poll_credits(36);
        assert_eq!(l.credits(), total);
    }
}
