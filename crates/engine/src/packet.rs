//! Packets and their congestion-control header bits.
//!
//! Packets model virtual cut-through units: routing and buffering happen at
//! packet granularity, while buffer occupancy and link bandwidth are
//! accounted in flits. The header carries the congestion-notification
//! state of every scheme the simulator models:
//!
//! * **FECN**/**BECN** — the two explicit bits of the InfiniBand CC
//!   architecture that CCFIT builds on (FECN set by a switch whose output
//!   port is in the congestion state; BECN returned by the destination);
//! * **ECN-CE** — the single congestion-experienced bit DCQCN-style
//!   schemes mark probabilistically at switch queues, answered by **CNP**
//!   control packets;
//! * a folded **INT** record — the maximum per-hop utilization sample an
//!   HPCC-style scheme accumulates along the path, echoed to the source
//!   in **ACK** control packets.
//!
//! `overhead_bytes` carries the wire cost of whichever header extensions
//! or control payloads a scheme adds, so byte-level accounting can charge
//! control traffic consistently with data (see the `wire_bytes` method).

use crate::ids::{FlowId, NodeId, PacketId};
use crate::units::Cycle;
use serde::{Deserialize, Serialize};

/// What a packet is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketKind {
    /// Ordinary payload traffic.
    Data,
    /// A congestion notification packet carrying the BECN bit back to a
    /// source (IB-style CC). BECNs travel with priority, only ever use
    /// normal flow queues, and are never themselves FECN-marked or
    /// isolated.
    Becn,
    /// A DCQCN congestion notification packet: the destination's answer
    /// to an ECN-CE-marked data packet, rate-limited per source.
    Cnp,
    /// An HPCC acknowledgement echoing the folded INT record (`int_u`)
    /// and the acknowledged wire bytes (`ack_bytes`) to the source.
    Ack,
}

/// A packet in flight or buffered somewhere in the network.
///
/// `size_flits` includes the header; an MTU data packet is 32 flits under
/// the default [`crate::units::UnitModel`], control packets (BECN, CNP,
/// ACK) are a single flit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique identifier (dense, assigned at injection).
    pub id: PacketId,
    /// Kind of packet.
    pub kind: PacketKind,
    /// Source end node.
    pub src: NodeId,
    /// Destination end node. Routing is destination-based (distributed
    /// deterministic routing), so this is the only routing information a
    /// packet needs to carry.
    pub dst: NodeId,
    /// Size in flits (header included).
    pub size_flits: u32,
    /// Size in payload bytes (for `Packet_Size`-conditioned FECN marking
    /// and byte-level throughput accounting).
    pub size_bytes: u32,
    /// Flow this packet belongs to, for per-flow metrics.
    pub flow: FlowId,
    /// Cycle at which the packet was handed to the source input adapter.
    pub injected_at: Cycle,
    /// Forward Explicit Congestion Notification: set when the packet
    /// crosses an output port in the congestion state.
    pub fecn: bool,
    /// ECN Congestion Experienced: set probabilistically by DCQCN-style
    /// RED marking at switch output queues.
    pub ecn: bool,
    /// Folded INT record: the maximum normalised hop utilization sampled
    /// along the path so far (HPCC). On an [`PacketKind::Ack`] this is
    /// the echo of the acknowledged data packet's fold.
    pub int_u: f32,
    /// Hops that contributed an INT sample to `int_u`.
    pub int_hops: u8,
    /// Wire overhead in bytes beyond `size_bytes`: INT header space on
    /// data packets, the control payload of CNPs/ACKs. Charged by the
    /// byte-accounting counters, not by the flit-level link model (one
    /// flit comfortably fits every control payload).
    pub overhead_bytes: u16,
    /// On an [`PacketKind::Ack`]: wire bytes being acknowledged, which
    /// the source removes from its in-flight window.
    pub ack_bytes: u32,
}

impl Packet {
    /// Create a data packet.
    pub fn data(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        size_flits: u32,
        size_bytes: u32,
        flow: FlowId,
        injected_at: Cycle,
    ) -> Self {
        debug_assert!(size_flits > 0, "packets occupy at least one flit");
        Self {
            id,
            kind: PacketKind::Data,
            src,
            dst,
            size_flits,
            size_bytes,
            flow,
            injected_at,
            fecn: false,
            ecn: false,
            int_u: 0.0,
            int_hops: 0,
            overhead_bytes: 0,
            ack_bytes: 0,
        }
    }

    /// One-flit zero-payload control-packet skeleton.
    fn ctrl(kind: PacketKind, id: PacketId, src: NodeId, dst: NodeId, injected_at: Cycle) -> Self {
        Self {
            id,
            kind,
            src,
            dst,
            size_flits: 1,
            size_bytes: 0,
            flow: FlowId(u32::MAX),
            injected_at,
            fecn: false,
            ecn: false,
            int_u: 0.0,
            int_hops: 0,
            overhead_bytes: 0,
            ack_bytes: 0,
        }
    }

    /// Create a BECN congestion-notification packet. `src` is the node
    /// returning the notification (the destination of the congested flow);
    /// `dst` is the source that must throttle. On reception the throttling
    /// source uses `src` to identify which per-destination admittance
    /// queue (AdVOQ) to slow down.
    pub fn becn(id: PacketId, src: NodeId, dst: NodeId, injected_at: Cycle) -> Self {
        Self::ctrl(PacketKind::Becn, id, src, dst, injected_at)
    }

    /// Create a DCQCN CNP. Addressing follows [`Packet::becn`]: `src` is
    /// the congested destination generating the notification, `dst` the
    /// source whose rate machine must react. `overhead_bytes` is the
    /// CNP's wire cost.
    pub fn cnp(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        injected_at: Cycle,
        overhead_bytes: u16,
    ) -> Self {
        let mut p = Self::ctrl(PacketKind::Cnp, id, src, dst, injected_at);
        p.overhead_bytes = overhead_bytes;
        p
    }

    /// Create an HPCC ACK echoing the folded INT record of a delivered
    /// data packet back to its source. `ack_bytes` is the wire size of
    /// the acknowledged packet (payload + overhead), which the source's
    /// window machine removes from its in-flight count.
    #[allow(clippy::too_many_arguments)]
    pub fn ack(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        injected_at: Cycle,
        int_u: f32,
        int_hops: u8,
        ack_bytes: u32,
        overhead_bytes: u16,
    ) -> Self {
        let mut p = Self::ctrl(PacketKind::Ack, id, src, dst, injected_at);
        p.int_u = int_u;
        p.int_hops = int_hops;
        p.ack_bytes = ack_bytes;
        p.overhead_bytes = overhead_bytes;
        p
    }

    /// True for payload traffic (counted in throughput metrics).
    #[inline]
    pub fn is_data(&self) -> bool {
        self.kind == PacketKind::Data
    }

    /// True for congestion notification packets (IB-style BECN).
    #[inline]
    pub fn is_becn(&self) -> bool {
        self.kind == PacketKind::Becn
    }

    /// True for any control packet (BECN, CNP, ACK): one flit, no
    /// payload, travels in normal flow queues with priority, never
    /// marked or isolated itself.
    #[inline]
    pub fn is_ctrl(&self) -> bool {
        !self.is_data()
    }

    /// Total bytes this packet occupies on the wire: payload plus
    /// whatever header/control overhead its scheme charges.
    #[inline]
    pub fn wire_bytes(&self) -> u64 {
        self.size_bytes as u64 + self.overhead_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Packet {
        Packet::data(PacketId(7), NodeId(1), NodeId(2), 32, 2048, FlowId(3), 100)
    }

    #[test]
    fn data_packet_fields() {
        let p = sample_data();
        assert!(p.is_data());
        assert!(!p.is_becn());
        assert!(!p.is_ctrl());
        assert!(!p.fecn);
        assert!(!p.ecn);
        assert_eq!(p.size_flits, 32);
        assert_eq!(p.size_bytes, 2048);
        assert_eq!(p.flow, FlowId(3));
        assert_eq!(p.wire_bytes(), 2048);
    }

    #[test]
    fn becn_packet_is_one_flit_and_carries_no_payload() {
        let b = Packet::becn(PacketId(1), NodeId(4), NodeId(1), 50);
        assert!(b.is_becn());
        assert!(b.is_ctrl());
        assert_eq!(b.size_flits, 1);
        assert_eq!(b.size_bytes, 0);
        assert_eq!(b.wire_bytes(), 0);
        // BECN src is the congested destination that generated it.
        assert_eq!(b.src, NodeId(4));
        assert_eq!(b.dst, NodeId(1));
    }

    #[test]
    fn cnp_carries_its_overhead() {
        let c = Packet::cnp(PacketId(2), NodeId(4), NodeId(1), 60, 16);
        assert_eq!(c.kind, PacketKind::Cnp);
        assert!(c.is_ctrl());
        assert!(!c.is_becn());
        assert_eq!(c.size_flits, 1);
        assert_eq!(c.wire_bytes(), 16);
    }

    #[test]
    fn ack_echoes_the_int_fold() {
        let a = Packet::ack(PacketId(3), NodeId(4), NodeId(1), 70, 0.75, 3, 2064, 32);
        assert_eq!(a.kind, PacketKind::Ack);
        assert!(a.is_ctrl());
        assert_eq!(a.int_u, 0.75);
        assert_eq!(a.int_hops, 3);
        assert_eq!(a.ack_bytes, 2064);
        assert_eq!(a.wire_bytes(), 32);
    }

    #[test]
    fn fecn_and_ecn_bits_are_settable() {
        let mut p = sample_data();
        p.fecn = true;
        p.ecn = true;
        assert!(p.fecn && p.ecn);
    }

    #[test]
    fn int_fold_accumulates_on_data() {
        let mut p = sample_data();
        p.int_u = p.int_u.max(0.4);
        p.int_hops += 1;
        p.int_u = p.int_u.max(0.2);
        p.int_hops += 1;
        assert_eq!(p.int_u, 0.4);
        assert_eq!(p.int_hops, 2);
    }

    #[test]
    fn overhead_charges_into_wire_bytes() {
        let mut p = sample_data();
        p.overhead_bytes = 16;
        assert_eq!(p.wire_bytes(), 2048 + 16);
    }

    #[test]
    fn packets_serialize_round_trip() {
        let p = sample_data();
        let json = serde_json::to_string(&p).unwrap();
        let q: Packet = serde_json::from_str(&json).unwrap();
        assert_eq!(p, q);
    }
}
