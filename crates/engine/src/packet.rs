//! Packets and their congestion-control header bits.
//!
//! Packets model virtual cut-through units: routing and buffering happen at
//! packet granularity, while buffer occupancy and link bandwidth are
//! accounted in flits. The header carries the two explicit congestion
//! notification bits of the InfiniBand CC architecture that CCFIT builds
//! on: **FECN** (set by a switch whose output port is in the congestion
//! state) and **BECN** (set on the notification packet a destination
//! returns to the source of a FECN-marked packet).

use crate::ids::{FlowId, NodeId, PacketId};
use crate::units::Cycle;
use serde::{Deserialize, Serialize};

/// What a packet is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketKind {
    /// Ordinary payload traffic.
    Data,
    /// A congestion notification packet (CNP) carrying the BECN bit back
    /// to a source. BECNs travel with priority, only ever use normal flow
    /// queues, and are never themselves FECN-marked or isolated.
    Becn,
}

/// A packet in flight or buffered somewhere in the network.
///
/// `size_flits` includes the header; an MTU data packet is 32 flits under
/// the default [`crate::units::UnitModel`], a BECN is a single flit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique identifier (dense, assigned at injection).
    pub id: PacketId,
    /// Kind of packet.
    pub kind: PacketKind,
    /// Source end node.
    pub src: NodeId,
    /// Destination end node. Routing is destination-based (distributed
    /// deterministic routing), so this is the only routing information a
    /// packet needs to carry.
    pub dst: NodeId,
    /// Size in flits (header included).
    pub size_flits: u32,
    /// Size in payload bytes (for `Packet_Size`-conditioned FECN marking
    /// and byte-level throughput accounting).
    pub size_bytes: u32,
    /// Flow this packet belongs to, for per-flow metrics.
    pub flow: FlowId,
    /// Cycle at which the packet was handed to the source input adapter.
    pub injected_at: Cycle,
    /// Forward Explicit Congestion Notification: set when the packet
    /// crosses an output port in the congestion state.
    pub fecn: bool,
}

impl Packet {
    /// Create a data packet.
    pub fn data(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        size_flits: u32,
        size_bytes: u32,
        flow: FlowId,
        injected_at: Cycle,
    ) -> Self {
        debug_assert!(size_flits > 0, "packets occupy at least one flit");
        Self {
            id,
            kind: PacketKind::Data,
            src,
            dst,
            size_flits,
            size_bytes,
            flow,
            injected_at,
            fecn: false,
        }
    }

    /// Create a BECN congestion-notification packet. `src` is the node
    /// returning the notification (the destination of the congested flow);
    /// `dst` is the source that must throttle. On reception the throttling
    /// source uses `src` to identify which per-destination admittance
    /// queue (AdVOQ) to slow down.
    pub fn becn(id: PacketId, src: NodeId, dst: NodeId, injected_at: Cycle) -> Self {
        Self {
            id,
            kind: PacketKind::Becn,
            src,
            dst,
            size_flits: 1,
            size_bytes: 0,
            flow: FlowId(u32::MAX),
            injected_at,
            fecn: false,
        }
    }

    /// True for payload traffic (counted in throughput metrics).
    #[inline]
    pub fn is_data(&self) -> bool {
        self.kind == PacketKind::Data
    }

    /// True for congestion notification packets.
    #[inline]
    pub fn is_becn(&self) -> bool {
        self.kind == PacketKind::Becn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Packet {
        Packet::data(PacketId(7), NodeId(1), NodeId(2), 32, 2048, FlowId(3), 100)
    }

    #[test]
    fn data_packet_fields() {
        let p = sample_data();
        assert!(p.is_data());
        assert!(!p.is_becn());
        assert!(!p.fecn);
        assert_eq!(p.size_flits, 32);
        assert_eq!(p.size_bytes, 2048);
        assert_eq!(p.flow, FlowId(3));
    }

    #[test]
    fn becn_packet_is_one_flit_and_carries_no_payload() {
        let b = Packet::becn(PacketId(1), NodeId(4), NodeId(1), 50);
        assert!(b.is_becn());
        assert_eq!(b.size_flits, 1);
        assert_eq!(b.size_bytes, 0);
        // BECN src is the congested destination that generated it.
        assert_eq!(b.src, NodeId(4));
        assert_eq!(b.dst, NodeId(1));
    }

    #[test]
    fn fecn_bit_is_settable() {
        let mut p = sample_data();
        p.fecn = true;
        assert!(p.fecn);
    }

    #[test]
    fn packets_serialize_round_trip() {
        let p = sample_data();
        let json = serde_json::to_string(&p).unwrap();
        let q: Packet = serde_json::from_str(&json).unwrap();
        assert_eq!(p, q);
    }
}
