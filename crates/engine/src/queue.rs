//! Flit-accounted packet queues.
//!
//! A [`PacketQueue`] stores whole packets (virtual cut-through buffering)
//! but tracks its occupancy in flits, because detection, High/Low and
//! Stop/Go thresholds in the paper are all expressed as buffer fill levels
//! (in MTUs). Queues do not own their capacity — in the dynamically
//! managed input-port organisation of FBICM/CCFIT all queues at a port
//! (the NFQ and the CFQs) share one RAM, modelled by
//! [`crate::ram::PortRam`].
//!
//! A packet may be *enqueued before its tail has arrived* (cut-through):
//! `ready_at` records the cycle its last flit lands, and the head is only
//! *forwardable* once the header is present (`visible_at`). The
//! arbitration layer uses [`PacketQueue::head_visible`].

use crate::packet::Packet;
use crate::units::Cycle;
use std::collections::VecDeque;

/// An entry in a queue: the packet plus its cut-through timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedPacket {
    /// The buffered packet.
    pub packet: Packet,
    /// Cycle at which the packet's header is present and the packet may be
    /// considered by arbitration (VCT forwarding eligibility).
    pub visible_at: Cycle,
    /// Cycle at which the packet's tail has fully arrived.
    pub ready_at: Cycle,
}

/// A FIFO of packets with flit-level occupancy accounting.
#[derive(Debug, Clone, Default)]
pub struct PacketQueue {
    entries: VecDeque<QueuedPacket>,
    occupancy_flits: u32,
}

impl PacketQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a packet whose header becomes visible at `visible_at` and
    /// whose tail arrives at `ready_at`.
    pub fn push(&mut self, packet: Packet, visible_at: Cycle, ready_at: Cycle) {
        debug_assert!(visible_at <= ready_at);
        self.occupancy_flits += packet.size_flits;
        self.entries.push_back(QueuedPacket {
            packet,
            visible_at,
            ready_at,
        });
    }

    /// Re-enqueue a packet at the *front* (used when a post-processing
    /// move has to be undone; not part of the normal data path).
    pub fn push_front(&mut self, entry: QueuedPacket) {
        self.occupancy_flits += entry.packet.size_flits;
        self.entries.push_front(entry);
    }

    /// Remove and return the head packet.
    pub fn pop(&mut self) -> Option<QueuedPacket> {
        let e = self.entries.pop_front()?;
        debug_assert!(self.occupancy_flits >= e.packet.size_flits);
        self.occupancy_flits -= e.packet.size_flits;
        Some(e)
    }

    /// Peek at the head packet without removing it.
    pub fn head(&self) -> Option<&QueuedPacket> {
        self.entries.front()
    }

    /// Mutable access to the head packet (used to set the FECN bit while
    /// the packet crosses a congested output port).
    pub fn head_mut(&mut self) -> Option<&mut QueuedPacket> {
        self.entries.front_mut()
    }

    /// The head packet, if its header has arrived by `now` (virtual
    /// cut-through forwarding eligibility).
    pub fn head_visible(&self, now: Cycle) -> Option<&QueuedPacket> {
        self.entries.front().filter(|e| e.visible_at <= now)
    }

    /// Number of buffered packets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no packets are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Occupancy in flits (includes flits still in flight for cut-through
    /// packets — buffer space is reserved for the whole packet when the
    /// header is accepted, exactly like credit-based flow control
    /// reserves it).
    pub fn occupancy_flits(&self) -> u32 {
        self.occupancy_flits
    }

    /// Occupancy in whole MTUs, rounding down, for threshold comparisons
    /// expressed in packets/MTUs ("High/Low thresholds set to 4 and 2
    /// packets").
    pub fn occupancy_mtus(&self, mtu_flits: u32) -> u32 {
        debug_assert!(mtu_flits > 0);
        self.occupancy_flits / mtu_flits
    }

    /// Iterate over the queued packets from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedPacket> {
        self.entries.iter()
    }

    /// Remove all packets, returning them (used only by teardown and
    /// tests; live simulation never drops packets — the network is
    /// lossless).
    pub fn drain_all(&mut self) -> Vec<QueuedPacket> {
        let mut out = Vec::new();
        self.drain_all_into(&mut out);
        out
    }

    /// Allocation-free `drain_all`: append the drained packets to `out`.
    pub fn drain_all_into(&mut self, out: &mut Vec<QueuedPacket>) {
        self.occupancy_flits = 0;
        out.extend(self.entries.drain(..));
    }

    /// Remove every packet matching `pred`, appending the removals to
    /// `out` in FIFO order and preserving the relative order of the
    /// survivors. Used by the fault subsystem to purge packets whose
    /// destination became unreachable; order preservation keeps the
    /// purge deterministic.
    pub fn drain_where_into(
        &mut self,
        mut pred: impl FnMut(&QueuedPacket) -> bool,
        out: &mut Vec<QueuedPacket>,
    ) {
        let mut kept: VecDeque<QueuedPacket> = VecDeque::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            if pred(&e) {
                self.occupancy_flits -= e.packet.size_flits;
                out.push(e);
            } else {
                kept.push_back(e);
            }
        }
        self.entries = kept;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, NodeId, PacketId};

    fn pkt(id: u64, flits: u32) -> Packet {
        Packet::data(
            PacketId(id),
            NodeId(0),
            NodeId(1),
            flits,
            flits * 64,
            FlowId(0),
            0,
        )
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = PacketQueue::new();
        q.push(pkt(1, 4), 0, 3);
        q.push(pkt(2, 4), 1, 4);
        q.push(pkt(3, 4), 2, 5);
        assert_eq!(q.pop().unwrap().packet.id, PacketId(1));
        assert_eq!(q.pop().unwrap().packet.id, PacketId(2));
        assert_eq!(q.pop().unwrap().packet.id, PacketId(3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn occupancy_tracks_pushes_and_pops() {
        let mut q = PacketQueue::new();
        assert_eq!(q.occupancy_flits(), 0);
        q.push(pkt(1, 32), 0, 31);
        q.push(pkt(2, 1), 0, 0);
        assert_eq!(q.occupancy_flits(), 33);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.occupancy_flits(), 1);
        q.pop();
        assert_eq!(q.occupancy_flits(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn occupancy_in_mtus_rounds_down() {
        let mut q = PacketQueue::new();
        q.push(pkt(1, 32), 0, 0);
        q.push(pkt(2, 31), 0, 0);
        assert_eq!(q.occupancy_mtus(32), 1); // 63 flits = 1 full MTU
        q.push(pkt(3, 1), 0, 0);
        assert_eq!(q.occupancy_mtus(32), 2);
    }

    #[test]
    fn head_visible_respects_cut_through_timing() {
        let mut q = PacketQueue::new();
        q.push(pkt(1, 32), 10, 41);
        assert!(q.head_visible(9).is_none(), "header not arrived yet");
        assert!(q.head_visible(10).is_some(), "header arrived");
        assert_eq!(q.head().unwrap().ready_at, 41);
    }

    #[test]
    fn push_front_restores_occupancy() {
        let mut q = PacketQueue::new();
        q.push(pkt(1, 8), 0, 7);
        let e = q.pop().unwrap();
        assert_eq!(q.occupancy_flits(), 0);
        q.push_front(e);
        assert_eq!(q.occupancy_flits(), 8);
        assert_eq!(q.head().unwrap().packet.id, PacketId(1));
    }

    #[test]
    fn drain_where_keeps_survivor_order_and_occupancy() {
        let mut q = PacketQueue::new();
        q.push(pkt(1, 4), 0, 3);
        q.push(pkt(2, 8), 0, 7);
        q.push(pkt(3, 4), 0, 3);
        q.push(pkt(4, 8), 0, 7);
        let mut purged = Vec::new();
        q.drain_where_into(|e| e.packet.size_flits == 8, &mut purged);
        assert_eq!(purged.len(), 2);
        assert_eq!(purged[0].packet.id, PacketId(2));
        assert_eq!(purged[1].packet.id, PacketId(4));
        assert_eq!(q.len(), 2);
        assert_eq!(q.occupancy_flits(), 8);
        assert_eq!(q.pop().unwrap().packet.id, PacketId(1));
        assert_eq!(q.pop().unwrap().packet.id, PacketId(3));
    }

    #[test]
    fn drain_all_empties_and_zeroes() {
        let mut q = PacketQueue::new();
        q.push(pkt(1, 8), 0, 7);
        q.push(pkt(2, 8), 0, 7);
        let drained = q.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
        assert_eq!(q.occupancy_flits(), 0);
    }
}
