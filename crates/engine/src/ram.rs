//! Shared input-port RAM with dynamic queue allocation.
//!
//! The paper's switches are input-queued with one RAM per input port
//! (64 KB in Table I), *dynamically organised into queues*: one normal
//! flow queue (NFQ) plus a small number of congested flow queues (CFQs).
//! Credit-based link-level flow control advertises the free space of this
//! RAM as a whole, which is what makes the network lossless regardless of
//! how the RAM is partitioned at any instant.
//!
//! [`PortRam`] is a plain reservation counter: space is reserved when the
//! upstream sender commits a packet to the link (credits consumed at the
//! sender mirror this) and released when the packet's tail leaves the
//! port. Queues draw from it implicitly — the accounting is per-port, not
//! per-queue, exactly like shared dynamically-allocated buffers.

use crate::error::EngineError;

/// Reservation-counter model of a shared, dynamically-partitioned port
/// memory.
#[derive(Debug, Clone)]
pub struct PortRam {
    capacity_flits: u32,
    used_flits: u32,
}

impl PortRam {
    /// Create a RAM with the given capacity in flits.
    pub fn new(capacity_flits: u32) -> Self {
        Self {
            capacity_flits,
            used_flits: 0,
        }
    }

    /// Total capacity in flits.
    pub fn capacity(&self) -> u32 {
        self.capacity_flits
    }

    /// Flits currently reserved.
    pub fn used(&self) -> u32 {
        self.used_flits
    }

    /// Flits currently free.
    pub fn free(&self) -> u32 {
        self.capacity_flits - self.used_flits
    }

    /// Whether `flits` can be reserved right now.
    pub fn can_reserve(&self, flits: u32) -> bool {
        flits <= self.free()
    }

    /// Reserve `flits`, failing if the RAM lacks space. In a correctly
    /// functioning credit-flow-controlled network this never fails: the
    /// sender only transmits when it holds enough credits. A failure
    /// indicates a flow-control bug, so callers treat it as fatal.
    pub fn reserve(&mut self, flits: u32) -> Result<(), EngineError> {
        if !self.can_reserve(flits) {
            return Err(EngineError::RamExhausted {
                requested: flits,
                free: self.free(),
            });
        }
        self.used_flits += flits;
        Ok(())
    }

    /// Release `flits` previously reserved.
    ///
    /// # Panics
    /// Panics if more flits are released than are reserved — that is
    /// always an accounting bug.
    pub fn release(&mut self, flits: u32) {
        assert!(
            flits <= self.used_flits,
            "releasing {} flits but only {} reserved",
            flits,
            self.used_flits
        );
        self.used_flits -= flits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ram_is_empty() {
        let ram = PortRam::new(1024);
        assert_eq!(ram.capacity(), 1024);
        assert_eq!(ram.used(), 0);
        assert_eq!(ram.free(), 1024);
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let mut ram = PortRam::new(100);
        ram.reserve(60).unwrap();
        assert_eq!(ram.free(), 40);
        ram.reserve(40).unwrap();
        assert_eq!(ram.free(), 0);
        ram.release(100);
        assert_eq!(ram.free(), 100);
    }

    #[test]
    fn over_reservation_fails_without_state_change() {
        let mut ram = PortRam::new(32);
        ram.reserve(30).unwrap();
        let err = ram.reserve(3).unwrap_err();
        assert_eq!(
            err,
            EngineError::RamExhausted {
                requested: 3,
                free: 2
            }
        );
        assert_eq!(ram.used(), 30, "failed reserve must not change state");
    }

    #[test]
    fn can_reserve_matches_reserve() {
        let mut ram = PortRam::new(10);
        assert!(ram.can_reserve(10));
        assert!(!ram.can_reserve(11));
        ram.reserve(10).unwrap();
        assert!(ram.can_reserve(0));
        assert!(!ram.can_reserve(1));
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut ram = PortRam::new(10);
        ram.reserve(5).unwrap();
        ram.release(6);
    }
}
