//! Deterministic seed splitting.
//!
//! Every stochastic component of the simulator (traffic generators,
//! FECN marking, uniform-destination selection) draws from its own
//! [`rand::rngs::SmallRng`] stream, derived from one master seed plus a
//! stable component label. This makes a simulation a pure function of its
//! configuration: adding a consumer of randomness in one component never
//! perturbs the stream seen by another, and the same run can be replayed
//! bit-for-bit.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives independent, reproducible RNG streams from a master seed.
#[derive(Debug, Clone, Copy)]
pub struct SeedSplitter {
    master: u64,
}

impl SeedSplitter {
    /// Create a splitter from the master seed.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the sub-seed for a component identified by `(label, index)`.
    ///
    /// Uses the SplitMix64 finalizer, which is a bijective avalanche mix:
    /// distinct `(master, label, index)` triples produce well-separated
    /// seeds.
    pub fn derive(&self, label: &str, index: u64) -> u64 {
        let mut h = self.master ^ 0x9e37_79b9_7f4a_7c15;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ b as u64);
        }
        splitmix64(h ^ index)
    }

    /// A `SmallRng` for the component identified by `(label, index)`.
    pub fn rng(&self, label: &str, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.derive(label, index))
    }
}

/// SplitMix64 finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let s = SeedSplitter::new(42);
        let mut a = s.rng("traffic", 3);
        let mut b = s.rng("traffic", 3);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedSplitter::new(42);
        assert_ne!(s.derive("traffic", 0), s.derive("marking", 0));
    }

    #[test]
    fn different_indices_differ() {
        let s = SeedSplitter::new(42);
        assert_ne!(s.derive("traffic", 0), s.derive("traffic", 1));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedSplitter::new(1).derive("x", 0),
            SeedSplitter::new(2).derive("x", 0)
        );
    }

    #[test]
    fn derived_seeds_are_spread_out() {
        // Crude avalanche check: consecutive indices should not produce
        // consecutive seeds.
        let s = SeedSplitter::new(7);
        let a = s.derive("n", 0);
        let b = s.derive("n", 1);
        assert!(a.abs_diff(b) > 1 << 20);
    }
}
