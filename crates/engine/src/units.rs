//! Unit model: cycles, flits and the mapping to wall-clock time.
//!
//! The paper's simulator models networks "at the cycle level" with
//! 2048-byte MTU packets, 64 KB port memories and 2.5/5 GB/s links
//! (Table I). We discretise bandwidth into *flits* of 64 bytes and define
//! one simulator cycle as the time a 2.5 GB/s link needs to transfer one
//! flit (25.6 ns). A 5 GB/s link then moves two flits per cycle, an MTU
//! packet is 32 flits, and a 64 KB input-port RAM holds 1024 flits
//! (32 MTUs).

use serde::{Deserialize, Serialize};

/// Simulation time measured in engine cycles.
pub type Cycle = u64;

/// Default flit size in bytes.
pub const DEFAULT_FLIT_BYTES: u32 = 64;

/// Default reference link bandwidth in bytes per second (2.5 GB/s,
/// Table I of the paper). One flit per cycle corresponds to this rate.
pub const DEFAULT_REF_BANDWIDTH_BYTES_PER_S: f64 = 2.5e9;

/// Default MTU in bytes (Table I).
pub const DEFAULT_MTU_BYTES: u32 = 2048;

/// Default input-port memory size in bytes (Table I).
pub const DEFAULT_PORT_RAM_BYTES: u32 = 64 * 1024;

/// The unit model translating between physical quantities (bytes,
/// nanoseconds, GB/s) and engine quantities (flits, cycles,
/// flits-per-cycle).
///
/// All conversions round conservatively: packet sizes round *up* to whole
/// flits (a partially-filled flit still occupies a buffer slot), durations
/// round up to whole cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitModel {
    /// Flit size in bytes.
    pub flit_bytes: u32,
    /// Wall-clock duration of one cycle in nanoseconds.
    pub cycle_ns: f64,
}

impl Default for UnitModel {
    fn default() -> Self {
        Self::from_reference_bandwidth(DEFAULT_FLIT_BYTES, DEFAULT_REF_BANDWIDTH_BYTES_PER_S)
    }
}

impl UnitModel {
    /// Build a unit model where a link of `ref_bandwidth_bytes_per_s`
    /// transfers exactly one flit of `flit_bytes` per cycle.
    pub fn from_reference_bandwidth(flit_bytes: u32, ref_bandwidth_bytes_per_s: f64) -> Self {
        assert!(flit_bytes > 0, "flit size must be positive");
        assert!(
            ref_bandwidth_bytes_per_s > 0.0,
            "reference bandwidth must be positive"
        );
        let cycle_ns = flit_bytes as f64 / ref_bandwidth_bytes_per_s * 1e9;
        Self {
            flit_bytes,
            cycle_ns,
        }
    }

    /// Number of flits needed to carry `bytes` of payload (rounds up,
    /// minimum one flit).
    pub fn bytes_to_flits(&self, bytes: u32) -> u32 {
        if bytes == 0 {
            return 1;
        }
        bytes.div_ceil(self.flit_bytes)
    }

    /// Convert a byte count into whole flits *exactly*; errors at the type
    /// level are avoided by returning `None` when `bytes` is not a
    /// multiple of the flit size. Useful for validating configuration
    /// parameters such as RAM sizes.
    pub fn bytes_to_flits_exact(&self, bytes: u32) -> Option<u32> {
        if bytes.is_multiple_of(self.flit_bytes) {
            Some(bytes / self.flit_bytes)
        } else {
            None
        }
    }

    /// Convert flits back to bytes.
    pub fn flits_to_bytes(&self, flits: u32) -> u64 {
        flits as u64 * self.flit_bytes as u64
    }

    /// Convert a duration in nanoseconds to cycles, rounding up.
    pub fn ns_to_cycles(&self, ns: f64) -> Cycle {
        assert!(ns >= 0.0, "durations must be non-negative");
        (ns / self.cycle_ns).ceil() as Cycle
    }

    /// Convert cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: Cycle) -> f64 {
        cycles as f64 * self.cycle_ns
    }

    /// Flits per cycle for a link of the given bandwidth in bytes/s,
    /// rounded to the nearest whole number of flits (minimum 1).
    ///
    /// With the default model, 2.5 GB/s -> 1 flit/cycle and
    /// 5 GB/s -> 2 flits/cycle, exactly matching Table I.
    pub fn bandwidth_to_flits_per_cycle(&self, bytes_per_s: f64) -> u32 {
        assert!(bytes_per_s > 0.0, "bandwidth must be positive");
        let flits = bytes_per_s * self.cycle_ns / 1e9 / self.flit_bytes as f64;
        (flits.round() as u32).max(1)
    }

    /// Bandwidth in bytes/s corresponding to `flits_per_cycle`.
    pub fn flits_per_cycle_to_bandwidth(&self, flits_per_cycle: u32) -> f64 {
        flits_per_cycle as f64 * self.flit_bytes as f64 / (self.cycle_ns / 1e9)
    }

    /// Number of cycles needed to serialize `flits` onto a link moving
    /// `flits_per_cycle` (rounds up, minimum one cycle).
    pub fn serialization_cycles(&self, flits: u32, flits_per_cycle: u32) -> Cycle {
        assert!(flits_per_cycle > 0, "link bandwidth must be positive");
        (flits.div_ceil(flits_per_cycle)).max(1) as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_matches_table_one() {
        let u = UnitModel::default();
        assert_eq!(u.flit_bytes, 64);
        // 64 B at 2.5 GB/s = 25.6 ns
        assert!((u.cycle_ns - 25.6).abs() < 1e-9);
    }

    #[test]
    fn mtu_is_32_flits() {
        let u = UnitModel::default();
        assert_eq!(u.bytes_to_flits(DEFAULT_MTU_BYTES), 32);
    }

    #[test]
    fn port_ram_is_1024_flits() {
        let u = UnitModel::default();
        assert_eq!(u.bytes_to_flits_exact(DEFAULT_PORT_RAM_BYTES), Some(1024));
    }

    #[test]
    fn bytes_to_flits_rounds_up() {
        let u = UnitModel::default();
        assert_eq!(u.bytes_to_flits(1), 1);
        assert_eq!(u.bytes_to_flits(64), 1);
        assert_eq!(u.bytes_to_flits(65), 2);
        assert_eq!(
            u.bytes_to_flits(0),
            1,
            "zero-byte packets still occupy a flit"
        );
    }

    #[test]
    fn bytes_to_flits_exact_rejects_remainders() {
        let u = UnitModel::default();
        assert_eq!(u.bytes_to_flits_exact(128), Some(2));
        assert_eq!(u.bytes_to_flits_exact(100), None);
    }

    #[test]
    fn bandwidth_mapping_matches_paper_links() {
        let u = UnitModel::default();
        assert_eq!(u.bandwidth_to_flits_per_cycle(2.5e9), 1);
        assert_eq!(u.bandwidth_to_flits_per_cycle(5.0e9), 2);
    }

    #[test]
    fn bandwidth_round_trips() {
        let u = UnitModel::default();
        for fpc in 1..=4 {
            let bw = u.flits_per_cycle_to_bandwidth(fpc);
            assert_eq!(u.bandwidth_to_flits_per_cycle(bw), fpc);
        }
    }

    #[test]
    fn ns_cycles_round_trip_within_one_cycle() {
        let u = UnitModel::default();
        let cycles = u.ns_to_cycles(10_000.0);
        let ns = u.cycles_to_ns(cycles);
        assert!(ns >= 10_000.0);
        assert!(ns < 10_000.0 + u.cycle_ns);
    }

    #[test]
    fn ns_to_cycles_rounds_up() {
        let u = UnitModel::default();
        assert_eq!(u.ns_to_cycles(0.0), 0);
        assert_eq!(u.ns_to_cycles(25.6), 1);
        assert_eq!(u.ns_to_cycles(25.7), 2);
    }

    #[test]
    fn serialization_cycles_for_mtu() {
        let u = UnitModel::default();
        // A 32-flit MTU needs 32 cycles at 1 flit/cycle, 16 at 2.
        assert_eq!(u.serialization_cycles(32, 1), 32);
        assert_eq!(u.serialization_cycles(32, 2), 16);
        // Sub-flit packets still take a full cycle.
        assert_eq!(u.serialization_cycles(1, 2), 1);
    }

    #[test]
    #[should_panic(expected = "flit size must be positive")]
    fn zero_flit_size_is_rejected() {
        UnitModel::from_reference_bandwidth(0, 2.5e9);
    }
}
