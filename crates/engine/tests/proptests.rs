//! Property-based tests for the engine substrate invariants.

use ccfit_engine::cam::Cam;
use ccfit_engine::ids::{FlowId, NodeId, PacketId};
use ccfit_engine::link::{Link, LinkConfig};
use ccfit_engine::packet::Packet;
use ccfit_engine::queue::PacketQueue;
use ccfit_engine::ram::PortRam;
use ccfit_engine::units::UnitModel;
use proptest::prelude::*;

fn pkt(id: u64, flits: u32) -> Packet {
    Packet::data(
        PacketId(id),
        NodeId(0),
        NodeId(1),
        flits,
        flits * 64,
        FlowId(0),
        0,
    )
}

proptest! {
    /// Queue occupancy always equals the sum of the sizes of the queued
    /// packets, under any interleaving of pushes and pops.
    #[test]
    fn queue_occupancy_is_sum_of_sizes(ops in prop::collection::vec((any::<bool>(), 1u32..64), 1..200)) {
        let mut q = PacketQueue::new();
        let mut model: Vec<u32> = Vec::new();
        let mut next_id = 0u64;
        for (push, size) in ops {
            if push || model.is_empty() {
                q.push(pkt(next_id, size), 0, 0);
                model.push(size);
                next_id += 1;
            } else {
                let popped = q.pop().unwrap();
                let expect = model.remove(0);
                prop_assert_eq!(popped.packet.size_flits, expect);
            }
            prop_assert_eq!(q.occupancy_flits(), model.iter().sum::<u32>());
            prop_assert_eq!(q.len(), model.len());
        }
    }

    /// FIFO order is preserved for arbitrary push/pop sequences.
    #[test]
    fn queue_is_fifo(sizes in prop::collection::vec(1u32..64, 1..100)) {
        let mut q = PacketQueue::new();
        for (i, &s) in sizes.iter().enumerate() {
            q.push(pkt(i as u64, s), 0, 0);
        }
        for i in 0..sizes.len() {
            prop_assert_eq!(q.pop().unwrap().packet.id, PacketId(i as u64));
        }
        prop_assert!(q.is_empty());
    }

    /// RAM usage never exceeds capacity and never goes negative, for any
    /// sequence of reserves and releases.
    #[test]
    fn ram_within_bounds(capacity in 1u32..4096, ops in prop::collection::vec((any::<bool>(), 1u32..128), 1..200)) {
        let mut ram = PortRam::new(capacity);
        let mut outstanding: Vec<u32> = Vec::new();
        for (reserve, amount) in ops {
            if reserve {
                let before = ram.used();
                match ram.reserve(amount) {
                    Ok(()) => outstanding.push(amount),
                    Err(_) => prop_assert_eq!(ram.used(), before, "failed reserve mutated state"),
                }
            } else if let Some(amount) = outstanding.pop() {
                ram.release(amount);
            }
            prop_assert!(ram.used() <= ram.capacity());
            prop_assert_eq!(ram.used(), outstanding.iter().sum::<u32>());
            prop_assert_eq!(ram.free(), ram.capacity() - ram.used());
        }
    }

    /// CAM: lookup finds exactly the allocated keys; occupancy equals
    /// allocations minus frees; allocation fails only when full.
    #[test]
    fn cam_tracks_active_keys(capacity in 1usize..9, keys in prop::collection::vec(0u32..16, 1..64)) {
        let mut cam: Cam<u32, usize> = Cam::new(capacity);
        let mut active: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for (i, k) in keys.into_iter().enumerate() {
            if let Some(&idx) = active.get(&k) {
                // Toggle: free it.
                cam.free(idx);
                active.remove(&k);
            } else {
                match cam.allocate(k, i) {
                    Ok(idx) => { active.insert(k, idx); }
                    Err(_) => prop_assert!(cam.is_full()),
                }
            }
            for (&k, &idx) in &active {
                prop_assert_eq!(cam.lookup(k), Some(idx));
            }
            prop_assert_eq!(cam.occupied(), active.len());
        }
    }

    /// Links conserve credits: sender credits + credits in flight on the
    /// reverse channel + flits held by the receiver == initial credits,
    /// at every step of a random send/free schedule.
    #[test]
    fn link_conserves_credits(sizes in prop::collection::vec(1u32..33, 1..50)) {
        let total: u32 = 256;
        let cfg = LinkConfig { bw_flits_per_cycle: 1, delay_cycles: 2 };
        let mut l = Link::new(cfg, total);
        let mut now = 0u64;
        let mut held_by_receiver: u32 = 0;
        let mut receiver_backlog: Vec<u32> = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            l.poll_credits(now);
            if l.can_send(now, s) {
                l.send(now, pkt(i as u64, s));
            }
            let mut arrived = Vec::new();
            l.deliver_into(now, &mut arrived);
            for d in arrived {
                held_by_receiver += d.packet.size_flits;
                receiver_backlog.push(d.packet.size_flits);
            }
            // Occasionally the receiver frees a packet.
            if i % 3 == 0 {
                if let Some(f) = receiver_backlog.pop() {
                    held_by_receiver -= f;
                    l.return_credits(now, f);
                }
            }
            // Conservation: credits at sender + in flight back + held by
            // receiver + consumed by packets still on the wire.
            let on_wire: u32 = {
                // deliver() drained arrived packets; in_flight_count covers the rest
                // but we cannot see sizes; instead verify the inequality bound.
                0
            };
            let _ = on_wire;
            prop_assert!(l.credits() + l.credits_in_flight() + held_by_receiver <= total);
            now += 7;
        }
        // Drain everything; all credits must come home.
        now += 1000;
        let mut arrived = Vec::new();
        l.deliver_into(now, &mut arrived);
        for d in arrived {
            l.return_credits(now, d.packet.size_flits);
        }
        for f in receiver_backlog {
            l.return_credits(now, f);
        }
        now += 1000;
        l.poll_credits(now);
        prop_assert_eq!(l.credits(), total);
    }

    /// Unit model: bytes -> flits -> bytes never loses data (always rounds
    /// up) and flit counts are minimal.
    #[test]
    fn unit_model_flit_rounding(bytes in 1u32..1_000_000) {
        let u = UnitModel::default();
        let flits = u.bytes_to_flits(bytes);
        prop_assert!(u.flits_to_bytes(flits) >= bytes as u64);
        prop_assert!(u.flits_to_bytes(flits - 1) < bytes as u64);
    }

    /// Unit model: ns -> cycles -> ns rounds up by less than one cycle.
    #[test]
    fn unit_model_time_rounding(ns in 0.0f64..1e9) {
        let u = UnitModel::default();
        let c = u.ns_to_cycles(ns);
        let back = u.cycles_to_ns(c);
        prop_assert!(back >= ns - 1e-6);
        prop_assert!(back < ns + u.cycle_ns + 1e-6);
    }
}

// ---- CalendarQueue vs. sequenced-heap model equivalence ----
//
// The simulator replaced its `BinaryHeap<Reverse<(cycle, seq, T)>>`
// release queue with `CalendarQueue`, relying on the queue yielding
// events in ascending-cycle order, FIFO within a cycle — exactly the
// heap's order when `seq` increases monotonically with each push. These
// properties pin that equivalence over arbitrary interleavings of
// pushes, timed drains, and retains.

use ccfit_engine::CalendarQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
enum CalOp {
    /// Schedule a value `delta` cycles from the current clock.
    Push(u64),
    /// Advance the clock by `delta` and drain everything due.
    Drain(u64),
    /// Keep only values where `value % modulus != 0`.
    Retain(u64),
}

fn cal_op() -> impl Strategy<Value = CalOp> {
    (0u8..7, 0u64..5000).prop_map(|(kind, delta)| match kind {
        0..=3 => CalOp::Push(delta),
        4 | 5 => CalOp::Drain(delta % 2048),
        _ => CalOp::Retain(2 + delta % 3),
    })
}

proptest! {
    #[test]
    fn calendar_queue_matches_sequenced_heap(ops in prop::collection::vec(cal_op(), 1..200)) {
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut next_val = 0u64;
        for op in ops {
            match op {
                CalOp::Push(delta) => {
                    let at = now + delta;
                    cal.push(at, next_val);
                    heap.push(Reverse((at, seq, next_val)));
                    seq += 1;
                    next_val += 1;
                }
                CalOp::Drain(delta) => {
                    now += delta;
                    loop {
                        let c = cal.pop_due(now);
                        let h = match heap.peek() {
                            Some(&Reverse((at, _, v))) if at <= now => {
                                heap.pop();
                                Some((at, v))
                            }
                            _ => None,
                        };
                        prop_assert_eq!(c, h, "divergence at now = {}", now);
                        if c.is_none() {
                            break;
                        }
                    }
                }
                CalOp::Retain(m) => {
                    cal.retain(|&v| v % m != 0);
                    heap = heap
                        .drain()
                        .filter(|&Reverse((_, _, v))| v % m != 0)
                        .collect();
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.is_empty(), heap.is_empty());
            prop_assert_eq!(
                cal.next_at(),
                heap.peek().map(|&Reverse((at, _, _))| at),
                "next_at diverges at now = {}", now
            );
        }
        // Final full drain: both must yield the identical tail.
        loop {
            let c = cal.pop_due(u64::MAX - 1);
            let h = heap.pop().map(|Reverse((at, _, v))| (at, v));
            prop_assert_eq!(c, h);
            if c.is_none() {
                break;
            }
        }
    }
}
