//! Dynamic network-event and fault-injection schedules.
//!
//! The paper's introduction lists "re-routing around faulty regions"
//! among the primary causes of the congestion trees CCFIT manages. This
//! crate provides the *schedule* side of the runtime fault subsystem:
//! a time-ordered list of [`NetworkEvent`]s — link failures/recoveries,
//! whole-switch failures/recoveries, and transient link degradations —
//! that the simulator consumes during a run, plus a seeded-random
//! generator for fault-storm workloads. The simulator-side semantics
//! (what a downed link does to in-flight flits, credits, Stop/Go state,
//! and routing) live in `ccfit-core`; see DESIGN.md §8.
//!
//! Schedules are plain data: deterministic, serializable, and
//! independent of the simulator, so the same schedule can be replayed
//! across mechanisms and seeds — exactly how the `faultstorm` harness
//! compares 1Q/VOQsw/VOQnet/ITh/FBICM/CCFIT under identical damage.

use ccfit_engine::ids::{NodeId, PortId, SwitchId};
use ccfit_engine::units::Cycle;
use ccfit_topology::{Endpoint, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What happens to traffic that is on (or committed to) a failing
/// component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultPolicy {
    /// The cable is cut: everything in flight — data flits, credit
    /// returns, control events — is destroyed and counted as lost, and
    /// the sender's credit state is zeroed until the link retrains on
    /// recovery.
    FailStop,
    /// Planned deactivation: the forward channel stops accepting new
    /// packets but everything already travelling (data, credits,
    /// Stop/Go events) drains normally.
    Graceful,
}

/// One dynamic network event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NetworkEvent {
    /// Take the switch-to-switch cable at `(switch, port)` down.
    LinkDown {
        /// Near-end switch.
        switch: SwitchId,
        /// Near-end port.
        port: PortId,
        /// In-flight handling.
        policy: FaultPolicy,
    },
    /// Bring a previously failed cable back up (both endpoints retrain
    /// and re-synchronize flow control).
    LinkUp {
        /// Near-end switch (either end of the failed cable works).
        switch: SwitchId,
        /// Near-end port.
        port: PortId,
    },
    /// Fail a whole switch: every cable of the switch goes down under
    /// `policy`, the switch's buffers are lost, and its attached nodes
    /// become unreachable until recovery.
    SwitchDown {
        /// The failing switch.
        switch: SwitchId,
        /// In-flight handling for its cables.
        policy: FaultPolicy,
    },
    /// Recover a failed switch with empty buffers; its cables to
    /// healthy peers come back up.
    SwitchUp {
        /// The recovering switch.
        switch: SwitchId,
    },
    /// Transient degradation: divide the cable's bandwidth by
    /// `bw_divisor` (floored at 1 flit/cycle) and add
    /// `extra_delay_cycles` of propagation delay, both directions,
    /// until [`NetworkEvent::LinkRestoreRate`].
    LinkDegrade {
        /// Near-end switch.
        switch: SwitchId,
        /// Near-end port.
        port: PortId,
        /// Bandwidth divisor (≥ 1).
        bw_divisor: u32,
        /// Added propagation delay in cycles.
        extra_delay_cycles: Cycle,
    },
    /// Restore a degraded cable to its nominal rate.
    LinkRestoreRate {
        /// Near-end switch.
        switch: SwitchId,
        /// Near-end port.
        port: PortId,
    },
}

impl NetworkEvent {
    /// Short static label of the event kind (observability exports and
    /// log lines).
    pub fn kind_name(&self) -> &'static str {
        match self {
            NetworkEvent::LinkDown { .. } => "link_down",
            NetworkEvent::LinkUp { .. } => "link_up",
            NetworkEvent::SwitchDown { .. } => "switch_down",
            NetworkEvent::SwitchUp { .. } => "switch_up",
            NetworkEvent::LinkDegrade { .. } => "link_degrade",
            NetworkEvent::LinkRestoreRate { .. } => "link_restore",
        }
    }

    /// The `(switch, port)` the event targets (`port` is `None` for
    /// whole-switch events).
    pub fn target(&self) -> (SwitchId, Option<PortId>) {
        match *self {
            NetworkEvent::LinkDown { switch, port, .. }
            | NetworkEvent::LinkUp { switch, port }
            | NetworkEvent::LinkDegrade { switch, port, .. }
            | NetworkEvent::LinkRestoreRate { switch, port } => (switch, Some(port)),
            NetworkEvent::SwitchDown { switch, .. } | NetworkEvent::SwitchUp { switch } => {
                (switch, None)
            }
        }
    }
}

/// A [`NetworkEvent`] pinned to a simulation cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledEvent {
    /// Cycle at which the event fires (consumed at the top of
    /// `Simulator::tick` for that cycle).
    pub at: Cycle,
    /// The event.
    pub event: NetworkEvent,
}

/// Schedule validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// The event names a switch the topology does not have.
    UnknownSwitch(SwitchId),
    /// The event names a port the switch does not have.
    PortOutOfRange(SwitchId, PortId),
    /// Link events must target switch-to-switch cables (failing a node
    /// cable would strand the node; model that as a `SwitchDown` of the
    /// attachment switch or simply stop the node's traffic).
    NodeCable(SwitchId, PortId),
    /// The port is not cabled in the pristine topology.
    Uncabled(SwitchId, PortId),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::UnknownSwitch(s) => write!(f, "unknown switch {s}"),
            FaultError::PortOutOfRange(s, p) => write!(f, "port {p} out of range on {s}"),
            FaultError::NodeCable(s, p) => {
                write!(f, "{s}:{p} is a node cable; only trunk cables can fail")
            }
            FaultError::Uncabled(s, p) => write!(f, "{s}:{p} is not cabled"),
        }
    }
}

impl std::error::Error for FaultError {}

/// A time-ordered fault schedule.
///
/// Events are kept sorted by `(cycle, insertion order)`, so two events
/// scheduled for the same cycle fire in the order they were added —
/// the simulator's application order is fully deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<ScheduledEvent>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an event, keeping the schedule sorted (stable for ties).
    pub fn push(&mut self, at: Cycle, event: NetworkEvent) -> &mut Self {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, ScheduledEvent { at, event });
        self
    }

    /// Schedule a link failure.
    pub fn link_down(
        &mut self,
        at: Cycle,
        switch: SwitchId,
        port: PortId,
        policy: FaultPolicy,
    ) -> &mut Self {
        self.push(
            at,
            NetworkEvent::LinkDown {
                switch,
                port,
                policy,
            },
        )
    }

    /// Schedule a link recovery.
    pub fn link_up(&mut self, at: Cycle, switch: SwitchId, port: PortId) -> &mut Self {
        self.push(at, NetworkEvent::LinkUp { switch, port })
    }

    /// Schedule a whole-switch failure.
    pub fn switch_down(&mut self, at: Cycle, switch: SwitchId, policy: FaultPolicy) -> &mut Self {
        self.push(at, NetworkEvent::SwitchDown { switch, policy })
    }

    /// Schedule a switch recovery.
    pub fn switch_up(&mut self, at: Cycle, switch: SwitchId) -> &mut Self {
        self.push(at, NetworkEvent::SwitchUp { switch })
    }

    /// Schedule a transient degradation.
    pub fn degrade(
        &mut self,
        at: Cycle,
        switch: SwitchId,
        port: PortId,
        bw_divisor: u32,
        extra_delay_cycles: Cycle,
    ) -> &mut Self {
        self.push(
            at,
            NetworkEvent::LinkDegrade {
                switch,
                port,
                bw_divisor,
                extra_delay_cycles,
            },
        )
    }

    /// Schedule the end of a degradation.
    pub fn restore_rate(&mut self, at: Cycle, switch: SwitchId, port: PortId) -> &mut Self {
        self.push(at, NetworkEvent::LinkRestoreRate { switch, port })
    }

    /// The events in firing order.
    pub fn events(&self) -> &[ScheduledEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Cycle of the first event, if any.
    pub fn first_at(&self) -> Option<Cycle> {
        self.events.first().map(|e| e.at)
    }

    /// Check every event against the *pristine* topology: switches and
    /// ports exist, and link events target switch-to-switch cables.
    /// (Temporal consistency — e.g. a `LinkUp` for a cable that is not
    /// down — is not a schedule error; the simulator skips such events
    /// and counts them as no-ops.)
    pub fn validate(&self, topo: &Topology) -> Result<(), FaultError> {
        for e in &self.events {
            let (s, port) = e.event.target();
            if s.index() >= topo.num_switches() {
                return Err(FaultError::UnknownSwitch(s));
            }
            let Some(p) = port else { continue };
            if p.index() >= topo.switch(s).num_ports() {
                return Err(FaultError::PortOutOfRange(s, p));
            }
            match topo.peer(s, p) {
                None => return Err(FaultError::Uncabled(s, p)),
                Some((Endpoint::Node(_), _)) => return Err(FaultError::NodeCable(s, p)),
                Some((Endpoint::Switch(..), _)) => {}
            }
        }
        Ok(())
    }
}

/// Parameters for seeded-random fault storms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomFaults {
    /// RNG seed (independent of the simulation's master seed so the
    /// same damage can be replayed across traffic seeds).
    pub seed: u64,
    /// Number of link failures to inject.
    pub failures: usize,
    /// Failures are drawn uniformly in `[window_start, window_end)`.
    pub window_start: Cycle,
    /// End of the injection window (exclusive).
    pub window_end: Cycle,
    /// Each failed cable recovers this many cycles after it fails
    /// (`None` = permanent).
    pub repair_after: Option<Cycle>,
    /// In-flight handling for every failure.
    pub policy: FaultPolicy,
}

impl RandomFaults {
    /// Draw a deterministic schedule for `topo`: `failures` distinct
    /// switch-to-switch cables fail at uniform-random cycles inside the
    /// window, each repaired `repair_after` cycles later. The draw is a
    /// pure function of `(self, topo)`.
    pub fn schedule(&self, topo: &Topology) -> FaultSchedule {
        // Enumerate each trunk cable once, from its lower endpoint.
        let mut cables: Vec<(SwitchId, PortId)> = Vec::new();
        for s in topo.switch_ids() {
            for p in topo.switch(s).connected() {
                if let Some((Endpoint::Switch(o, op), _)) = topo.peer(s, p) {
                    if (s.index(), p.index()) < (o.index(), op.index()) {
                        cables.push((s, p));
                    }
                }
            }
        }
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xFAB1_7000_0000_0001);
        let mut schedule = FaultSchedule::new();
        let n = self.failures.min(cables.len());
        for _ in 0..n {
            let i = rng.random_range(0..cables.len());
            let (s, p) = cables.swap_remove(i);
            let span = self.window_end.saturating_sub(self.window_start).max(1);
            let at = self.window_start + rng.random_range(0..span);
            schedule.link_down(at, s, p, self.policy);
            if let Some(repair) = self.repair_after {
                schedule.link_up(at + repair, s, p);
            }
        }
        schedule
    }
}

/// Simulator-side fault-handling knobs (consumed by `ccfit-core`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Cycles between a topology change and the moment the recomputed
    /// routing tables take effect network-wide. During this window the
    /// old tables stay in force: traffic routed at a dead cable waits
    /// (or is lost), modelling the management-plane delay of real
    /// subnet managers. Destinations orphaned by a switch failure stay
    /// unreachable at least this long.
    pub reroute_latency_cycles: Cycle,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            // ≈ 25 µs at the paper's 25.6 ns cycle: a fast local
            // re-route, long enough for congestion to pool upstream of
            // the fault.
            reroute_latency_cycles: 1000,
        }
    }
}

/// Convenience: a `NodeId` is unreachable while its attachment switch
/// is down. Exposed so harnesses can predict orphaned flows without
/// running the simulator.
pub fn orphaned_nodes(topo: &Topology, down: &[SwitchId]) -> Vec<NodeId> {
    topo.node_ids()
        .filter(|&n| down.contains(&topo.node_attachment(n).0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfit_topology::{KAryNTree, LinkParams};

    fn tree() -> Topology {
        KAryNTree::new(2, 3).build(LinkParams::default())
    }

    #[test]
    fn push_keeps_events_sorted_and_stable() {
        let mut s = FaultSchedule::new();
        s.link_down(500, SwitchId(0), PortId(2), FaultPolicy::FailStop);
        s.link_up(100, SwitchId(0), PortId(2));
        s.switch_down(500, SwitchId(3), FaultPolicy::Graceful);
        let ats: Vec<Cycle> = s.events().iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![100, 500, 500]);
        // Same-cycle events keep insertion order.
        assert!(matches!(s.events()[1].event, NetworkEvent::LinkDown { .. }));
        assert!(matches!(
            s.events()[2].event,
            NetworkEvent::SwitchDown { .. }
        ));
        assert_eq!(s.first_at(), Some(100));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn validate_accepts_trunk_cables() {
        let t = tree();
        let mut s = FaultSchedule::new();
        s.link_down(10, SwitchId(0), PortId(2), FaultPolicy::FailStop);
        s.switch_down(20, SwitchId(5), FaultPolicy::Graceful);
        s.degrade(30, SwitchId(0), PortId(3), 2, 8);
        s.validate(&t).unwrap();
    }

    #[test]
    fn validate_rejects_bad_targets() {
        let t = tree();
        let mut s = FaultSchedule::new();
        s.link_down(10, SwitchId(99), PortId(0), FaultPolicy::FailStop);
        assert_eq!(s.validate(&t), Err(FaultError::UnknownSwitch(SwitchId(99))));

        let mut s = FaultSchedule::new();
        s.link_down(10, SwitchId(0), PortId(99), FaultPolicy::FailStop);
        assert!(matches!(
            s.validate(&t),
            Err(FaultError::PortOutOfRange(..))
        ));

        // Port 0 of a leaf switch is a node cable.
        let mut s = FaultSchedule::new();
        s.link_down(10, SwitchId(0), PortId(0), FaultPolicy::FailStop);
        assert!(matches!(s.validate(&t), Err(FaultError::NodeCable(..))));
    }

    #[test]
    fn random_storms_are_seed_deterministic() {
        let t = tree();
        let cfg = RandomFaults {
            seed: 7,
            failures: 3,
            window_start: 1000,
            window_end: 5000,
            repair_after: Some(2000),
            policy: FaultPolicy::FailStop,
        };
        let a = cfg.schedule(&t);
        let b = cfg.schedule(&t);
        assert_eq!(a, b, "same seed, same storm");
        assert_eq!(a.len(), 6, "3 failures + 3 repairs");
        a.validate(&t).unwrap();
        let c = RandomFaults { seed: 8, ..cfg }.schedule(&t);
        assert_ne!(a, c, "different seed, different storm");
        // Every failure lands inside the window; repairs follow by the
        // configured delay.
        for e in a.events() {
            match e.event {
                NetworkEvent::LinkDown { .. } => {
                    assert!(e.at >= 1000 && e.at < 5000);
                }
                NetworkEvent::LinkUp { .. } => assert!(e.at >= 3000),
                _ => panic!("unexpected event kind"),
            }
        }
    }

    #[test]
    fn random_storm_draws_distinct_cables() {
        let t = tree();
        let cfg = RandomFaults {
            seed: 3,
            failures: 16, // 2-ary 3-tree has 16 trunk cables
            window_start: 0,
            window_end: 100,
            repair_after: None,
            policy: FaultPolicy::Graceful,
        };
        let s = cfg.schedule(&t);
        assert_eq!(s.len(), 16);
        let mut targets: Vec<(SwitchId, Option<PortId>)> =
            s.events().iter().map(|e| e.event.target()).collect();
        targets.sort_by_key(|(s, p)| (s.index(), p.map(|p| p.index())));
        targets.dedup();
        assert_eq!(targets.len(), 16, "each cable fails at most once");
    }

    #[test]
    fn serde_round_trip() {
        let t = tree();
        let mut s = FaultSchedule::new();
        s.link_down(10, SwitchId(0), PortId(2), FaultPolicy::FailStop)
            .degrade(20, SwitchId(0), PortId(3), 4, 2)
            .link_up(30, SwitchId(0), PortId(2));
        s.validate(&t).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn orphaned_nodes_follow_attachment() {
        let t = tree();
        // Leaf switch 0 hosts nodes 0 and 1 in the 2-ary 3-tree.
        let orphans = orphaned_nodes(&t, &[SwitchId(0)]);
        assert_eq!(orphans, vec![NodeId(0), NodeId(1)]);
        assert!(orphaned_nodes(&t, &[]).is_empty());
    }
}
