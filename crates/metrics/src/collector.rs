//! The live metrics collector driven by the simulator.

use crate::events::{CcEvent, EventClass, EventConfig, EventLog};
use crate::faults::FaultSummary;
use crate::fct::{FctTracker, FlowGoal};
use crate::histogram::LatencyHistogram;
use crate::report::{FlowReport, SimReport};
use crate::series::TimeSeries;
use ccfit_engine::ids::FlowId;
use ccfit_engine::packet::Packet;
use ccfit_engine::units::{Cycle, UnitModel};
use std::collections::BTreeMap;

/// Collects per-flow and aggregate delivery statistics plus named event
/// counters during a run.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    units: UnitModel,
    bin_ns: f64,
    per_flow_bytes: BTreeMap<FlowId, TimeSeries>,
    total_bytes: TimeSeries,
    latency_sum_ns: TimeSeries,
    latency_count: TimeSeries,
    latency_hist: LatencyHistogram,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, TimeSeries>,
    delivered_packets: u64,
    delivered_bytes: u64,
    faults: Option<FaultSummary>,
    events: Option<EventLog>,
    fct: Option<FctTracker>,
}

impl MetricsCollector {
    /// Create a collector sampling with the given bin width.
    pub fn new(units: UnitModel, bin_ns: f64) -> Self {
        Self {
            units,
            bin_ns,
            per_flow_bytes: BTreeMap::new(),
            total_bytes: TimeSeries::new(bin_ns),
            latency_sum_ns: TimeSeries::new(bin_ns),
            latency_count: TimeSeries::new(bin_ns),
            latency_hist: LatencyHistogram::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            delivered_packets: 0,
            delivered_bytes: 0,
            faults: None,
            events: None,
            fct: None,
        }
    }

    /// Track flow completion for the given sized-flow goals (set once
    /// before the run starts; runs without sized flows leave it unset
    /// so their reports carry a `null` FCT block). Completion is
    /// detected inside [`Self::record_delivery`], which every engine
    /// invokes serially in canonical order, so FCTs are byte-identical
    /// across engines for free.
    pub fn track_flows(&mut self, goals: Vec<FlowGoal>) {
        self.fct = Some(FctTracker::new(goals));
    }

    /// Turn on the structured CC event log (off by default — fully
    /// zero-cost when unset). See [`crate::events`].
    pub fn enable_events(&mut self, cfg: EventConfig) {
        self.events = Some(EventLog::new(cfg));
    }

    /// The enabled event-class mask ([`EventClass::NONE`] when the log
    /// is off). Emission sites check this before constructing events.
    pub fn event_mask(&self) -> EventClass {
        self.events
            .as_ref()
            .map_or(EventClass::NONE, EventLog::classes)
    }

    /// Offer an event to the log (no-op when the log is off or the
    /// event's class is masked).
    pub fn cc_event(&mut self, ev: CcEvent) {
        if let Some(log) = &mut self.events {
            log.offer(ev);
        }
    }

    /// The live event log, if enabled.
    pub fn events(&self) -> Option<&EventLog> {
        self.events.as_ref()
    }

    /// Attach fault-injection accounting (set once, at the end of a run
    /// with a fault schedule). Fault-free runs leave it unset so their
    /// reports stay byte-identical to pre-fault archives.
    pub fn set_faults(&mut self, summary: FaultSummary) {
        self.faults = Some(summary);
    }

    /// Record a data packet delivered to its destination at cycle `now`.
    /// BECNs and control traffic are not counted as throughput.
    pub fn record_delivery(&mut self, now: Cycle, pkt: &Packet) {
        if !pkt.is_data() {
            return;
        }
        let ns = self.units.cycles_to_ns(now);
        if let Some(t) = &mut self.fct {
            t.on_delivery(ns, pkt.flow, pkt.size_bytes as u64);
        }
        let bytes = pkt.size_bytes as f64;
        self.per_flow_bytes
            .entry(pkt.flow)
            .or_insert_with(|| TimeSeries::new(self.bin_ns))
            .add(ns, bytes);
        self.total_bytes.add(ns, bytes);
        let latency_ns = self.units.cycles_to_ns(now.saturating_sub(pkt.injected_at));
        self.latency_sum_ns.add(ns, latency_ns);
        self.latency_count.add(ns, 1.0);
        self.latency_hist.record(latency_ns);
        self.delivered_packets += 1;
        self.delivered_bytes += pkt.size_bytes as u64;
    }

    /// Increment a named event counter (CFQ allocations, FECN marks,
    /// BECNs received, …).
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of a counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record an instantaneous gauge sample (e.g. buffered flits
    /// network-wide, CFQs allocated). Samples landing in the same bin
    /// accumulate; pair each gauge with a `<name>_samples` gauge if a
    /// per-bin mean is needed — [`SimReport::gauge_mean_per_bin`] does
    /// this automatically.
    pub fn gauge(&mut self, name: &str, at_ns: f64, value: f64) {
        self.gauges
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(self.bin_ns))
            .add(at_ns, value);
        self.gauges
            .entry(format!("{name}_samples"))
            .or_insert_with(|| TimeSeries::new(self.bin_ns))
            .add(at_ns, 1.0);
    }

    /// Total delivered data packets so far.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Total delivered payload bytes so far.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Freeze into a report.
    ///
    /// * `name` — run label,
    /// * `duration_ns` — simulated time (every series is padded to it),
    /// * `reception_capacity_bytes_per_ns` — aggregate rate at which the
    ///   end nodes could absorb traffic (Σ node-link bandwidths); the
    ///   normalization denominator for "network throughput",
    /// * `labels` — flow id → display label.
    pub fn finish(
        mut self,
        name: impl Into<String>,
        duration_ns: f64,
        reception_capacity_bytes_per_ns: f64,
        labels: &BTreeMap<FlowId, String>,
    ) -> SimReport {
        self.total_bytes.extend_to(duration_ns);
        self.latency_sum_ns.extend_to(duration_ns);
        self.latency_count.extend_to(duration_ns);
        let flows = self
            .per_flow_bytes
            .into_iter()
            .map(|(id, mut series)| {
                series.extend_to(duration_ns);
                FlowReport {
                    id,
                    label: labels
                        .get(&id)
                        .cloned()
                        .unwrap_or_else(|| format!("flow{}", id.0)),
                    bytes: series,
                }
            })
            .collect();
        SimReport {
            name: name.into(),
            duration_ns,
            bin_ns: self.bin_ns,
            flows,
            total_bytes: self.total_bytes,
            latency_sum_ns: self.latency_sum_ns,
            latency_count: self.latency_count,
            latency_hist: self.latency_hist,
            gauges: self.gauges,
            reception_capacity_bytes_per_ns,
            counters: self.counters,
            delivered_packets: self.delivered_packets,
            delivered_bytes: self.delivered_bytes,
            simulated_cycles: self.units.ns_to_cycles(duration_ns),
            faults: self.faults,
            events: self.events.map(EventLog::into_report),
            fct: self.fct.map(FctTracker::into_report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfit_engine::ids::{NodeId, PacketId};

    fn pkt(flow: u32, bytes: u32, injected: Cycle) -> Packet {
        Packet::data(
            PacketId(0),
            NodeId(0),
            NodeId(1),
            bytes.div_ceil(64),
            bytes,
            FlowId(flow),
            injected,
        )
    }

    #[test]
    fn deliveries_accumulate_per_flow_and_total() {
        let mut c = MetricsCollector::new(UnitModel::default(), 1000.0);
        c.record_delivery(10, &pkt(0, 2048, 0));
        c.record_delivery(20, &pkt(1, 2048, 0));
        c.record_delivery(30, &pkt(0, 1024, 0));
        assert_eq!(c.delivered_packets(), 3);
        assert_eq!(c.delivered_bytes(), 2048 + 2048 + 1024);
        let r = c.finish("t", 2000.0, 1.0, &BTreeMap::new());
        assert_eq!(r.flows.len(), 2);
        let f0 = r.flows.iter().find(|f| f.id == FlowId(0)).unwrap();
        assert_eq!(f0.bytes.total(), 3072.0);
    }

    #[test]
    fn becns_are_not_throughput() {
        let mut c = MetricsCollector::new(UnitModel::default(), 1000.0);
        let b = Packet::becn(PacketId(1), NodeId(1), NodeId(0), 0);
        c.record_delivery(10, &b);
        assert_eq!(c.delivered_packets(), 0);
        assert_eq!(c.delivered_bytes(), 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut c = MetricsCollector::new(UnitModel::default(), 1000.0);
        c.count("fecn_marked", 3);
        c.count("fecn_marked", 2);
        assert_eq!(c.counter("fecn_marked"), 5);
        assert_eq!(c.counter("missing"), 0);
    }

    #[test]
    fn latency_is_binned_by_delivery_time() {
        let u = UnitModel::default();
        let mut c = MetricsCollector::new(u, 10_000.0);
        // Injected at cycle 0, delivered at cycle 100 -> latency 100
        // cycles = 2560 ns.
        c.record_delivery(100, &pkt(0, 2048, 0));
        let r = c.finish("t", 20_000.0, 1.0, &BTreeMap::new());
        let lat = r.mean_latency_ns_per_bin();
        assert!((lat[0] - 2560.0).abs() < 1.0);
        assert_eq!(lat[1], 0.0);
    }

    #[test]
    fn finish_pads_all_series_to_duration() {
        let mut c = MetricsCollector::new(UnitModel::default(), 1000.0);
        c.record_delivery(1, &pkt(0, 64, 0));
        let r = c.finish("t", 10_000.0, 1.0, &BTreeMap::new());
        assert_eq!(r.total_bytes.len(), 10);
        assert_eq!(r.flows[0].bytes.len(), 10);
    }

    #[test]
    fn labels_are_applied() {
        let mut c = MetricsCollector::new(UnitModel::default(), 1000.0);
        c.record_delivery(1, &pkt(5, 64, 0));
        let mut labels = BTreeMap::new();
        labels.insert(FlowId(5), "F5".to_string());
        let r = c.finish("t", 1000.0, 1.0, &labels);
        assert_eq!(r.flows[0].label, "F5");
    }
}
