//! Structured congestion-control event log.
//!
//! The paper's whole argument (§IV) is read off *internal* CC dynamics —
//! congestion-state transitions at root ports, CFQ allocation and
//! release, FECN/BECN traffic, CCT index movement — so the simulator
//! records them as first-class [`CcEvent`]s instead of leaving them
//! implicit in throughput curves. Events flow through the same
//! [`MetricsSink`](crate::MetricsSink) interface as counters: serially
//! they land straight in the collector's [`EventLog`]; under the sharded
//! parallel tick they ride the per-shard op logs and are replayed in
//! canonical shard order, so event logs are byte-identical across thread
//! counts (see DESIGN.md §10).
//!
//! Emission is zero-cost when off: every site guards construction behind
//! [`MetricsSink::wants_events`](crate::MetricsSink::wants_events), which
//! is a single branch against a bitmask.

use ccfit_engine::units::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Bitmask of event classes — the `SimBuilder` knob that selects which
/// event families are recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventClass(pub u16);

impl EventClass {
    /// No events.
    pub const NONE: EventClass = EventClass(0);
    /// Congestion-state enter/leave at switch output ports.
    pub const CONGESTION: EventClass = EventClass(1 << 0);
    /// CFQ allocate/release/exhaustion (switch and injection adapter).
    pub const CFQ: EventClass = EventClass(1 << 1);
    /// CAM exhaustion (switch output CAMs and adapter IA-CAMs).
    pub const CAM: EventClass = EventClass(1 << 2);
    /// FECN marks placed on data packets.
    pub const FECN: EventClass = EventClass(1 << 3);
    /// BECN generation at destinations and reception at sources.
    pub const BECN: EventClass = EventClass(1 << 4);
    /// CCT-index increases (on BECN) and timer-driven decays.
    pub const CCTI: EventClass = EventClass(1 << 5);
    /// Stop/Go flow-control transitions between CFQ stages.
    pub const STOP_GO: EventClass = EventClass(1 << 6);
    /// Injection-throttle delays actually imposed on packets.
    pub const THROTTLE: EventClass = EventClass(1 << 7);
    /// Fault-schedule applications and re-route completions.
    pub const FAULT: EventClass = EventClass(1 << 8);
    /// Per-packet delivery records (for cross-validation against the
    /// aggregate series; high volume).
    pub const DELIVERY: EventClass = EventClass(1 << 9);
    /// ECN-CE marks placed on data packets (DCQCN-style schemes).
    pub const ECN: EventClass = EventClass(1 << 10);
    /// CNP generation at destinations and reception at sources.
    pub const CNP: EventClass = EventClass(1 << 11);
    /// INT feedback: folded telemetry echoed to sources via ACKs.
    pub const INT: EventClass = EventClass(1 << 12);
    /// Source rate/window changes by the modern reaction machines.
    pub const RATE: EventClass = EventClass(1 << 13);
    /// Every event class.
    pub const ALL: EventClass = EventClass((1 << 14) - 1);

    /// True when every class in `other` is enabled in `self`.
    #[inline]
    pub fn contains(self, other: EventClass) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when no class is enabled.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl Default for EventClass {
    /// Defaults to [`EventClass::NONE`] — recording is opt-in.
    fn default() -> Self {
        EventClass::NONE
    }
}

impl std::ops::BitOr for EventClass {
    type Output = EventClass;
    fn bitor(self, rhs: EventClass) -> EventClass {
        EventClass(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for EventClass {
    fn bitor_assign(&mut self, rhs: EventClass) {
        self.0 |= rhs.0;
    }
}

/// What happened. Switch-side events carry the switch id and the local
/// port; adapter-side events carry the node id. All ids are raw indices
/// (`SwitchId::0`, `NodeId::0`, …) so the log stays `Copy` and compact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CcEventKind {
    /// A switch output port entered the congested marking state.
    /// `occupancy_flits` is the queue occupancy that drove the
    /// transition: the summed root-CFQ occupancy feeding the port
    /// (FBICM/CCFIT) or the VOQ occupancy (ITh-style detection).
    CongestionEnter {
        /// Switch id.
        sw: u32,
        /// Output port.
        port: u32,
        /// Driving queue occupancy in flits.
        occupancy_flits: u32,
    },
    /// A switch output port left the congested marking state.
    CongestionLeave {
        /// Switch id.
        sw: u32,
        /// Output port.
        port: u32,
        /// Driving queue occupancy in flits.
        occupancy_flits: u32,
    },
    /// A CFQ was allocated at a switch input port.
    CfqAlloc {
        /// Switch id.
        sw: u32,
        /// Input port holding the CFQ.
        port: u32,
        /// Congested destination the CFQ isolates.
        dst: u32,
        /// True when this is a root allocation (congestion detected
        /// here) rather than a propagated one.
        root: bool,
    },
    /// A switch CFQ drained and was released.
    CfqDealloc {
        /// Switch id.
        sw: u32,
        /// Input port.
        port: u32,
        /// Destination it isolated.
        dst: u32,
    },
    /// A CFQ was needed but the input port's CFQ pool was exhausted.
    CfqExhausted {
        /// Switch id.
        sw: u32,
        /// Input port.
        port: u32,
        /// Destination that could not be isolated.
        dst: u32,
    },
    /// An injection-adapter CFQ was allocated.
    IaCfqAlloc {
        /// Node id.
        node: u32,
        /// Congested destination.
        dst: u32,
    },
    /// An injection-adapter CFQ drained and was released.
    IaCfqDealloc {
        /// Node id.
        node: u32,
        /// Destination it isolated.
        dst: u32,
    },
    /// An injection-adapter CFQ was needed but the pool was exhausted.
    IaCfqExhausted {
        /// Node id.
        node: u32,
        /// Destination that could not be isolated.
        dst: u32,
    },
    /// A propagated allocation notification was accepted upstream.
    AllocPropagated {
        /// Switch id.
        sw: u32,
        /// Input port that allocated in response.
        port: u32,
        /// Congested destination.
        dst: u32,
    },
    /// A switch output CAM had no free entry for a notification.
    CamExhausted {
        /// Switch id.
        sw: u32,
        /// Output port.
        port: u32,
        /// Destination the notification was for.
        dst: u32,
    },
    /// An injection-adapter CAM had no free entry.
    IaCamExhausted {
        /// Node id.
        node: u32,
        /// Destination the notification was for.
        dst: u32,
    },
    /// A data packet was FECN-marked while crossing a congested output.
    FecnMark {
        /// Switch id.
        sw: u32,
        /// Congested output port.
        port: u32,
        /// Packet destination.
        dst: u32,
        /// Packet flow.
        flow: u32,
    },
    /// A destination node turned a FECN-marked delivery into a BECN.
    BecnGenerated {
        /// Destination node generating the BECN.
        node: u32,
        /// Source node the BECN travels back to.
        src: u32,
    },
    /// A source adapter received a BECN.
    BecnReceived {
        /// Receiving (source) node.
        node: u32,
        /// Congested destination the BECN refers to.
        dst: u32,
    },
    /// A source adapter's CCT index for `dst` increased (BECN arrival).
    CctiIncrease {
        /// Source node.
        node: u32,
        /// Congested destination.
        dst: u32,
        /// New CCT index.
        ccti: u32,
        /// New inter-release delay `CCT[ccti]` in cycles — the
        /// throttle-delay change this implies.
        ird_cycles: u64,
    },
    /// A source adapter's CCT index for `dst` decayed (timer expiry).
    CctiDecay {
        /// Source node.
        node: u32,
        /// Destination.
        dst: u32,
        /// New CCT index.
        ccti: u32,
        /// New inter-release delay in cycles.
        ird_cycles: u64,
    },
    /// A Stop notification was sent upstream for a CFQ.
    StopSent {
        /// Switch id.
        sw: u32,
        /// Input port whose CFQ filled.
        port: u32,
        /// Destination of the stopped CFQ.
        dst: u32,
    },
    /// A Go notification was sent upstream for a CFQ.
    GoSent {
        /// Switch id.
        sw: u32,
        /// Input port whose CFQ drained.
        port: u32,
        /// Destination of the resumed CFQ.
        dst: u32,
    },
    /// A Stop notification was received at a switch output.
    StopReceived {
        /// Switch id.
        sw: u32,
        /// Output port.
        port: u32,
        /// Destination of the stopped flow set.
        dst: u32,
    },
    /// A Go notification was received at a switch output.
    GoReceived {
        /// Switch id.
        sw: u32,
        /// Output port.
        port: u32,
        /// Destination of the resumed flow set.
        dst: u32,
    },
    /// An injection was delayed by the throttle (non-zero IRD).
    ThrottledInjection {
        /// Injecting node.
        node: u32,
        /// Throttled destination.
        dst: u32,
        /// Imposed inter-release delay in cycles.
        ird_cycles: u64,
    },
    /// A fault-schedule event was applied to the network.
    Fault {
        /// Which kind of event.
        kind: FaultKind,
        /// Affected switch.
        sw: u32,
        /// Affected port (0 for whole-switch events).
        port: u32,
    },
    /// Live re-routing around a topology change completed.
    RerouteDone {
        /// Nodes left unreachable after the re-route.
        unreachable_nodes: u32,
    },
    /// A data packet reached its destination (cross-validation record).
    Delivered {
        /// Destination node.
        node: u32,
        /// Flow the packet belongs to.
        flow: u32,
        /// Payload bytes.
        bytes: u32,
        /// In-network latency in cycles.
        latency_cycles: u64,
        /// True when the packet arrived FECN-marked.
        fecn: bool,
    },
    /// A data packet was ECN-CE-marked crossing a switch output queue
    /// (DCQCN-style RED marking).
    EcnMark {
        /// Switch id.
        sw: u32,
        /// Output port whose queue drove the mark.
        port: u32,
        /// Packet destination.
        dst: u32,
        /// Queue occupancy (flits) at marking time.
        occupancy_flits: u32,
    },
    /// A destination turned an ECN-marked delivery into a CNP.
    CnpGenerated {
        /// Destination node generating the CNP.
        node: u32,
        /// Source node the CNP travels back to.
        src: u32,
    },
    /// A source adapter received a CNP.
    CnpReceived {
        /// Receiving (source) node.
        node: u32,
        /// Congested destination the CNP refers to.
        dst: u32,
    },
    /// INT feedback reached a source: an ACK echoed the folded per-hop
    /// telemetry of a delivered data packet.
    IntFeedback {
        /// Receiving (source) node.
        node: u32,
        /// Destination the sample describes the path to.
        dst: u32,
        /// Folded max hop utilization ×1e6 (kept integral so the event
        /// stays `Eq`-friendly and compact).
        u_ppm: u64,
        /// Hops that contributed to the fold.
        hops: u8,
    },
    /// A DCQCN rate machine changed its current rate.
    RateChange {
        /// Source node.
        node: u32,
        /// Destination whose flow changed.
        dst: u32,
        /// New current rate as parts-per-million of line rate.
        rate_ppm: u64,
        /// True for a multiplicative cut, false for an increase stage.
        decrease: bool,
    },
    /// An HPCC window machine changed its window.
    WindowChange {
        /// Source node.
        node: u32,
        /// Destination whose flow changed.
        dst: u32,
        /// New window in bytes.
        window_bytes: u64,
        /// True when the update shrank the window.
        decrease: bool,
    },
}

impl CcEventKind {
    /// The class this kind belongs to (for mask checks).
    pub fn class(&self) -> EventClass {
        use CcEventKind::*;
        match self {
            CongestionEnter { .. } | CongestionLeave { .. } => EventClass::CONGESTION,
            CfqAlloc { .. }
            | CfqDealloc { .. }
            | CfqExhausted { .. }
            | IaCfqAlloc { .. }
            | IaCfqDealloc { .. }
            | IaCfqExhausted { .. }
            | AllocPropagated { .. } => EventClass::CFQ,
            CamExhausted { .. } | IaCamExhausted { .. } => EventClass::CAM,
            FecnMark { .. } => EventClass::FECN,
            BecnGenerated { .. } | BecnReceived { .. } => EventClass::BECN,
            CctiIncrease { .. } | CctiDecay { .. } => EventClass::CCTI,
            StopSent { .. } | GoSent { .. } | StopReceived { .. } | GoReceived { .. } => {
                EventClass::STOP_GO
            }
            ThrottledInjection { .. } => EventClass::THROTTLE,
            Fault { .. } | RerouteDone { .. } => EventClass::FAULT,
            Delivered { .. } => EventClass::DELIVERY,
            EcnMark { .. } => EventClass::ECN,
            CnpGenerated { .. } | CnpReceived { .. } => EventClass::CNP,
            IntFeedback { .. } => EventClass::INT,
            RateChange { .. } | WindowChange { .. } => EventClass::RATE,
        }
    }

    /// Short static label (CSV `kind` column, Chrome-trace event name).
    pub fn label(&self) -> &'static str {
        use CcEventKind::*;
        match self {
            CongestionEnter { .. } => "congestion_enter",
            CongestionLeave { .. } => "congestion_leave",
            CfqAlloc { .. } => "cfq_alloc",
            CfqDealloc { .. } => "cfq_dealloc",
            CfqExhausted { .. } => "cfq_exhausted",
            IaCfqAlloc { .. } => "ia_cfq_alloc",
            IaCfqDealloc { .. } => "ia_cfq_dealloc",
            IaCfqExhausted { .. } => "ia_cfq_exhausted",
            AllocPropagated { .. } => "alloc_propagated",
            CamExhausted { .. } => "cam_exhausted",
            IaCamExhausted { .. } => "ia_cam_exhausted",
            FecnMark { .. } => "fecn_mark",
            BecnGenerated { .. } => "becn_generated",
            BecnReceived { .. } => "becn_received",
            CctiIncrease { .. } => "ccti_increase",
            CctiDecay { .. } => "ccti_decay",
            StopSent { .. } => "stop_sent",
            GoSent { .. } => "go_sent",
            StopReceived { .. } => "stop_received",
            GoReceived { .. } => "go_received",
            ThrottledInjection { .. } => "throttled_injection",
            Fault { .. } => "fault",
            RerouteDone { .. } => "reroute_done",
            Delivered { .. } => "delivered",
            EcnMark { .. } => "ecn_mark",
            CnpGenerated { .. } => "cnp_generated",
            CnpReceived { .. } => "cnp_received",
            IntFeedback { .. } => "int_feedback",
            RateChange { .. } => "rate_change",
            WindowChange { .. } => "window_change",
        }
    }
}

/// The kind of an applied fault-schedule event, as seen by the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A directed link failed.
    LinkDown,
    /// A failed link was repaired.
    LinkUp,
    /// A whole switch failed.
    SwitchDown,
    /// A failed switch was repaired.
    SwitchUp,
    /// A link's rate was degraded.
    LinkDegrade,
    /// A degraded link's rate was restored.
    LinkRestore,
}

/// One timestamped CC event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CcEvent {
    /// Simulator cycle at which the event fired.
    pub at: Cycle,
    /// What happened.
    pub kind: CcEventKind,
}

/// A bounded FIFO of events with explicit drop accounting: once `cap`
/// events are held, the *oldest* is dropped to admit a newer one, and
/// the drop counter advances — truncation is never silent. The
/// invariant `dropped() == offered() − len()` is property-tested.
#[derive(Debug, Clone)]
pub struct EventRing {
    cap: usize,
    buf: VecDeque<CcEvent>,
    offered: u64,
    dropped: u64,
}

impl EventRing {
    /// An empty ring holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            buf: VecDeque::new(),
            offered: 0,
            dropped: 0,
        }
    }

    /// Admit an event, evicting the oldest (and counting the drop) when
    /// full.
    pub fn push(&mut self, ev: CcEvent) {
        self.offered += 1;
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently held, oldest first.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Total events ever pushed.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain into a `Vec`, oldest first.
    pub fn into_vec(self) -> Vec<CcEvent> {
        self.buf.into_iter().collect()
    }

    /// Iterate the held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &CcEvent> {
        self.buf.iter()
    }
}

/// Event-log configuration: the `SimBuilder` knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventConfig {
    /// Which event classes to record.
    pub classes: EventClass,
    /// Keep every `sample_every`-th event (per the post-mask stream);
    /// `1` keeps everything. Skipped events are counted, not silently
    /// lost.
    pub sample_every: u64,
    /// Ring capacity — the most events the log will hold. Overflow
    /// evicts the oldest event and advances the drop counter.
    pub cap: usize,
}

impl Default for EventConfig {
    fn default() -> Self {
        Self {
            classes: EventClass::ALL,
            sample_every: 1,
            cap: 1 << 20,
        }
    }
}

/// The collector-side event log: mask → sampling → bounded ring.
///
/// Masking, sampling and the capacity bound are applied *only here*, on
/// the single canonical event stream (serially, or after the per-shard
/// op logs were replayed in shard order) — applying them per shard
/// would make the kept set depend on the shard layout and break
/// byte-identity across thread counts.
#[derive(Debug, Clone)]
pub struct EventLog {
    cfg: EventConfig,
    ring: EventRing,
    seen: u64,
    sampled_out: u64,
}

impl EventLog {
    /// An empty log with the given knobs.
    pub fn new(cfg: EventConfig) -> Self {
        Self {
            cfg,
            ring: EventRing::new(cfg.cap),
            seen: 0,
            sampled_out: 0,
        }
    }

    /// The enabled class mask.
    pub fn classes(&self) -> EventClass {
        self.cfg.classes
    }

    /// True when the log records events of `class`.
    #[inline]
    pub fn wants(&self, class: EventClass) -> bool {
        self.cfg.classes.contains(class)
    }

    /// Offer an event: drop it if masked, count it out if sampling
    /// skips it, otherwise push it into the ring.
    pub fn offer(&mut self, ev: CcEvent) {
        if !self.cfg.classes.contains(ev.kind.class()) {
            return;
        }
        self.seen += 1;
        if self.cfg.sample_every > 1 && !(self.seen - 1).is_multiple_of(self.cfg.sample_every) {
            self.sampled_out += 1;
            return;
        }
        self.ring.push(ev);
    }

    /// Events that passed the class mask so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events skipped by sampling so far.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Events evicted by the capacity bound so far.
    pub fn dropped_cap(&self) -> u64 {
        self.ring.dropped()
    }

    /// Iterate the held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &CcEvent> {
        self.ring.iter()
    }

    /// Freeze into the serializable report section.
    pub fn into_report(self) -> EventLogReport {
        EventLogReport {
            classes: self.cfg.classes.0,
            sample_every: self.cfg.sample_every,
            cap: self.cfg.cap as u64,
            seen: self.seen,
            sampled_out: self.sampled_out,
            dropped_cap: self.ring.dropped(),
            events: self.ring.into_vec(),
        }
    }
}

/// The event log as it appears inside a frozen
/// [`SimReport`](crate::SimReport).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLogReport {
    /// Enabled class mask (raw bits).
    pub classes: u16,
    /// Sampling stride that was in effect.
    pub sample_every: u64,
    /// Ring capacity that was in effect.
    pub cap: u64,
    /// Events that passed the class mask.
    pub seen: u64,
    /// Events skipped by sampling.
    pub sampled_out: u64,
    /// Events evicted by the capacity bound.
    pub dropped_cap: u64,
    /// The recorded events, in canonical emission order.
    pub events: Vec<CcEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Cycle) -> CcEvent {
        CcEvent {
            at,
            kind: CcEventKind::FecnMark {
                sw: 1,
                port: 2,
                dst: 3,
                flow: 4,
            },
        }
    }

    #[test]
    fn class_mask_contains() {
        let m = EventClass::FECN | EventClass::BECN;
        assert!(m.contains(EventClass::FECN));
        assert!(!m.contains(EventClass::CFQ));
        assert!(EventClass::ALL.contains(m));
        assert!(EventClass::NONE.is_none());
    }

    #[test]
    fn every_kind_maps_into_all() {
        let kinds = [
            CcEventKind::CongestionEnter {
                sw: 0,
                port: 0,
                occupancy_flits: 0,
            },
            CcEventKind::CfqAlloc {
                sw: 0,
                port: 0,
                dst: 0,
                root: true,
            },
            CcEventKind::CamExhausted {
                sw: 0,
                port: 0,
                dst: 0,
            },
            CcEventKind::FecnMark {
                sw: 0,
                port: 0,
                dst: 0,
                flow: 0,
            },
            CcEventKind::BecnReceived { node: 0, dst: 0 },
            CcEventKind::CctiDecay {
                node: 0,
                dst: 0,
                ccti: 0,
                ird_cycles: 0,
            },
            CcEventKind::StopSent {
                sw: 0,
                port: 0,
                dst: 0,
            },
            CcEventKind::ThrottledInjection {
                node: 0,
                dst: 0,
                ird_cycles: 1,
            },
            CcEventKind::Fault {
                kind: FaultKind::LinkDown,
                sw: 0,
                port: 0,
            },
            CcEventKind::Delivered {
                node: 0,
                flow: 0,
                bytes: 0,
                latency_cycles: 0,
                fecn: false,
            },
        ];
        for k in kinds {
            assert!(EventClass::ALL.contains(k.class()), "{}", k.label());
            assert!(!EventClass::NONE.contains(k.class()), "{}", k.label());
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = EventRing::new(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.offered(), 5);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<Cycle> = r.into_vec().iter().map(|e| e.at).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest events were evicted");
    }

    #[test]
    fn zero_cap_ring_keeps_nothing_but_counts() {
        let mut r = EventRing::new(0);
        r.push(ev(0));
        assert_eq!(r.len(), 0);
        assert_eq!(r.offered(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn log_masks_samples_and_bounds() {
        let mut log = EventLog::new(EventConfig {
            classes: EventClass::FECN,
            sample_every: 2,
            cap: 2,
        });
        // Masked class: invisible (not even counted as seen).
        log.offer(CcEvent {
            at: 0,
            kind: CcEventKind::BecnReceived { node: 0, dst: 0 },
        });
        assert_eq!(log.seen(), 0);
        for i in 0..6 {
            log.offer(ev(i)); // keeps 0, 2, 4; ring caps at 2 -> drops 0
        }
        assert_eq!(log.seen(), 6);
        assert_eq!(log.sampled_out(), 3);
        assert_eq!(log.dropped_cap(), 1);
        let r = log.into_report();
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.events[0].at, 2);
        assert_eq!(r.events[1].at, 4);
        assert_eq!(
            r.seen,
            r.sampled_out + r.dropped_cap + r.events.len() as u64
        );
    }

    #[test]
    fn events_round_trip_through_json() {
        let evs = vec![
            ev(7),
            CcEvent {
                at: 9,
                kind: CcEventKind::Fault {
                    kind: FaultKind::SwitchDown,
                    sw: 3,
                    port: 0,
                },
            },
        ];
        let json = serde_json::to_string(&evs).unwrap();
        let back: Vec<CcEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(evs, back);
    }
}
