//! Event-log exporters: Chrome `trace_event` JSON, JSONL and CSV.
//!
//! The Chrome exporter emits the legacy `trace_event` format understood
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! switch-side events appear under one "process" per switch (pid =
//! switch id) with one "thread" per port (tid = port), node-side events
//! under one process per node (pid = [`NODE_PID_BASE`] + node id) with
//! one thread per destination. Congestion enter/leave pairs render as
//! duration slices; everything else renders as instant events carrying
//! its payload in `args`.

use crate::events::{CcEvent, CcEventKind};

/// Offset added to node ids to keep node "processes" disjoint from
/// switch "processes" in the Chrome trace.
pub const NODE_PID_BASE: u32 = 100_000;

/// Location and payload of one event, flattened for the row-oriented
/// exporters: `(pid, tid, args)` where `args` is `(name, value)` pairs.
fn flatten(kind: &CcEventKind) -> (u32, u32, Vec<(&'static str, u64)>) {
    use CcEventKind::*;
    match *kind {
        CongestionEnter {
            sw,
            port,
            occupancy_flits,
        }
        | CongestionLeave {
            sw,
            port,
            occupancy_flits,
        } => (
            sw,
            port,
            vec![("occupancy_flits", u64::from(occupancy_flits))],
        ),
        CfqAlloc {
            sw,
            port,
            dst,
            root,
        } => (
            sw,
            port,
            vec![("dst", u64::from(dst)), ("root", u64::from(root))],
        ),
        CfqDealloc { sw, port, dst }
        | CfqExhausted { sw, port, dst }
        | AllocPropagated { sw, port, dst }
        | CamExhausted { sw, port, dst }
        | StopSent { sw, port, dst }
        | GoSent { sw, port, dst }
        | StopReceived { sw, port, dst }
        | GoReceived { sw, port, dst } => (sw, port, vec![("dst", u64::from(dst))]),
        FecnMark {
            sw,
            port,
            dst,
            flow,
        } => (
            sw,
            port,
            vec![("dst", u64::from(dst)), ("flow", u64::from(flow))],
        ),
        IaCfqAlloc { node, dst }
        | IaCfqDealloc { node, dst }
        | IaCfqExhausted { node, dst }
        | IaCamExhausted { node, dst }
        | BecnReceived { node, dst } => (NODE_PID_BASE + node, dst, vec![("dst", u64::from(dst))]),
        BecnGenerated { node, src } => (NODE_PID_BASE + node, src, vec![("src", u64::from(src))]),
        CctiIncrease {
            node,
            dst,
            ccti,
            ird_cycles,
        }
        | CctiDecay {
            node,
            dst,
            ccti,
            ird_cycles,
        } => (
            NODE_PID_BASE + node,
            dst,
            vec![
                ("dst", u64::from(dst)),
                ("ccti", u64::from(ccti)),
                ("ird_cycles", ird_cycles),
            ],
        ),
        ThrottledInjection {
            node,
            dst,
            ird_cycles,
        } => (
            NODE_PID_BASE + node,
            dst,
            vec![("dst", u64::from(dst)), ("ird_cycles", ird_cycles)],
        ),
        Fault { kind: _, sw, port } => (sw, port, vec![]),
        RerouteDone { unreachable_nodes } => (
            0,
            0,
            vec![("unreachable_nodes", u64::from(unreachable_nodes))],
        ),
        Delivered {
            node,
            flow,
            bytes,
            latency_cycles,
            fecn,
        } => (
            NODE_PID_BASE + node,
            flow,
            vec![
                ("flow", u64::from(flow)),
                ("bytes", u64::from(bytes)),
                ("latency_cycles", latency_cycles),
                ("fecn", u64::from(fecn)),
            ],
        ),
        EcnMark {
            sw,
            port,
            dst,
            occupancy_flits,
        } => (
            sw,
            port,
            vec![
                ("dst", u64::from(dst)),
                ("occupancy_flits", u64::from(occupancy_flits)),
            ],
        ),
        CnpGenerated { node, src } => (NODE_PID_BASE + node, src, vec![("src", u64::from(src))]),
        CnpReceived { node, dst } => (NODE_PID_BASE + node, dst, vec![("dst", u64::from(dst))]),
        IntFeedback {
            node,
            dst,
            u_ppm,
            hops,
        } => (
            NODE_PID_BASE + node,
            dst,
            vec![
                ("dst", u64::from(dst)),
                ("u_ppm", u_ppm),
                ("hops", u64::from(hops)),
            ],
        ),
        RateChange {
            node,
            dst,
            rate_ppm,
            decrease,
        } => (
            NODE_PID_BASE + node,
            dst,
            vec![
                ("dst", u64::from(dst)),
                ("rate_ppm", rate_ppm),
                ("decrease", u64::from(decrease)),
            ],
        ),
        WindowChange {
            node,
            dst,
            window_bytes,
            decrease,
        } => (
            NODE_PID_BASE + node,
            dst,
            vec![
                ("dst", u64::from(dst)),
                ("window_bytes", window_bytes),
                ("decrease", u64::from(decrease)),
            ],
        ),
    }
}

/// One JSON object per line, in canonical emission order — the grep- and
/// `jq`-friendly archive format.
pub fn events_jsonl(events: &[CcEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("events always serialize"));
        out.push('\n');
    }
    out
}

/// Flat CSV: `at_cycles,at_ns,class,kind,pid,tid,args`, where `args`
/// packs the kind-specific payload as `name=value` pairs separated by
/// `;`.
pub fn events_csv(events: &[CcEvent], cycle_ns: f64) -> String {
    let mut out = String::from("at_cycles,at_ns,kind,pid,tid,args\n");
    for ev in events {
        let (pid, tid, args) = flatten(&ev.kind);
        let packed: Vec<String> = args.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&format!(
            "{},{},{},{pid},{tid},{}\n",
            ev.at,
            ev.at as f64 * cycle_ns,
            ev.kind.label(),
            packed.join(";")
        ));
    }
    out
}

/// Chrome `trace_event` JSON (load in `chrome://tracing` or Perfetto).
///
/// `cycle_ns` converts event cycles to the format's microsecond
/// timestamps. Congestion enter/leave become `B`/`E` duration slices
/// named `congested`; every other event is an instant (`ph: "i"`) with
/// thread scope.
pub fn chrome_trace_json(events: &[CcEvent], cycle_ns: f64) -> String {
    let mut pids: Vec<u32> = Vec::new();
    let mut body = String::new();
    for ev in events {
        let (pid, tid, args) = flatten(&ev.kind);
        if !pids.contains(&pid) {
            pids.push(pid);
        }
        let ts_us = ev.at as f64 * cycle_ns / 1000.0;
        let (ph, name) = match ev.kind {
            CcEventKind::CongestionEnter { .. } => ("B", "congested"),
            CcEventKind::CongestionLeave { .. } => ("E", "congested"),
            _ => ("i", ev.kind.label()),
        };
        if !body.is_empty() {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{ts_us},\"pid\":{pid},\"tid\":{tid}"
        ));
        if ph == "i" {
            body.push_str(",\"s\":\"t\"");
        }
        if !args.is_empty() {
            let packed: Vec<String> = args.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
            body.push_str(&format!(",\"args\":{{{}}}", packed.join(",")));
        }
        body.push('}');
    }
    pids.sort_unstable();
    for pid in pids {
        let label = if pid >= NODE_PID_BASE {
            format!("node {}", pid - NODE_PID_BASE)
        } else {
            format!("switch {pid}")
        };
        if !body.is_empty() {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{label}\"}}}}"
        ));
    }
    format!("{{\"traceEvents\":[{body}],\"displayTimeUnit\":\"ms\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CcEvent;

    fn sample() -> Vec<CcEvent> {
        vec![
            CcEvent {
                at: 100,
                kind: CcEventKind::CongestionEnter {
                    sw: 1,
                    port: 2,
                    occupancy_flits: 33,
                },
            },
            CcEvent {
                at: 150,
                kind: CcEventKind::FecnMark {
                    sw: 1,
                    port: 2,
                    dst: 3,
                    flow: 7,
                },
            },
            CcEvent {
                at: 180,
                kind: CcEventKind::BecnReceived { node: 0, dst: 3 },
            },
            CcEvent {
                at: 200,
                kind: CcEventKind::CongestionLeave {
                    sw: 1,
                    port: 2,
                    occupancy_flits: 4,
                },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let text = events_jsonl(&sample());
        assert_eq!(text.lines().count(), 4);
        for line in text.lines() {
            let back: CcEvent = serde_json::from_str(line).unwrap();
            assert!(back.at >= 100);
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let text = events_csv(&sample(), 2.0);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "at_cycles,at_ns,kind,pid,tid,args");
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("100,200,congestion_enter,1,2,"));
        assert!(lines[2].contains("fecn_mark"));
        assert!(lines[2].contains("dst=3;flow=7"));
    }

    #[test]
    fn chrome_trace_pairs_and_names_processes() {
        let text = chrome_trace_json(&sample(), 1000.0);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"B\""));
        assert!(text.contains("\"ph\":\"E\""));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"name\":\"switch 1\""));
        assert!(text.contains(&format!("\"name\":\"node {}\"", 0)));
        // ts is microseconds: 100 cycles * 1000 ns = 100 us.
        assert!(text.contains("\"ts\":100"));
    }
}
