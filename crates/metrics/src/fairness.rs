//! Fairness indices for the fairness study (§IV-C).

/// Jain's fairness index: `(Σxᵢ)² / (n · Σxᵢ²)`.
///
/// Ranges from `1/n` (one flow takes everything — the worst parking-lot
/// outcome) to `1.0` (perfectly equal shares). The paper argues CCFIT's
/// per-flow throttling solves the parking-lot problem; the reproduction
/// asserts that via this index over the contributor flows' bandwidths.
///
/// Returns 1.0 for an empty slice (no flows = trivially fair) and for
/// all-zero allocations.
pub fn jain_index(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    debug_assert!(
        allocations.iter().all(|&x| x >= 0.0),
        "allocations must be non-negative"
    );
    let sum: f64 = allocations.iter().sum();
    let sq_sum: f64 = allocations.iter().map(|x| x * x).sum();
    if sq_sum == 0.0 {
        return 1.0;
    }
    sum * sum / (allocations.len() as f64 * sq_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_shares_are_perfectly_fair() {
        assert!((jain_index(&[2.0, 2.0, 2.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_hog_gives_one_over_n() {
        let j = jain_index(&[8.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn parking_lot_shares_are_quantified() {
        // Config #1 parking lot without CC: F5, F6 get 1/3 each, F1, F2
        // get 1/6 each.
        let j = jain_index(&[1.0 / 6.0, 1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0]);
        assert!(j < 0.95, "parking lot is measurably unfair: {j}");
        assert!(j > 0.5);
        // Fair quarter shares beat it.
        assert!(jain_index(&[0.25; 4]) > j);
    }

    #[test]
    fn scale_invariance() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[5.0]), 1.0);
    }
}
