//! Fault-injection accounting.
//!
//! The fault subsystem (crate `ccfit-faults` + the simulator runtime in
//! `ccfit-core`) reports its damage through a [`FaultSummary`] attached
//! to the [`crate::SimReport`]. The summary carries raw loss and
//! availability accounting; derived measures that need the delivery
//! series — post-fault recovery time in particular — live on
//! `SimReport` itself so they can be recomputed from archived reports.

use serde::{Deserialize, Serialize};

/// Losses and availability accounting for one run's fault schedule.
///
/// All counters are totals over the run; times are in simulated
/// nanoseconds (`f64`, matching the report's other time axes).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Scheduled events actually applied.
    pub events_applied: u64,
    /// Scheduled events skipped as no-ops (e.g. `LinkUp` for a cable
    /// that was never down, or events targeting a switch that is down).
    pub events_skipped: u64,
    /// Data packets destroyed in flight on fail-stop cables.
    pub packets_lost_wire: u64,
    /// Data flits those packets carried.
    pub flits_lost_wire: u64,
    /// Data packets purged from buffers (failed switch's RAM, or queued
    /// for a destination that became unreachable).
    pub packets_purged: u64,
    /// Data packets refused at injection because the destination was
    /// unreachable (the source consumed them; generators never stall on
    /// a dead destination).
    pub packets_refused: u64,
    /// Control packets (BECNs) and control events (Stop/Go/alloc)
    /// destroyed on fail-stop cables or dropped as undeliverable.
    pub ctrl_lost: u64,
    /// Credit-return flits destroyed on fail-stop cables.
    pub credits_lost: u64,
    /// Σ over end nodes of simulated ns spent unreachable (a node is
    /// unreachable while its attachment switch is down, plus the
    /// re-routing latency after recovery).
    pub node_unreachable_ns: f64,
    /// Simulated ns during which routing tables were stale (a topology
    /// change had happened but the recomputed tables were not yet in
    /// effect), summed over re-route windows.
    pub stale_route_ns: f64,
    /// Number of routing recomputations that took effect.
    pub reroutes: u64,
    /// Simulated ns of the first applied event (`f64::NAN`-free: 0 when
    /// no event fired).
    pub first_fault_ns: f64,
    /// Simulated ns when the last repair's re-routing completed — the
    /// instant from which post-fault recovery is measured. Equals the
    /// last fault's re-route completion when nothing is repaired.
    pub last_recovery_ns: f64,
}

impl FaultSummary {
    /// Total data packets lost to faults, however they were lost.
    pub fn packets_lost(&self) -> u64 {
        self.packets_lost_wire + self.packets_purged
    }

    /// True when any scheduled event was applied.
    pub fn any_applied(&self) -> bool {
        self.events_applied > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_lost_sums_loss_modes() {
        let s = FaultSummary {
            packets_lost_wire: 3,
            packets_purged: 5,
            packets_refused: 7, // refusals are not losses: never injected
            ..FaultSummary::default()
        };
        assert_eq!(s.packets_lost(), 8);
        assert!(!s.any_applied());
    }

    #[test]
    fn serde_round_trip() {
        let s = FaultSummary {
            events_applied: 2,
            node_unreachable_ns: 1234.5,
            ..FaultSummary::default()
        };
        let j = serde_json::to_string(&s).unwrap();
        let back: FaultSummary = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
