//! Flow-completion-time tracking for closed-loop sized flows.
//!
//! The simulator registers one [`FlowGoal`] per sized flow before the
//! run starts; the collector feeds every data delivery through
//! [`FctTracker::on_delivery`], which marks a flow complete the moment
//! its cumulative delivered bytes reach its goal. Because node-bound
//! deliveries are performed serially in canonical order by *every*
//! engine (the parallel engine replays shard outboxes in shard order —
//! DESIGN.md §11), completion times inherit byte-identity with no extra
//! merge machinery.
//!
//! **Ideal FCT** (the slowdown denominator) is a true lower bound
//! computed from the route at registration time: serialization of the
//! whole flow through the narrowest link on its path, plus the sum of
//! link propagation delays from source NIC to destination NIC. Queueing
//! and switch-crossing cycles are deliberately excluded, so measured
//! FCT ≥ ideal and slowdown ≥ 1 always hold.

use ccfit_engine::ids::FlowId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What one sized flow set out to do, plus its precomputed ideal FCT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowGoal {
    /// Flow id (shared space with rate-window flows).
    pub id: FlowId,
    /// Display label.
    pub label: String,
    /// Total payload bytes the flow will deliver.
    pub bytes: u64,
    /// Injection start in nanoseconds, quantized to the cycle the
    /// source generator actually activates on (so slowdown can never
    /// dip below 1 through rounding).
    pub start_ns: f64,
    /// Lower-bound completion time in nanoseconds (see module docs).
    pub ideal_ns: f64,
    /// Priority tag from the workload.
    pub priority: u8,
}

/// Live per-flow completion state inside the collector.
#[derive(Debug, Clone)]
pub struct FctTracker {
    goals: Vec<FlowGoal>,
    index: BTreeMap<FlowId, usize>,
    delivered: Vec<u64>,
    completion_ns: Vec<Option<f64>>,
}

impl FctTracker {
    /// Track the given goals (declaration order is report order).
    pub fn new(goals: Vec<FlowGoal>) -> Self {
        let index = goals.iter().enumerate().map(|(i, g)| (g.id, i)).collect();
        let n = goals.len();
        Self {
            goals,
            index,
            delivered: vec![0; n],
            completion_ns: vec![None; n],
        }
    }

    /// Account a delivered data packet. Packets of untracked flows
    /// (rate-window traffic sharing the run) are ignored.
    pub fn on_delivery(&mut self, now_ns: f64, flow: FlowId, bytes: u64) {
        let Some(&i) = self.index.get(&flow) else {
            return;
        };
        self.delivered[i] += bytes;
        if self.completion_ns[i].is_none() && self.delivered[i] >= self.goals[i].bytes {
            self.completion_ns[i] = Some(now_ns);
        }
    }

    /// Freeze into the report block.
    pub fn into_report(self) -> FctReport {
        let flows: Vec<FlowFct> = self
            .goals
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let completion_ns = self.completion_ns[i];
                let fct_ns = completion_ns.map(|c| c - g.start_ns);
                FlowFct {
                    id: g.id,
                    label: g.label.clone(),
                    priority: g.priority,
                    bytes: g.bytes,
                    start_ns: g.start_ns,
                    ideal_ns: g.ideal_ns,
                    completion_ns,
                    fct_ns,
                    slowdown: fct_ns.map(|f| f / g.ideal_ns),
                    delivered_bytes: self.delivered[i],
                }
            })
            .collect();
        FctReport::from_flows(flows)
    }
}

/// One flow's completion record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowFct {
    /// Flow id.
    pub id: FlowId,
    /// Display label.
    pub label: String,
    /// Priority tag.
    pub priority: u8,
    /// Goal bytes.
    pub bytes: u64,
    /// Injection start (ns, cycle-quantized).
    pub start_ns: f64,
    /// Ideal lower-bound FCT (ns).
    pub ideal_ns: f64,
    /// Absolute completion time (ns); `None` = the run ended first.
    pub completion_ns: Option<f64>,
    /// Flow completion time (ns): `completion_ns - start_ns`.
    pub fct_ns: Option<f64>,
    /// `fct_ns / ideal_ns`; ≥ 1.0 by construction.
    pub slowdown: Option<f64>,
    /// Bytes actually delivered by the end of the run.
    pub delivered_bytes: u64,
}

/// The FCT block of a [`crate::SimReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FctReport {
    /// Per-flow records, in workload declaration order.
    pub flows: Vec<FlowFct>,
    /// Flows that finished within the simulated duration.
    pub completed: usize,
    /// Flows still in flight when the run ended.
    pub incomplete: usize,
    /// Mean FCT over completed flows (ns; 0 when none completed).
    pub avg_fct_ns: f64,
    /// Median FCT (ns, nearest-rank over completed flows).
    pub p50_fct_ns: f64,
    /// 99th-percentile FCT (ns).
    pub p99_fct_ns: f64,
    /// 99.9th-percentile FCT (ns).
    pub p999_fct_ns: f64,
    /// Mean slowdown-vs-ideal over completed flows (0 when none).
    pub avg_slowdown: f64,
    /// Worst slowdown over completed flows (0 when none).
    pub max_slowdown: f64,
}

impl FctReport {
    fn from_flows(flows: Vec<FlowFct>) -> Self {
        let mut fcts: Vec<f64> = flows.iter().filter_map(|f| f.fct_ns).collect();
        fcts.sort_by(|a, b| a.partial_cmp(b).expect("FCTs are finite"));
        let completed = fcts.len();
        let incomplete = flows.len() - completed;
        let slowdowns: Vec<f64> = flows.iter().filter_map(|f| f.slowdown).collect();
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        FctReport {
            completed,
            incomplete,
            avg_fct_ns: mean(&fcts),
            p50_fct_ns: percentile(&fcts, 0.50),
            p99_fct_ns: percentile(&fcts, 0.99),
            p999_fct_ns: percentile(&fcts, 0.999),
            avg_slowdown: mean(&slowdowns),
            max_slowdown: slowdowns.iter().copied().fold(0.0, f64::max),
            flows,
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 if empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goal(id: u32, bytes: u64, start_ns: f64, ideal_ns: f64) -> FlowGoal {
        FlowGoal {
            id: FlowId(id),
            label: format!("S{id}"),
            bytes,
            start_ns,
            ideal_ns,
            priority: 0,
        }
    }

    #[test]
    fn completion_fires_on_the_last_byte() {
        let mut t = FctTracker::new(vec![goal(0, 4096, 100.0, 500.0)]);
        t.on_delivery(700.0, FlowId(0), 2048);
        t.on_delivery(900.0, FlowId(0), 2048);
        let r = t.into_report();
        assert_eq!(r.completed, 1);
        assert_eq!(r.flows[0].completion_ns, Some(900.0));
        assert_eq!(r.flows[0].fct_ns, Some(800.0));
        assert_eq!(r.flows[0].slowdown, Some(1.6));
    }

    #[test]
    fn untracked_and_incomplete_flows_are_handled() {
        let mut t = FctTracker::new(vec![goal(0, 4096, 0.0, 500.0)]);
        t.on_delivery(10.0, FlowId(9), 2048); // untracked: ignored
        t.on_delivery(20.0, FlowId(0), 2048); // half done
        let r = t.into_report();
        assert_eq!(r.completed, 0);
        assert_eq!(r.incomplete, 1);
        assert_eq!(r.flows[0].delivered_bytes, 2048);
        assert_eq!(r.flows[0].fct_ns, None);
        assert_eq!(r.avg_fct_ns, 0.0);
        assert_eq!(r.max_slowdown, 0.0);
    }

    #[test]
    fn aggregates_use_nearest_rank() {
        let mut t = FctTracker::new((0..100).map(|i| goal(i, 64, 0.0, 10.0)).collect());
        for i in 0..100u32 {
            t.on_delivery((i + 1) as f64 * 10.0, FlowId(i), 64);
        }
        let r = t.into_report();
        assert_eq!(r.completed, 100);
        assert_eq!(r.p50_fct_ns, 500.0);
        assert_eq!(r.p99_fct_ns, 990.0);
        assert_eq!(r.p999_fct_ns, 1000.0);
        assert!((r.avg_fct_ns - 505.0).abs() < 1e-9);
        assert_eq!(r.max_slowdown, 100.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut t = FctTracker::new(vec![goal(0, 64, 0.0, 10.0), goal(1, 64, 0.0, 10.0)]);
        t.on_delivery(25.0, FlowId(0), 64);
        let r = t.into_report();
        let json = serde_json::to_string(&r).unwrap();
        let back: FctReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
