//! Log-bucketed latency histograms.
//!
//! Packet latency under congestion is heavy-tailed — means hide the HoL
//! victims. A [`LatencyHistogram`] buckets samples geometrically (each
//! bucket 25 % wider than the previous) so percentile queries stay
//! accurate from sub-microsecond cut-through latencies to the
//! multi-millisecond queueing delays of a saturated 1Q network, in a few
//! hundred bytes of state.

use serde::{Deserialize, Serialize};

/// Geometric growth factor between bucket boundaries.
const GROWTH: f64 = 1.25;
/// Lower bound of the first bucket (ns).
const FIRST_BOUND_NS: f64 = 25.0;
/// Number of buckets: covers up to `25 × 1.25^63` ns ≈ 30 s.
const BUCKETS: usize = 64;

/// A fixed-size, log-bucketed histogram of latencies in nanoseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: f64,
    max_ns: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_ns: 0.0,
            max_ns: 0.0,
        }
    }

    fn bucket_of(ns: f64) -> usize {
        if ns <= FIRST_BOUND_NS {
            return 0;
        }
        let b = ((ns / FIRST_BOUND_NS).ln() / GROWTH.ln()).ceil() as usize;
        b.min(BUCKETS - 1)
    }

    /// Upper bound (ns) of bucket `b`.
    fn bucket_bound(b: usize) -> f64 {
        FIRST_BOUND_NS * GROWTH.powi(b as i32)
    }

    /// Record one latency sample.
    pub fn record(&mut self, ns: f64) {
        debug_assert!(ns >= 0.0);
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns;
        if ns > self.max_ns {
            self.max_ns = ns;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns / self.total as f64
        }
    }

    /// Largest recorded sample.
    pub fn max_ns(&self) -> f64 {
        self.max_ns
    }

    /// Latency at quantile `q ∈ [0, 1]`, as the upper bound of the bucket
    /// containing that quantile (a ≤ 25 % overestimate by construction).
    /// Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return 0.0;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_bound(b).min(self.max_ns.max(FIRST_BOUND_NS));
            }
        }
        self.max_ns
    }

    /// Median latency.
    pub fn p50_ns(&self) -> f64 {
        self.quantile_ns(0.50)
    }

    /// 95th percentile.
    pub fn p95_ns(&self) -> f64 {
        self.quantile_ns(0.95)
    }

    /// 99th percentile.
    pub fn p99_ns(&self) -> f64 {
        self.quantile_ns(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.p50_ns(), 0.0);
        assert_eq!(h.p99_ns(), 0.0);
    }

    #[test]
    fn single_sample_quantiles() {
        let mut h = LatencyHistogram::new();
        h.record(1000.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean_ns(), 1000.0);
        assert_eq!(h.max_ns(), 1000.0);
        // Bucketed: within 25% above the sample, capped by max.
        assert!(h.p50_ns() >= 1000.0 * 0.8 && h.p50_ns() <= 1000.0);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 100.0); // 100 ns .. 100 us
        }
        let (p50, p95, p99) = (h.p50_ns(), h.p95_ns(), h.p99_ns());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max_ns());
        // p50 of uniform 100..100_000 should be near 50_000 (within a
        // bucket's 25%).
        assert!(p50 > 40_000.0 && p50 < 65_000.0, "p50 = {p50}");
        assert!(p99 > 90_000.0, "p99 = {p99}");
    }

    #[test]
    fn heavy_tail_shows_in_p99_not_p50() {
        let mut h = LatencyHistogram::new();
        for _ in 0..980 {
            h.record(800.0);
        }
        for _ in 0..20 {
            h.record(500_000.0);
        }
        assert!(h.p50_ns() < 1100.0);
        assert!(h.p99_ns() > 300_000.0, "p99 = {}", h.p99_ns());
        assert!(h.mean_ns() > 5000.0, "mean dragged up by the tail");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100.0);
        b.record(10_000.0);
        b.record(10_000.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.max_ns() == 10_000.0);
        assert!((a.mean_ns() - 6700.0).abs() < 100.0);
    }

    #[test]
    fn extreme_values_saturate_the_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(1e12); // 1000 s, beyond the bucket range
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_ns(), 1e12);
        assert!(h.p99_ns() > 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let mut h = LatencyHistogram::new();
        h.record(512.0);
        h.record(2048.0);
        let j = serde_json::to_string(&h).unwrap();
        let g: LatencyHistogram = serde_json::from_str(&j).unwrap();
        assert_eq!(h, g);
    }
}
