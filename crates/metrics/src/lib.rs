#![warn(missing_docs)]

//! # ccfit-metrics
//!
//! Measurement infrastructure for the CCFIT reproduction. The paper bases
//! its whole evaluation on two metrics (§IV-A):
//!
//! * **Flow Bandwidth** — the throughput achieved by each traffic flow
//!   over time (Figs. 9 and 10), and
//! * **Network Throughput** — aggregate delivered traffic over time,
//!   normalized to the network's reception capacity (Figs. 7 and 8).
//!
//! A [`MetricsCollector`] is driven by the simulator (one call per
//! delivered packet, plus named event counters for the congestion-control
//! internals); at the end of a run it freezes into a serializable
//! [`SimReport`] from which the figure harness extracts the same series
//! the paper plots, plus Jain's fairness index for the fairness study
//! (§IV-C).

pub mod collector;
pub mod events;
pub mod export;
pub mod fairness;
pub mod faults;
pub mod fct;
pub mod histogram;
pub mod report;
pub mod scratch;
pub mod series;

pub use collector::MetricsCollector;
pub use events::{
    CcEvent, CcEventKind, EventClass, EventConfig, EventLog, EventLogReport, EventRing, FaultKind,
};
pub use fairness::jain_index;
pub use faults::FaultSummary;
pub use fct::{FctReport, FctTracker, FlowFct, FlowGoal};
pub use histogram::LatencyHistogram;
pub use report::{FlowReport, SimReport};
pub use scratch::{MetricOp, MetricsScratch, MetricsSink};
pub use series::TimeSeries;
