//! Frozen simulation reports.

use crate::events::EventLogReport;
use crate::fairness::jain_index;
use crate::faults::FaultSummary;
use crate::fct::FctReport;
use crate::histogram::LatencyHistogram;
use crate::series::TimeSeries;
use ccfit_engine::ids::FlowId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-flow delivered-bytes series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowReport {
    /// Flow id.
    pub id: FlowId,
    /// Display label from the traffic pattern (e.g. `"F0 (victim)"`).
    pub label: String,
    /// Delivered payload bytes per bin.
    pub bytes: TimeSeries,
}

/// The result of one simulation run: everything the figure harness and
/// the tests need, serializable for archiving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Run label (mechanism + scenario).
    pub name: String,
    /// Simulated duration in nanoseconds.
    pub duration_ns: f64,
    /// Sampling bin width in nanoseconds.
    pub bin_ns: f64,
    /// Per-flow series.
    pub flows: Vec<FlowReport>,
    /// Aggregate delivered payload bytes per bin.
    pub total_bytes: TimeSeries,
    /// Sum of packet latencies (ns) per bin.
    pub latency_sum_ns: TimeSeries,
    /// Packets delivered per bin.
    pub latency_count: TimeSeries,
    /// Whole-run latency distribution (log-bucketed).
    pub latency_hist: LatencyHistogram,
    /// Sampled gauge series (sum per bin; `<name>_samples` counts the
    /// samples per bin).
    pub gauges: BTreeMap<String, TimeSeries>,
    /// Aggregate reception capacity in bytes per nanosecond (Σ node-link
    /// bandwidths); normalization denominator for network throughput.
    pub reception_capacity_bytes_per_ns: f64,
    /// Named event counters from the congestion-control machinery.
    pub counters: BTreeMap<String, u64>,
    /// Total data packets delivered.
    pub delivered_packets: u64,
    /// Total payload bytes delivered.
    pub delivered_bytes: u64,
    /// Number of simulator cycles the run executed (deterministic — the
    /// perf harness divides it by measured wall time for cycles/sec;
    /// wall time itself lives outside the report so identical runs stay
    /// byte-identical).
    pub simulated_cycles: u64,
    /// Fault-injection accounting; `None` (serialized as `null`) when
    /// the run had no fault schedule.
    pub faults: Option<FaultSummary>,
    /// Structured CC event log; `None` (serialized as `null`) when the
    /// run did not enable event recording.
    pub events: Option<EventLogReport>,
    /// Flow-completion-time block; `None` (serialized as `null`) when
    /// the workload had no sized flows.
    pub fct: Option<FctReport>,
}

impl SimReport {
    /// Per-bin bandwidth of one flow in GB/s (`1 GB/s = 1 byte/ns`).
    pub fn flow_bandwidth_gbps(&self, id: FlowId) -> Option<Vec<f64>> {
        self.flows
            .iter()
            .find(|f| f.id == id)
            .map(|f| f.bytes.scaled(1.0 / self.bin_ns))
    }

    /// Mean bandwidth of one flow (GB/s) over a time window in ns.
    pub fn flow_mean_bandwidth_gbps(&self, id: FlowId, from_ns: f64, to_ns: f64) -> f64 {
        let Some(f) = self.flows.iter().find(|f| f.id == id) else {
            return 0.0;
        };
        let from = f.bytes.bin_of(from_ns);
        let to = f.bytes.bin_of(to_ns);
        f.bytes.mean_over(from, to) / self.bin_ns
    }

    /// Per-bin network throughput, normalized to the reception capacity
    /// (1.0 = every end node receiving at line rate). This is the y-axis
    /// of Figs. 7 and 8.
    pub fn network_throughput_normalized(&self) -> Vec<f64> {
        self.total_bytes
            .scaled(1.0 / (self.bin_ns * self.reception_capacity_bytes_per_ns))
    }

    /// Per-bin aggregate throughput in GB/s.
    pub fn network_throughput_gbps(&self) -> Vec<f64> {
        self.total_bytes.scaled(1.0 / self.bin_ns)
    }

    /// Mean normalized network throughput over a time window in ns.
    pub fn mean_normalized_throughput(&self, from_ns: f64, to_ns: f64) -> f64 {
        let from = self.total_bytes.bin_of(from_ns);
        let to = self.total_bytes.bin_of(to_ns);
        self.total_bytes.mean_over(from, to) / (self.bin_ns * self.reception_capacity_bytes_per_ns)
    }

    /// Mean packet latency per bin in ns (0 where nothing was delivered).
    pub fn mean_latency_ns_per_bin(&self) -> Vec<f64> {
        self.latency_sum_ns
            .bins
            .iter()
            .zip(&self.latency_count.bins)
            .map(|(&s, &c)| if c > 0.0 { s / c } else { 0.0 })
            .collect()
    }

    /// Per-bin mean of a sampled gauge (None if never sampled).
    pub fn gauge_mean_per_bin(&self, name: &str) -> Option<Vec<f64>> {
        let sums = self.gauges.get(name)?;
        let counts = self.gauges.get(&format!("{name}_samples"))?;
        Some(
            sums.bins
                .iter()
                .zip(&counts.bins)
                .map(|(&s, &c)| if c > 0.0 { s / c } else { 0.0 })
                .collect(),
        )
    }

    /// Latency percentile summary `(p50, p95, p99)` in ns.
    pub fn latency_percentiles_ns(&self) -> (f64, f64, f64) {
        (
            self.latency_hist.p50_ns(),
            self.latency_hist.p95_ns(),
            self.latency_hist.p99_ns(),
        )
    }

    /// Jain fairness index over the mean bandwidths of `flows` in the
    /// window `[from_ns, to_ns)` — the §IV-C fairness measure.
    pub fn jain_over(&self, flows: &[FlowId], from_ns: f64, to_ns: f64) -> f64 {
        let bws: Vec<f64> = flows
            .iter()
            .map(|&id| self.flow_mean_bandwidth_gbps(id, from_ns, to_ns))
            .collect();
        jain_index(&bws)
    }

    /// Post-fault recovery time in ns: how long after the last repair's
    /// re-routing completed (`FaultSummary::last_recovery_ns`) the
    /// network throughput needed to climb back to ≥ 90 % of its
    /// pre-fault baseline (mean normalized throughput over the bins
    /// before the first fault).
    ///
    /// Returns `None` when the run had no applied faults, when the
    /// fault fired too early for a baseline to exist, or when the run
    /// ended before throughput recovered (an unrecovered run — report
    /// it as such rather than as a number).
    pub fn fault_recovery_ns(&self) -> Option<f64> {
        let f = self.faults.as_ref()?;
        if !f.any_applied() {
            return None;
        }
        let nt = self.network_throughput_normalized();
        let fault_bin = self.total_bytes.bin_of(f.first_fault_ns);
        if fault_bin == 0 || nt.is_empty() {
            return None;
        }
        let baseline = nt[..fault_bin.min(nt.len())].iter().sum::<f64>() / fault_bin as f64;
        if baseline <= 0.0 {
            return Some(0.0);
        }
        let resume_bin = self.total_bytes.bin_of(f.last_recovery_ns).min(nt.len());
        for (i, &v) in nt.iter().enumerate().skip(resume_bin) {
            if v >= 0.9 * baseline {
                return Some((self.total_bytes.bin_center_ns(i) - f.last_recovery_ns).max(0.0));
            }
        }
        None
    }

    /// All flow ids present in the report.
    pub fn flow_ids(&self) -> Vec<FlowId> {
        self.flows.iter().map(|f| f.id).collect()
    }

    /// Serialize to pretty JSON (for archiving runs).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports always serialize")
    }

    /// Emit a CSV of the normalized-throughput series:
    /// `time_ms,throughput`.
    pub fn throughput_csv(&self) -> String {
        let mut out = String::from("time_ms,normalized_throughput\n");
        for (i, v) in self.network_throughput_normalized().iter().enumerate() {
            out.push_str(&format!(
                "{:.4},{:.6}\n",
                self.total_bytes.bin_center_ns(i) / 1e6,
                v
            ));
        }
        out
    }

    /// Emit a CSV of per-flow bandwidths: `time_ms,<label>…` one column
    /// per flow.
    pub fn flow_bandwidth_csv(&self) -> String {
        let mut out = String::from("time_ms");
        for f in &self.flows {
            out.push(',');
            out.push_str(&f.label.replace(',', ";"));
        }
        out.push('\n');
        let n = self.total_bytes.len();
        for i in 0..n {
            out.push_str(&format!("{:.4}", self.total_bytes.bin_center_ns(i) / 1e6));
            for f in &self.flows {
                let v = f.bytes.bins.get(i).copied().unwrap_or(0.0) / self.bin_ns;
                out.push_str(&format!(",{v:.6}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SimReport {
        let bin = 1000.0;
        let mut f0 = TimeSeries::new(bin);
        let mut f1 = TimeSeries::new(bin);
        let mut total = TimeSeries::new(bin);
        // Flow 0: 2500 B/bin (2.5 GB/s); flow 1: 1250 B/bin.
        for i in 0..10 {
            let t = i as f64 * bin;
            f0.add(t, 2500.0);
            f1.add(t, 1250.0);
            total.add(t, 3750.0);
        }
        SimReport {
            name: "sample".into(),
            duration_ns: 10_000.0,
            bin_ns: bin,
            flows: vec![
                FlowReport {
                    id: FlowId(0),
                    label: "F0".into(),
                    bytes: f0,
                },
                FlowReport {
                    id: FlowId(1),
                    label: "F1".into(),
                    bytes: f1,
                },
            ],
            total_bytes: total,
            latency_sum_ns: TimeSeries::new(bin),
            latency_count: TimeSeries::new(bin),
            latency_hist: LatencyHistogram::new(),
            gauges: BTreeMap::new(),
            reception_capacity_bytes_per_ns: 5.0, // two 2.5 GB/s sinks
            counters: BTreeMap::new(),
            delivered_packets: 20,
            delivered_bytes: 37_500,
            simulated_cycles: 2500,
            faults: None,
            events: None,
            fct: None,
        }
    }

    #[test]
    fn flow_bandwidth_is_bytes_over_bin() {
        let r = sample_report();
        let bw = r.flow_bandwidth_gbps(FlowId(0)).unwrap();
        assert!((bw[0] - 2.5).abs() < 1e-9);
        assert!(r.flow_bandwidth_gbps(FlowId(9)).is_none());
    }

    #[test]
    fn normalized_throughput_uses_reception_capacity() {
        let r = sample_report();
        let nt = r.network_throughput_normalized();
        // 3.75 GB/s of 5 GB/s capacity.
        assert!((nt[0] - 0.75).abs() < 1e-9);
        let g = r.network_throughput_gbps();
        assert!((g[0] - 3.75).abs() < 1e-9);
    }

    #[test]
    fn mean_bandwidth_over_window() {
        let r = sample_report();
        let m = r.flow_mean_bandwidth_gbps(FlowId(1), 2000.0, 8000.0);
        assert!((m - 1.25).abs() < 1e-9);
        assert_eq!(r.flow_mean_bandwidth_gbps(FlowId(7), 0.0, 1e4), 0.0);
    }

    #[test]
    fn jain_reflects_unequal_flows() {
        let r = sample_report();
        let j = r.jain_over(&[FlowId(0), FlowId(1)], 0.0, 10_000.0);
        // shares 2:1 -> J = 9/(2*5) = 0.9
        assert!((j - 0.9).abs() < 1e-9);
    }

    #[test]
    fn csv_emission_has_header_and_rows() {
        let r = sample_report();
        let csv = r.throughput_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_ms,normalized_throughput");
        assert_eq!(lines.len(), 11);
        let fcsv = r.flow_bandwidth_csv();
        assert!(fcsv.starts_with("time_ms,F0,F1\n"));
        assert_eq!(fcsv.lines().count(), 11);
    }

    #[test]
    fn json_round_trip() {
        let r = sample_report();
        let j = r.to_json();
        let r2: SimReport = serde_json::from_str(&j).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn mean_normalized_throughput_window() {
        let r = sample_report();
        let m = r.mean_normalized_throughput(0.0, 10_000.0);
        assert!((m - 0.75).abs() < 1e-9);
    }

    #[test]
    fn fault_recovery_finds_first_recovered_bin() {
        let mut r = sample_report();
        // Fault at 3 µs, recovery (reroute done) at 5 µs. Crater the
        // delivery series between them and during the first post-repair
        // bin, so throughput regains the 90 % baseline in bin 6.
        for bin in 3..6 {
            r.total_bytes.bins[bin] = 100.0;
        }
        r.faults = Some(FaultSummary {
            events_applied: 2,
            first_fault_ns: 3_000.0,
            last_recovery_ns: 5_000.0,
            ..FaultSummary::default()
        });
        let rec = r.fault_recovery_ns().unwrap();
        // Bin 6 center = 6500 ns, recovery reference = 5000 ns.
        assert!((rec - 1_500.0).abs() < 1e-9);

        // No faults applied -> no recovery number.
        r.faults = Some(FaultSummary::default());
        assert_eq!(r.fault_recovery_ns(), None);
        r.faults = None;
        assert_eq!(r.fault_recovery_ns(), None);
    }

    #[test]
    fn event_log_round_trips_in_report_json() {
        use crate::events::{CcEvent, CcEventKind, EventClass};
        let mut r = sample_report();
        r.events = Some(EventLogReport {
            classes: EventClass::ALL.0,
            sample_every: 1,
            cap: 1024,
            seen: 2,
            sampled_out: 0,
            dropped_cap: 0,
            events: vec![
                CcEvent {
                    at: 5,
                    kind: CcEventKind::FecnMark {
                        sw: 0,
                        port: 1,
                        dst: 2,
                        flow: 3,
                    },
                },
                CcEvent {
                    at: 9,
                    kind: CcEventKind::BecnReceived { node: 4, dst: 2 },
                },
            ],
        });
        let back: SimReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn fault_summary_round_trips_in_report_json() {
        let mut r2 = sample_report();
        r2.faults = Some(FaultSummary {
            events_applied: 3,
            packets_lost_wire: 11,
            node_unreachable_ns: 987.5,
            ..FaultSummary::default()
        });
        let back: SimReport = serde_json::from_str(&r2.to_json()).unwrap();
        assert_eq!(r2, back);
    }
}
