//! Order-preserving metrics outboxes for the sharded parallel tick.
//!
//! The collector's delivery series accumulate `f64` values, and floating
//! point addition is not associative — so the parallel engine may not sum
//! partial results per shard. Instead every worker records the *operations*
//! it would have performed into a [`MetricsScratch`] op log; the main
//! thread replays the logs into the real [`MetricsCollector`] in canonical
//! shard order, reproducing the serial call sequence bit for bit.
//!
//! Flow-completion tracking ([`crate::fct`]) needs no op of its own:
//! completions are detected inside `record_delivery`, and node-bound
//! deliveries never go through a scratch — every engine (dense, sparse,
//! sharded) performs them serially on the main thread in canonical
//! order, so replaying `Delivery` ops already replays completions.

use crate::collector::MetricsCollector;
use crate::events::{CcEvent, EventClass};
use ccfit_engine::packet::Packet;
use ccfit_engine::units::Cycle;

/// The sink interface shared by the live collector and the per-shard
/// scratch logs. Switch/adapter code is generic over this so the same
/// model code runs serially (writing straight into [`MetricsCollector`])
/// and in a worker (logging into a [`MetricsScratch`]).
pub trait MetricsSink {
    /// Increment a named event counter.
    fn count(&mut self, name: &str, delta: u64);
    /// Record an instantaneous gauge sample.
    fn gauge(&mut self, name: &str, at_ns: f64, value: f64);
    /// Record a data packet delivered to its destination at cycle `now`.
    fn record_delivery(&mut self, now: Cycle, pkt: &Packet);
    /// True when the sink records structured CC events of `class`.
    /// Emission sites guard event construction behind this, so disabled
    /// tracing costs a single branch per site.
    fn wants_events(&self, class: EventClass) -> bool {
        let _ = class;
        false
    }
    /// Record a structured CC event (see [`crate::events`]).
    fn cc_event(&mut self, ev: CcEvent) {
        let _ = ev;
    }
}

impl MetricsSink for MetricsCollector {
    fn count(&mut self, name: &str, delta: u64) {
        MetricsCollector::count(self, name, delta);
    }
    fn gauge(&mut self, name: &str, at_ns: f64, value: f64) {
        MetricsCollector::gauge(self, name, at_ns, value);
    }
    fn record_delivery(&mut self, now: Cycle, pkt: &Packet) {
        MetricsCollector::record_delivery(self, now, pkt);
    }
    fn wants_events(&self, class: EventClass) -> bool {
        MetricsCollector::event_mask(self).contains(class)
    }
    fn cc_event(&mut self, ev: CcEvent) {
        MetricsCollector::cc_event(self, ev);
    }
}

/// One recorded metrics operation.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricOp {
    /// `count(name, delta)`.
    Count(String, u64),
    /// `gauge(name, at_ns, value)`.
    Gauge(String, f64, f64),
    /// `record_delivery(now, pkt)`.
    Delivery(Cycle, Packet),
    /// `cc_event(ev)`.
    Event(CcEvent),
}

/// An append-only log of metrics operations, recorded by one shard worker
/// and drained into the collector by [`MetricsCollector::apply_scratch`].
///
/// The scratch carries a copy of the collector's event-class mask so a
/// worker can skip event construction exactly like the serial path does;
/// sampling and the capacity bound are *not* applied here — they run on
/// the canonical merged stream in the collector, so the kept set never
/// depends on the shard layout.
#[derive(Debug, Default, Clone)]
pub struct MetricsScratch {
    ops: Vec<MetricOp>,
    /// Op-count watermarks dropped by [`Self::mark`]; they bound the
    /// *segments* a batched merge replays interleaved across shards
    /// (e.g. every shard's ctrl ops before any shard's isolation ops).
    marks: Vec<usize>,
    event_mask: EventClass,
}

impl MetricsScratch {
    /// Fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adopt the collector's event-class mask (set once per parallel
    /// run, before workers start).
    pub fn set_event_mask(&mut self, mask: EventClass) {
        self.event_mask = mask;
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded operations, in emission order.
    pub fn ops(&self) -> &[MetricOp] {
        &self.ops
    }

    /// Drop a segment boundary at the current op count. A log with `k`
    /// marks has `k + 1` segments (the last one open-ended).
    pub fn mark(&mut self) {
        self.marks.push(self.ops.len());
    }

    /// Bounds of segment `i` (segments are delimited by [`Self::mark`];
    /// the segment after the last mark runs to the end of the log).
    pub fn segment(&self, i: usize) -> std::ops::Range<usize> {
        let lo = if i == 0 { 0 } else { self.marks[i - 1] };
        let hi = self.marks.get(i).copied().unwrap_or(self.ops.len());
        lo..hi
    }

    /// Drop all recorded operations and marks, keeping capacity.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.marks.clear();
    }
}

impl MetricsSink for MetricsScratch {
    fn count(&mut self, name: &str, delta: u64) {
        self.ops.push(MetricOp::Count(name.to_string(), delta));
    }
    fn gauge(&mut self, name: &str, at_ns: f64, value: f64) {
        self.ops
            .push(MetricOp::Gauge(name.to_string(), at_ns, value));
    }
    fn record_delivery(&mut self, now: Cycle, pkt: &Packet) {
        self.ops.push(MetricOp::Delivery(now, *pkt));
    }
    fn wants_events(&self, class: EventClass) -> bool {
        self.event_mask.contains(class)
    }
    fn cc_event(&mut self, ev: CcEvent) {
        self.ops.push(MetricOp::Event(ev));
    }
}

impl MetricsCollector {
    /// Replay a scratch log into the collector in emission order and clear
    /// it. Applying shard logs in canonical (shard-index) order reproduces
    /// the serial call sequence exactly, including `f64` addition order.
    pub fn apply_scratch(&mut self, scratch: &mut MetricsScratch) {
        for op in scratch.ops.drain(..) {
            match op {
                MetricOp::Count(name, delta) => self.count(&name, delta),
                MetricOp::Gauge(name, at_ns, value) => self.gauge(&name, at_ns, value),
                MetricOp::Delivery(now, pkt) => self.record_delivery(now, &pkt),
                MetricOp::Event(ev) => self.cc_event(ev),
            }
        }
        scratch.marks.clear();
    }

    /// Replay `range` of a scratch log without draining it — the batched
    /// parallel merge replays one [`MetricsScratch::segment`] per shard
    /// at a time, so a log cannot be consumed front-to-back in one pass.
    /// The caller clears the scratch once every segment has replayed.
    pub fn apply_scratch_range(&mut self, scratch: &MetricsScratch, range: std::ops::Range<usize>) {
        for op in &scratch.ops[range] {
            match op {
                MetricOp::Count(name, delta) => self.count(name, *delta),
                MetricOp::Gauge(name, at_ns, value) => self.gauge(name, *at_ns, *value),
                MetricOp::Delivery(now, pkt) => self.record_delivery(*now, pkt),
                MetricOp::Event(ev) => self.cc_event(*ev),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfit_engine::ids::{FlowId, NodeId, PacketId};
    use ccfit_engine::units::UnitModel;
    use std::collections::BTreeMap;

    fn pkt(flow: u32, bytes: u32) -> Packet {
        Packet::data(
            PacketId(0),
            NodeId(0),
            NodeId(1),
            bytes.div_ceil(64),
            bytes,
            FlowId(flow),
            0,
        )
    }

    #[test]
    fn scratch_replay_matches_direct_calls() {
        let mut direct = MetricsCollector::new(UnitModel::default(), 1000.0);
        let mut via = MetricsCollector::new(UnitModel::default(), 1000.0);
        let mut scratch = MetricsScratch::new();

        direct.count("x", 2);
        direct.gauge("g", 500.0, 3.5);
        direct.record_delivery(10, &pkt(1, 2048));

        MetricsSink::count(&mut scratch, "x", 2);
        MetricsSink::gauge(&mut scratch, "g", 500.0, 3.5);
        MetricsSink::record_delivery(&mut scratch, 10, &pkt(1, 2048));
        via.apply_scratch(&mut scratch);

        assert!(scratch.is_empty());
        let a = direct.finish("t", 2000.0, 1.0, &BTreeMap::new());
        let b = via.finish("t", 2000.0, 1.0, &BTreeMap::new());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn segmented_replay_matches_direct_calls() {
        let mut direct = MetricsCollector::new(UnitModel::default(), 1000.0);
        let mut via = MetricsCollector::new(UnitModel::default(), 1000.0);
        let mut s = MetricsScratch::new();

        // Two segments recorded out of replay order: the merge applies
        // segment 1 before segment 0 on the direct collector's schedule.
        MetricsSink::count(&mut s, "late", 1);
        s.mark();
        MetricsSink::count(&mut s, "early", 2);
        MetricsSink::gauge(&mut s, "g", 10.0, 1.5);

        direct.count("early", 2);
        direct.gauge("g", 10.0, 1.5);
        direct.count("late", 1);

        via.apply_scratch_range(&s, s.segment(1));
        via.apply_scratch_range(&s, s.segment(0));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.segment(0), 0..0);

        let a = direct.finish("t", 2000.0, 1.0, &BTreeMap::new());
        let b = via.finish("t", 2000.0, 1.0, &BTreeMap::new());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn apply_clears_and_preserves_capacity() {
        let mut c = MetricsCollector::new(UnitModel::default(), 1000.0);
        let mut s = MetricsScratch::new();
        MetricsSink::count(&mut s, "a", 1);
        assert_eq!(s.len(), 1);
        c.apply_scratch(&mut s);
        assert_eq!(s.len(), 0);
        assert_eq!(c.counter("a"), 1);
    }
}
