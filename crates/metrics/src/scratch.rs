//! Order-preserving metrics outboxes for the sharded parallel tick.
//!
//! The collector's delivery series accumulate `f64` values, and floating
//! point addition is not associative — so the parallel engine may not sum
//! partial results per shard. Instead every worker records the *operations*
//! it would have performed into a [`MetricsScratch`] op log; the main
//! thread replays the logs into the real [`MetricsCollector`] in canonical
//! shard order, reproducing the serial call sequence bit for bit.

use crate::collector::MetricsCollector;
use crate::events::{CcEvent, EventClass};
use ccfit_engine::packet::Packet;
use ccfit_engine::units::Cycle;

/// The sink interface shared by the live collector and the per-shard
/// scratch logs. Switch/adapter code is generic over this so the same
/// model code runs serially (writing straight into [`MetricsCollector`])
/// and in a worker (logging into a [`MetricsScratch`]).
pub trait MetricsSink {
    /// Increment a named event counter.
    fn count(&mut self, name: &str, delta: u64);
    /// Record an instantaneous gauge sample.
    fn gauge(&mut self, name: &str, at_ns: f64, value: f64);
    /// Record a data packet delivered to its destination at cycle `now`.
    fn record_delivery(&mut self, now: Cycle, pkt: &Packet);
    /// True when the sink records structured CC events of `class`.
    /// Emission sites guard event construction behind this, so disabled
    /// tracing costs a single branch per site.
    fn wants_events(&self, class: EventClass) -> bool {
        let _ = class;
        false
    }
    /// Record a structured CC event (see [`crate::events`]).
    fn cc_event(&mut self, ev: CcEvent) {
        let _ = ev;
    }
}

impl MetricsSink for MetricsCollector {
    fn count(&mut self, name: &str, delta: u64) {
        MetricsCollector::count(self, name, delta);
    }
    fn gauge(&mut self, name: &str, at_ns: f64, value: f64) {
        MetricsCollector::gauge(self, name, at_ns, value);
    }
    fn record_delivery(&mut self, now: Cycle, pkt: &Packet) {
        MetricsCollector::record_delivery(self, now, pkt);
    }
    fn wants_events(&self, class: EventClass) -> bool {
        MetricsCollector::event_mask(self).contains(class)
    }
    fn cc_event(&mut self, ev: CcEvent) {
        MetricsCollector::cc_event(self, ev);
    }
}

/// One recorded metrics operation.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricOp {
    /// `count(name, delta)`.
    Count(String, u64),
    /// `gauge(name, at_ns, value)`.
    Gauge(String, f64, f64),
    /// `record_delivery(now, pkt)`.
    Delivery(Cycle, Packet),
    /// `cc_event(ev)`.
    Event(CcEvent),
}

/// An append-only log of metrics operations, recorded by one shard worker
/// and drained into the collector by [`MetricsCollector::apply_scratch`].
///
/// The scratch carries a copy of the collector's event-class mask so a
/// worker can skip event construction exactly like the serial path does;
/// sampling and the capacity bound are *not* applied here — they run on
/// the canonical merged stream in the collector, so the kept set never
/// depends on the shard layout.
#[derive(Debug, Default, Clone)]
pub struct MetricsScratch {
    ops: Vec<MetricOp>,
    event_mask: EventClass,
}

impl MetricsScratch {
    /// Fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adopt the collector's event-class mask (set once per parallel
    /// run, before workers start).
    pub fn set_event_mask(&mut self, mask: EventClass) {
        self.event_mask = mask;
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded operations, in emission order.
    pub fn ops(&self) -> &[MetricOp] {
        &self.ops
    }

    /// Drop all recorded operations, keeping capacity.
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

impl MetricsSink for MetricsScratch {
    fn count(&mut self, name: &str, delta: u64) {
        self.ops.push(MetricOp::Count(name.to_string(), delta));
    }
    fn gauge(&mut self, name: &str, at_ns: f64, value: f64) {
        self.ops
            .push(MetricOp::Gauge(name.to_string(), at_ns, value));
    }
    fn record_delivery(&mut self, now: Cycle, pkt: &Packet) {
        self.ops.push(MetricOp::Delivery(now, *pkt));
    }
    fn wants_events(&self, class: EventClass) -> bool {
        self.event_mask.contains(class)
    }
    fn cc_event(&mut self, ev: CcEvent) {
        self.ops.push(MetricOp::Event(ev));
    }
}

impl MetricsCollector {
    /// Replay a scratch log into the collector in emission order and clear
    /// it. Applying shard logs in canonical (shard-index) order reproduces
    /// the serial call sequence exactly, including `f64` addition order.
    pub fn apply_scratch(&mut self, scratch: &mut MetricsScratch) {
        for op in scratch.ops.drain(..) {
            match op {
                MetricOp::Count(name, delta) => self.count(&name, delta),
                MetricOp::Gauge(name, at_ns, value) => self.gauge(&name, at_ns, value),
                MetricOp::Delivery(now, pkt) => self.record_delivery(now, &pkt),
                MetricOp::Event(ev) => self.cc_event(ev),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfit_engine::ids::{FlowId, NodeId, PacketId};
    use ccfit_engine::units::UnitModel;
    use std::collections::BTreeMap;

    fn pkt(flow: u32, bytes: u32) -> Packet {
        Packet::data(
            PacketId(0),
            NodeId(0),
            NodeId(1),
            bytes.div_ceil(64),
            bytes,
            FlowId(flow),
            0,
        )
    }

    #[test]
    fn scratch_replay_matches_direct_calls() {
        let mut direct = MetricsCollector::new(UnitModel::default(), 1000.0);
        let mut via = MetricsCollector::new(UnitModel::default(), 1000.0);
        let mut scratch = MetricsScratch::new();

        direct.count("x", 2);
        direct.gauge("g", 500.0, 3.5);
        direct.record_delivery(10, &pkt(1, 2048));

        MetricsSink::count(&mut scratch, "x", 2);
        MetricsSink::gauge(&mut scratch, "g", 500.0, 3.5);
        MetricsSink::record_delivery(&mut scratch, 10, &pkt(1, 2048));
        via.apply_scratch(&mut scratch);

        assert!(scratch.is_empty());
        let a = direct.finish("t", 2000.0, 1.0, &BTreeMap::new());
        let b = via.finish("t", 2000.0, 1.0, &BTreeMap::new());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn apply_clears_and_preserves_capacity() {
        let mut c = MetricsCollector::new(UnitModel::default(), 1000.0);
        let mut s = MetricsScratch::new();
        MetricsSink::count(&mut s, "a", 1);
        assert_eq!(s.len(), 1);
        c.apply_scratch(&mut s);
        assert_eq!(s.len(), 0);
        assert_eq!(c.counter("a"), 1);
    }
}
