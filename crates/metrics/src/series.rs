//! Time-binned series.

use serde::{Deserialize, Serialize};

/// A fixed-bin time series of `f64` samples accumulated by addition.
///
/// Bins are laid out from time zero; bin `i` covers
/// `[i·bin_ns, (i+1)·bin_ns)`. The series grows on demand — adding at a
/// time beyond the current end extends it with zero-filled bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Bin width in nanoseconds.
    pub bin_ns: f64,
    /// Accumulated value per bin.
    pub bins: Vec<f64>,
}

impl TimeSeries {
    /// An empty series with the given bin width.
    pub fn new(bin_ns: f64) -> Self {
        assert!(bin_ns > 0.0, "bin width must be positive");
        Self {
            bin_ns,
            bins: Vec::new(),
        }
    }

    /// Bin index covering time `ns`.
    pub fn bin_of(&self, ns: f64) -> usize {
        (ns / self.bin_ns) as usize
    }

    /// Add `value` into the bin covering `ns`.
    pub fn add(&mut self, ns: f64, value: f64) {
        let idx = self.bin_of(ns);
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += value;
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when no bins exist.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Ensure the series covers `[0, ns)` with zero-filled bins — used to
    /// give every series of a report the same length.
    pub fn extend_to(&mut self, ns: f64) {
        let want = (ns / self.bin_ns).ceil() as usize;
        if want > self.bins.len() {
            self.bins.resize(want, 0.0);
        }
    }

    /// Accumulate another series into this one, bin by bin. Both series
    /// must share the same bin width; the result covers the longer of
    /// the two. Merging is the shard-combining primitive: because each
    /// bin is a plain sum, `merge` is commutative up to f64 rounding and
    /// exactly associative whenever the bin values are exactly
    /// representable (property-tested in `tests/proptests.rs`).
    pub fn merge(&mut self, other: &TimeSeries) {
        assert!(
            self.bin_ns == other.bin_ns,
            "cannot merge series with different bin widths ({} vs {})",
            self.bin_ns,
            other.bin_ns
        );
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0.0);
        }
        for (dst, src) in self.bins.iter_mut().zip(&other.bins) {
            *dst += *src;
        }
    }

    /// Total across all bins.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Mean of the bins in `[from, to)` (bin indices), ignoring an empty
    /// range.
    pub fn mean_over(&self, from: usize, to: usize) -> f64 {
        let to = to.min(self.bins.len());
        if from >= to {
            return 0.0;
        }
        self.bins[from..to].iter().sum::<f64>() / (to - from) as f64
    }

    /// Midpoint time (ns) of bin `i`, for plotting.
    pub fn bin_center_ns(&self, i: usize) -> f64 {
        (i as f64 + 0.5) * self.bin_ns
    }

    /// The per-bin values scaled by a constant (e.g. bytes → GB/s).
    pub fn scaled(&self, factor: f64) -> Vec<f64> {
        self.bins.iter().map(|v| v * factor).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_into_the_right_bin() {
        let mut s = TimeSeries::new(100.0);
        s.add(0.0, 1.0);
        s.add(99.9, 2.0);
        s.add(100.0, 5.0);
        s.add(250.0, 7.0);
        assert_eq!(s.bins, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn extend_to_zero_fills() {
        let mut s = TimeSeries::new(100.0);
        s.add(50.0, 1.0);
        s.extend_to(1000.0);
        assert_eq!(s.len(), 10);
        assert_eq!(s.total(), 1.0);
    }

    #[test]
    fn extend_never_shrinks() {
        let mut s = TimeSeries::new(100.0);
        s.add(950.0, 1.0);
        s.extend_to(100.0);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn mean_over_partial_range() {
        let mut s = TimeSeries::new(1.0);
        for i in 0..10 {
            s.add(i as f64, i as f64);
        }
        assert_eq!(s.mean_over(0, 10), 4.5);
        assert_eq!(s.mean_over(5, 10), 7.0);
        assert_eq!(s.mean_over(8, 100), 8.5, "range clamps to length");
        assert_eq!(s.mean_over(5, 5), 0.0, "empty range");
    }

    #[test]
    fn bin_centers() {
        let s = TimeSeries::new(200.0);
        assert_eq!(s.bin_center_ns(0), 100.0);
        assert_eq!(s.bin_center_ns(3), 700.0);
    }

    #[test]
    fn scaled_multiplies_every_bin() {
        let mut s = TimeSeries::new(1.0);
        s.add(0.0, 2.0);
        s.add(1.0, 4.0);
        assert_eq!(s.scaled(0.5), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bin_width_rejected() {
        TimeSeries::new(0.0);
    }

    #[test]
    fn merge_sums_bins_and_extends() {
        let mut a = TimeSeries::new(100.0);
        a.add(0.0, 1.0);
        let mut b = TimeSeries::new(100.0);
        b.add(50.0, 2.0);
        b.add(250.0, 4.0);
        a.merge(&b);
        assert_eq!(a.bins, vec![3.0, 0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "different bin widths")]
    fn merge_rejects_mismatched_bins() {
        let mut a = TimeSeries::new(100.0);
        a.merge(&TimeSeries::new(200.0));
    }
}
