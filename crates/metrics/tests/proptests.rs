//! Property-based tests for the metrics crate.

use ccfit_metrics::{jain_index, TimeSeries};
use proptest::prelude::*;

proptest! {
    /// Jain's index is always in [1/n, 1] and is scale-invariant.
    #[test]
    fn jain_bounds_and_scale_invariance(
        xs in prop::collection::vec(0.0f64..1e6, 1..32),
        scale in 0.001f64..1e3,
    ) {
        let j = jain_index(&xs);
        let n = xs.len() as f64;
        prop_assert!(j <= 1.0 + 1e-9, "J = {}", j);
        if xs.iter().any(|&x| x > 0.0) {
            prop_assert!(j >= 1.0 / n - 1e-9, "J = {} below 1/n", j);
        }
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        prop_assert!((jain_index(&scaled) - j).abs() < 1e-6);
    }

    /// Equalizing any two allocations never decreases Jain's index
    /// (Pigou-Dalton-style transfer principle).
    #[test]
    fn jain_rewards_equalization(
        mut xs in prop::collection::vec(0.1f64..100.0, 2..16),
        i in 0usize..16,
        j in 0usize..16,
    ) {
        let n = xs.len();
        let (i, j) = (i % n, j % n);
        prop_assume!(i != j);
        let before = jain_index(&xs);
        let mean = (xs[i] + xs[j]) / 2.0;
        xs[i] = mean;
        xs[j] = mean;
        prop_assert!(jain_index(&xs) >= before - 1e-9);
    }

    /// TimeSeries: sum of bins always equals the sum of added values,
    /// wherever they land.
    #[test]
    fn series_total_is_conserved(
        adds in prop::collection::vec((0.0f64..1e6, 0.0f64..1e4), 1..100),
    ) {
        let mut s = TimeSeries::new(250.0);
        let mut expect = 0.0;
        for (t, v) in adds {
            s.add(t, v);
            expect += v;
        }
        prop_assert!((s.total() - expect).abs() < 1e-6 * expect.max(1.0));
    }

    /// extend_to never changes the total and makes the length cover the
    /// requested horizon.
    #[test]
    fn extend_preserves_total(t_end in 1.0f64..1e6) {
        let mut s = TimeSeries::new(100.0);
        s.add(42.0, 7.0);
        let before = s.total();
        s.extend_to(t_end);
        prop_assert_eq!(s.total(), before);
        prop_assert!(s.len() as f64 * 100.0 >= t_end.min(1e6) - 100.0);
    }
}

// ---- shard-outbox merge properties (parallel tick engine) ----
//
// The parallel engine records each shard's metric emissions into a
// `MetricsScratch` op log and replays the logs in canonical shard
// order. Two properties make that merge safe to reason about:
//
// 1. *Order-insensitivity for commuting ops*: counter increments are
//    integer sums and deliveries touch integer counts, histogram bins,
//    and per-bin sums of exactly-representable values — so applying the
//    shard logs in ANY order yields the identical report. (The engine
//    still uses canonical order, which additionally covers non-commuting
//    ops like gauges; this property shows the data the switch phases
//    emit is intrinsically merge-associative.)
// 2. *Concatenation = sequential application*: replaying log A then
//    log B equals replaying one log holding A's ops followed by B's —
//    the op log loses nothing.

use ccfit_engine::ids::{FlowId, NodeId, PacketId};
use ccfit_engine::packet::Packet;
use ccfit_engine::units::UnitModel;
use ccfit_metrics::{MetricsCollector, MetricsScratch, MetricsSink};
use std::collections::BTreeMap;

/// A unit model whose cycle length is a power of two, so every
/// `cycles_to_ns` result (and any sum of a few hundred of them) is
/// exactly representable and f64 addition is associative.
fn dyadic_units() -> UnitModel {
    UnitModel {
        flit_bytes: 64,
        cycle_ns: 32.0,
    }
}

fn data_pkt(flow: u32, flits: u32, injected_at: u64) -> Packet {
    Packet::data(
        PacketId(0),
        NodeId(0),
        NodeId(1),
        flits,
        flits * 64,
        FlowId(flow),
        injected_at,
    )
}

#[derive(Debug, Clone)]
enum ShardOp {
    Count(u8, u64),
    Delivery {
        flow: u32,
        flits: u32,
        injected_at: u64,
        latency: u64,
    },
}

fn shard_op() -> impl Strategy<Value = ShardOp> {
    (
        any::<bool>(),
        0u8..4,
        1u64..100,
        1u32..64,
        0u64..10_000,
        0u64..2_000,
    )
        .prop_map(|(is_count, n, delta, flits, injected_at, latency)| {
            if is_count {
                ShardOp::Count(n, delta)
            } else {
                ShardOp::Delivery {
                    flow: n as u32,
                    flits,
                    injected_at,
                    latency,
                }
            }
        })
}

fn record(scratch: &mut MetricsScratch, op: &ShardOp) {
    const NAMES: [&str; 4] = ["alloc", "fecn", "stop", "becn"];
    match *op {
        ShardOp::Count(n, d) => scratch.count(NAMES[n as usize], d),
        ShardOp::Delivery {
            flow,
            flits,
            injected_at,
            latency,
        } => scratch.record_delivery(injected_at + latency, &data_pkt(flow, flits, injected_at)),
    }
}

fn finish(mut c: MetricsCollector) -> ccfit_metrics::SimReport {
    c.count("injected_packets", 0);
    c.finish("prop/merge", 1e6, 1.0, &BTreeMap::new())
}

proptest! {
    /// Applying the per-shard op logs in any permutation produces the
    /// identical report when the ops are counters and deliveries.
    #[test]
    fn shard_merge_is_order_insensitive_for_commuting_ops(
        shards in prop::collection::vec(prop::collection::vec(shard_op(), 0..40), 1..6),
        perm_seed in any::<u64>(),
    ) {
        // Fisher–Yates driven by an LCG on `perm_seed` (the vendored
        // proptest shim has no `prop_shuffle`).
        let mut order: Vec<usize> = (0..shards.len()).collect();
        let mut s = perm_seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let build = |order: &[usize]| {
            let mut collector = MetricsCollector::new(dyadic_units(), 1024.0);
            for &i in order {
                let mut scratch = MetricsScratch::new();
                for op in &shards[i] {
                    record(&mut scratch, op);
                }
                collector.apply_scratch(&mut scratch);
            }
            finish(collector)
        };
        let canonical: Vec<usize> = (0..shards.len()).collect();
        prop_assert_eq!(build(&canonical), build(&order));
    }

    /// Replaying scratch A then scratch B into the collector equals
    /// replaying a single concatenated scratch — and equals making the
    /// same calls directly, with no scratch at all.
    #[test]
    fn scratch_concatenation_equals_sequential_application(
        a in prop::collection::vec(shard_op(), 0..60),
        b in prop::collection::vec(shard_op(), 0..60),
    ) {
        // Sequential: two scratches applied in order.
        let mut seq = MetricsCollector::new(dyadic_units(), 1024.0);
        for ops in [&a, &b] {
            let mut s = MetricsScratch::new();
            for op in ops {
                record(&mut s, op);
            }
            seq.apply_scratch(&mut s);
        }

        // Concatenated: one scratch holding a ++ b.
        let mut cat = MetricsCollector::new(dyadic_units(), 1024.0);
        let mut s = MetricsScratch::new();
        for op in a.iter().chain(b.iter()) {
            record(&mut s, op);
        }
        prop_assert_eq!(s.len(), a.len() + b.len());
        cat.apply_scratch(&mut s);
        prop_assert!(s.is_empty(), "apply_scratch drains the log");

        // Direct: the serial engine's call sequence.
        let mut direct = MetricsCollector::new(dyadic_units(), 1024.0);
        for op in a.iter().chain(b.iter()) {
            match *op {
                ShardOp::Count(n, d) => {
                    const NAMES: [&str; 4] = ["alloc", "fecn", "stop", "becn"];
                    MetricsCollector::count(&mut direct, NAMES[n as usize], d);
                }
                ShardOp::Delivery { flow, flits, injected_at, latency } => {
                    direct.record_delivery(injected_at + latency, &data_pkt(flow, flits, injected_at));
                }
            }
        }

        let (seq, cat, direct) = (finish(seq), finish(cat), finish(direct));
        prop_assert_eq!(&seq, &cat);
        prop_assert_eq!(&seq, &direct);
    }
}

// ---- observability-layer properties (DESIGN.md §10) ----

use ccfit_engine::units::Cycle;
use ccfit_metrics::{CcEvent, CcEventKind, EventRing};

fn fecn_ev(at: Cycle) -> CcEvent {
    CcEvent {
        at,
        kind: CcEventKind::FecnMark {
            sw: 0,
            port: 1,
            dst: 2,
            flow: 3,
        },
    }
}

proptest! {
    /// TimeSeries::merge is associative and commutative for
    /// integer-valued bins (the parallel engine merges per-shard gauge
    /// series, so grouping must not matter).
    #[test]
    fn series_merge_is_associative_and_commutative(
        series in prop::collection::vec(
            prop::collection::vec((0.0f64..1e5, 0u32..1000), 0..30),
            2..5,
        ),
    ) {
        let build = |adds: &[(f64, u32)]| {
            let mut s = TimeSeries::new(500.0);
            for &(t, v) in adds {
                s.add(t, f64::from(v));
            }
            s
        };
        let parts: Vec<TimeSeries> = series.iter().map(|a| build(a)).collect();

        // Left fold: ((a ∪ b) ∪ c) ∪ ...
        let mut left = parts[0].clone();
        for p in &parts[1..] {
            left.merge(p);
        }
        // Right fold: a ∪ (b ∪ (c ∪ ...))
        let mut right = parts[parts.len() - 1].clone();
        for p in parts[..parts.len() - 1].iter().rev() {
            let mut acc = p.clone();
            acc.merge(&right);
            right = acc;
        }
        // Reversed order (commutativity).
        let mut rev = parts[parts.len() - 1].clone();
        for p in parts[..parts.len() - 1].iter().rev() {
            rev.merge(p);
        }
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left.bins, &rev.bins);

        // And the merge conserves mass.
        let expect: f64 = parts.iter().map(|p| p.total()).sum();
        prop_assert_eq!(left.total(), expect);
    }

    /// Samples landing exactly on a multiple of `bin_ns` belong to the
    /// bin *starting* there — `[i·bin, (i+1)·bin)` — never the one
    /// ending there.
    #[test]
    fn series_bin_boundary_at_exact_multiples(
        i in 0usize..1000,
        bin_pow in 4u32..12,
    ) {
        let bin = f64::from(2u32.pow(bin_pow)); // exactly representable
        let s = TimeSeries::new(bin);
        let t = i as f64 * bin;
        prop_assert_eq!(s.bin_of(t), i);
        let mut s = s;
        s.add(t, 1.0);
        prop_assert_eq!(s.len(), i + 1, "boundary sample opens bin {}", i);
        prop_assert_eq!(s.bins[i], 1.0);
        if i > 0 {
            prop_assert_eq!(s.bins[i - 1], 0.0);
        }
        // Just below the boundary falls in the previous bin.
        let below = t - bin / 2.0;
        if i > 0 {
            prop_assert_eq!(s.bin_of(below), i - 1);
        }
    }

    /// The event ring's drop accounting is exact for every (cap, load):
    /// dropped == offered − kept, the ring never exceeds its cap, and
    /// the survivors are precisely the newest `kept` events in order.
    #[test]
    fn event_ring_cap_accounting_is_exact(
        cap in 0usize..40,
        offered in 0u64..200,
    ) {
        let mut r = EventRing::new(cap);
        for at in 0..offered {
            r.push(fecn_ev(at));
        }
        prop_assert!(r.len() <= r.cap());
        prop_assert_eq!(r.offered(), offered);
        prop_assert_eq!(r.dropped(), offered - r.len() as u64);
        let kept: Vec<Cycle> = r.iter().map(|e| e.at).collect();
        let expect: Vec<Cycle> =
            (offered.saturating_sub(cap as u64)..offered).collect();
        prop_assert_eq!(kept, expect, "oldest events are evicted first");
    }
}
