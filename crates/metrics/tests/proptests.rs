//! Property-based tests for the metrics crate.

use ccfit_metrics::{jain_index, TimeSeries};
use proptest::prelude::*;

proptest! {
    /// Jain's index is always in [1/n, 1] and is scale-invariant.
    #[test]
    fn jain_bounds_and_scale_invariance(
        xs in prop::collection::vec(0.0f64..1e6, 1..32),
        scale in 0.001f64..1e3,
    ) {
        let j = jain_index(&xs);
        let n = xs.len() as f64;
        prop_assert!(j <= 1.0 + 1e-9, "J = {}", j);
        if xs.iter().any(|&x| x > 0.0) {
            prop_assert!(j >= 1.0 / n - 1e-9, "J = {} below 1/n", j);
        }
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        prop_assert!((jain_index(&scaled) - j).abs() < 1e-6);
    }

    /// Equalizing any two allocations never decreases Jain's index
    /// (Pigou-Dalton-style transfer principle).
    #[test]
    fn jain_rewards_equalization(
        mut xs in prop::collection::vec(0.1f64..100.0, 2..16),
        i in 0usize..16,
        j in 0usize..16,
    ) {
        let n = xs.len();
        let (i, j) = (i % n, j % n);
        prop_assume!(i != j);
        let before = jain_index(&xs);
        let mean = (xs[i] + xs[j]) / 2.0;
        xs[i] = mean;
        xs[j] = mean;
        prop_assert!(jain_index(&xs) >= before - 1e-9);
    }

    /// TimeSeries: sum of bins always equals the sum of added values,
    /// wherever they land.
    #[test]
    fn series_total_is_conserved(
        adds in prop::collection::vec((0.0f64..1e6, 0.0f64..1e4), 1..100),
    ) {
        let mut s = TimeSeries::new(250.0);
        let mut expect = 0.0;
        for (t, v) in adds {
            s.add(t, v);
            expect += v;
        }
        prop_assert!((s.total() - expect).abs() < 1e-6 * expect.max(1.0));
    }

    /// extend_to never changes the total and makes the length cover the
    /// requested horizon.
    #[test]
    fn extend_preserves_total(t_end in 1.0f64..1e6) {
        let mut s = TimeSeries::new(100.0);
        s.add(42.0, 7.0);
        let before = s.total();
        s.extend_to(t_end);
        prop_assert_eq!(s.total(), before);
        prop_assert!(s.len() as f64 * 100.0 >= t_end.min(1e6) - 100.0);
    }
}
